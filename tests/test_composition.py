"""Scheduler composition and cross-seed robustness.

The scheduler variants were designed to compose: per-processor power
tables (``power_for``) are orthogonal to nested budgets
(``schedule_nested``) and to the continuous step-1 replacement
(``epsilon_constrained``).  These tests pin the compositions, and a
cross-seed sweep pins the headline experiment shapes against seed luck.
"""

import pytest

from repro.cluster.nested import NestedBudgetScheduler
from repro.core.continuous import ContinuousFrequencyScheduler
from repro.core.hetero import HeterogeneousScheduler
from repro.core.scheduler import ProcessorView
from repro.experiments import run_experiment
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE
from repro.units import ghz, mhz


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


class HeteroNestedScheduler(NestedBudgetScheduler, HeterogeneousScheduler):
    """Nested budgets over corner-lot parts: pure composition."""


class ContinuousHeteroScheduler(ContinuousFrequencyScheduler,
                                HeterogeneousScheduler):
    """f_ideal step 1 over corner-lot parts."""


class TestSchedulerComposition:
    def test_hetero_nested_respects_both_dimensions(self):
        sched = HeteroNestedScheduler(POWER4_TABLE, epsilon=0.04)
        sched.set_processor_table(0, 0, POWER4_TABLE.scaled_power(1.5))
        views = [
            ProcessorView(node_id=0, proc_id=0, signature=sig(10.0)),
            ProcessorView(node_id=0, proc_id=1, signature=sig(10.0)),
            ProcessorView(node_id=1, proc_id=0, signature=sig(10.0)),
        ]
        schedule = sched.schedule_nested(views, 400.0, {0: 250.0})
        # Node 0's limit accounts for the leaky part's true draw.
        assert sched.node_power_w(schedule, 0) <= 250.0
        assert schedule.total_power_w <= 400.0
        leaky = schedule.assignment_for(0, 0)
        assert leaky.power_w == pytest.approx(
            1.5 * POWER4_TABLE.power_at(leaky.freq_hz))

    def test_continuous_hetero_composes(self):
        sched = ContinuousHeteroScheduler(POWER4_TABLE, epsilon=0.04)
        sched.set_processor_table(0, 1, POWER4_TABLE.scaled_power(1.3))
        views = [
            ProcessorView(node_id=0, proc_id=0, signature=sig(0.075)),
            ProcessorView(node_id=0, proc_id=1, signature=sig(0.075)),
        ]
        schedule = sched.schedule(views, power_limit_w=120.0)
        # Step 1 from the continuous form (650 rung for this ratio)...
        assert all(a.eps_freq_hz == mhz(650)
                   for a in schedule.assignments)
        # ...step 2 against per-part power.
        assert schedule.total_power_w <= 120.0
        assert schedule.assignment_for(0, 1).power_w == pytest.approx(
            1.3 * POWER4_TABLE.power_at(
                schedule.assignment_for(0, 1).freq_hz))


class TestCrossSeedRobustness:
    """Headline shapes must not be artifacts of the default seed."""

    @pytest.mark.parametrize("seed", [7, 1234, 987654])
    def test_table3_ordering_across_seeds(self, seed):
        r = run_experiment("table3", seed=seed, fast=True)
        rows = {row[0]: dict(zip(r.tables[0].headers[1:], row[1:]))
                for row in r.tables[0].rows}
        assert rows["Perf @ 35W"]["mcf"] > rows["Perf @ 35W"]["gzip"]
        assert rows["Energy @ 140W"]["mcf"] < rows["Energy @ 140W"]["gzip"]

    @pytest.mark.parametrize("seed", [11, 4242])
    def test_policy_comparison_across_seeds(self, seed):
        r = run_experiment("ablation_policies", seed=seed, fast=True)
        rows = {row[0]: row[1] for row in r.tables[0].rows}
        assert rows["fvsst"] > rows["uniform"]

    @pytest.mark.parametrize("seed", [3, 5150])
    def test_worked_example_seed_independent(self, seed):
        # Fully deterministic: identical output for any seed.
        r = run_experiment("worked_example", seed=seed)
        assert r.scalars["t0_total_power_w"] == 289.0
