"""The fault-injection layer and the control-plane bugfix regressions.

Unit coverage of :mod:`repro.sim.network` faults, :mod:`repro.cluster.faults`,
and the three latent bugs this layer exposed:

* ``apply_command`` retuning by position instead of processor id;
* ``make_report`` destroying counter windows before delivery confirmation;
* the zero-interval reports of a pass firing before the first sample.

Coordinator-level fault *scenarios* (budget safety under loss, partitions,
recovery convergence) live in tests/test_failure_injection.py.
"""

import pytest

from repro.cluster.agent import NodeAgent
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.faults import (
    FAULT_SCENARIOS,
    CrashWindow,
    FaultSchedule,
    fault_scenario,
)
from repro.cluster.protocol import FrequencyCommand
from repro.errors import ClusterError
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.sim.network import Network, NetworkConfig, NetworkFaults, PartitionWindow
from repro.units import ghz, mhz


def quiet_cluster(nodes=2, procs=2, seed=0) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=seed,
    )


class TestNetworkFaults:
    def test_no_faults_try_send_equals_send(self):
        net = Network(NetworkConfig(base_latency_s=1e-4, per_byte_s=1e-8))
        assert net.try_send(1000, now_s=0.0, node_id=0) == \
            pytest.approx(net.delay_for(1000))
        assert net.messages_dropped == 0

    def test_loss_prob_one_drops_everything(self):
        net = Network(faults=NetworkFaults(loss_prob=1.0, seed=1))
        for _ in range(10):
            assert net.try_send(100, now_s=0.0, node_id=0) is None
        assert net.messages_dropped == 10
        assert net.messages_sent == 10  # still put on the wire

    def test_loss_prob_zero_drops_nothing(self):
        net = Network(faults=NetworkFaults(loss_prob=0.0, seed=1))
        assert all(net.try_send(1, now_s=0.0, node_id=0) is not None
                   for _ in range(10))

    def test_drop_pattern_deterministic_in_seed(self):
        def pattern(seed):
            f = NetworkFaults(loss_prob=0.5, seed=seed)
            return [f.drops(0, 0.0) for _ in range(64)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_jitter_deterministic_and_positive(self):
        a = NetworkFaults(jitter_sigma=0.3, seed=5)
        b = NetworkFaults(jitter_sigma=0.3, seed=5)
        factors = [a.jitter_factor() for _ in range(16)]
        assert factors == [b.jitter_factor() for _ in range(16)]
        assert all(f > 0 for f in factors)
        assert NetworkFaults(jitter_sigma=0.0, seed=5).jitter_factor() == 1.0

    def test_partition_cuts_only_named_nodes_in_window(self):
        w = PartitionWindow(1.0, 2.0, node_ids=frozenset({1}))
        f = NetworkFaults(partitions=(w,), seed=0)
        assert f.drops(1, 1.5)
        assert not f.drops(0, 1.5)      # other node unaffected
        assert not f.drops(1, 0.5)      # before the window
        assert not f.drops(1, 2.0)      # half-open interval
        assert NetworkFaults(
            partitions=(PartitionWindow(1.0, 2.0),), seed=0).drops(42, 1.5)

    def test_validation(self):
        with pytest.raises(ClusterError):
            NetworkFaults(loss_prob=1.5)
        with pytest.raises(ClusterError):
            PartitionWindow(2.0, 2.0)
        with pytest.raises(ClusterError):
            CrashWindow(node_id=0, start_s=1.0, end_s=0.5)
        with pytest.raises(ClusterError):
            CrashWindow(node_id=-1, start_s=0.0, end_s=1.0)


class TestFaultSchedule:
    def test_node_crashed_windows(self):
        plan = FaultSchedule(crashes=(
            CrashWindow(node_id=1, start_s=1.0, end_s=2.0),
        ))
        assert plan.node_crashed(1, 1.5)
        assert not plan.node_crashed(1, 2.5)
        assert not plan.node_crashed(0, 1.5)

    def test_install_attaches_network_plan(self):
        cluster = quiet_cluster(nodes=1)
        plan = fault_scenario("lossy", seed=3)
        plan.install(cluster)
        assert cluster.network.faults is plan.network

    def test_scenarios_registry(self):
        assert fault_scenario("none", seed=1) is None
        for name in FAULT_SCENARIOS:
            if name == "none":
                continue
            plan = fault_scenario(name, seed=1)
            assert isinstance(plan, FaultSchedule)
            assert plan.name == name
        with pytest.raises(ClusterError):
            fault_scenario("bogus")

    def test_scenario_deterministic_in_seed(self):
        a = fault_scenario("lossy", seed=9).network
        b = fault_scenario("lossy", seed=9).network
        assert [a.drops(0, 0.0) for _ in range(32)] == \
            [b.drops(0, 0.0) for _ in range(32)]

    def test_unknown_scenario_error_lists_descriptions(self):
        # The error must carry the catalog *descriptions*, not just names,
        # so a CLI user can pick without opening the source.
        with pytest.raises(ClusterError) as excinfo:
            fault_scenario("bogus")
        message = str(excinfo.value)
        for name, description in FAULT_SCENARIOS.items():
            assert name in message
            assert description in message

    def test_scenario_catalog_covers_every_scenario(self):
        from repro.cluster.faults import scenario_catalog
        catalog = scenario_catalog()
        for name, description in FAULT_SCENARIOS.items():
            assert f"{name} — {description}" in catalog


class TestCommandProcIds:
    """Regression: positional zip silently retuned the wrong cores."""

    def test_partial_command_applies_by_proc_id(self):
        # A node with an offline core: the coordinator's command excludes
        # it.  Pre-fix, frequencies were zipped positionally against
        # machine.cores, so (proc 0, proc 2) would have retuned cores 0
        # and 1 — core 1 getting proc 2's frequency, core 2 untouched.
        cluster = quiet_cluster(nodes=1, procs=3)
        machine = cluster.nodes[0].machine
        machine.core(1).offline = True
        agent = NodeAgent(cluster.nodes[0], seed=1)
        before_core1 = machine.core(1).frequency_setting_hz
        command = FrequencyCommand(
            node_id=0, time_s=0.0,
            freqs_hz=(mhz(650), mhz(500)), voltages=(1.0, 0.9),
            proc_ids=(0, 2),
        )
        agent.apply_command(command, 0.0)
        assert machine.core(0).frequency_setting_hz == mhz(650)
        assert machine.core(1).frequency_setting_hz == before_core1
        assert machine.core(2).frequency_setting_hz == mhz(500)

    def test_partial_command_without_proc_ids_rejected(self):
        # The legacy positional encoding is only sound at full width;
        # pre-fix a narrower command on a wider machine raised too, but a
        # same-width non-contiguous one was applied silently wrong.
        cluster = quiet_cluster(nodes=1, procs=3)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        with pytest.raises(ClusterError):
            agent.apply_command(FrequencyCommand(
                node_id=0, time_s=0.0,
                freqs_hz=(mhz(650), mhz(500)), voltages=(1.0, 0.9),
            ), 0.0)

    def test_out_of_range_proc_id_rejected(self):
        cluster = quiet_cluster(nodes=1, procs=2)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        with pytest.raises(ClusterError):
            agent.apply_command(FrequencyCommand(
                node_id=0, time_s=0.0,
                freqs_hz=(mhz(650), mhz(500)), voltages=(1.0, 0.9),
                proc_ids=(0, 2),
            ), 0.0)

    def test_command_validation(self):
        with pytest.raises(ClusterError):
            FrequencyCommand(node_id=0, time_s=0.0, freqs_hz=(ghz(1.0),),
                             voltages=(1.3,), proc_ids=(0, 1))
        with pytest.raises(ClusterError):
            FrequencyCommand(node_id=0, time_s=0.0,
                             freqs_hz=(ghz(1.0), ghz(1.0)),
                             voltages=(1.3, 1.3), proc_ids=(1, 1))
        with pytest.raises(ClusterError):
            FrequencyCommand(node_id=0, time_s=0.0, freqs_hz=(ghz(1.0),),
                             voltages=(1.3,), proc_ids=(-1,))

    def test_stale_command_ignored(self):
        # With retransmits, a delayed duplicate of an *old* decision must
        # not override a newer one.
        cluster = quiet_cluster(nodes=1, procs=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        new = FrequencyCommand(node_id=0, time_s=2.0, freqs_hz=(mhz(650),),
                               voltages=(1.0,), proc_ids=(0,))
        old = FrequencyCommand(node_id=0, time_s=1.0, freqs_hz=(ghz(1.0),),
                               voltages=(1.3,), proc_ids=(0,))
        agent.apply_command(new, 2.0)
        agent.apply_command(old, 2.5)   # late retransmit of the old pass
        assert cluster.nodes[0].machine.core(0).frequency_setting_hz == \
            mhz(650)
        # An exact duplicate of the newest command is idempotent.
        agent.apply_command(new, 2.6)
        assert cluster.nodes[0].machine.core(0).frequency_setting_hz == \
            mhz(650)


class TestReportRetention:
    """Regression: windows were destroyed before delivery confirmation."""

    def test_dropped_report_counters_not_lost(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], counter_noise_sigma=0.0, seed=1)
        sim = Simulation(cluster.machines)
        agent.attach(sim)
        sim.run_for(0.1)
        first = agent.make_report(sim.now_s)
        assert first.procs[0].instructions > 0
        # The report was dropped in flight: no confirm_report().  The next
        # report must still carry the first window's events.
        sim.run_for(0.1)
        retry = agent.make_report(sim.now_s)
        assert retry.procs[0].instructions > first.procs[0].instructions
        assert retry.procs[0].interval_s == \
            pytest.approx(2 * first.procs[0].interval_s)

    def test_confirm_drops_only_reported_samples(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], counter_noise_sigma=0.0, seed=1)
        sim = Simulation(cluster.machines)
        agent.attach(sim)
        sim.run_for(0.1)
        report = agent.make_report(sim.now_s)
        # Samples taken after the report belong to the next window even
        # when the ack arrives late.
        sim.run_for(0.05)
        agent.confirm_report()
        nxt = agent.make_report(sim.now_s)
        assert 0 < nxt.procs[0].interval_s < report.procs[0].interval_s

    def test_confirm_without_report_is_noop(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        agent.confirm_report()   # nothing pending: no-op, no error

    def test_coordinator_confirms_on_fault_free_path(self):
        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=5)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.2)   # two passes
        # Windows were confirmed each pass: a fresh report is empty.
        report = coord.agents[0].make_report(sim.now_s)
        assert report.procs[0].interval_s == pytest.approx(0.0)


class TestZeroIntervalReports:
    """A pass firing before the first sample must degrade, not divide."""

    def test_pass_at_t0_schedules_f_max(self):
        cluster = quiet_cluster(nodes=2)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=5)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        schedule = coord.run_global_pass(0.0)   # before any agent sample
        f_max = cluster.nodes[0].machine.table.f_max_hz
        assert all(a.freq_hz == f_max for a in schedule.assignments)
        assert not schedule.infeasible

    def test_t_equals_sample_period_boundary(self):
        # T == t: the tick and the sample land on the same event time.
        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(sample_period_s=0.01, schedule_period_s=0.01,
                              counter_noise_sigma=0.0),
            seed=5)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.05)
        assert coord.last_schedule is not None
        table = cluster.nodes[0].machine.table
        for entry in coord.log.schedule_entries:
            assert entry.freq_hz in table

    def test_zero_interval_views_have_no_signature(self):
        from repro.cluster.protocol import NodeReport, ProcReport

        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(cluster, seed=5)
        report = NodeReport(node_id=0, time_s=0.0, procs=(
            ProcReport(proc_id=0, instructions=5e6, cycles=4e6, n_l2=0,
                       n_l3=0, n_mem=0, l1_stall_cycles=0, halted_cycles=0,
                       interval_s=0.0, idle_signaled=False),
        ))
        views = coord._views_from_reports([report])
        assert views[0].signature is None


class TestCoordinatorAgentIndex:
    def test_duplicate_node_ids_rejected(self):
        from repro.sim.machine import SMPMachine
        from repro.sim.node import ClusterNode

        # Cluster itself rejects duplicates, so go through the
        # coordinator's own guard with a hand-built cluster.
        cluster = quiet_cluster(nodes=2)
        cluster.nodes[1] = ClusterNode(0, SMPMachine(
            MachineConfig(num_cores=2), seed=3))
        with pytest.raises(ClusterError):
            ClusterCoordinator(cluster, seed=5)

    def test_unknown_node_lookup_raises(self):
        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(cluster, seed=5)
        with pytest.raises(ClusterError):
            coord._agent_for(99)

    def test_lookup_is_by_node_id_not_position(self):
        from repro.sim.machine import SMPMachine
        from repro.sim.node import ClusterNode

        nodes = [ClusterNode(i * 10, SMPMachine(MachineConfig(num_cores=1),
                                                seed=i))
                 for i in range(3)]
        coord = ClusterCoordinator(Cluster(nodes), seed=5)
        assert coord._agent_for(20).node.node_id == 20


class TestAgentCrash:
    def test_manual_crash_stops_sampling_and_commands(self):
        cluster = quiet_cluster(nodes=1)
        node = cluster.nodes[0]
        agent = NodeAgent(node, counter_noise_sigma=0.0, seed=1)
        sim = Simulation(cluster.machines)
        agent.attach(sim)
        sim.run_for(0.05)
        node.crash()
        assert agent.crashed(sim.now_s)
        sim.run_for(0.1)
        node.recover()
        sim.run_for(0.03)
        report = agent.make_report(sim.now_s)
        # Pre-crash and in-crash samples are gone; only the post-recovery
        # window (3 x 10 ms samples) remains.
        assert report.procs[0].interval_s == pytest.approx(0.03, abs=1e-6)

    def test_scheduled_crash_window(self):
        cluster = quiet_cluster(nodes=1)
        plan = FaultSchedule(crashes=(
            CrashWindow(node_id=0, start_s=0.02, end_s=0.04),))
        agent = NodeAgent(cluster.nodes[0], counter_noise_sigma=0.0,
                          faults=plan, seed=1)
        assert not agent.crashed(0.01)
        assert agent.crashed(0.03)
        assert not agent.crashed(0.05)
