"""Continuous-frequency scheduler and voltage selection."""

import pytest

from repro.core.continuous import ContinuousFrequencyScheduler
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.core.voltage import VoltageSelector, default_vf_curve
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE
from repro.power.vf_curve import LinearVFCurve
from repro.units import ghz, mhz


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


def views(*ratios):
    return [ProcessorView(node_id=0, proc_id=i, signature=sig(r))
            for i, r in enumerate(ratios)]


class TestContinuousScheduler:
    def test_agrees_with_discrete_within_one_rung(self):
        discrete = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        continuous = ContinuousFrequencyScheduler(POWER4_TABLE, epsilon=0.04)
        for ratio in (5.0, 1.0, 0.3, 0.12, 0.075, 0.05):
            f_d, _ = discrete.epsilon_constrained(sig(ratio))
            f_c, _ = continuous.epsilon_constrained(sig(ratio))
            steps = abs(POWER4_TABLE.index_of(f_d)
                        - POWER4_TABLE.index_of(f_c))
            assert steps <= 1, f"ratio {ratio}: {f_d} vs {f_c}"

    def test_quantize_up_never_exceeds_epsilon(self):
        continuous = ContinuousFrequencyScheduler(POWER4_TABLE, epsilon=0.04,
                                                  quantize="up")
        for ratio in (1.0, 0.3, 0.12, 0.075):
            f, loss = continuous.epsilon_constrained(sig(ratio))
            assert loss < 0.04 + 1e-9

    def test_ideal_vector_is_continuous(self):
        continuous = ContinuousFrequencyScheduler(POWER4_TABLE, epsilon=0.04)
        ideal = continuous.ideal_frequency_vector(views(0.075, 0.12))
        assert all(POWER4_TABLE.f_min_hz <= f <= POWER4_TABLE.f_max_hz
                   for f in ideal)
        # Raw ideals generally fall between rungs.
        assert any(f not in POWER4_TABLE for f in ideal)

    def test_idle_and_unknown_views(self):
        continuous = ContinuousFrequencyScheduler(POWER4_TABLE, epsilon=0.04)
        vs = [
            ProcessorView(node_id=0, proc_id=0, signature=None),
            ProcessorView(node_id=0, proc_id=1, signature=sig(1.0),
                          idle_signaled=True),
        ]
        ideal = continuous.ideal_frequency_vector(vs)
        assert ideal[0] == POWER4_TABLE.f_max_hz
        assert ideal[1] == POWER4_TABLE.f_min_hz
        schedule = continuous.schedule(vs)
        assert schedule.frequency_vector_hz()[1] == mhz(250)

    def test_power_pass_shared_with_discrete(self):
        continuous = ContinuousFrequencyScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = continuous.schedule(views(10.0, 10.0),
                                       power_limit_w=200.0)
        assert schedule.total_power_w <= 200.0

    def test_bad_quantize_mode(self):
        with pytest.raises(ValueError):
            ContinuousFrequencyScheduler(POWER4_TABLE, quantize="down")


class TestVoltageSelector:
    def test_default_curve_cached_and_plausible(self):
        curve = default_vf_curve()
        assert curve is default_vf_curve()
        assert curve.min_voltage(ghz(1.0)) == pytest.approx(1.3, abs=0.01)
        assert curve.min_voltage(mhz(250)) < curve.min_voltage(ghz(1.0))

    def test_per_processor_override(self):
        selector = VoltageSelector()
        weak_part = LinearVFCurve(f_min_hz=mhz(250), v_min=0.9,
                                  f_max_hz=ghz(1.0), v_max=1.4)
        selector.set_processor_curve(0, 2, weak_part)
        normal = selector.min_voltage(0, 0, ghz(1.0))
        weak = selector.min_voltage(0, 2, ghz(1.0))
        assert weak == pytest.approx(1.4)
        assert normal == pytest.approx(1.3, abs=0.01)

    def test_override_scoped_to_processor(self):
        selector = VoltageSelector()
        selector.set_processor_curve(
            1, 0, LinearVFCurve(f_min_hz=mhz(250), v_min=0.9,
                                f_max_hz=ghz(1.0), v_max=1.4))
        assert selector.min_voltage(0, 0, ghz(1.0)) == pytest.approx(
            1.3, abs=0.01)
