"""The synthetic benchmark and the application models."""

import pytest

from repro import constants
from repro.errors import WorkloadError
from repro.model.latency import POWER4_LATENCIES
from repro.model.perf import perf_loss
from repro.units import ghz, mhz
from repro.workloads.profiles import ALL_PROFILES, profile_by_name
from repro.workloads.synthetic import (
    SyntheticBenchmark,
    synthetic_phase,
    two_phase_benchmark,
)


def desired_frequency(signature, epsilon=constants.DEFAULT_EPSILON):
    """Lowest 50 MHz ladder point with predicted loss < epsilon."""
    for f_mhz in constants.POWER4_FREQUENCIES_MHZ:
        if perf_loss(signature, ghz(1.0), mhz(f_mhz)) < epsilon:
            return f_mhz
    return 1000


class TestSyntheticPhase:
    def test_intensity_bounds_memory_rate(self):
        pure = synthetic_phase(1.0, instructions=1.0)
        heavy = synthetic_phase(0.0, instructions=1.0)
        assert pure.n_mem_per_instr < 0.001
        assert heavy.n_mem_per_instr > 0.1

    def test_duration_sets_instructions(self):
        p = synthetic_phase(1.0, duration_s=2.0)
        t = p.throughput(POWER4_LATENCIES, ghz(1.0))
        assert p.instructions == pytest.approx(2.0 * t)

    def test_exactly_one_length_spec(self):
        with pytest.raises(WorkloadError):
            synthetic_phase(0.5)
        with pytest.raises(WorkloadError):
            synthetic_phase(0.5, duration_s=1.0, instructions=100)

    def test_full_intensity_desires_1000(self):
        sig = synthetic_phase(1.0, instructions=1.0).true_signature(
            POWER4_LATENCIES)
        assert desired_frequency(sig) == 1000

    def test_20pct_intensity_saturates_below_500(self):
        # The Figure 6 memory phase must not lose performance at 500 MHz.
        sig = synthetic_phase(0.2, instructions=1.0).true_signature(
            POWER4_LATENCIES)
        assert perf_loss(sig, ghz(1.0), mhz(500)) < 0.02

    def test_intensity_monotone_in_desired_frequency(self):
        desires = [
            desired_frequency(
                synthetic_phase(r, instructions=1.0).true_signature(
                    POWER4_LATENCIES))
            for r in (1.0, 0.75, 0.5, 0.25)
        ]
        assert desires == sorted(desires, reverse=True)


class TestSyntheticBenchmark:
    def test_job_structure_with_init_exit(self):
        bench = SyntheticBenchmark(intensity_a=1.0, intensity_b=0.2)
        job = bench.job(repeats=2)
        names = [p.name for p in job.phases]
        assert names == ["init", "phase-a", "phase-b", "phase-a", "phase-b",
                         "exit"]

    def test_loop_mode_drops_init_exit(self):
        bench = SyntheticBenchmark(intensity_a=1.0, intensity_b=0.2)
        job = bench.job(loop=True)
        assert [p.name for p in job.phases] == ["phase-a", "phase-b"]

    def test_two_phase_shorthand(self):
        bench = two_phase_benchmark(0.9, 0.1, duration_a_s=0.5)
        assert bench.intensity_a == 0.9
        assert bench.duration_a_s == 0.5

    def test_bad_repeats(self):
        with pytest.raises(WorkloadError):
            two_phase_benchmark(1.0, 0.0).job(repeats=0)

    def test_init_phase_is_memory_bound(self):
        bench = two_phase_benchmark(1.0, 0.0)
        init = bench.init_phase()
        exit_ = bench.exit_phase()
        assert init.n_mem_per_instr > exit_.n_mem_per_instr


class TestApplicationProfiles:
    def test_all_four_present(self):
        assert set(ALL_PROFILES) == {"gzip", "gap", "mcf", "health"}

    def test_lookup_and_error(self):
        assert profile_by_name("mcf").name == "mcf"
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            profile_by_name("specjbb")

    def test_job_materialisation(self):
        job = profile_by_name("gzip").job(body_repeats=2)
        assert job.phases[0].name == "gzip-load"
        assert sum(1 for p in job.phases if p.name == "gzip-huffman") == 2

    def test_loop_mode_omits_setup(self):
        job = profile_by_name("mcf").job(loop=True)
        assert all(p.name != "mcf-parse" for p in job.phases)

    def test_nominal_duration(self):
        p = profile_by_name("health")
        d = p.nominal_duration_s(body_repeats=2)
        assert d == pytest.approx(0.30 + 2 * (2.20 + 0.30 + 0.15))

    @pytest.mark.parametrize("app,lo,hi", [
        ("gzip", 900, 1000),
        ("gap", 850, 1000),
        ("mcf", 600, 700),
        ("health", 600, 700),
    ])
    def test_dominant_phase_desired_frequency(self, app, lo, hi):
        """Each model's longest phase desires the Figure 8 modal band."""
        profile = profile_by_name(app)
        specs = max(profile.body, key=lambda s: s.duration_at_nominal_s)
        phase = specs.build(POWER4_LATENCIES, ghz(1.0))
        desired = desired_frequency(phase.true_signature(POWER4_LATENCIES))
        assert lo <= desired <= hi

    def test_memory_apps_saturate_cpu_apps_do_not(self):
        f_ref, f = ghz(1.0), mhz(750)
        for app, saturated in (("mcf", True), ("health", True),
                               ("gzip", False), ("gap", False)):
            profile = profile_by_name(app)
            spec = max(profile.body, key=lambda s: s.duration_at_nominal_s)
            sig = spec.build(POWER4_LATENCIES, ghz(1.0)).true_signature(
                POWER4_LATENCIES)
            loss = perf_loss(sig, f_ref, f)
            assert (loss < 0.03) == saturated
