"""The fvsst daemon end to end on the simulated machine."""

import pytest

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.errors import SchedulingError
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import two_phase_benchmark


def quiet_machine(num_cores=1, **core_kwargs) -> SMPMachine:
    cfg = MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=0.0, **core_kwargs),
    )
    return SMPMachine(cfg, seed=0)


def quiet_daemon(machine, **cfg_kwargs) -> FvsstDaemon:
    defaults = dict(counter_noise_sigma=0.0,
                    overhead=OverheadModel(enabled=False))
    defaults.update(cfg_kwargs)
    return FvsstDaemon(machine, DaemonConfig(**defaults), seed=1)


class TestSchedulingLoop:
    def test_first_decision_after_one_period(self):
        m = quiet_machine()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.099)
        assert d.last_schedule is None
        sim.run_for(0.002)
        assert d.last_schedule is not None

    def test_memory_bound_work_driven_to_saturation(self):
        m = quiet_machine()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        res = d.log.frequency_residency(0, 0)
        modal = max(res, key=res.get)
        assert modal == mhz(650)

    def test_sampling_cadence(self):
        m = quiet_machine()
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        # Slight overshoot absorbs float drift in the periodic chain.
        sim.run_for(1.005)
        assert len(d.log.samples_of(0, 0)) == 100   # t = 10 ms
        assert len(d.log.schedules_of(0, 0)) == 10  # T = 100 ms

    def test_t_equals_n_times_t(self):
        cfg = DaemonConfig(sample_period_s=0.02, schedule_every=5)
        assert cfg.schedule_period_s == pytest.approx(0.1)

    def test_budget_respected_in_steady_state(self):
        m = quiet_machine(num_cores=4)
        for i, app in enumerate(("gzip", "gap", "mcf", "health")):
            m.assign(i, profile_by_name(app).job(loop=True))
        d = quiet_daemon(m, power_limit_w=294.0)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(2.0)
        assert m.cpu_power_w() <= 294.0 + 1e-9
        assert d.last_schedule.total_power_w <= 294.0

    def test_frequencies_are_operating_points(self, table):
        m = quiet_machine()
        m.assign(0, two_phase_benchmark(1.0, 0.2).job(loop=True))
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        for entry in d.log.schedules_of(0, 0):
            assert entry.freq_hz in table


class TestPowerLimitTrigger:
    def test_immediate_rescheduling(self):
        m = quiet_machine(num_cores=4)
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.55)   # mid-window
        before = m.cpu_power_w()
        d.set_power_limit(294.0, sim.now_s)
        assert m.cpu_power_w() <= 294.0
        assert before > 294.0

    def test_trigger_recorded_in_history(self):
        m = quiet_machine()
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        d.set_power_limit(75.0, 0.0)
        assert len(d.triggers.history) == 1

    def test_limit_lift_restores_eps_frequencies(self):
        m = quiet_machine()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = quiet_daemon(m, power_limit_w=35.0)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        capped = m.core(0).frequency_setting_hz
        d.set_power_limit(None, sim.now_s)
        sim.run_for(0.5)
        lifted = m.core(0).frequency_setting_hz
        assert capped <= mhz(500)
        assert lifted >= mhz(900)

    def test_infeasible_budget_floors_and_flags(self):
        m = quiet_machine(num_cores=4)
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        d.set_power_limit(20.0, 0.0)   # below the 4 x 9 W floor
        assert d.last_schedule.infeasible
        assert m.frequency_vector_hz() == [mhz(250)] * 4


class TestIdleDetection:
    def test_disabled_by_default_idle_runs_fast(self):
        m = quiet_machine(num_cores=2)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        # Hot idle looks CPU-bound: scheduled at the top of the ladder.
        assert m.core(1).frequency_setting_hz >= mhz(950)

    def test_enabled_pins_idle_to_floor(self):
        m = quiet_machine(num_cores=2, idle_detection=True)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = quiet_daemon(m, idle_detection=True)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        assert m.core(1).frequency_setting_hz == mhz(250)
        assert m.core(0).frequency_setting_hz >= mhz(900)

    def test_idle_exit_restores_scheduling(self):
        m = quiet_machine(num_cores=1, idle_detection=True)
        d = quiet_daemon(m, idle_detection=True)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)
        assert m.core(0).frequency_setting_hz == mhz(250)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        sim.run_for(0.5)
        assert m.core(0).frequency_setting_hz >= mhz(900)


class TestOverheadModel:
    def test_overhead_steals_time_from_host_core(self):
        m = quiet_machine()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = quiet_daemon(m, overhead=OverheadModel(), daemon_core=0)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        assert m.core(0).overhead_executed_s > 0
        # Bounded: well under 3% of wall time (Figure 4's ceiling).
        assert m.core(0).overhead_executed_s < 0.03

    def test_disabled_overhead_steals_nothing(self):
        m = quiet_machine()
        d = quiet_daemon(m)   # overhead disabled by default fixture
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        assert m.core(0).overhead_executed_s == 0.0


class TestValidation:
    def test_daemon_core_bounds(self):
        m = quiet_machine()
        with pytest.raises(SchedulingError):
            FvsstDaemon(m, DaemonConfig(daemon_core=5))

    def test_double_attach_rejected(self):
        m = quiet_machine()
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        with pytest.raises(SchedulingError):
            d.attach(sim)

    def test_bad_schedule_every(self):
        with pytest.raises(SchedulingError):
            DaemonConfig(schedule_every=0)

    def test_with_config_derives_fresh_daemon(self):
        m = quiet_machine()
        d = quiet_daemon(m)
        d2 = d.with_config(epsilon=0.1)
        assert d2.config.epsilon == 0.1
        assert d2 is not d and d2.machine is m


class TestHaltedCycleIdleInference:
    """Section 5: halting hardware needs no idle indicator."""

    def _halting_machine(self):
        from repro.sim.idle import IdleStyle
        return quiet_machine(num_cores=2, idle_style=IdleStyle.HALT)

    def test_halted_core_inferred_idle_and_floored(self):
        m = self._halting_machine()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = quiet_daemon(m, halted_idle_threshold=0.9)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        # Core 1 halts its whole window: inferred idle, pinned at floor
        # without any explicit signal.
        assert m.core(1).frequency_setting_hz == mhz(250)
        assert m.core(0).frequency_setting_hz >= mhz(900)

    def test_disabled_by_default(self):
        m = self._halting_machine()
        d = quiet_daemon(m)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)
        # Without the threshold the halted core has no signature and is
        # conservatively kept at f_max.
        assert m.core(1).frequency_setting_hz == ghz(1.0)

    def test_busy_core_never_misclassified(self):
        m = self._halting_machine()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = quiet_daemon(m, halted_idle_threshold=0.9)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        # The busy core runs flat out: halted fraction 0, scheduled at its
        # saturation rung, not the floor.
        assert m.core(0).frequency_setting_hz == mhz(650)

    def test_threshold_validation(self):
        with pytest.raises(SchedulingError):
            DaemonConfig(halted_idle_threshold=0.0)
        with pytest.raises(SchedulingError):
            DaemonConfig(halted_idle_threshold=1.5)


class TestMeasuredFeedback:
    """Section 5's measurement-driven compliance loop."""

    def _leaky_machine(self, scale=1.3, seed=0):
        m = quiet_machine(num_cores=2)
        for core in m.cores:
            core.power_scale = scale
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.assign(1, profile_by_name("gap").job(loop=True))
        return m

    def test_without_feedback_leaky_parts_breach(self):
        m = self._leaky_machine()
        d = quiet_daemon(m, power_limit_w=200.0)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(2.0)
        # Believed total fits; measured draw does not.
        assert d.last_schedule.total_power_w <= 200.0
        assert m.cpu_power_w() > 200.0

    def test_feedback_converges_under_the_limit(self):
        m = self._leaky_machine()
        d = quiet_daemon(m, power_limit_w=200.0, measured_feedback=True)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        assert m.cpu_power_w() <= 200.0 + 1e-9

    def test_feedback_relaxes_when_headroom_appears(self):
        m = self._leaky_machine()
        d = quiet_daemon(m, power_limit_w=200.0, measured_feedback=True)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        tightened = d._planning_limit_w
        assert tightened < 200.0
        # Lift the variation: the loop should creep back toward the limit.
        for core in m.cores:
            core.power_scale = 0.7
        sim.run_for(3.0)
        assert d._planning_limit_w > tightened

    def test_limit_change_resets_the_loop(self):
        m = self._leaky_machine()
        d = quiet_daemon(m, power_limit_w=200.0, measured_feedback=True)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(2.0)
        d.set_power_limit(300.0, sim.now_s)
        # The internal planning limit restarted at the new hard limit and
        # must not exceed it.
        assert d._planning_limit_w is None or d._planning_limit_w <= 300.0

    def test_gain_validation(self):
        with pytest.raises(SchedulingError):
            DaemonConfig(feedback_gain=0.0)
        with pytest.raises(SchedulingError):
            DaemonConfig(feedback_relax=1.5)
