"""The platform constants must encode the paper's published values."""

import pytest

from repro import constants


class TestLatencies:
    def test_l1_is_the_quoted_midpoint(self):
        assert constants.L1_LATENCY_CYCLES == 4.5

    def test_published_cycle_counts(self):
        assert constants.L2_LATENCY_CYCLES == 15.0
        assert constants.L3_LATENCY_CYCLES == 113.0
        assert constants.MEM_LATENCY_CYCLES == 393.0

    def test_cycles_at_nominal_equal_seconds_in_ns(self):
        # At the nominal 1 GHz, N cycles == N nanoseconds.
        assert constants.L2_LATENCY_S == pytest.approx(15e-9)
        assert constants.MEM_LATENCY_S == pytest.approx(393e-9)


class TestPowerTable:
    def test_sixteen_points(self):
        assert len(constants.POWER4_POWER_TABLE_W) == 16

    def test_published_endpoints(self):
        assert constants.POWER4_POWER_TABLE_W[250] == 9.0
        assert constants.POWER4_POWER_TABLE_W[1000] == 140.0

    def test_spot_values_from_table1(self):
        assert constants.POWER4_POWER_TABLE_W[500] == 35.0
        assert constants.POWER4_POWER_TABLE_W[650] == 57.0
        assert constants.POWER4_POWER_TABLE_W[750] == 75.0
        assert constants.POWER4_POWER_TABLE_W[900] == 109.0

    def test_50mhz_ladder(self):
        freqs = constants.POWER4_FREQUENCIES_MHZ
        assert freqs[0] == 250 and freqs[-1] == 1000
        assert all(b - a == 50 for a, b in zip(freqs, freqs[1:]))

    def test_table_is_readonly(self):
        with pytest.raises(TypeError):
            constants.POWER4_POWER_TABLE_W[250] = 1.0  # type: ignore[index]

    def test_worked_example_ladder(self):
        assert constants.SCHEDULER_FREQUENCIES_MHZ == (600, 700, 800, 900,
                                                       1000)


class TestMotivatingExample:
    def test_non_cpu_power(self):
        # 746 W system minus four 140 W CPUs.
        assert constants.NON_CPU_POWER_W == pytest.approx(186.0)

    def test_cpu_fraction_consistent(self):
        cpu = 4 * 140.0
        assert cpu / constants.SYSTEM_TOTAL_POWER_W == pytest.approx(
            constants.CPU_POWER_FRACTION, abs=0.01
        )

    def test_example_budget_is_294(self):
        # 480 W surviving supply minus non-CPU power = the Section 5 budget.
        assert constants.EXAMPLE_CPU_BUDGET_W == pytest.approx(294.0)


class TestSchedulerDefaults:
    def test_periods_match_section8(self):
        assert constants.DEFAULT_DISPATCH_PERIOD_S == pytest.approx(0.010)
        assert constants.DEFAULT_SCHEDULE_PERIOD_S == pytest.approx(0.100)

    def test_t_is_ten_times_t(self):
        ratio = (constants.DEFAULT_SCHEDULE_PERIOD_S
                 / constants.DEFAULT_DISPATCH_PERIOD_S)
        assert ratio == pytest.approx(10.0)

    def test_idle_loop_ipc(self):
        assert constants.IDLE_LOOP_IPC == pytest.approx(1.3)

    def test_epsilon_usable_on_the_ladder(self):
        # One 50 MHz step from 1000 MHz costs a pure-CPU workload 5%;
        # epsilon must sit below that for the top step to be sticky and
        # above zero to admit any reduction at all.
        assert 0.0 < constants.DEFAULT_EPSILON < 0.05
