"""The experiment harness: every artifact regenerates with the right shape.

Fast mode keeps runtimes test-suite friendly; shapes (who wins, ordering,
crossovers) are asserted, not absolute values.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import REGISTRY, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        required = {"table1", "table2", "table3", "fig1", "fig4", "fig5",
                    "fig6", "fig7", "fig8", "fig9", "fig10",
                    "worked_example"}
        assert required <= set(REGISTRY)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("table99")


class TestTable1:
    def test_matches_paper_table(self):
        r = run_experiment("table1")
        table = r.tables[0]
        freqs = table.column("Frequency (MHz)")
        powers = table.column("Power (W)")
        assert freqs[0] == 250 and powers[0] == 9.0
        assert freqs[-1] == 1000 and powers[-1] == 140.0
        assert r.scalars["fit_max_rel_error"] < 0.12


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table2", fast=True)

    def test_idle_cpus_have_small_deviation(self, result):
        table = result.tables[0]
        for cpu in ("CPU0", "CPU1", "CPU2"):
            assert all(v < 0.05 for v in table.column(cpu))

    def test_star_column_removes_edge_error(self, result):
        table = result.tables[0]
        cpu3 = table.column("CPU3")
        starred = table.column("CPU3*")
        assert all(s <= c for s, c in zip(starred, cpu3))
        assert all(s < 0.05 for s in starred)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table3", fast=True)

    def _row(self, result, label):
        table = result.tables[0]
        for row in table.rows:
            if row[0] == label:
                return dict(zip(table.headers[1:], row[1:]))
        raise AssertionError(f"no row {label}")

    def test_memory_bound_wins_at_every_cap(self, result):
        for cap in (75, 35):
            row = self._row(result, f"Perf @ {cap}W")
            assert row["mcf"] > row["gzip"]
            assert row["health"] > row["gap"]

    def test_memory_bound_unhurt_at_75w(self, result):
        row = self._row(result, "Perf @ 75W")
        assert row["mcf"] >= 0.95 and row["health"] >= 0.95
        assert row["gzip"] <= 0.88 and row["gap"] <= 0.90

    def test_cpu_bound_halved_at_35w(self, result):
        row = self._row(result, "Perf @ 35W")
        assert 0.45 <= row["gzip"] <= 0.70
        assert 0.45 <= row["gap"] <= 0.72

    def test_memory_bound_energy_savings_even_uncapped(self, result):
        row = self._row(result, "Energy @ 140W")
        assert row["mcf"] < 0.65 and row["health"] < 0.65
        assert row["gzip"] > 0.85   # CPU-bound saves little uncapped

    def test_energy_monotone_in_cap(self, result):
        for app in ("gzip", "gap", "mcf", "health"):
            energies = [self._row(result, f"Energy @ {c}W")[app]
                        for c in (140, 75, 35)]
            assert energies[0] >= energies[1] >= energies[2]


class TestFig1:
    def test_saturation_ordering(self):
        r = run_experiment("fig1")
        fig = r.series[0]
        # At 500 MHz, the memory-heavy curve retains most of its
        # normalised throughput while the pure CPU curve is at 0.5.
        idx = fig.x.index(500)
        # "100%" still has a residual memory trickle, so it sits just
        # above the perfectly linear 0.5.
        assert fig.y("cpu=100%")[idx] == pytest.approx(0.52, abs=0.04)
        assert fig.y("cpu=0%")[idx] > 0.95
        # Monotone family: heavier memory -> flatter curve.
        order = [fig.y(f"cpu={p}%")[idx] for p in (100, 75, 50, 25, 0)]
        assert order == sorted(order)

    def test_saturation_frequencies_reported(self):
        r = run_experiment("fig1")
        assert any(k.startswith("f_sat") for k in r.scalars)


class TestFig4:
    def test_overhead_bounded(self):
        r = run_experiment("fig4", fast=True)
        assert r.scalars["max_impact_fraction"] < 0.08
        impacts = r.series[0].y("throughput_impact_fraction")
        assert all(v > -0.02 for v in impacts)


class TestFig5:
    def test_frequency_tracks_ipc(self):
        r = run_experiment("fig5", fast=True)
        assert (r.scalars["mean_freq_high_ipc_mhz"]
                > r.scalars["mean_freq_low_ipc_mhz"] + 100)


class TestFig6:
    def test_memory_phase_flat_cpu_phase_degrades(self):
        r = run_experiment("fig6", fast=True)
        assert r.scalars["mem_phase_at_min_cap"] > 0.95
        assert r.scalars["cpu_phase_at_min_cap"] < 0.75
        cpu_curve = r.series[0].y("cpu_phase_normalised")
        assert list(cpu_curve) == sorted(cpu_curve, reverse=True)


class TestFig7:
    def test_progressive_clipping(self):
        r = run_experiment("fig7", fast=True)
        p100 = r.series[0].y("phase100_normalised")
        p75 = r.series[0].y("phase75_normalised")
        # At 75 W only the 100% phase suffers; at 35 W both phases pin
        # at the power-constrained frequency (the 75% phase loses only a
        # little there because it is nearly saturated at 500 MHz).
        assert p100[1] < 0.9 and p75[1] > 0.9
        assert p100[2] < p100[1]
        assert p75[2] < 1.0
        modes = {row[0]: (row[1], row[2]) for row in r.tables[0].rows}
        assert modes[35] == (500, 500)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig8", fast=True)

    def test_modal_frequencies(self, result):
        s = result.scalars
        assert s["gzip@1000_modal_mhz"] >= 950
        assert s["gzip@750_modal_mhz"] == 750
        assert s["gzip@500_modal_mhz"] == 500
        assert s["mcf@1000_modal_mhz"] == 650
        assert s["mcf@750_modal_mhz"] == 650   # unaffected by the cap
        assert s["mcf@500_modal_mhz"] == 500

    def test_residency_fractions_sum_to_one(self, result):
        for table in result.tables:
            by_cap: dict[int, float] = {}
            for cap, _freq, share in table.rows:
                by_cap[cap] = by_cap.get(cap, 0.0) + share
            for total in by_cap.values():
                assert total == pytest.approx(1.0, abs=0.02)


class TestFig9And10:
    def test_actual_never_exceeds_cap(self):
        r = run_experiment("fig9", fast=True)
        assert r.scalars["max_actual_mhz"] <= 750
        assert r.scalars["fraction_cap_binding"] > 0.5

    def test_zoom_is_a_slice(self):
        full = run_experiment("fig9", fast=True)
        zoom = run_experiment("fig10", fast=True)
        assert len(zoom.series[0].x) < len(full.series[0].x)
        assert zoom.scalars["max_actual_mhz"] <= 750


class TestWorkedExample:
    def test_power_totals(self):
        r = run_experiment("worked_example")
        assert r.scalars["t0_total_power_w"] == pytest.approx(289.0)
        assert r.scalars["t1_total_power_w"] == pytest.approx(282.0)

    def test_t0_vectors(self):
        r = run_experiment("worked_example")
        t0 = r.tables[0]
        assert t0.column("eps_freq_ghz") == [1.0, 0.7, 0.8, 0.8]
        assert t0.column("actual_freq_ghz") == [0.9, 0.6, 0.7, 0.7]
        assert t0.column("power_w") == [109.0, 48.0, 66.0, 66.0]


class TestFailover:
    def test_fvsst_prevents_cascade(self):
        r = run_experiment("failover", fast=True)
        assert r.scalars["fvsst_response_s"] < r.scalars["deadline_s"]
        rows = {row[0]: row for row in r.tables[0].rows}
        assert rows["fvsst"][2] == 0    # cascades
        assert rows["none"][2] >= 1


class TestClusterCap:
    def test_fvsst_beats_uniform_at_equal_budget(self):
        r = run_experiment("cluster_cap", fast=True)
        assert (r.scalars["fvsst_norm_throughput"]
                > r.scalars["uniform_norm_throughput"])


class TestAblations:
    def test_epsilon_sweep_tradeoff(self):
        r = run_experiment("ablation_epsilon", fast=True)
        perf = r.tables[0].column("norm_performance")
        energy = r.tables[0].column("norm_energy")
        assert energy[0] > energy[-1]     # bigger eps, less energy
        assert perf[0] > perf[-1]         # ... and less performance

    def test_predictor_variant_ordering(self):
        r = run_experiment("ablation_predictor")
        err_counter = r.tables[0].column("err_counter")
        err_alpha = r.tables[0].column("err_alpha")
        assert all(c <= a + 1e-12 for c, a in zip(err_counter, err_alpha))
        assert all(r.tables[0].column("covers_latency_variation"))

    def test_policy_comparison_fvsst_wins(self):
        r = run_experiment("ablation_policies", fast=True)
        rows = {row[0]: row[1] for row in r.tables[0].rows}
        assert rows["fvsst"] > rows["uniform"]
        assert rows["fvsst"] > rows["powerdown"]


class TestThermal:
    def test_fvsst_respects_junction_limit(self):
        r = run_experiment("thermal", fast=True)
        rows = {row[0]: row for row in r.tables[0].rows}
        limit = rows["fvsst"][2]
        assert rows["fvsst"][1] <= limit            # peak under limit
        assert rows["fvsst"][3] == 0.0              # never over
        assert rows["none"][1] > rows["fvsst"][1]   # unmanaged runs hotter

    def test_managed_power_reduced(self):
        r = run_experiment("thermal", fast=True)
        rows = {row[0]: row for row in r.tables[0].rows}
        assert rows["fvsst"][4] < rows["none"][4]


class TestServerDemand:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("server_demand", fast=True)

    def test_fvsst_saves_energy_at_similar_latency(self, result):
        rows = {row[0]: row for row in result.tables[0].rows}
        assert rows["fvsst"][1] < 0.8                 # energy saved
        assert rows["fvsst"][2] < 2 * rows["none"][2]  # latency comparable

    def test_hot_idle_pathology(self, result):
        # Without idle detection on a hot-idling part, savings vanish.
        assert result.scalars["hot_noidle_norm_energy"] > 0.9

    def test_utilization_trades_latency_for_energy(self, result):
        rows = {row[0]: row for row in result.tables[0].rows}
        assert rows["utilization"][1] < rows["fvsst"][1]
        assert rows["utilization"][2] > rows["fvsst"][2]


class TestDaemonDesignAblation:
    def test_multithreaded_reduces_bench_core_overhead(self):
        r = run_experiment("ablation_daemon", fast=True)
        rows = {row[0]: row for row in r.tables[0].rows}
        single = rows["single-threaded"]
        multi = rows["multi-threaded"]
        assert multi[3] < single[3]        # stolen on bench core
        assert multi[1] <= single[1] + 1e-3  # throughput impact


class TestResponseTime:
    def test_trigger_beats_timer_beats_deadline(self):
        r = run_experiment("response_time", fast=True)
        assert r.scalars["trigger_response_s"] < 0.05
        assert r.scalars["cluster_response_s"] < 0.1
        worst = r.scalars["worst_timer_response_s"]
        assert 0.5 < worst <= 1.0   # T = 1 s discovery grazes DeltaT
