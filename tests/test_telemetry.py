"""Telemetry primitives: metrics, tracing, events, exporters.

Covers the satellite checklist explicitly: histogram bucket edges,
counter overflow behavior, concurrent (threaded) use of a shared
registry, and the JSONL exporter round-trip (JSONL → parse → same
metrics).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_FREQUENCY_CHANGE,
    EventBus,
    JsonlSink,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    Tracer,
    events_table,
    get_telemetry,
    prometheus_text,
    read_jsonl,
    registry_from_snapshot,
    set_telemetry,
    summary_table,
    telemetry_report,
    telemetry_snapshot,
    use_telemetry,
    write_metrics_jsonl,
)


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("requests_total")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(TelemetryError, match="negative"):
            c.inc(-1)

    def test_no_overflow_past_2_64(self):
        """Counters never wrap: arbitrary-precision past any machine word."""
        c = MetricsRegistry().counter("big_total")
        c.inc(2**63 - 1)
        c.inc(2**63 - 1)
        c.inc(12)
        assert c.value == 2**64 + 10
        c.inc(2**100)
        assert c.value == 2**100 + 2**64 + 10  # exact, not saturated

    def test_float_increments(self):
        c = MetricsRegistry().counter("seconds_total")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("power_watts")
        g.set(100.0)
        g.inc(5.0)
        g.dec(2.5)
        assert g.value == pytest.approx(102.5)


class TestHistogram:
    def test_bucket_edges_are_le(self):
        """A value exactly on an upper bound lands in that bucket."""
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)   # == first edge -> bucket 0
        h.observe(1.5)   # bucket 1
        h.observe(2.0)   # == second edge -> bucket 1
        h.observe(5.0)   # == third edge -> bucket 2
        h.observe(5.0001)  # +Inf bucket
        assert h.bucket_counts() == (1, 2, 1, 1)
        assert h.cumulative_counts() == (1, 3, 4, 5)
        assert h.count == 5
        assert h.sum == pytest.approx(1.0 + 1.5 + 2.0 + 5.0 + 5.0001)

    def test_below_first_edge(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        h.observe(0.0)
        h.observe(-3.0)
        assert h.bucket_counts() == (2, 0)

    def test_mean(self):
        h = MetricsRegistry().histogram("lat", buckets=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_invalid_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="at least one"):
            registry.histogram("a", buckets=())
        with pytest.raises(TelemetryError, match="increasing"):
            registry.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(TelemetryError, match="increasing"):
            registry.histogram("c", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError, match="finite"):
            registry.histogram("d", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x")

    def test_kind_conflict_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"node": "0"})
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x", labels={"node": "1"})

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        registry.histogram("h", buckets=(1.0, 2.0))  # same -> fine
        with pytest.raises(TelemetryError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_name(self):
        with pytest.raises(TelemetryError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels={"node": "0"})
        b = registry.counter("x", labels={"node": "1"})
        assert a is not b
        a.inc(1)
        b.inc(2)
        snap = registry.snapshot()
        values = {tuple(s["labels"].items()): s["value"]
                  for s in snap["x"]["series"]}
        assert values == {(("node", "0"),): 1, (("node", "1"),): 2}

    def test_get_without_create(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        c = registry.counter("yes")
        assert registry.get("yes") is c

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0


class TestConcurrency:
    def test_threaded_counters_and_histograms_are_exact(self):
        """The daemon_mt design hammers one registry from many threads."""
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        hist = registry.histogram("lat", buckets=(0.5, 1.5))
        n_threads, n_iters = 8, 2500

        def worker(tid: int) -> None:
            for i in range(n_iters):
                counter.inc()
                hist.observe((tid + i) % 2)  # alternates 0 and 1

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_iters
        assert hist.count == n_threads * n_iters
        assert sum(hist.bucket_counts()) == n_threads * n_iters

    def test_threaded_tracer_keeps_per_thread_nesting(self):
        tracer = Tracer()
        errors: list[str] = []

        def worker() -> None:
            for _ in range(200):
                with tracer.span("outer") as outer:
                    with tracer.span("inner") as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append("broken nesting")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert tracer.finished_total == 4 * 200 * 2


class TestTracer:
    def test_nesting_and_durations(self):
        tracer = Tracer()
        with tracer.span("outer", sim_time_s=1.0, node=0) as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.wall_duration_s >= inner.wall_duration_s >= 0.0
        assert outer.sim_time_s == 1.0
        assert outer.attrs["node"] == 0

    def test_sim_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("pass") as span:
            span.sim_duration_s = 0.004
            span.set_attr("bytes", 128)
        done = tracer.finished_named("pass")[0]
        assert done.sim_duration_s == pytest.approx(0.004)
        assert done.attrs["bytes"] == 128

    def test_on_finish_hook_and_ring(self):
        tracer = Tracer(max_finished=2)
        seen = []
        tracer.on_finish(lambda s: seen.append(s.name))
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert seen == ["s0", "s1", "s2"]
        assert [s.name for s in tracer.finished] == ["s1", "s2"]  # evicted
        assert tracer.finished_total == 3


class TestEventBus:
    def test_publish_subscribe_by_kind(self):
        bus = EventBus()
        got = []
        bus.subscribe(EVENT_BUDGET_BREACH, got.append)
        bus.publish(EVENT_BUDGET_BREACH, sim_time_s=1.0, excess_w=10.0)
        bus.publish(EVENT_FREQUENCY_CHANGE, sim_time_s=1.0)
        assert len(got) == 1
        assert got[0].kind == EVENT_BUDGET_BREACH
        assert got[0].attrs["excess_w"] == 10.0

    def test_wildcard_subscription(self):
        bus = EventBus()
        got = []
        bus.subscribe("*", got.append)
        bus.publish("a")
        bus.publish("b")
        assert [e.kind for e in got] == ["a", "b"]

    def test_counts_survive_ring_eviction(self):
        bus = EventBus(max_history=2)
        for _ in range(5):
            bus.publish("x")
        assert bus.count("x") == 5
        assert len(bus.events_of("x")) == 2


class TestBackend:
    def test_null_is_disabled_and_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        assert null.emit("anything") is None
        assert null.snapshot()["enabled"] is False

    def test_default_is_null(self):
        assert isinstance(get_telemetry(), Telemetry)
        assert not get_telemetry().enabled

    def test_set_and_restore(self):
        tel = Telemetry()
        previous = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
            assert telemetry_snapshot()["enabled"] is True
        finally:
            set_telemetry(previous)

    def test_use_telemetry_scopes(self):
        before = get_telemetry()
        with use_telemetry(Telemetry()) as tel:
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_snapshot_shape(self):
        tel = Telemetry()
        tel.metrics.counter("x").inc(3)
        tel.emit("boom", sim_time_s=2.0)
        with tel.tracer.span("s"):
            pass
        snap = tel.snapshot()
        assert snap["metrics"]["x"]["series"][0]["value"] == 3
        assert snap["event_counts"] == {"boom": 1}
        assert snap["spans_finished"] == 1

    def test_reset(self):
        tel = Telemetry()
        tel.metrics.counter("x").inc()
        tel.emit("e")
        with tel.tracer.span("s"):
            pass
        tel.reset()
        snap = tel.snapshot()
        assert snap["metrics"] == {}
        assert snap["event_counts"] == {}
        assert snap["spans_finished"] == 0


class TestPrometheusExport:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("ops_total", "operations", labels={"node": "0"}).inc(7)
        registry.gauge("power_watts", "planned power").set(123.5)
        h = registry.histogram("lat_seconds", "latency", buckets=(0.001, 0.01))
        h.observe(0.0005)
        h.observe(0.5)
        return registry

    def test_text_format(self):
        text = prometheus_text(self._registry())
        lines = text.splitlines()
        assert "# TYPE ops_total counter" in lines
        assert '# HELP ops_total operations' in lines
        assert 'ops_total{node="0"} 7' in lines
        assert "# TYPE power_watts gauge" in lines
        assert "power_watts 123.5" in lines
        assert 'lat_seconds_bucket{le="0.001"} 1' in lines
        assert 'lat_seconds_bucket{le="0.01"} 1' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_count 2" in lines
        assert any(line.startswith("lat_seconds_sum") for line in lines)
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"q": 'a"b\\c'}).inc()
        text = prometheus_text(registry)
        assert r'x{q="a\"b\\c"} 1' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestJsonlRoundTrip:
    def test_metrics_round_trip(self, tmp_path):
        """JSONL -> parse -> same metrics (the satellite requirement)."""
        registry = MetricsRegistry()
        registry.counter("ops_total", "ops", labels={"node": "1"}).inc(9)
        registry.gauge("power_watts").set(42.0)
        h = registry.histogram("lat", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(0.75)
        h.observe(2.0)

        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(registry, path)
        records = read_jsonl(path)
        assert len(records) == 1 and records[0]["type"] == "metrics"

        rebuilt = registry_from_snapshot(records[0]["snapshot"])
        assert rebuilt.snapshot() == registry.snapshot()

    def test_sink_streams_events_and_spans(self, tmp_path):
        tel = Telemetry()
        path = tmp_path / "stream.jsonl"
        with JsonlSink(path, tel) as sink:
            tel.emit("boom", sim_time_s=1.5, why="test")
            with tel.tracer.span("op", sim_time_s=1.5):
                pass
            sink.write_snapshot()
        records = read_jsonl(path)
        types = [r["type"] for r in records]
        assert types == ["event", "span", "metrics"]
        assert records[0]["kind"] == "boom"
        assert records[0]["attrs"] == {"why": "test"}
        assert records[1]["name"] == "op"
        assert records[1]["wall_duration_s"] >= 0.0

    def test_sink_after_close_drops_silently(self, tmp_path):
        tel = Telemetry()
        sink = JsonlSink(tmp_path / "s.jsonl", tel)
        sink.close()
        tel.emit("late")  # must not raise
        assert read_jsonl(tmp_path / "s.jsonl") == []

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(TelemetryError, match="invalid JSONL"):
            read_jsonl(path)

    def test_registry_from_snapshot_rejects_unknown_kind(self):
        with pytest.raises(TelemetryError, match="unknown kind"):
            registry_from_snapshot(
                {"x": {"type": "mystery", "series": [{"value": 1}]}})


class TestSummaryTables:
    def test_summary_table_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").inc(3)
        registry.gauge("power_watts").set(10.0)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = summary_table(registry)
        assert "ops_total" in text
        assert "power_watts" in text
        assert "lat" in text
        assert "counter" in text and "gauge" in text and "histogram" in text

    def test_events_table_and_report(self):
        tel = Telemetry()
        tel.metrics.counter("x").inc()
        tel.emit("boom")
        tel.emit("boom")
        assert "boom" in events_table(tel)
        report = telemetry_report(tel)
        assert "x" in report and "boom" in report
        assert "spans finished: 0" in report
