"""Phases and jobs."""

import pytest

from repro.errors import WorkloadError
from repro.model.latency import POWER4_LATENCIES
from repro.units import ghz
from repro.workloads.job import Job, JobState, LoopMode
from repro.workloads.phase import Phase, idle_phase


def phase(name="p", instr=1e6, **kw) -> Phase:
    return Phase(name=name, instructions=instr, alpha=2.0, **kw)


class TestPhaseGroundTruth:
    def test_signature_includes_unmodeled_stalls(self):
        p = phase(l1_stall_cycles_per_instr=0.1,
                  unmodeled_stall_cycles_per_instr=0.2)
        sig = p.true_signature(POWER4_LATENCIES)
        assert sig.core_cpi == pytest.approx(0.5 + 0.1 + 0.2)

    def test_counts_exclude_unmodeled_stalls(self):
        p = phase(l1_stall_cycles_per_instr=0.1,
                  unmodeled_stall_cycles_per_instr=0.2, n_l2_per_instr=0.01)
        counts = p.counts_for(1000)
        assert counts.l1_stall_cycles == pytest.approx(100)
        assert counts.n_l2 == pytest.approx(10)
        # No field carries the unmodeled component: this is the bias.

    def test_latency_scale_perturbs_memory_only(self):
        p = phase(n_mem_per_instr=0.01)
        base = p.true_cpi(POWER4_LATENCIES, ghz(1.0))
        slow = p.true_cpi(POWER4_LATENCIES, ghz(1.0), latency_scale=2.0)
        mem_cpi = 0.01 * POWER4_LATENCIES.t_mem_s * ghz(1.0)
        assert slow - base == pytest.approx(mem_cpi)

    def test_throughput_equals_f_over_cpi(self):
        p = phase(n_mem_per_instr=0.005)
        f = ghz(0.8)
        assert p.throughput(POWER4_LATENCIES, f) == pytest.approx(
            f / p.true_cpi(POWER4_LATENCIES, f)
        )

    def test_scaled_memory(self):
        p = phase(n_l2_per_instr=0.02, n_mem_per_instr=0.004)
        s = p.scaled_memory(0.5)
        assert s.n_l2_per_instr == pytest.approx(0.01)
        assert s.n_mem_per_instr == pytest.approx(0.002)

    def test_with_instructions(self):
        assert phase().with_instructions(42.0).instructions == 42.0

    def test_idle_phase_ipc(self):
        p = idle_phase(ipc=1.3)
        assert p.true_ipc(POWER4_LATENCIES, ghz(0.5)) == pytest.approx(1.3)
        assert p.is_idle

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            Phase(name="", instructions=1.0, alpha=1.0)


class TestJobLifecycle:
    def test_initial_state(self):
        j = Job(name="j", phases=(phase(),))
        assert j.state is JobState.READY
        assert j.total_instructions == 1e6
        assert j.remaining_in_phase == 1e6

    def test_retire_within_phase(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(0.0)
        j.retire(4e5, 0.1)
        assert j.phase_progress == 4e5
        assert j.remaining_in_phase == pytest.approx(6e5)
        assert not j.done

    def test_phase_boundary_advances(self):
        j = Job(name="j", phases=(phase("a"), phase("b")))
        j.mark_started(0.0)
        j.retire(1e6, 0.1)
        assert j.phase_index == 1
        assert j.current_phase.name == "b"

    def test_completion_records_times(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(1.0)
        j.retire(1e6, 3.5)
        assert j.done
        assert j.elapsed_s() == pytest.approx(2.5)
        assert j.state is JobState.COMPLETED

    def test_loop_mode_wraps_and_counts(self):
        j = Job(name="j", phases=(phase("a"), phase("b")),
                loop=LoopMode.LOOP)
        j.mark_started(0.0)
        for _ in range(5):
            j.retire(1e6, 0.0)
        # a,b | a,b | a -> two full iterations, cursor on phase b.
        assert j.iterations == 2
        assert j.phase_index == 1
        assert not j.done

    def test_cross_boundary_retire_rejected(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(0.0)
        with pytest.raises(WorkloadError):
            j.retire(2e6, 0.1)

    def test_retire_on_completed_rejected(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(0.0)
        j.retire(1e6, 0.1)
        with pytest.raises(WorkloadError):
            j.retire(1.0, 0.2)

    def test_current_phase_on_completed_rejected(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(0.0)
        j.retire(1e6, 0.1)
        with pytest.raises(WorkloadError):
            _ = j.current_phase

    def test_reset_restores_fresh_state(self):
        j = Job(name="j", phases=(phase(),))
        j.mark_started(0.0)
        j.retire(1e6, 0.1)
        j.reset()
        assert j.state is JobState.READY
        assert j.instructions_retired == 0.0
        assert j.elapsed_s() is None

    def test_needs_phases(self):
        with pytest.raises(WorkloadError):
            Job(name="j", phases=())

    def test_from_phases_loop_flag(self):
        j = Job.from_phases("j", [phase()], loop=True)
        assert j.loop is LoopMode.LOOP
