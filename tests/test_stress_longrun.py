"""Stress and long-horizon stability tests.

These guard against the failure classes analytic simulators accumulate
quietly: float drift over long runs, event-queue growth, degenerate
scheduling at scale, and periodic-task phase error.
"""

import pytest

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.core.singlepass import SinglePassScheduler
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE
from repro.sim.driver import Simulation
from repro.units import ghz
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.synthetic import two_phase_benchmark
from tests.conftest import make_machine


class TestLongHorizon:
    def test_sixty_seconds_of_daemon_stability(self):
        """A minute of simulated time: periodic chain keeps cadence,
        wall-time conservation holds, budget never breached."""
        machine = make_machine(1, seed=1)
        machine.assign(0, two_phase_benchmark(
            1.0, 0.2, include_init_exit=False).job(loop=True))
        daemon = FvsstDaemon(machine, DaemonConfig(
            power_limit_w=100.0, counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=2)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(60.0)

        samples = len(daemon.log.samples_of(0, 0))
        assert 5990 <= samples <= 6001          # 10 ms cadence held
        passes = len(daemon.log.schedules_of(0, 0))
        assert 598 <= passes <= 601             # 100 ms cadence held
        assert sum(machine.core(0).phase_time_s.values()) == \
            pytest.approx(60.0, rel=1e-9)
        assert machine.cpu_power_w() <= 100.0 + 1e-9
        # Energy ledger consistent with meter over the whole horizon.
        assert machine.ledger.energy_of("core0") <= 100.0 * 60.0 + 1e-6

    def test_event_queue_does_not_accumulate(self):
        machine = make_machine(1, seed=3)
        daemon = FvsstDaemon(machine, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=4)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(30.0)
        # Only the self-rescheduling sampler remains pending.
        assert len(sim.events) <= 2

    def test_counter_monotonicity_over_long_run(self):
        machine = make_machine(2, seed=5)
        gen = WorkloadGenerator(6)
        for i, job in enumerate(gen.jobs(2)):
            machine.assign(i, job)
        sim = Simulation(machine)
        last = [0.0, 0.0]
        for _ in range(30):
            sim.run_for(1.0)
            for i, core in enumerate(machine.cores):
                assert core.counters.instructions >= last[i]
                last[i] = core.counters.instructions


class TestSchedulerScale:
    def _views(self, n: int) -> list[ProcessorView]:
        import numpy as np
        rng = np.random.default_rng(0)
        out = []
        for i in range(n):
            ratio = float(np.exp(rng.uniform(np.log(0.05), np.log(10))))
            out.append(ProcessorView(
                node_id=i // 8, proc_id=i % 8,
                signature=WorkloadSignature(
                    core_cpi=0.65,
                    mem_time_per_instr_s=0.65 / ratio / ghz(1.0)),
            ))
        return out

    def test_thousand_processor_pass(self):
        views = self._views(1000)
        sched = SinglePassScheduler(POWER4_TABLE)
        budget = 1000 * 60.0
        schedule = sched.schedule(views, power_limit_w=budget)
        assert len(schedule.assignments) == 1000
        assert schedule.total_power_w <= budget

    def test_two_pass_and_single_pass_agree_at_scale(self):
        views = self._views(300)
        budget = 300 * 55.0
        two = FrequencyVoltageScheduler(POWER4_TABLE)
        one = SinglePassScheduler(POWER4_TABLE)
        assert one.schedule(views, power_limit_w=budget).frequency_vector_hz() \
            == two.schedule(views, power_limit_w=budget).frequency_vector_hz()

    def test_deep_budget_walk_terminates(self):
        # Budget just above the floor forces ~15 reductions per processor.
        views = self._views(64)
        sched = SinglePassScheduler(POWER4_TABLE)
        schedule = sched.schedule(views,
                                  power_limit_w=64 * 9.0 + 5.0)
        assert schedule.total_power_w <= 64 * 9.0 + 5.0
        assert not schedule.infeasible


class TestManyNodeCluster:
    def test_sixteen_node_coordinated_cap(self):
        from repro.cluster.coordinator import (
            ClusterCoordinator,
            CoordinatorConfig,
        )
        from repro.sim.cluster import Cluster
        from repro.sim.machine import MachineConfig
        from repro.workloads.tiers import tiered_cluster_assignment

        nodes, procs = 16, 2
        cluster = Cluster.homogeneous(
            nodes, machine_config=MachineConfig(num_cores=procs), seed=7)
        cluster.assign_all(tiered_cluster_assignment(nodes, procs))
        budget = 0.6 * nodes * procs * 140.0
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(power_limit_w=budget,
                                       counter_noise_sigma=0.0), seed=8)
        sim = Simulation(cluster.machines)
        coordinator.attach(sim)
        sim.run_for(1.5)
        assert coordinator.last_schedule is not None
        assert coordinator.last_schedule.total_power_w <= budget
        assert cluster.cpu_power_w() <= budget + 1e-6
        assert len(coordinator.last_schedule.assignments) == nodes * procs
