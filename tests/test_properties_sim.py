"""Property-based tests of the machine simulator."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.latency import POWER4_LATENCIES
from repro.sim.core import CoreConfig, SimulatedCore
from repro.units import ghz, mhz
from repro.workloads.job import Job, LoopMode
from repro.workloads.phase import Phase

phase_strategy = st.builds(
    Phase,
    name=st.just("p"),
    instructions=st.floats(1e4, 1e8),
    alpha=st.floats(0.5, 4.0),
    l1_stall_cycles_per_instr=st.floats(0, 1.0),
    n_l2_per_instr=st.floats(0, 0.05),
    n_l3_per_instr=st.floats(0, 0.01),
    n_mem_per_instr=st.floats(0, 0.12),
    unmodeled_stall_cycles_per_instr=st.floats(0, 0.5),
)

freqs = st.sampled_from([mhz(250), mhz(500), mhz(650), mhz(800), ghz(1.0)])


def quiet_core(freq) -> SimulatedCore:
    return SimulatedCore(0, initial_freq_hz=freq,
                         config=CoreConfig(latency_jitter_sigma=0.0), rng=0)


class TestWallClockConservation:
    @given(st.lists(phase_strategy, min_size=1, max_size=4), freqs,
           st.floats(0.01, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_residency_sums_to_advanced_time(self, phases, freq, dt):
        core = quiet_core(freq)
        named = tuple(p.with_instructions(p.instructions) for p in phases)
        core.add_job(Job(name="j", phases=named, loop=LoopMode.LOOP))
        core.advance(0.0, dt)
        assert math.isclose(sum(core.phase_time_s.values()), dt,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(sum(core.freq_time_s.values()), dt,
                            rel_tol=1e-9, abs_tol=1e-9)

    @given(phase_strategy, freqs, st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_cycles_equal_freq_times_time(self, phase, freq, dt):
        core = quiet_core(freq)
        core.add_job(Job(name="j", phases=(phase,), loop=LoopMode.LOOP))
        core.advance(0.0, dt)
        assert math.isclose(core.counters.cycles, freq * dt,
                            rel_tol=1e-9, abs_tol=1.0)

    @given(phase_strategy, freqs, st.floats(0.01, 0.5),
           st.floats(0.01, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_split_advance_equals_single_advance(self, phase, freq, d1, d2):
        def run(*deltas):
            core = quiet_core(freq)
            core.add_job(Job(name="j", phases=(phase,),
                             loop=LoopMode.LOOP))
            t = 0.0
            for d in deltas:
                core.advance(t, d)
                t += d
            return core.counters.instructions

        assert math.isclose(run(d1 + d2), run(d1, d2),
                            rel_tol=1e-9, abs_tol=1e-3)


class TestThroughputModelConsistency:
    @given(phase_strategy, freqs)
    @settings(max_examples=40, deadline=None)
    def test_simulated_rate_matches_analytic(self, phase, freq):
        core = quiet_core(freq)
        core.add_job(Job(name="j", phases=(phase,), loop=LoopMode.LOOP))
        core.advance(0.0, 0.1)
        expected = phase.throughput(POWER4_LATENCIES, freq) * 0.1
        assert math.isclose(core.counters.instructions, expected,
                            rel_tol=1e-9, abs_tol=1.0)

    @given(phase_strategy)
    @settings(max_examples=40, deadline=None)
    def test_counter_rates_proportional_to_instructions(self, phase):
        core = quiet_core(ghz(1.0))
        core.add_job(Job(name="j", phases=(phase,), loop=LoopMode.LOOP))
        core.advance(0.0, 0.2)
        instr = core.counters.instructions
        assert math.isclose(core.counters.n_mem,
                            phase.n_mem_per_instr * instr,
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(core.counters.l1_stall_cycles,
                            phase.l1_stall_cycles_per_instr * instr,
                            rel_tol=1e-9, abs_tol=1e-6)


class TestJitterStatistics:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_jitter_preserves_time_conservation(self, seed):
        core = SimulatedCore(
            0, initial_freq_hz=ghz(1.0),
            config=CoreConfig(latency_jitter_sigma=0.05), rng=seed)
        phase = Phase(name="m", instructions=1e5, alpha=2.0,
                      n_mem_per_instr=0.05)
        core.add_job(Job(name="j", phases=(phase,), loop=LoopMode.LOOP))
        core.advance(0.0, 0.3)
        assert math.isclose(sum(core.phase_time_s.values()), 0.3,
                            rel_tol=1e-9)
        assert core.counters.instructions > 0
