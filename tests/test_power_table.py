"""Frequency/power operating-point tables (Table 1)."""

import pytest

from repro.errors import FrequencyError, PowerModelError
from repro.power.table import (
    POWER4_TABLE,
    WORKED_EXAMPLE_TABLE,
    FrequencyPowerTable,
)
from repro.units import mhz


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(PowerModelError):
            FrequencyPowerTable({mhz(500): 35.0})

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(PowerModelError):
            FrequencyPowerTable([(mhz(500), 35.0), (mhz(500), 36.0),
                                 (mhz(600), 48.0)])

    def test_power_must_increase(self):
        with pytest.raises(PowerModelError):
            FrequencyPowerTable({mhz(500): 35.0, mhz(600): 35.0})

    def test_sorted_regardless_of_input_order(self):
        t = FrequencyPowerTable([(mhz(600), 48.0), (mhz(500), 35.0)])
        assert t.freqs_hz[0] == mhz(500)

    def test_accepts_mapping_or_pairs(self):
        a = FrequencyPowerTable({mhz(500): 35.0, mhz(600): 48.0})
        b = FrequencyPowerTable([(mhz(500), 35.0), (mhz(600), 48.0)])
        assert list(a) == list(b)


class TestPower4Table:
    def test_matches_paper_exactly(self):
        assert POWER4_TABLE.power_at(mhz(250)) == 9.0
        assert POWER4_TABLE.power_at(mhz(650)) == 57.0
        assert POWER4_TABLE.power_at(mhz(1000)) == 140.0
        assert len(POWER4_TABLE) == 16

    def test_bounds(self):
        assert POWER4_TABLE.f_min_hz == mhz(250)
        assert POWER4_TABLE.f_max_hz == mhz(1000)
        assert POWER4_TABLE.min_power_w == 9.0
        assert POWER4_TABLE.max_power_w == 140.0

    def test_worked_example_restriction(self):
        assert [f for f, _ in WORKED_EXAMPLE_TABLE] == [
            mhz(600), mhz(700), mhz(800), mhz(900), mhz(1000)
        ]
        assert WORKED_EXAMPLE_TABLE.power_at(mhz(900)) == 109.0


class TestLookups:
    def test_unknown_frequency_raises(self):
        with pytest.raises(FrequencyError):
            POWER4_TABLE.power_at(mhz(625))

    def test_contains(self):
        assert mhz(650) in POWER4_TABLE
        assert mhz(660) not in POWER4_TABLE

    def test_next_lower_steps_down_the_ladder(self):
        assert POWER4_TABLE.next_lower(mhz(1000)) == mhz(950)
        assert POWER4_TABLE.next_lower(mhz(250)) is None

    def test_next_higher(self):
        assert POWER4_TABLE.next_higher(mhz(250)) == mhz(300)
        assert POWER4_TABLE.next_higher(mhz(1000)) is None

    def test_max_frequency_under_section44_rule(self):
        # "Select the highest frequency that yields a power value less
        # than the maximum."
        assert POWER4_TABLE.max_frequency_under(75.0) == mhz(750)
        assert POWER4_TABLE.max_frequency_under(74.9) == mhz(700)
        assert POWER4_TABLE.max_frequency_under(1000.0) == mhz(1000)

    def test_max_frequency_under_floor(self):
        assert POWER4_TABLE.max_frequency_under(8.9) is None

    def test_quantize_down(self):
        assert POWER4_TABLE.quantize_down(mhz(732)) == mhz(700)
        assert POWER4_TABLE.quantize_down(mhz(750)) == mhz(750)
        assert POWER4_TABLE.quantize_down(mhz(100)) == mhz(250)

    def test_quantize_up(self):
        assert POWER4_TABLE.quantize_up(mhz(732)) == mhz(750)
        assert POWER4_TABLE.quantize_up(mhz(750)) == mhz(750)
        assert POWER4_TABLE.quantize_up(mhz(2000)) == mhz(1000)

    def test_nearest(self):
        assert POWER4_TABLE.nearest(mhz(770)) == mhz(750)
        assert POWER4_TABLE.nearest(mhz(780)) == mhz(800)
        assert POWER4_TABLE.nearest(mhz(775)) == mhz(750)  # tie -> down


class TestDerivation:
    def test_restrict_preserves_powers(self):
        sub = POWER4_TABLE.restrict([mhz(500), mhz(750)])
        assert sub.power_at(mhz(500)) == 35.0
        assert len(sub) == 2

    def test_restrict_unknown_frequency_raises(self):
        with pytest.raises(FrequencyError):
            POWER4_TABLE.restrict([mhz(620)])

    def test_scaled_power(self):
        hot = POWER4_TABLE.scaled_power(1.2)
        assert hot.power_at(mhz(1000)) == pytest.approx(168.0)
        assert hot.f_max_hz == POWER4_TABLE.f_max_hz

    def test_scaled_power_bad_factor(self):
        with pytest.raises(PowerModelError):
            POWER4_TABLE.scaled_power(0.0)


class TestArrayCaching:
    """The ndarray views are memoized, immutable scheduler hot-path inputs."""

    def test_freqs_array_returns_same_readonly_object(self):
        a = POWER4_TABLE.freqs_array()
        assert a is POWER4_TABLE.freqs_array()
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 0.0

    def test_powers_array_returns_same_readonly_object(self):
        p = POWER4_TABLE.powers_array()
        assert p is POWER4_TABLE.powers_array()
        assert not p.flags.writeable

    def test_cached_arrays_match_the_tuples(self):
        assert POWER4_TABLE.freqs_array().tolist() == list(POWER4_TABLE.freqs_hz)
        assert POWER4_TABLE.powers_array().tolist() == list(POWER4_TABLE.powers_w)

    def test_derived_tables_cache_independently(self):
        sub = POWER4_TABLE.restrict([mhz(500), mhz(750)])
        assert sub.freqs_array() is sub.freqs_array()
        assert sub.freqs_array() is not POWER4_TABLE.freqs_array()
