"""Server workloads: arrivals, queueing, latency accounting."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.idle import IdleStyle
from repro.sim.machine import MachineConfig, SMPMachine
from repro.workloads.server import (
    RequestSpec,
    ServerSource,
    constant_rate,
    diurnal_rate,
)


def server_machine(seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=1,
        core_config=CoreConfig(latency_jitter_sigma=0.0,
                               idle_style=IdleStyle.HALT),
    ), seed=seed)


class TestRateFunctions:
    def test_constant(self):
        rate = constant_rate(50.0)
        assert rate(0.0) == rate(100.0) == 50.0

    def test_diurnal_bounds_and_period(self):
        rate = diurnal_rate(10.0, 90.0, period_s=10.0)
        assert rate(0.0) == pytest.approx(10.0)
        assert rate(5.0) == pytest.approx(90.0)
        assert rate(10.0) == pytest.approx(10.0)
        grid = np.linspace(0, 20, 200)
        values = np.array([rate(t) for t in grid])
        assert values.min() >= 10.0 - 1e-9
        assert values.max() <= 90.0 + 1e-9

    def test_inverted_rates_rejected(self):
        with pytest.raises(WorkloadError):
            diurnal_rate(50.0, 10.0, period_s=10.0)


class TestRequestSpec:
    def test_job_materialisation(self):
        spec = RequestSpec(instructions=1e6)
        job = spec.job(7)
        assert job.name == "request-7"
        assert job.total_instructions == 1e6


class TestServerSource:
    def _run(self, rate, seconds=2.0, seed=1):
        machine = server_machine(seed)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=rate,
                              max_rate_per_s=200.0, rng=seed + 1)
        source.attach(sim)
        sim.run_for(seconds)
        return source

    def test_arrival_count_near_expectation(self):
        source = self._run(constant_rate(100.0), seconds=4.0)
        # Poisson(400): within 5 sigma.
        assert 300 <= source.issued <= 500

    def test_requests_complete_and_latencies_positive(self):
        source = self._run(constant_rate(50.0))
        assert source.completed > 0
        lats = source.latencies_s()
        assert np.all(lats > 0)

    def test_latency_grows_with_load(self):
        light = self._run(constant_rate(20.0), seconds=3.0, seed=5)
        # 2M instr/request at ~1.2 GIPS -> service ~1.7 ms; 450/s ~ 0.77
        # utilisation: queueing delay becomes visible.
        heavy = ServerSource(
            server_machine(6), 0, rate_per_s=constant_rate(450.0),
            max_rate_per_s=450.0, rng=7)
        machine = heavy.machine
        sim = Simulation(machine)
        heavy.attach(sim)
        sim.run_for(3.0)
        assert heavy.mean_latency_s() > light.mean_latency_s()

    def test_seeded_reproducibility(self):
        a = self._run(constant_rate(80.0), seed=9)
        b = self._run(constant_rate(80.0), seed=9)
        assert a.issued == b.issued
        np.testing.assert_allclose(a.latencies_s(), b.latencies_s())

    def test_no_completions_raises_on_metrics(self):
        machine = server_machine()
        source = ServerSource(machine, 0, rate_per_s=constant_rate(1.0),
                              max_rate_per_s=1.0, rng=1)
        with pytest.raises(WorkloadError):
            source.mean_latency_s()

    def test_double_attach_rejected(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(1.0),
                              max_rate_per_s=1.0, rng=1)
        source.attach(sim)
        with pytest.raises(WorkloadError):
            source.attach(sim)

    def test_rate_above_declared_max_rejected(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(10.0),
                              max_rate_per_s=5.0, rng=1)
        source.attach(sim)
        with pytest.raises(WorkloadError):
            sim.run_for(2.0)


class _ZeroUniformRng:
    """A stub generator whose uniform draw is exactly 0.0 — the edge the
    thinning comparison must reject when the instantaneous rate is 0."""

    def exponential(self, scale):
        return 0.25 * scale

    def uniform(self):
        return 0.0


class TestThinningZeroRate:
    def test_zero_rate_window_admits_nothing(self):
        # Regression: with `uniform() <= rate/max` a zero-rate interval
        # still admitted requests whenever uniform() returned exactly 0.0
        # (it can: the draw is over [0, 1)).  Strict `<` admits none.
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(0.0),
                              max_rate_per_s=100.0, rng=_ZeroUniformRng())
        source.attach(sim)
        sim.run_for(1.0)
        assert source.issued == 0


class TestDetachAndHorizon:
    def test_detach_cancels_pending_and_stops_arrivals(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(100.0),
                              max_rate_per_s=100.0, rng=3)
        source.attach(sim)
        sim.run_for(1.0)
        issued = source.issued
        assert issued > 0
        source.detach()
        assert not source.attached
        sim.run_for(1.0)
        assert source.issued == issued   # no dangling arrival event

    def test_detach_requires_attachment(self):
        machine = server_machine()
        source = ServerSource(machine, 0, rate_per_s=constant_rate(1.0),
                              max_rate_per_s=1.0, rng=1)
        with pytest.raises(WorkloadError):
            source.detach()

    def test_reattach_after_detach_resumes(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(100.0),
                              max_rate_per_s=100.0, rng=4)
        source.attach(sim)
        sim.run_for(0.5)
        source.detach()
        issued = source.issued
        source.attach(sim)
        sim.run_for(0.5)
        assert source.attached
        assert source.issued > issued

    def test_horizon_ends_arrival_chain(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(200.0),
                              max_rate_per_s=200.0, horizon_s=0.5, rng=5)
        source.attach(sim)
        sim.run_for(2.0)
        assert source._pending is None   # nothing left in the queue
        assert all(r.arrival_s < 0.5 for r in source.records)


class TestCensoredAccounting:
    def test_censored_scores_every_issued_request(self):
        # Overload: 2M instr/request at ~1.2 GIPS is ~1.7 ms service, so
        # 700/s is rho > 1 — the queue grows and completed-only stats
        # miss the tail.
        machine = server_machine(11)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(700.0),
                              max_rate_per_s=700.0, rng=12)
        source.attach(sim)
        sim.run_for(2.0)
        assert source.in_flight > 0
        assert source.censored_latencies_s().size == source.issued
        assert source.latencies_s().size == source.completed

    def test_censored_tail_outgrows_raw_as_horizon_advances(self):
        # The raw percentile is frozen at the completed set; the censored
        # one keeps growing with the still-queued requests' lower bounds.
        machine = server_machine(11)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(700.0),
                              max_rate_per_s=700.0, rng=12)
        source.attach(sim)
        sim.run_for(2.0)
        raw = source.latency_percentile_s(99.0)
        late = source.censored_latency_percentile_s(99.0, horizon_s=10.0)
        assert late > raw

    def test_censored_lower_bounds_use_horizon(self):
        machine = server_machine(13)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(700.0),
                              max_rate_per_s=700.0, rng=14)
        source.attach(sim)
        sim.run_for(1.0)
        bounds = source.inflight_lower_bounds_s(horizon_s=1.0)
        assert bounds.size == source.in_flight
        assert np.all(bounds >= 0.0)
        assert np.all(bounds <= 1.0)

    def test_censored_needs_horizon_when_detached(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(100.0),
                              max_rate_per_s=100.0, rng=15)
        source.attach(sim)
        sim.run_for(0.5)
        source.detach()
        with pytest.raises(WorkloadError):
            source.inflight_lower_bounds_s()
        # Explicit horizon still works detached.
        source.inflight_lower_bounds_s(horizon_s=0.5)

    def test_drop_records_mode_keeps_digest_and_inflight(self):
        class _Digest:
            def __init__(self):
                self.values = []

            def observe(self, latency_s):
                self.values.append(latency_s)

        digest = _Digest()
        machine = server_machine(17)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(100.0),
                              max_rate_per_s=100.0, rng=18,
                              digest=digest, keep_records=False)
        source.attach(sim)
        sim.run_for(2.0)
        harvested = source.harvest()
        assert harvested == len(digest.values)
        assert source.completed == len(digest.values)
        assert all(not r.completed for r in source.records)
        with pytest.raises(WorkloadError):
            source.latencies_s()
