"""Server workloads: arrivals, queueing, latency accounting."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.idle import IdleStyle
from repro.sim.machine import MachineConfig, SMPMachine
from repro.workloads.server import (
    RequestSpec,
    ServerSource,
    constant_rate,
    diurnal_rate,
)


def server_machine(seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=1,
        core_config=CoreConfig(latency_jitter_sigma=0.0,
                               idle_style=IdleStyle.HALT),
    ), seed=seed)


class TestRateFunctions:
    def test_constant(self):
        rate = constant_rate(50.0)
        assert rate(0.0) == rate(100.0) == 50.0

    def test_diurnal_bounds_and_period(self):
        rate = diurnal_rate(10.0, 90.0, period_s=10.0)
        assert rate(0.0) == pytest.approx(10.0)
        assert rate(5.0) == pytest.approx(90.0)
        assert rate(10.0) == pytest.approx(10.0)
        grid = np.linspace(0, 20, 200)
        values = np.array([rate(t) for t in grid])
        assert values.min() >= 10.0 - 1e-9
        assert values.max() <= 90.0 + 1e-9

    def test_inverted_rates_rejected(self):
        with pytest.raises(WorkloadError):
            diurnal_rate(50.0, 10.0, period_s=10.0)


class TestRequestSpec:
    def test_job_materialisation(self):
        spec = RequestSpec(instructions=1e6)
        job = spec.job(7)
        assert job.name == "request-7"
        assert job.total_instructions == 1e6


class TestServerSource:
    def _run(self, rate, seconds=2.0, seed=1):
        machine = server_machine(seed)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=rate,
                              max_rate_per_s=200.0, rng=seed + 1)
        source.attach(sim)
        sim.run_for(seconds)
        return source

    def test_arrival_count_near_expectation(self):
        source = self._run(constant_rate(100.0), seconds=4.0)
        # Poisson(400): within 5 sigma.
        assert 300 <= source.issued <= 500

    def test_requests_complete_and_latencies_positive(self):
        source = self._run(constant_rate(50.0))
        assert source.completed > 0
        lats = source.latencies_s()
        assert np.all(lats > 0)

    def test_latency_grows_with_load(self):
        light = self._run(constant_rate(20.0), seconds=3.0, seed=5)
        # 2M instr/request at ~1.2 GIPS -> service ~1.7 ms; 450/s ~ 0.77
        # utilisation: queueing delay becomes visible.
        heavy = ServerSource(
            server_machine(6), 0, rate_per_s=constant_rate(450.0),
            max_rate_per_s=450.0, rng=7)
        machine = heavy.machine
        sim = Simulation(machine)
        heavy.attach(sim)
        sim.run_for(3.0)
        assert heavy.mean_latency_s() > light.mean_latency_s()

    def test_seeded_reproducibility(self):
        a = self._run(constant_rate(80.0), seed=9)
        b = self._run(constant_rate(80.0), seed=9)
        assert a.issued == b.issued
        np.testing.assert_allclose(a.latencies_s(), b.latencies_s())

    def test_no_completions_raises_on_metrics(self):
        machine = server_machine()
        source = ServerSource(machine, 0, rate_per_s=constant_rate(1.0),
                              max_rate_per_s=1.0, rng=1)
        with pytest.raises(WorkloadError):
            source.mean_latency_s()

    def test_double_attach_rejected(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(1.0),
                              max_rate_per_s=1.0, rng=1)
        source.attach(sim)
        with pytest.raises(WorkloadError):
            source.attach(sim)

    def test_rate_above_declared_max_rejected(self):
        machine = server_machine()
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(10.0),
                              max_rate_per_s=5.0, rng=1)
        source.attach(sim)
        with pytest.raises(WorkloadError):
            sim.run_for(2.0)
