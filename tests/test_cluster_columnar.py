"""The columnar control plane: batched predictors, ViewBatch, the
columnar log, the reschedule fast path — and the equivalence of it all
with the per-object reference path (``CoordinatorConfig(columnar=False)``).
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.faults import fault_scenario
from repro.cluster.nested import NestedBudgetScheduler
from repro.cluster.protocol import NodeReport, ProcReport
from repro.core.hetero import HeterogeneousScheduler
from repro.core.logs import FvsstLog, ScheduleLogEntry
from repro.core.predictor import AlphaPredictor, CounterPredictor
from repro.core.scheduler import (
    FrequencyVoltageScheduler,
    ProcessorView,
    Schedule,
    ViewBatch,
)
from repro.errors import ClusterError, SchedulingError
from repro.model.ipc import WorkloadSignature
from repro.model.latency import POWER4_LATENCIES
from repro.power.table import POWER4_TABLE
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.counters import CounterSample
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.telemetry import Telemetry
from repro.workloads.tiers import tiered_cluster_assignment


def quiet_cluster(nodes=2, procs=2, seed=0) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=seed,
    )


def random_window_arrays(n, seed=0):
    """Counter windows spanning the predictor's whole input space,
    degenerate rows included."""
    rng = np.random.default_rng(seed)
    instr = rng.uniform(1.0, 5e6, n)
    cycles = instr * rng.uniform(0.7, 3.0, n)
    n_l2 = rng.uniform(0.0, 3e4, n)
    n_l3 = rng.uniform(0.0, 1e4, n)
    n_mem = rng.uniform(0.0, 5e3, n)
    l1 = rng.uniform(0.0, 2e5, n)
    interval = rng.uniform(1e-3, 0.2, n)
    # Degenerate rows: below min_instructions, zero cycles (fully halted
    # window), zero/negative interval, and a heavy-memory row that trips
    # the core-CPI clamp.
    instr[0] = 999.0
    instr[1] = 0.0
    cycles[2] = 0.0
    interval[3] = 0.0
    interval[4] = -0.01
    n_mem[5] = 5e5
    cycles[5] = instr[5] * 0.8
    return instr, cycles, n_l2, n_l3, n_mem, l1, interval


class TestPredictorBatchEquivalence:
    """signatures_from_arrays is bit-equal to N scalar calls."""

    @pytest.mark.parametrize("make", [
        lambda: CounterPredictor(POWER4_LATENCIES),
        lambda: AlphaPredictor(POWER4_LATENCIES, alpha=0.8),
    ])
    def test_batch_matches_scalar_bitwise(self, make):
        predictor = make()
        cols = random_window_arrays(64, seed=3)
        has, core_cpi, mem_time = predictor.signatures_from_arrays(*cols)
        instr, cycles, n_l2, n_l3, n_mem, l1, interval = cols
        for i in range(64):
            sig = predictor.signature_from_sample(CounterSample(
                time_s=0.0, interval_s=interval[i],
                instructions=instr[i], cycles=cycles[i], n_l2=n_l2[i],
                n_l3=n_l3[i], n_mem=n_mem[i], l1_stall_cycles=l1[i],
                halted_cycles=0.0))
            if sig is None:
                assert not has[i]
                assert core_cpi[i] == 1.0 and mem_time[i] == 0.0
            else:
                assert has[i]
                # Bit-for-bit, not approx: the elementwise ops mirror the
                # scalar path exactly.
                assert core_cpi[i] == sig.core_cpi
                assert mem_time[i] == sig.mem_time_per_instr_s

    def test_counter_predictor_masks_degenerate_rows(self):
        predictor = CounterPredictor(POWER4_LATENCIES)
        cols = random_window_arrays(8, seed=1)
        has, _, _ = predictor.signatures_from_arrays(*cols)
        assert not has[0]   # below min_instructions
        assert not has[1]   # zero instructions
        assert not has[2]   # zero cycles
        assert not has[3]   # zero interval
        assert not has[4]   # negative interval

    def test_alpha_predictor_ignores_cycles_and_interval(self):
        predictor = AlphaPredictor(POWER4_LATENCIES, alpha=0.8)
        cols = random_window_arrays(8, seed=1)
        has, _, _ = predictor.signatures_from_arrays(*cols)
        assert not has[0] and not has[1]     # instruction floor still holds
        assert has[2] and has[3] and has[4]  # alpha needs no observation

    def test_core_cpi_clamp_applies_in_batch(self):
        predictor = CounterPredictor(POWER4_LATENCIES)
        cols = random_window_arrays(8, seed=1)
        has, core_cpi, _ = predictor.signatures_from_arrays(*cols)
        assert has[5] and core_cpi[5] == 0.05


def _views(n, seed=0):
    rng = np.random.default_rng(seed)
    views = []
    for i in range(n):
        roll = rng.uniform()
        if roll < 0.1:
            sig = None
        else:
            sig = WorkloadSignature(
                core_cpi=float(rng.uniform(0.5, 2.0)),
                mem_time_per_instr_s=float(rng.uniform(0.0, 2e-9)))
        views.append(ProcessorView(node_id=i // 4, proc_id=i % 4,
                                   signature=sig,
                                   idle_signaled=bool(roll > 0.9)))
    return views


class TestViewBatch:
    def test_round_trip_and_sequence_protocol(self):
        views = _views(16, seed=2)
        batch = ViewBatch.from_views(views)
        assert len(batch) == 16
        assert list(batch) == views
        assert batch[3] == views[3]

    def test_materialises_equal_views_from_columns(self):
        views = _views(16, seed=2)
        adapter = ViewBatch.from_views(views)
        rebuilt = ViewBatch(adapter.node_ids, adapter.proc_ids,
                            adapter.has_signature, adapter.core_cpi,
                            adapter.mem_time_per_instr_s,
                            adapter.idle_signaled)
        assert rebuilt.views() == views

    def test_column_shape_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            ViewBatch([0, 0], [0], [True], [1.0], [0.0])

    @pytest.mark.parametrize("limit", [None, 300.0])
    def test_schedule_identical_to_view_list(self, limit):
        views = _views(32, seed=4)
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        assert sched.schedule(views, limit) == \
            sched.schedule(ViewBatch.from_views(views), limit)

    def test_schedule_nested_identical_to_view_list(self):
        views = _views(32, seed=5)
        sched = NestedBudgetScheduler(POWER4_TABLE)
        a = sched.schedule_nested(views, 280.0, {1: 70.0, 3: 60.0})
        b = sched.schedule_nested(ViewBatch.from_views(views), 280.0,
                                  {1: 70.0, 3: 60.0})
        assert a == b

    def test_heterogeneous_scheduler_accepts_batch(self):
        views = _views(16, seed=6)
        rng = np.random.default_rng(1)
        sched = HeterogeneousScheduler.from_scales(
            POWER4_TABLE,
            {(v.node_id, v.proc_id): float(rng.uniform(0.9, 1.2))
             for v in views})
        assert sched.schedule(views, 120.0) == \
            sched.schedule(ViewBatch.from_views(views), 120.0)

    def test_duplicate_keys_rejected_through_batch(self):
        views = [ProcessorView(0, 0, None), ProcessorView(0, 0, None)]
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        with pytest.raises(SchedulingError):
            sched.schedule(ViewBatch.from_views(views))


def _comparable_entries(log):
    """Schedule entries with the wall-clock field (the one legitimately
    nondeterministic value) zeroed."""
    return [dataclasses.replace(e, pass_wall_s=None)
            for e in log.schedule_entries]


def _comparable_metrics(telemetry):
    """Metric snapshot minus the wall-clock histograms (the only
    nondeterministic values between two otherwise identical runs)."""
    snap = telemetry.snapshot()["metrics"]
    return {name: value for name, value in snap.items()
            if "pass_seconds" not in name}


def _run_pair(config_kwargs, *, scenario=None, seconds=0.55, limit_w=330.0,
              node_limit=(1, 80.0), workloads=True):
    """Run one columnar and one object-path coordinator over identical
    clusters (same seeds, same faults, same triggers); return both."""
    out = []
    for columnar in (True, False):
        cluster = quiet_cluster(nodes=3, procs=2, seed=11)
        if workloads:
            cluster.assign_all(tiered_cluster_assignment(
                3, 2, web_nodes=1, app_nodes=1))
        telemetry = Telemetry()
        faults = fault_scenario(scenario, seed=13) if scenario else None
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(power_limit_w=limit_w,
                              counter_noise_sigma=0.0,
                              columnar=columnar, **config_kwargs),
            telemetry=telemetry, faults=faults, seed=21)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(seconds)
        coord.set_power_limit(limit_w * 0.8, sim.now_s)
        sim.run_for(0.15)
        if node_limit is not None:
            coord.set_node_limit(*node_limit, sim.now_s)
            sim.run_for(0.15)
        out.append((cluster, coord, telemetry))
    return out


class TestCoordinatorColumnarEquivalence:
    """The acceptance gate: schedules, logs, and telemetry counters are
    bit-identical between the columnar and object paths, fault-free and
    degraded."""

    @pytest.mark.parametrize("scenario", [None, "lossy", "crash"])
    def test_paths_bit_identical(self, scenario):
        (cl_a, co_a, tel_a), (cl_b, co_b, tel_b) = _run_pair(
            {}, scenario=scenario)
        assert co_a.last_schedule == co_b.last_schedule
        assert _comparable_entries(co_a.log) == _comparable_entries(co_b.log)
        for node in range(3):
            assert cl_a.nodes[node].machine.frequency_vector_hz() == \
                cl_b.nodes[node].machine.frequency_vector_hz()
        assert _comparable_metrics(tel_a) == _comparable_metrics(tel_b)
        assert (co_a.reports_dropped, co_a.stale_passes,
                co_a.floor_scheduled_procs) == \
            (co_b.reports_dropped, co_b.stale_passes,
             co_b.floor_scheduled_procs)

    def test_alpha_predictor_paths_identical(self):
        # AlphaPredictor ignores interval_s, so the coordinator must mask
        # empty windows itself on the batch path (the t = 0 pass would
        # otherwise get signatures the object path never builds).
        results = []
        for columnar in (True, False):
            cluster = quiet_cluster(nodes=2, procs=2, seed=3)
            coord = ClusterCoordinator(
                cluster,
                CoordinatorConfig(counter_noise_sigma=0.0,
                                  columnar=columnar),
                predictor=AlphaPredictor(POWER4_LATENCIES, alpha=0.8),
                seed=9)
            sim = Simulation(cluster.machines)
            coord.attach(sim)
            coord.run_global_pass(0.0)   # empty windows: interval_s == 0
            sim.run_for(0.25)
            results.append(_comparable_entries(coord.log))
        assert results[0] == results[1]

    def test_batchless_predictor_falls_back(self):
        class ScalarOnly:
            def __init__(self):
                self.inner = CounterPredictor(POWER4_LATENCIES)

            def signature_from_sample(self, sample):
                return self.inner.signature_from_sample(sample)

        cluster = quiet_cluster(nodes=2, procs=2, seed=3)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0),
            predictor=ScalarOnly(), seed=9)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.25)
        assert coord.last_schedule is not None


class TestPowerSeriesDedup:
    """Satellite: a trigger pass at the same instant as a periodic pass
    must supersede it in power_series, not add to it."""

    def _entry(self, t, node, proc, power):
        return ScheduleLogEntry(
            time_s=t, node_id=node, proc_id=proc, freq_hz=1e9,
            eps_freq_hz=1e9, voltage=1.1, power_w=power,
            predicted_loss=0.0, predicted_ipc=None, power_limit_w=None,
            infeasible=False)

    def test_same_instant_pass_supersedes(self):
        log = FvsstLog()
        # Periodic pass at t=1.0 ...
        log.record_schedule(self._entry(1.0, 0, 0, 20.0))
        log.record_schedule(self._entry(1.0, 0, 1, 22.0))
        # ... then a set_power_limit trigger pass at the same instant.
        log.record_schedule(self._entry(1.0, 0, 0, 10.0))
        log.record_schedule(self._entry(1.0, 0, 1, 11.0))
        times, power = log.power_series()
        assert times.tolist() == [1.0]
        # Pre-fix this summed both passes to 63 W.
        assert power.tolist() == [21.0]

    def test_distinct_procs_still_sum(self):
        log = FvsstLog()
        log.record_schedule(self._entry(1.0, 0, 0, 20.0))
        log.record_schedule(self._entry(1.0, 1, 0, 30.0))
        log.record_schedule(self._entry(2.0, 0, 0, 25.0))
        times, power = log.power_series()
        assert times.tolist() == [1.0, 2.0]
        assert power.tolist() == [50.0, 25.0]

    def test_trigger_at_pass_time_via_coordinator(self):
        cluster = quiet_cluster(nodes=1, procs=2, seed=2)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=4)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.2)
        now = sim.now_s
        coord.run_global_pass(now)          # "periodic" pass at now
        coord.set_power_limit(250.0, now)   # trigger pass, same instant
        times, power = coord.log.power_series()
        at_now = power[np.flatnonzero(times == now)]
        limited = coord.last_schedule.total_power_w
        assert at_now.tolist() == [limited]


class TestRescheduleTolerance:
    def test_validation(self):
        with pytest.raises(Exception):
            CoordinatorConfig(reschedule_tolerance=-0.1)
        with pytest.raises(ClusterError):
            CoordinatorConfig(reschedule_tolerance=0.1, columnar=False)

    def test_default_off(self):
        cluster = quiet_cluster(nodes=2, procs=2, seed=5)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=6)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.45)
        assert coord.passes_skipped == 0

    def test_stable_signatures_skip_and_reuse(self):
        cluster = quiet_cluster(nodes=2, procs=2, seed=5)
        telemetry = Telemetry()
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(counter_noise_sigma=0.0,
                              reschedule_tolerance=10.0),
            telemetry=telemetry, seed=6)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.15)           # first real pass: schedules + anchors
        first = coord.last_schedule
        assert coord.passes_skipped == 0

        def commands_sent():
            snap = telemetry.snapshot()["metrics"]
            series = snap["cluster_commands_sent_total"]["series"]
            return sum(pt["value"] for pt in series)

        sent_before = commands_sent()
        sim.run_for(0.3)            # steady workload: passes skip
        assert coord.passes_skipped >= 1
        assert coord.last_schedule is first
        # Skipped passes dispatch nothing...
        assert commands_sent() == sent_before
        # ...but still record, so the log stays gap-free.
        passes = {e.time_s for e in coord.log.schedule_entries}
        assert len(passes) >= 3
        snap = telemetry.snapshot()["metrics"]
        skipped_series = snap["cluster_passes_skipped_total"]["series"]
        assert sum(pt["value"] for pt in skipped_series) == \
            coord.passes_skipped

    def test_limit_change_invalidates_reuse(self):
        cluster = quiet_cluster(nodes=2, procs=2, seed=5)
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(counter_noise_sigma=0.0,
                              reschedule_tolerance=10.0),
            seed=6)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.45)
        skipped = coord.passes_skipped
        assert skipped >= 1
        before = coord.last_schedule
        coord.set_power_limit(260.0, sim.now_s)
        assert coord.passes_skipped == skipped   # trigger pass ran for real
        assert coord.last_schedule is not before
        assert coord.last_schedule.power_limit_w == 260.0

    def test_zero_tolerance_never_skips_under_noise(self):
        cluster = quiet_cluster(nodes=2, procs=2, seed=5)
        cluster.assign_all(tiered_cluster_assignment(2, 2, web_nodes=1,
                                                     app_nodes=1))
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(counter_noise_sigma=0.01,
                              reschedule_tolerance=0.0),
            seed=6)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.45)
        assert coord.passes_skipped == 0


class TestDispatchGrouping:
    def test_out_of_order_assignments_still_sorted_per_node(self):
        cluster = quiet_cluster(nodes=1, procs=2, seed=7)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=8)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        table = coord.scheduler.table
        f_lo, f_hi = table.freqs_hz[0], table.freqs_hz[-1]
        mk = coord.scheduler.voltages.min_voltage
        # Hand-built schedule with proc 1 before proc 0.
        assignments = (
            ProcessorAssignmentFor(1, f_lo, mk(0, 1, f_lo), table),
            ProcessorAssignmentFor(0, f_hi, mk(0, 0, f_hi), table),
        )
        schedule = Schedule(assignments=assignments, total_power_w=0.0,
                            power_limit_w=None, epsilon=0.1)
        coord._dispatch(schedule, sim.now_s)
        sim.run_for(0.01)
        machine = cluster.nodes[0].machine
        assert machine.frequency_vector_hz() == [f_hi, f_lo]


def ProcessorAssignmentFor(proc_id, freq_hz, voltage, table):
    from repro.core.scheduler import ProcessorAssignment
    return ProcessorAssignment(
        node_id=0, proc_id=proc_id, freq_hz=freq_hz, voltage=voltage,
        power_w=table.power_at(freq_hz), predicted_loss=0.0,
        eps_freq_hz=freq_hz)


def synthetic_reports(nodes, procs, seed=0):
    rng = np.random.default_rng(seed)
    reports = []
    for n in range(nodes):
        prs = []
        for p in range(procs):
            instr = float(rng.uniform(5e5, 5e6))
            prs.append(ProcReport(
                proc_id=p, instructions=instr,
                cycles=instr * float(rng.uniform(0.8, 2.5)),
                n_l2=float(rng.uniform(0.0, 2e4)),
                n_l3=float(rng.uniform(0.0, 8e3)),
                n_mem=float(rng.uniform(0.0, 4e3)),
                l1_stall_cycles=float(rng.uniform(0.0, 1e5)),
                halted_cycles=0.0, interval_s=0.1, idle_signaled=False))
        reports.append(NodeReport(node_id=n, time_s=0.1, procs=tuple(prs)))
    return reports


def _pass_core(coord, reports, now_s):
    """The pass hot path under measurement: views from reports, the
    schedule, and the log record (collect and dispatch are identical
    between the two paths and excluded)."""
    if coord.config.columnar:
        views = coord._view_batch_from_reports(reports)
    else:
        views = coord._views_from_reports(reports)
    schedule = coord.scheduler.schedule(views, coord.power_limit_w,
                                        on_infeasible="floor")
    coord._record(schedule, now_s)
    return schedule


class TestClusterPassSpeedup:
    """Acceptance: the columnar pass is >= 5x the object path at 64x4."""

    def test_bench_cluster_pass_64_nodes(self):
        # No global limit: step 2's heap reduction is identical shared
        # code either way (pinned by the equivalence suite above); the
        # ratio measures the columnarised data path — views from reports,
        # the matrix pass, assembly, and the log record.
        reports = synthetic_reports(64, 4, seed=17)
        cluster = quiet_cluster(nodes=1, procs=1, seed=1)
        coords = {
            columnar: ClusterCoordinator(
                cluster,
                CoordinatorConfig(power_limit_w=None, columnar=columnar),
                seed=2)
            for columnar in (True, False)
        }

        # Same decision either way (the equivalence half of the gate).
        sched_cols = _pass_core(coords[True], reports, 0.1)
        sched_objs = _pass_core(coords[False], reports, 0.1)
        assert sched_cols == sched_objs
        assert _comparable_entries(coords[True].log) == \
            _comparable_entries(coords[False].log)

        def best_of(coord, repeats=7, inner=3):
            best = float("inf")
            for _ in range(repeats):
                coord.log = FvsstLog()   # keep record cost flat
                t0 = time.perf_counter()
                for _ in range(inner):
                    _pass_core(coord, reports, 0.1)
                best = min(best, (time.perf_counter() - t0) / inner)
            return best

        best_of(coords[True], repeats=2)   # warm caches on both paths
        best_of(coords[False], repeats=2)
        columnar_s = best_of(coords[True])
        object_s = best_of(coords[False])
        speedup = object_s / columnar_s
        assert speedup >= 5.0, (
            f"columnar pass {columnar_s * 1e6:.0f} us vs object "
            f"{object_s * 1e6:.0f} us: only {speedup:.1f}x"
        )
