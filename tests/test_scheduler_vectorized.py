"""The vectorised scheduler reproduces the literal Figure 3 loops bit-for-bit.

``FrequencyVoltageScheduler`` evaluates step 1 as one (P x F) loss matrix
and step 2 through a heap; this file re-implements the pre-vectorisation
algorithm — pointwise epsilon-constrained selection, rescanning greedy
reduction — and asserts *exact* float equality of every assignment field
on randomized 256-processor populations (idle signals, missing
signatures, tight/infeasible budgets, frequency ceilings included).
"""

import numpy as np
import pytest

from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.core.voltage import VoltageSelector
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE, WORKED_EXAMPLE_TABLE
from repro.power.vf_curve import LinearVFCurve
from repro.units import ghz


def _reference_schedule(sched, views, power_limit_w, max_freq_hz=None):
    """Figure 3 as literal per-processor loops (the pre-vectorised path).

    Uses only the scheduler's *pointwise* hooks (``epsilon_constrained``,
    ``predicted_loss``, ``power_for``) so any drift between the scalar
    model and the matrix path fails the comparison.
    """
    table = sched.table
    freqs_hz = table.freqs_hz
    idx, eps_idx = [], []
    for v in views:
        if v.idle_signaled:
            idx.append(0)
            eps_idx.append(0)
            continue
        f, _ = sched.epsilon_constrained(v.signature)
        eps_idx.append(table.index_of(f))
        idx.append(eps_idx[-1])
    if max_freq_hz is not None:
        cap = table.index_of(table.quantize_down(max_freq_hz))
        idx = [min(k, cap) for k in idx]

    steps = 0
    infeasible = False
    if power_limit_w is not None:
        def total():
            return sum(
                sched.power_for(v.node_id, v.proc_id, freqs_hz[idx[i]])
                for i, v in enumerate(views)
            )
        t = total()
        while t > power_limit_w:
            candidates = []
            for i, v in enumerate(views):
                k = idx[i]
                if k == 0:
                    continue
                loss = 0.0 if v.idle_signaled else sched.predicted_loss(
                    v.signature, freqs_hz[k - 1])
                candidates.append((loss, v.node_id, v.proc_id, i))
            if not candidates:
                infeasible = True
                break
            _, _, _, i = min(candidates)
            idx[i] -= 1
            steps += 1
            t = total()

    assignments = []
    for i, v in enumerate(views):
        f = freqs_hz[idx[i]]
        loss = 0.0 if v.idle_signaled else sched.predicted_loss(
            v.signature, f)
        assignments.append((
            v.node_id, v.proc_id, f,
            sched.voltages.min_voltage(v.node_id, v.proc_id, f),
            sched.power_for(v.node_id, v.proc_id, f),
            loss,
            freqs_hz[eps_idx[i]],
        ))
    total_w = sum(a[4] for a in assignments)
    return assignments, total_w, steps, infeasible


def _random_views(rng, n):
    """A mixed population: CPU/memory-bound, missing data, idle signals."""
    views = []
    for i in range(n):
        roll = rng.uniform()
        if roll < 0.1:
            sig = None
        else:
            ratio = float(np.exp(rng.uniform(np.log(0.05), np.log(10.0))))
            c0 = float(rng.uniform(0.4, 2.0))
            sig = WorkloadSignature(core_cpi=c0,
                                    mem_time_per_instr_s=c0 / ratio / ghz(1.0))
        views.append(ProcessorView(
            node_id=i // 4, proc_id=i % 4, signature=sig,
            idle_signaled=bool(rng.uniform() < 0.1),
        ))
    return views


def _assert_matches_reference(sched, views, limit, max_freq_hz=None):
    expected, total_w, steps, infeasible = _reference_schedule(
        sched, views, limit, max_freq_hz)
    got = sched.schedule(views, power_limit_w=limit,
                         max_freq_hz=max_freq_hz)
    actual = [(a.node_id, a.proc_id, a.freq_hz, a.voltage, a.power_w,
               a.predicted_loss, a.eps_freq_hz) for a in got.assignments]
    assert actual == expected          # exact — no tolerances anywhere
    assert got.total_power_w == total_w
    assert got.reduction_steps == steps
    assert got.infeasible == infeasible


PEAK_256 = 256 * POWER4_TABLE.max_power_w


@pytest.mark.parametrize("limit", [
    None,                 # step 1 only
    0.85 * PEAK_256,      # loose: few reductions
    0.45 * PEAK_256,      # tight: deep into the ladder
    256 * POWER4_TABLE.min_power_w * 1.02,   # barely feasible floor
    256 * POWER4_TABLE.min_power_w * 0.5,    # infeasible: floor schedule
])
def test_random_256_views_match_reference(limit):
    rng = np.random.default_rng(20050406)
    sched = FrequencyVoltageScheduler(POWER4_TABLE)
    _assert_matches_reference(sched, _random_views(rng, 256), limit)


def test_random_views_with_frequency_ceiling_match_reference():
    rng = np.random.default_rng(7)
    sched = FrequencyVoltageScheduler(POWER4_TABLE)
    _assert_matches_reference(sched, _random_views(rng, 64),
                              0.6 * 64 * POWER4_TABLE.max_power_w,
                              max_freq_hz=ghz(0.8))


def test_worked_example_ladder_matches_reference():
    rng = np.random.default_rng(11)
    sched = FrequencyVoltageScheduler(WORKED_EXAMPLE_TABLE)
    peak = 32 * WORKED_EXAMPLE_TABLE.max_power_w
    _assert_matches_reference(sched, _random_views(rng, 32), 0.7 * peak)


class TestVoltageSelectorCache:
    def test_repeated_lookups_hit_the_memo(self):
        sel = VoltageSelector()
        a = sel.min_voltage(0, 0, POWER4_TABLE.f_max_hz)
        b = sel.min_voltage(3, 1, POWER4_TABLE.f_max_hz)
        assert a == b == sel._default.min_voltage(POWER4_TABLE.f_max_hz)

    def test_install_override_invalidates_cache(self):
        sel = VoltageSelector()
        before = sel.min_voltage(0, 0, POWER4_TABLE.f_max_hz)
        curve = LinearVFCurve(f_min_hz=POWER4_TABLE.f_min_hz, v_min=0.9,
                              f_max_hz=POWER4_TABLE.f_max_hz, v_max=1.1)
        sel.set_processor_curve(0, 0, curve)
        assert sel.min_voltage(0, 0, POWER4_TABLE.f_max_hz) == 1.1
        # Other processors still use the default curve.
        assert sel.min_voltage(0, 1, POWER4_TABLE.f_max_hz) == before
