"""The Section 4.3 CPI/IPC projection equations."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.ipc import (
    MemoryCounts,
    WorkloadSignature,
    predict_cpi,
    predict_ipc,
    signature_from_counts,
)
from repro.units import ghz


class TestMemoryCounts:
    def test_addition_is_fieldwise(self):
        a = MemoryCounts(instructions=10, n_l2=1, n_l3=2, n_mem=3,
                         l1_stall_cycles=4)
        b = MemoryCounts(instructions=20, n_l2=2, n_l3=3, n_mem=4,
                         l1_stall_cycles=5)
        c = a + b
        assert c.instructions == 30
        assert c.n_l2 == 3 and c.n_l3 == 5 and c.n_mem == 7
        assert c.l1_stall_cycles == 9

    def test_memory_time_weights_levels(self, latencies):
        counts = MemoryCounts(instructions=1, n_l2=1, n_l3=1, n_mem=1)
        expected = (latencies.t_l2_s + latencies.t_l3_s + latencies.t_mem_s)
        assert counts.memory_time_s(latencies) == pytest.approx(expected)

    def test_negative_counts_rejected(self):
        with pytest.raises(Exception):
            MemoryCounts(instructions=-1)


class TestWorkloadSignature:
    def test_cpi_is_affine_in_frequency(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=2e-9)
        assert sig.cpi(ghz(1.0)) == pytest.approx(3.0)
        assert sig.cpi(ghz(0.5)) == pytest.approx(2.0)

    def test_ipc_is_reciprocal_cpi(self):
        sig = WorkloadSignature(core_cpi=0.8, mem_time_per_instr_s=1e-9)
        f = ghz(0.75)
        assert sig.ipc(f) == pytest.approx(1.0 / sig.cpi(f))

    def test_pure_cpu_ipc_is_frequency_invariant(self):
        sig = WorkloadSignature(core_cpi=0.5, mem_time_per_instr_s=0.0)
        assert sig.ipc(ghz(0.25)) == sig.ipc(ghz(1.0)) == pytest.approx(2.0)
        assert sig.is_memory_free

    def test_ipc_decreases_with_frequency_when_memory_bound(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=5e-9)
        ipcs = [sig.ipc(f) for f in (ghz(0.25), ghz(0.5), ghz(1.0))]
        assert ipcs[0] > ipcs[1] > ipcs[2]

    def test_ipc_array_matches_scalar(self):
        sig = WorkloadSignature(core_cpi=0.9, mem_time_per_instr_s=3e-9)
        freqs = np.array([ghz(0.25), ghz(0.6), ghz(1.0)])
        np.testing.assert_allclose(
            sig.ipc_array(freqs), [sig.ipc(f) for f in freqs]
        )

    def test_ipc_array_rejects_nonpositive(self):
        sig = WorkloadSignature(core_cpi=0.9, mem_time_per_instr_s=3e-9)
        with pytest.raises(ModelError):
            sig.ipc_array(np.array([1e9, -1.0]))

    def test_nonpositive_core_cpi_rejected(self):
        with pytest.raises(Exception):
            WorkloadSignature(core_cpi=0.0, mem_time_per_instr_s=1e-9)


class TestSignatureFromCounts:
    def test_paper_equation_structure(self, latencies):
        # CPI(f) = 1/alpha + S_L1/I + (sum N_i T_i / I) * f
        counts = MemoryCounts(instructions=1000, n_l2=10, n_l3=5, n_mem=2,
                              l1_stall_cycles=100)
        sig = signature_from_counts(counts, latencies, alpha=2.0)
        assert sig.core_cpi == pytest.approx(0.5 + 0.1)
        expected_m = (10 * latencies.t_l2_s + 5 * latencies.t_l3_s
                      + 2 * latencies.t_mem_s) / 1000
        assert sig.mem_time_per_instr_s == pytest.approx(expected_m)

    def test_zero_instructions_rejected(self, latencies):
        with pytest.raises(ModelError):
            signature_from_counts(MemoryCounts(instructions=0), latencies,
                                  alpha=2.0)

    def test_predict_ipc_consistent_with_signature(self, latencies):
        counts = MemoryCounts(instructions=1e6, n_l2=2000, n_mem=500)
        sig = signature_from_counts(counts, latencies, alpha=1.5)
        f = ghz(0.8)
        assert predict_ipc(counts, latencies, f, alpha=1.5) == pytest.approx(
            sig.ipc(f)
        )
        assert predict_cpi(counts, latencies, f, alpha=1.5) == pytest.approx(
            sig.cpi(f)
        )

    def test_memory_heavy_counts_give_lower_projected_ipc(self, latencies):
        light = MemoryCounts(instructions=1e6, n_mem=100)
        heavy = MemoryCounts(instructions=1e6, n_mem=100000)
        f = ghz(1.0)
        assert (predict_ipc(light, latencies, f, alpha=2.0)
                > predict_ipc(heavy, latencies, f, alpha=2.0))

    def test_projection_at_observation_frequency_recovers_observed(self, latencies):
        # Projecting at the frequency the counts were gathered at must give
        # back the IPC those counts imply.
        counts = MemoryCounts(instructions=1e6, n_l2=5e3, n_l3=1e3,
                              n_mem=2e3, l1_stall_cycles=5e4)
        sig = signature_from_counts(counts, latencies, alpha=2.0)
        f_obs = ghz(1.0)
        implied_cycles = sig.cpi(f_obs) * counts.instructions
        ipc_observed = counts.instructions / implied_cycles
        assert predict_ipc(counts, latencies, f_obs, alpha=2.0) == \
            pytest.approx(ipc_observed)
