"""Event queue and simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_to_returns_delta(self):
        c = SimClock(1.0)
        assert c.advance_to(3.5) == pytest.approx(2.5)
        assert c.now_s == pytest.approx(3.5)

    def test_advance_by(self):
        c = SimClock()
        assert c.advance_by(0.25) == pytest.approx(0.25)

    def test_zero_advance_allowed(self):
        c = SimClock(2.0)
        assert c.advance_to(2.0) == 0.0

    def test_backwards_rejected(self):
        c = SimClock(5.0)
        with pytest.raises(SimulationError):
            c.advance_to(4.0)
        with pytest.raises(SimulationError):
            c.advance_by(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda t: fired.append(("b", t)))
        q.schedule(1.0, lambda t: fired.append(("a", t)))
        assert q.run_due(3.0) == 2
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_ties_fire_in_insertion_order(self):
        q = EventQueue()
        fired = []
        for name in "xyz":
            q.schedule(1.0, lambda t, n=name: fired.append(n))
        q.run_due(1.0)
        assert fired == ["x", "y", "z"]

    def test_future_events_not_fired(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, lambda t: fired.append(t))
        assert q.run_due(4.9) == 0
        assert len(q) == 1

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1.0, lambda t: fired.append(t))
        handle.cancel()
        assert q.run_due(2.0) == 0
        assert fired == []
        assert len(q) == 0

    def test_next_time_skips_cancelled(self):
        q = EventQueue()
        first = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        first.cancel()
        assert q.next_time() == 2.0

    def test_callback_scheduling_due_event_fires_same_call(self):
        q = EventQueue()
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                q.schedule(t, chain)

        q.schedule(1.0, chain)
        assert q.run_due(1.0) == 3

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-0.1, lambda t: None)

    def test_empty_queue(self):
        q = EventQueue()
        assert q.next_time() is None
        assert q.pop_due(10.0) is None
