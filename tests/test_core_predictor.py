"""Counter-driven predictors."""

import pytest

from repro.core.predictor import AlphaPredictor, CounterPredictor
from repro.model.latency import POWER4_LATENCIES
from repro.sim.counters import CounterSample
from repro.units import ghz, mhz
from repro.workloads.phase import Phase
from repro.workloads.synthetic import synthetic_phase


def sample_for(phase: Phase, freq_hz: float, interval_s: float = 0.1,
               latency_scale: float = 1.0) -> CounterSample:
    """Exact counter sample for running ``phase`` an interval at ``freq_hz``."""
    throughput = phase.throughput(POWER4_LATENCIES, freq_hz,
                                  latency_scale=latency_scale)
    instr = throughput * interval_s
    counts = phase.counts_for(instr)
    return CounterSample(
        time_s=interval_s, interval_s=interval_s,
        instructions=counts.instructions,
        cycles=freq_hz * interval_s,
        n_l2=counts.n_l2, n_l3=counts.n_l3, n_mem=counts.n_mem,
        l1_stall_cycles=counts.l1_stall_cycles, halted_cycles=0.0,
    )


class TestCounterPredictor:
    PREDICTOR = CounterPredictor(POWER4_LATENCIES)

    @pytest.mark.parametrize("intensity", [1.0, 0.75, 0.5, 0.2, 0.0])
    def test_exact_under_stationarity(self, intensity):
        # Observation at 1 GHz predicts the truth at 650 MHz exactly,
        # including the unmodeled stall (folded into the observed CPI).
        phase = synthetic_phase(intensity, instructions=1e9)
        sample = sample_for(phase, ghz(1.0))
        predicted = self.PREDICTOR.predict_ipc(sample, mhz(650))
        truth = phase.true_ipc(POWER4_LATENCIES, mhz(650))
        assert predicted == pytest.approx(truth, rel=1e-9)

    def test_prediction_upward_in_frequency_too(self):
        phase = synthetic_phase(0.5, instructions=1e9)
        sample = sample_for(phase, mhz(500))
        predicted = self.PREDICTOR.predict_ipc(sample, ghz(1.0))
        truth = phase.true_ipc(POWER4_LATENCIES, ghz(1.0))
        assert predicted == pytest.approx(truth, rel=1e-9)

    def test_latency_jitter_induces_bounded_error(self):
        phase = synthetic_phase(0.2, instructions=1e9)
        sample = sample_for(phase, ghz(1.0), latency_scale=1.1)
        predicted = self.PREDICTOR.predict_ipc(sample, mhz(650))
        truth = phase.true_ipc(POWER4_LATENCIES, mhz(650))
        assert predicted != pytest.approx(truth, rel=1e-6)
        assert predicted == pytest.approx(truth, rel=0.15)

    def test_thin_window_returns_none(self):
        sample = CounterSample(time_s=0.1, interval_s=0.1, instructions=10,
                               cycles=100, n_l2=0, n_l3=0, n_mem=0,
                               l1_stall_cycles=0, halted_cycles=0)
        assert self.PREDICTOR.signature_from_sample(sample) is None

    def test_zero_interval_returns_none(self):
        sample = CounterSample(time_s=0.0, interval_s=0.0, instructions=1e6,
                               cycles=1e6, n_l2=0, n_l3=0, n_mem=0,
                               l1_stall_cycles=0, halted_cycles=0)
        assert self.PREDICTOR.signature_from_sample(sample) is None

    def test_core_cpi_clamped_positive_under_noise(self):
        # Memory counters so inflated that naive c0 would go negative.
        sample = CounterSample(time_s=0.1, interval_s=0.1, instructions=1e6,
                               cycles=1e6, n_l2=0, n_l3=0, n_mem=1e5,
                               l1_stall_cycles=0, halted_cycles=0)
        sig = self.PREDICTOR.signature_from_sample(sample)
        assert sig is not None and sig.core_cpi > 0


class TestAlphaPredictor:
    def test_unbiased_when_alpha_matches_and_no_unmodeled(self):
        phase = Phase(name="clean", instructions=1e9, alpha=2.0,
                      l1_stall_cycles_per_instr=0.1, n_mem_per_instr=0.01)
        predictor = AlphaPredictor(POWER4_LATENCIES, alpha=2.0)
        sample = sample_for(phase, ghz(1.0))
        predicted = predictor.predict_ipc(sample, mhz(650))
        assert predicted == pytest.approx(
            phase.true_ipc(POWER4_LATENCIES, mhz(650)), rel=1e-9
        )

    def test_biased_by_unmodeled_stalls(self):
        # The Section 8.1 bias: non-memory stalls it cannot see.
        phase = synthetic_phase(0.75, instructions=1e9)
        assert phase.unmodeled_stall_cycles_per_instr > 0
        predictor = AlphaPredictor(POWER4_LATENCIES, alpha=phase.alpha)
        sample = sample_for(phase, ghz(1.0))
        predicted = predictor.predict_ipc(sample, mhz(650))
        truth = phase.true_ipc(POWER4_LATENCIES, mhz(650))
        assert predicted > truth  # optimistic: ignores the extra stalls

    def test_counter_predictor_beats_alpha_predictor(self):
        phase = synthetic_phase(0.75, instructions=1e9)
        sample = sample_for(phase, ghz(1.0))
        truth = phase.true_ipc(POWER4_LATENCIES, mhz(650))
        err_counter = abs(
            CounterPredictor(POWER4_LATENCIES).predict_ipc(sample, mhz(650))
            - truth)
        err_alpha = abs(
            AlphaPredictor(POWER4_LATENCIES, alpha=phase.alpha)
            .predict_ipc(sample, mhz(650)) - truth)
        assert err_counter < err_alpha

    def test_thin_window_returns_none(self):
        predictor = AlphaPredictor(POWER4_LATENCIES, alpha=2.0)
        sample = CounterSample(time_s=0.1, interval_s=0.1, instructions=10,
                               cycles=100, n_l2=0, n_l3=0, n_mem=0,
                               l1_stall_cycles=0, halted_cycles=0)
        assert predictor.signature_from_sample(sample) is None
