"""The parallel execution engine: determinism, caching, telemetry.

The contract under test is the ISSUE's acceptance surface: ``--jobs N``
output byte-identical to ``--jobs 1``, warm-cache reruns byte-identical
to cold runs, cache invalidation on kwargs/seed/source change, and the
``exec_*`` counters flowing through the standard exporters.
"""

import json

import pytest

from repro import validation
from repro.digest import build_digest
from repro.errors import ExperimentError
from repro.exec import (
    ParallelRunner,
    ResultCache,
    cache_key,
    configure,
    configured_jobs,
    effective_jobs,
    parallel_map,
    source_fingerprint,
)
from repro.experiments import run_experiment
from repro.telemetry import (
    Telemetry,
    prometheus_text,
    use_telemetry,
    write_metrics_jsonl,
)

CHEAP_IDS = ["worked_example", "table1", "fig1"]


def _square(x):
    return x * x


@pytest.fixture(autouse=True)
def _serial_default():
    """Tests that call configure() must not leak a global job count."""
    yield
    configure(1)


class TestPool:
    def test_parallel_map_preserves_order(self):
        assert parallel_map(_square, range(8), jobs=3) == \
            [x * x for x in range(8)]

    def test_serial_when_jobs_one(self):
        assert parallel_map(_square, range(4)) == [0, 1, 4, 9]

    def test_configure_governs_default_width(self):
        configure(5)
        assert configured_jobs() == 5
        assert effective_jobs() == 5
        assert effective_jobs(2) == 2

    def test_worker_guard_forces_serial(self, monkeypatch):
        monkeypatch.setenv("FVSST_POOL_WORKER", "1")
        assert effective_jobs(8) == 1

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            configure(0)


class TestCacheKey:
    def test_stable_within_process(self):
        kwargs = {"seed": 1, "fast": True}
        assert cache_key("fig1", kwargs) == cache_key("fig1", kwargs)

    def test_changes_with_seed_fast_and_id(self):
        base = cache_key("fig1", {"seed": 1, "fast": True})
        assert cache_key("fig1", {"seed": 2, "fast": True}) != base
        assert cache_key("fig1", {"seed": 1, "fast": False}) != base
        assert cache_key("fig4", {"seed": 1, "fast": True}) != base

    def test_fingerprint_is_stable_hex(self):
        fp = source_fingerprint()
        assert fp == source_fingerprint()
        assert len(fp) == 64
        assert all(c in "0123456789abcdef" for c in fp)

    def test_unencodable_kwargs_raise(self):
        with pytest.raises(ExperimentError):
            cache_key("fig1", {"seed": object()})


class TestResultCache:
    def test_roundtrip_renders_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("worked_example", seed=3, fast=True)
        kwargs = {"seed": 3, "fast": True}
        assert cache.get("worked_example", kwargs) is None
        cache.put("worked_example", kwargs, result)
        again = cache.get("worked_example", kwargs)
        assert again is not None
        assert again.render() == result.render()

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("worked_example", seed=3, fast=True)
        cache.put("worked_example", {"seed": 3, "fast": True}, result)
        assert cache.get("worked_example", {"seed": 4, "fast": True}) is None
        assert cache.get("worked_example", {"seed": 3, "fast": False}) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = {"seed": 3, "fast": True}
        result = run_experiment("worked_example", seed=3, fast=True)
        path = cache.put("worked_example", kwargs, result)
        path.write_text("{not json")
        assert cache.get("worked_example", kwargs) is None


class TestParallelRunner:
    def test_jobs_byte_identical(self):
        serial = ParallelRunner(jobs=1).run_many(CHEAP_IDS, seed=7, fast=True)
        pooled = ParallelRunner(jobs=3).run_many(CHEAP_IDS, seed=7, fast=True)
        assert list(serial) == list(pooled) == CHEAP_IDS
        for eid in CHEAP_IDS:
            assert serial[eid].render() == pooled[eid].render()

    def test_warm_cache_byte_identical_with_counters(self, tmp_path):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            cold = ParallelRunner(jobs=1, cache_dir=tmp_path).run_many(
                CHEAP_IDS, seed=7, fast=True)
            warm = ParallelRunner(jobs=1, cache_dir=tmp_path).run_many(
                CHEAP_IDS, seed=7, fast=True)
        for eid in CHEAP_IDS:
            assert cold[eid].render() == warm[eid].render()

        text = prometheus_text(telemetry.metrics)
        assert f"exec_cache_hits_total {len(CHEAP_IDS)}" in text
        assert f"exec_cache_misses_total {len(CHEAP_IDS)}" in text
        assert f"exec_pool_tasks_total {len(CHEAP_IDS)}" in text
        assert "exec_pool_workers" in text

        jsonl = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(telemetry.metrics, jsonl)
        snapshot = json.loads(jsonl.read_text())["snapshot"]
        assert {"exec_cache_hits_total", "exec_cache_misses_total",
                "exec_pool_tasks_total", "exec_pool_workers"} <= set(snapshot)

    def test_duplicate_ids_run_once(self, tmp_path):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            runner = ParallelRunner(jobs=1, cache_dir=tmp_path)
            results = runner.run_many(["table1", "table1"], seed=1, fast=True)
        assert list(results) == ["table1"]
        assert telemetry.metrics.counter("exec_pool_tasks_total").value == 1


class TestDigestIntegration:
    @pytest.fixture()
    def small_validation(self, monkeypatch):
        """Shrink the validation suite so digest builds stay cheap."""
        small = tuple(e for e in validation.EXPECTATIONS
                      if e.experiment_id in ("worked_example", "table1"))
        assert small
        monkeypatch.setattr(validation, "EXPECTATIONS", small)

    def test_digest_jobs_and_cache_byte_identical(self, tmp_path,
                                                  small_validation):
        ids = ("worked_example", "table1")
        cold = build_digest(fast=True, experiment_ids=ids, jobs=1,
                            cache_dir=tmp_path / "cache")
        pooled = build_digest(fast=True, experiment_ids=ids, jobs=3)
        warm = build_digest(fast=True, experiment_ids=ids, jobs=1,
                            cache_dir=tmp_path / "cache")
        assert cold == pooled == warm

    def test_digest_cache_invalidates_on_seed_change(self, tmp_path,
                                                     small_validation):
        ids = ("worked_example",)
        cache = tmp_path / "cache"
        build_digest(fast=True, experiment_ids=ids, cache_dir=cache)
        entries = set(cache.glob("*.json"))
        build_digest(fast=True, experiment_ids=ids, cache_dir=cache,
                     seed=999)
        assert set(cache.glob("*.json")) > entries
