"""The footnote-1 best/worst-case latency bound predictor."""

import pytest

from repro.errors import ModelError
from repro.model.bounds import (
    LatencyBounds,
    PredictionInterval,
    predict_ipc_bounds,
)
from repro.model.ipc import MemoryCounts, predict_ipc
from repro.model.latency import POWER4_LATENCIES
from repro.units import ghz

COUNTS = MemoryCounts(instructions=1e6, n_l2=5e3, n_l3=1e3, n_mem=2e3,
                      l1_stall_cycles=1e5)


class TestLatencyBounds:
    def test_from_nominal_symmetric(self):
        bounds = LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.2)
        assert bounds.best.t_mem_s == pytest.approx(
            0.8 * POWER4_LATENCIES.t_mem_s
        )
        assert bounds.worst.t_mem_s == pytest.approx(
            1.2 * POWER4_LATENCIES.t_mem_s
        )

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ModelError):
            LatencyBounds(best=POWER4_LATENCIES.scaled(1.5),
                          worst=POWER4_LATENCIES)

    @pytest.mark.parametrize("spread", [0.0, 1.0, 1.5])
    def test_bad_spread_rejected(self, spread):
        with pytest.raises(Exception):
            LatencyBounds.from_nominal(POWER4_LATENCIES, spread=spread)


class TestPredictionInterval:
    def test_ordering_enforced(self):
        with pytest.raises(ModelError):
            PredictionInterval(low=1.0, high=0.5)

    def test_midpoint_and_width(self):
        iv = PredictionInterval(low=0.4, high=0.8)
        assert iv.midpoint == pytest.approx(0.6)
        assert iv.width == pytest.approx(0.4)
        assert iv.contains(0.5) and not iv.contains(0.9)


class TestPredictIpcBounds:
    def test_interval_brackets_nominal_prediction(self):
        bounds = LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.3)
        f = ghz(0.65)
        iv = predict_ipc_bounds(COUNTS, bounds, f, alpha=2.0)
        nominal = predict_ipc(COUNTS, POWER4_LATENCIES, f, alpha=2.0)
        assert iv.low < nominal < iv.high

    def test_interval_brackets_any_profile_inside(self):
        bounds = LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.3)
        f = ghz(0.8)
        iv = predict_ipc_bounds(COUNTS, bounds, f, alpha=2.0)
        for scale in (0.75, 0.9, 1.0, 1.15, 1.29):
            inside = predict_ipc(COUNTS, POWER4_LATENCIES.scaled(scale), f,
                                 alpha=2.0)
            assert iv.contains(inside)

    def test_wider_spread_wider_interval(self):
        f = ghz(0.5)
        narrow = predict_ipc_bounds(
            COUNTS, LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.1),
            f, alpha=2.0)
        wide = predict_ipc_bounds(
            COUNTS, LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.4),
            f, alpha=2.0)
        assert wide.width > narrow.width

    def test_interval_collapses_for_cpu_bound_work(self):
        # With no memory accesses, latency uncertainty is irrelevant.
        cpu_counts = MemoryCounts(instructions=1e6)
        bounds = LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.5)
        iv = predict_ipc_bounds(cpu_counts, bounds, ghz(1.0), alpha=2.0)
        assert iv.width == pytest.approx(0.0, abs=1e-12)
