"""Cluster protocol, agents, and the global coordinator."""

import pytest

from repro.cluster.agent import NodeAgent
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.protocol import (
    FrequencyCommand,
    NodeReport,
    ProcReport,
    message_size_bytes,
)
from repro.errors import ClusterError
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.sim.node import ClusterNode
from repro.units import ghz, mhz
from repro.workloads.tiers import tiered_cluster_assignment


def proc_report(proc=0, instr=1e6) -> ProcReport:
    return ProcReport(proc_id=proc, instructions=instr, cycles=1e6,
                      n_l2=0, n_l3=0, n_mem=0, l1_stall_cycles=0,
                      halted_cycles=0, interval_s=0.1, idle_signaled=False)


def quiet_cluster(nodes=2, procs=2, seed=0) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=seed,
    )


class TestProtocol:
    def test_report_size_scales_with_procs(self):
        one = NodeReport(node_id=0, time_s=0.0, procs=(proc_report(0),))
        two = NodeReport(node_id=0, time_s=0.0,
                         procs=(proc_report(0), proc_report(1)))
        assert message_size_bytes(two) > message_size_bytes(one)

    def test_duplicate_procs_rejected(self):
        with pytest.raises(ClusterError):
            NodeReport(node_id=0, time_s=0.0,
                       procs=(proc_report(0), proc_report(0)))

    def test_command_vector_lengths_checked(self):
        with pytest.raises(ClusterError):
            FrequencyCommand(node_id=0, time_s=0.0,
                             freqs_hz=(ghz(1.0),), voltages=(1.3, 1.2))

    def test_unknown_message_type(self):
        with pytest.raises(ClusterError):
            message_size_bytes("junk")  # type: ignore[arg-type]


class TestNodeAgent:
    def test_report_aggregates_window_and_clears_on_confirm(self):
        cluster = quiet_cluster(nodes=1)
        node = cluster.nodes[0]
        agent = NodeAgent(node, counter_noise_sigma=0.0, seed=1)
        sim = Simulation(cluster.machines)
        agent.attach(sim)
        sim.run_for(0.1)
        report = agent.make_report(sim.now_s)
        assert len(report.procs) == 2
        assert report.procs[0].instructions > 0
        # Windows survive until delivery is confirmed: an unconfirmed
        # report is superseded, not destroyed.
        resend = agent.make_report(sim.now_s)
        assert resend.procs[0].instructions == report.procs[0].instructions
        agent.confirm_report()
        empty = agent.make_report(sim.now_s)
        assert empty.procs[0].instructions == 0.0

    def test_apply_command_sets_frequencies(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        command = FrequencyCommand(node_id=0, time_s=0.0,
                                   freqs_hz=(mhz(650), mhz(500)),
                                   voltages=(1.0, 0.9))
        agent.apply_command(command, 0.0)
        assert cluster.nodes[0].machine.frequency_vector_hz() == [
            mhz(650), mhz(500)
        ]

    def test_misrouted_command_rejected(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        command = FrequencyCommand(node_id=7, time_s=0.0,
                                   freqs_hz=(ghz(1.0), ghz(1.0)),
                                   voltages=(1.3, 1.3))
        with pytest.raises(ClusterError):
            agent.apply_command(command, 0.0)

    def test_wrong_width_command_rejected(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        command = FrequencyCommand(node_id=0, time_s=0.0,
                                   freqs_hz=(ghz(1.0),), voltages=(1.3,))
        with pytest.raises(ClusterError):
            agent.apply_command(command, 0.0)

    def test_double_attach_rejected(self):
        cluster = quiet_cluster(nodes=1)
        agent = NodeAgent(cluster.nodes[0], seed=1)
        sim = Simulation(cluster.machines)
        agent.attach(sim)
        with pytest.raises(ClusterError):
            agent.attach(sim)


class TestCoordinator:
    def _run(self, budget, *, seconds=1.0, nodes=2, procs=2):
        cluster = quiet_cluster(nodes=nodes, procs=procs)
        cluster.assign_all(tiered_cluster_assignment(
            nodes, procs, web_nodes=0, app_nodes=1))
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(power_limit_w=budget, counter_noise_sigma=0.0),
            seed=5,
        )
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(seconds)
        return cluster, coord, sim

    def test_diversity_visible_in_schedule(self):
        cluster, coord, _sim = self._run(None)
        # app node stays fast, db node saturates low.
        app = cluster.nodes[0].machine.frequency_vector_hz()
        db = cluster.nodes[1].machine.frequency_vector_hz()
        assert min(app) >= mhz(900)
        assert max(db) <= mhz(750)

    def test_global_budget_respected(self):
        budget = 300.0
        cluster, coord, _sim = self._run(budget, seconds=2.0)
        assert coord.last_schedule.total_power_w <= budget
        assert cluster.cpu_power_w() <= budget + 1e-9

    def test_commands_arrive_with_network_delay(self):
        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=5)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(0.1)   # global pass fires at t = 0.1
        schedule = coord.last_schedule
        assert schedule is not None
        # The command applies strictly after the pass time.
        base = cluster.network.config.base_latency_s
        assert cluster.network.messages_sent >= 3
        assert base > 0

    def test_limit_trigger_runs_immediate_pass(self):
        cluster, coord, sim = self._run(None, seconds=0.5)
        before = cluster.cpu_power_w()
        coord.set_power_limit(300.0, sim.now_s)
        sim.run_for(0.01)  # let delayed commands land
        assert cluster.cpu_power_w() <= 300.0 < before

    def test_log_covers_every_processor(self):
        cluster, coord, _sim = self._run(None)
        procs = {(e.node_id, e.proc_id) for e in coord.log.schedule_entries}
        assert procs == {(n, p) for n in range(2) for p in range(2)}

    def test_double_attach_rejected(self):
        cluster = quiet_cluster(nodes=1)
        coord = ClusterCoordinator(cluster, seed=5)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        with pytest.raises(ClusterError):
            coord.attach(sim)

    def test_t_less_than_sample_rejected(self):
        with pytest.raises(ClusterError):
            CoordinatorConfig(sample_period_s=0.1, schedule_period_s=0.05)
