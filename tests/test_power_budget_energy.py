"""Budgets, compliance monitoring and energy accounting."""

import pytest

from repro.errors import BudgetError, SimulationError
from repro.power.budget import ComplianceMonitor, PowerBudget
from repro.power.energy import EnergyAccumulator, EnergyLedger


class TestPowerBudget:
    def test_planning_limit_applies_margin(self):
        b = PowerBudget(limit_w=300.0, margin=0.1)
        assert b.planning_limit_w == pytest.approx(270.0)

    def test_allows_vs_plans_for(self):
        b = PowerBudget(limit_w=300.0, margin=0.1)
        assert b.allows(280.0) and not b.plans_for(280.0)
        assert b.plans_for(260.0)

    def test_with_limit_keeps_margin(self):
        b = PowerBudget(limit_w=300.0, margin=0.1).with_limit(200.0)
        assert b.limit_w == 200.0 and b.margin == 0.1

    def test_bad_margin_rejected(self):
        with pytest.raises(Exception):
            PowerBudget(limit_w=300.0, margin=1.0)

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(Exception):
            PowerBudget(limit_w=0.0)


class TestComplianceMonitor:
    def test_records_and_classifies(self):
        m = ComplianceMonitor(PowerBudget(limit_w=480.0))
        assert m.observe(0.0, 400.0).compliant
        rec = m.observe(0.1, 500.0)
        assert not rec.compliant and rec.excess_w == pytest.approx(20.0)
        assert m.violation_fraction == pytest.approx(0.5)
        assert m.max_excess_w() == pytest.approx(20.0)

    def test_response_time_after_budget_change(self):
        m = ComplianceMonitor(PowerBudget(limit_w=960.0))
        m.observe(0.0, 746.0)
        m.set_budget(PowerBudget(limit_w=480.0), 1.0)
        m.observe(1.01, 746.0)
        m.observe(1.05, 470.0)
        assert m.response_time_s() == pytest.approx(0.05)

    def test_response_time_none_without_change(self):
        m = ComplianceMonitor(PowerBudget(limit_w=480.0))
        m.observe(0.0, 400.0)
        assert m.response_time_s() is None

    def test_response_time_none_if_never_compliant(self):
        m = ComplianceMonitor(PowerBudget(limit_w=480.0))
        m.set_budget(PowerBudget(limit_w=100.0), 0.0)
        m.observe(0.1, 400.0)
        assert m.response_time_s() is None

    def test_settling_allowance_grace_periods_violations(self):
        m = ComplianceMonitor(PowerBudget(limit_w=480.0),
                              settling_allowance_s=0.2)
        m.set_budget(PowerBudget(limit_w=480.0), 1.0)
        m.observe(1.1, 700.0)   # graced
        m.observe(1.5, 700.0)   # violation
        assert len(m.violations) == 1
        assert m.violations[0].time_s == pytest.approx(1.5)


class TestEnergyAccumulator:
    def test_piecewise_constant_integration(self):
        acc = EnergyAccumulator()
        acc.advance_to(2.0, 100.0)
        acc.advance_to(3.0, 50.0)
        assert acc.energy_j == pytest.approx(250.0)
        assert acc.elapsed_s == pytest.approx(3.0)
        assert acc.average_power_w == pytest.approx(250.0 / 3.0)

    def test_zero_duration_before_time_passes(self):
        assert EnergyAccumulator().average_power_w == 0.0

    def test_time_reversal_rejected(self):
        acc = EnergyAccumulator()
        acc.advance_to(1.0, 10.0)
        with pytest.raises(SimulationError):
            acc.advance_to(0.5, 10.0)


class TestEnergyLedger:
    def test_accounts_share_timeline(self):
        ledger = EnergyLedger()
        ledger.advance_to(1.0, {"core0": 140.0, "non_cpu": 186.0})
        ledger.advance_to(2.0, {"core0": 57.0})
        assert ledger.energy_of("core0") == pytest.approx(197.0)
        # non_cpu advanced at zero power in the second interval.
        assert ledger.energy_of("non_cpu") == pytest.approx(186.0)
        assert ledger.total_energy_j == pytest.approx(197.0 + 186.0)

    def test_missing_account_reads_zero(self):
        assert EnergyLedger().energy_of("nope") == 0.0

    def test_normalisation_against_baseline(self):
        fvsst, base = EnergyLedger(), EnergyLedger()
        fvsst.advance_to(1.0, {"core0": 57.0})
        base.advance_to(1.0, {"core0": 140.0})
        ratios = fvsst.normalized_against(base)
        assert ratios["core0"] == pytest.approx(57.0 / 140.0)

    def test_normalisation_needs_baseline_energy(self):
        fvsst, base = EnergyLedger(), EnergyLedger()
        fvsst.advance_to(1.0, {"core0": 57.0})
        with pytest.raises(SimulationError):
            fvsst.normalized_against(base)
