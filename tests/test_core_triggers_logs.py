"""Trigger bus and fvsst logs."""

import numpy as np
import pytest

from repro.core.logs import CounterLogEntry, FvsstLog, ScheduleLogEntry
from repro.core.triggers import IdleTransition, PowerLimitChange, TriggerBus
from repro.errors import ExperimentError, SchedulingError
from repro.sim.counters import CounterSample
from repro.units import ghz, mhz


class TestTriggerBus:
    def test_publish_to_subscribers(self):
        bus = TriggerBus()
        got = []
        bus.subscribe(PowerLimitChange, got.append)
        trigger = PowerLimitChange(time_s=1.0, new_limit_w=294.0)
        assert bus.publish(trigger) == 1
        assert got == [trigger]
        assert bus.history == [trigger]

    def test_types_are_routed_separately(self):
        bus = TriggerBus()
        limits, idles = [], []
        bus.subscribe(PowerLimitChange, limits.append)
        bus.subscribe(IdleTransition, idles.append)
        bus.publish(IdleTransition(time_s=0.0, node_id=0, proc_id=1,
                                   is_idle=True))
        assert len(limits) == 0 and len(idles) == 1

    def test_none_limit_lifts(self):
        t = PowerLimitChange(time_s=0.0, new_limit_w=None)
        assert t.new_limit_w is None

    def test_unknown_type_rejected(self):
        bus = TriggerBus()
        with pytest.raises(SchedulingError):
            bus.subscribe(str, lambda t: None)
        with pytest.raises(SchedulingError):
            bus.publish("not a trigger")  # type: ignore[arg-type]


def sample(instr=1e6, cycles=1e6, t=0.0, interval=0.01) -> CounterSample:
    return CounterSample(time_s=t, interval_s=interval, instructions=instr,
                         cycles=cycles, n_l2=0, n_l3=0, n_mem=0,
                         l1_stall_cycles=0, halted_cycles=0)


def sched_entry(t, freq, eps=None, predicted_ipc=1.0, proc=0):
    return ScheduleLogEntry(
        time_s=t, node_id=0, proc_id=proc, freq_hz=freq,
        eps_freq_hz=eps if eps is not None else freq, voltage=1.3,
        power_w=100.0, predicted_loss=0.0, predicted_ipc=predicted_ipc,
        power_limit_w=None, infeasible=False,
    )


class TestFvsstLogSeries:
    def test_ipc_series(self):
        log = FvsstLog()
        for i in range(3):
            log.record_sample(CounterLogEntry(
                time_s=0.01 * (i + 1), node_id=0, proc_id=0,
                sample=sample(instr=(i + 1) * 1e5, cycles=1e6),
            ))
        t, ipc = log.ipc_series(0, 0)
        np.testing.assert_allclose(ipc, [0.1, 0.2, 0.3])
        assert t[0] == pytest.approx(0.01)

    def test_frequency_series_actual_vs_desired(self):
        log = FvsstLog()
        log.record_schedule(sched_entry(0.1, mhz(750), eps=mhz(900)))
        log.record_schedule(sched_entry(0.2, mhz(750), eps=mhz(850)))
        _, actual = log.frequency_series(0, 0)
        _, desired = log.frequency_series(0, 0, desired=True)
        np.testing.assert_allclose(actual, [mhz(750), mhz(750)])
        np.testing.assert_allclose(desired, [mhz(900), mhz(850)])

    def test_power_series_sums_processors(self):
        log = FvsstLog()
        log.record_schedule(sched_entry(0.1, ghz(1.0), proc=0))
        log.record_schedule(sched_entry(0.1, ghz(1.0), proc=1))
        t, p = log.power_series()
        assert list(t) == [0.1]
        assert p[0] == pytest.approx(200.0)

    def test_per_processor_filtering(self):
        log = FvsstLog()
        log.record_schedule(sched_entry(0.1, ghz(1.0), proc=0))
        log.record_schedule(sched_entry(0.1, mhz(650), proc=1))
        assert len(log.schedules_of(0, 0)) == 1
        assert log.schedules_of(0, 1)[0].freq_hz == mhz(650)


class TestResidency:
    def test_fractions_sum_to_one(self):
        log = FvsstLog()
        for t, f in [(0.1, mhz(650)), (0.2, mhz(650)), (0.3, ghz(1.0)),
                     (0.4, mhz(650))]:
            log.record_schedule(sched_entry(t, f))
        res = log.frequency_residency(0, 0)
        assert sum(res.values()) == pytest.approx(1.0)
        assert res[mhz(650)] == pytest.approx(0.75)

    def test_empty_residency_raises(self):
        with pytest.raises(ExperimentError):
            FvsstLog().frequency_residency(0, 0)


class TestPredictionScoring:
    def _log_with_pairs(self):
        log = FvsstLog()
        # Decision at t=0.1 predicting IPC 1.0; window samples measure 0.8.
        log.record_schedule(sched_entry(0.1, ghz(1.0), predicted_ipc=1.0))
        log.record_sample(CounterLogEntry(
            time_s=0.15, node_id=0, proc_id=0,
            sample=sample(instr=8e5, cycles=1e6)))
        log.record_schedule(sched_entry(0.2, ghz(1.0), predicted_ipc=0.5))
        log.record_sample(CounterLogEntry(
            time_s=0.25, node_id=0, proc_id=0,
            sample=sample(instr=5e5, cycles=1e6)))
        return log

    def test_pairs_align_decisions_with_following_window(self):
        pairs = self._log_with_pairs().prediction_pairs(0, 0)
        assert len(pairs) == 2
        assert pairs[0][1] == 1.0 and pairs[0][2] == pytest.approx(0.8)
        assert pairs[1][1] == 0.5 and pairs[1][2] == pytest.approx(0.5)

    def test_deviation_is_mean_absolute(self):
        log = self._log_with_pairs()
        assert log.ipc_deviation(0, 0) == pytest.approx((0.2 + 0.0) / 2)

    def test_edge_skipping(self):
        log = self._log_with_pairs()
        assert log.ipc_deviation(0, 0, skip_head=1) == pytest.approx(0.0)
        assert log.ipc_deviation(0, 0, skip_tail=1) == pytest.approx(0.2)

    def test_all_skipped_raises(self):
        with pytest.raises(ExperimentError):
            self._log_with_pairs().ipc_deviation(0, 0, skip_head=5)

    def test_none_predictions_excluded(self):
        log = FvsstLog()
        log.record_schedule(sched_entry(0.1, ghz(1.0), predicted_ipc=None))
        log.record_sample(CounterLogEntry(
            time_s=0.15, node_id=0, proc_id=0, sample=sample()))
        assert log.prediction_pairs(0, 0) == []
