"""Validation harness, masking and sensitivity experiments."""

import pytest

from repro.experiments import run_experiment
from repro.validation import (
    CheckKind,
    Expectation,
    run_validation,
)


class TestValidationSuite:
    @pytest.fixture(scope="class")
    def report(self):
        return run_validation(fast=True)

    def test_everything_passes(self, report):
        assert report.passed, report.render()

    def test_documented_divergences_present_and_flagged(self, report):
        divergent = [o for o in report.outcomes
                     if o.expectation.kind is
                     CheckKind.DOCUMENTED_DIVERGENCE]
        assert len(divergent) >= 3
        # Each documented divergence really does diverge from the paper
        # value (otherwise it should be promoted to must_hold).
        for o in divergent:
            paper = o.expectation.paper_value
            if paper is not None:
                assert not (o.expectation.low <= paper
                            <= o.expectation.high) or \
                    abs(o.measured - paper) > 0.01

    def test_render_contains_status_column(self, report):
        text = report.render()
        assert "PASS" in text and "status" in text

    def test_failure_detection(self):
        impossible = Expectation(
            "table1", "impossible", None,
            lambda r: float(r.tables[0].column("Power (W)")[-1]),
            0.0, 1.0,
        )
        report = run_validation(fast=True, expectations=(impossible,))
        assert not report.passed
        assert len(report.failures) == 1


class TestMaskingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("masking", fast=True)

    def test_alone_no_loss(self, result):
        assert result.scalars["victim_loss_alone"] < 0.02

    def test_crowding_inflates_individual_loss(self, result):
        assert result.scalars["victim_loss_crowded"] > 0.10

    def test_loss_monotone_in_companions(self, result):
        losses = result.tables[0].column("victim_loss")
        assert losses == sorted(losses)

    def test_modal_frequency_decreases(self, result):
        modes = result.tables[0].column("modal_freq_mhz")
        assert modes[0] > modes[-1]


class TestSensitivityExperiments:
    def test_latency_miscalibration_shapes(self):
        r = run_experiment("sensitivity_latency", fast=True)
        table = r.tables[0]
        scales = table.column("latency_scale")
        perf = dict(zip(scales, table.column("norm_performance")))
        energy = dict(zip(scales, table.column("norm_energy")))
        # Overestimating latencies costs performance...
        assert perf[2.0] < perf[1.0]
        # ...and underestimating wastes energy.
        assert energy[0.5] > energy[1.0]

    def test_noise_sweep_deviation_monotoneish(self):
        r = run_experiment("sensitivity_noise", fast=True)
        deviations = r.tables[0].column("ipc_deviation")
        assert deviations[-1] > deviations[0]
        perf = r.tables[0].column("norm_performance")
        assert all(v > 0.9 for v in perf)
