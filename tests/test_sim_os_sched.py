"""The round-robin dispatcher."""

import pytest

from repro.errors import SimulationError
from repro.sim.os_sched import Dispatcher, balance_initial
from repro.workloads.job import Job
from repro.workloads.phase import Phase


def job(name="j", instructions=1e6) -> Job:
    return Job(name=name,
               phases=(Phase(name="p", instructions=instructions, alpha=1.0),))


class TestQueueing:
    def test_empty_dispatcher_idles(self):
        d = Dispatcher()
        assert d.current_job() is None
        assert d.runnable == 0

    def test_fifo_initial_order(self):
        d = Dispatcher()
        a, b = job("a"), job("b")
        d.add_job(a)
        d.add_job(b)
        assert d.current_job() is a

    def test_completed_job_rejected(self):
        d = Dispatcher()
        j = job()
        j.mark_started(0.0)
        j.retire(1e6, 1.0)
        with pytest.raises(SimulationError):
            d.add_job(j)


class TestSliceLimits:
    def test_sole_job_never_preempted(self):
        d = Dispatcher(quantum_s=0.010)
        d.add_job(job())
        assert d.slice_limit_s() == float("inf")

    def test_multiprogrammed_limited_by_quantum(self):
        d = Dispatcher(quantum_s=0.010)
        d.add_job(job("a"))
        d.add_job(job("b"))
        assert d.slice_limit_s() == pytest.approx(0.010)


class TestRotation:
    def test_quantum_expiry_rotates(self):
        d = Dispatcher(quantum_s=0.010)
        a, b = job("a"), job("b")
        d.add_job(a)
        d.add_job(b)
        d.account_run(a, 0.010, 0.010)
        assert d.current_job() is b

    def test_partial_quantum_no_rotation(self):
        d = Dispatcher(quantum_s=0.010)
        a, b = job("a"), job("b")
        d.add_job(a)
        d.add_job(b)
        d.account_run(a, 0.004, 0.004)
        assert d.current_job() is a
        d.account_run(a, 0.006, 0.010)
        assert d.current_job() is b

    def test_completion_retires_job(self):
        d = Dispatcher(quantum_s=0.010)
        a, b = job("a", instructions=100), job("b")
        d.add_job(a)
        d.add_job(b)
        a.mark_started(0.0)
        a.retire(100, 0.001)          # a completes
        d.account_run(a, 0.001, 0.001)
        assert d.current_job() is b
        assert d.finished == [a]

    def test_accounting_wrong_job_rejected(self):
        d = Dispatcher()
        a, b = job("a"), job("b")
        d.add_job(a)
        d.add_job(b)
        with pytest.raises(SimulationError):
            d.account_run(b, 0.001, 0.001)

    def test_negative_time_rejected(self):
        d = Dispatcher()
        a = job("a")
        d.add_job(a)
        with pytest.raises(SimulationError):
            d.account_run(a, -0.001, 0.0)


class TestBalanceInitial:
    def test_round_robin_assignment(self):
        jobs = [job(f"j{i}") for i in range(5)]
        assignment = balance_initial(jobs, 2)
        assert [j.name for j in assignment[0]] == ["j0", "j2", "j4"]
        assert [j.name for j in assignment[1]] == ["j1", "j3"]

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            balance_initial([job()], 0)
