"""Network model, cluster nodes and cluster container."""

import pytest

from repro.errors import ClusterError
from repro.sim.cluster import Cluster
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import ClusterNode
from repro.units import ghz
from repro.workloads.tiers import tiered_cluster_assignment


class TestNetwork:
    def test_delay_components(self):
        net = Network(NetworkConfig(base_latency_s=1e-4, per_byte_s=1e-8))
        assert net.delay_for(0) == pytest.approx(1e-4)
        assert net.delay_for(1000) == pytest.approx(1e-4 + 1e-5)

    def test_accounting(self):
        net = Network()
        net.send(100)
        net.send(200)
        assert net.messages_sent == 2
        assert net.bytes_sent == 300

    def test_round_trip_counts_two_messages(self):
        net = Network()
        delay = net.round_trip_s(100, 50)
        assert net.messages_sent == 2
        assert delay > net.config.base_latency_s

    def test_negative_payload_rejected(self):
        with pytest.raises(ClusterError):
            Network().delay_for(-1)


class TestClusterNode:
    def test_build_and_power(self):
        node = ClusterNode.build(3, config=MachineConfig(num_cores=2),
                                 seed=1)
        assert node.node_id == 3
        assert node.num_procs == 2
        assert node.cpu_power_w() == pytest.approx(280.0)

    def test_negative_id_rejected(self):
        with pytest.raises(ClusterError):
            ClusterNode.build(-1)


class TestCluster:
    def test_homogeneous_construction(self):
        cl = Cluster.homogeneous(3, machine_config=MachineConfig(num_cores=2),
                                 seed=0)
        assert len(cl) == 3
        assert cl.total_procs == 6
        assert cl.cpu_power_w() == pytest.approx(6 * 140.0)

    def test_node_lookup(self):
        cl = Cluster.homogeneous(2, seed=0)
        assert cl.node(1).node_id == 1
        with pytest.raises(ClusterError):
            cl.node(9)

    def test_duplicate_node_ids_rejected(self):
        a = ClusterNode.build(0, config=MachineConfig(num_cores=1))
        b = ClusterNode.build(0, config=MachineConfig(num_cores=1))
        with pytest.raises(ClusterError):
            Cluster([a, b])

    def test_assign_all_shape_checked(self):
        cl = Cluster.homogeneous(2, machine_config=MachineConfig(num_cores=1),
                                 seed=0)
        with pytest.raises(ClusterError):
            cl.assign_all([[]])  # wrong node count

    def test_assign_all_capacity_checked(self):
        cl = Cluster.homogeneous(1, machine_config=MachineConfig(num_cores=1),
                                 seed=0)
        jobs = tiered_cluster_assignment(1, 2)
        with pytest.raises(ClusterError):
            cl.assign_all(jobs)

    def test_tiered_assignment_runs(self):
        cl = Cluster.homogeneous(3, machine_config=MachineConfig(num_cores=2),
                                 seed=0)
        cl.assign_all(tiered_cluster_assignment(3, 2, web_nodes=1,
                                                app_nodes=1))
        sim = Simulation(cl.machines)
        sim.run_for(0.5)
        for node in cl.nodes:
            for core in node.machine.cores:
                assert core.counters.instructions > 0

    def test_seeded_reproducibility(self):
        def run(seed):
            cl = Cluster.homogeneous(
                2, machine_config=MachineConfig(num_cores=1), seed=seed
            )
            cl.assign_all(tiered_cluster_assignment(2, 1, web_nodes=1,
                                                    app_nodes=0))
            sim = Simulation(cl.machines)
            sim.run_for(0.5)
            return [n.machine.core(0).counters.instructions
                    for n in cl.nodes]

        assert run(7) == run(7)

    def test_machines_accessor(self):
        cl = Cluster.homogeneous(2, seed=0)
        assert len(cl.machines) == 2
        assert cl.machines[0].table.f_max_hz == ghz(1.0)
