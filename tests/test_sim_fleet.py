"""The fleet-wide columnar kernel reproduces the per-machine path bit-for-bit.

:func:`repro.sim.fleet.advance_fleet` advances every eligible core in the
cluster through shared numpy columns; this file replays identical scenarios
through three paths — the fleet columns, the per-machine kernel
(``set_fleet_enabled(False)``), and the literal ``machine.advance`` loop —
and asserts *exact* float equality of every piece of machine state.  No
tolerances anywhere: one reordered IEEE operation fails the suite.

Coverage: randomized heterogeneous fleets (busy / hot-idle / halted /
offline / chunked multi-job cores, with and without latency jitter),
banked machines chunk-walked through the columns with cascades firing
mid-span, raising cascades and shared banks forcing counted fallbacks,
jitter-lane draw-order equivalence including mid-span buffer refills and
sigma changes between spans, telemetry-on runs staying resident with
identical event streams, subclassed-hook machines forcing the counted
fallback, invalidation through every mutator between spans, lazy-flush
snapshots mid-run, and the ``lossy`` / ``crash`` / ``chaos`` fault
scenarios run end-to-end through the cluster coordinator.

Serving residency: open-loop request fleets (every request a ONCE job)
replay three ways too — arrivals and completions mid-span, queue drain to
hot idle, ``detach()``/re-attach, censored in-flight accounting, and
per-request ``elapsed_s`` stamps — and a stock serving fleet must take
*zero* fallbacks (completion is a columnar crossing, not a delegation).
"""

import numpy as np
import pytest

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.faults import fault_scenario
from repro.power.energy import EnergyAccumulator, EnergyLedger
from repro.power.supply import SupplyBank
from repro.power.table import POWER4_TABLE
from repro.sim import Cluster, CoreConfig, MachineConfig, SMPMachine, Simulation
from repro.sim import fleet as fleet_mod
from repro.sim.driver import Simulation as Driver
from repro.sim.fleet import (FleetState, advance_fleet, fallback_breakdown,
                             fleet_stats, flush_machines, reset_fleet)
from repro.sim import kernel as kernel_mod
from repro.sim.idle import IdleStyle
from repro.sim.kernel import advance_machines, fleet_enabled, set_fleet_enabled
from repro.errors import CascadeFailureError
from repro.telemetry import EVENT_PHASE_TRANSITION, Telemetry, use_telemetry
from repro.workloads.job import Job, LoopMode
from repro.workloads.server import RequestSpec
from repro.workloads.serving import FleetTrafficSource
from repro.workloads.synthetic import synthetic_phase


@pytest.fixture(autouse=True)
def _fleet_on():
    """Each test starts with the fleet kernel enabled and leaves it so."""
    set_fleet_enabled(True)
    yield
    set_fleet_enabled(True)


# -- state capture ----------------------------------------------------------------


def job_state(job):
    return (job.name, job.phase_index, job.phase_progress,
            job.instructions_retired, job.iterations, job.state,
            job.started_at_s, job.completed_at_s)


def core_state(core):
    # vars() on a resident bank carries the private flush hook; compare
    # only the counter fields themselves.
    return (core.counters.snapshot().as_tuple(), dict(core.phase_time_s),
            dict(core.freq_time_s), core._overhead_debt_s,
            core.overhead_executed_s,
            [job_state(j) for j in core.dispatcher._queue])


def machine_state(m):
    bank = None
    if m.supply_bank is not None:
        bank = (m.supply_bank.overload_since_s, m.supply_bank.cascade_count,
                [s.failed for s in m.supply_bank.supplies])
    return {
        "now": m._now_s,
        "bank": bank,
        "ledger": {name: (a.energy_j, a.last_time_s)
                   for name, a in sorted(m.ledger.accounts.items())},
        "cores": [core_state(c) for c in m.cores],
    }


def fleet_state(machines):
    return [machine_state(m) for m in machines]


# -- scenario helpers --------------------------------------------------------------


def looping_job(name, ratios, *, duration_s=0.05):
    phases = tuple(
        synthetic_phase(r, duration_s=duration_s, name=f"{name}_p{k}")
        for k, r in enumerate(ratios)
    )
    return Job(name=name, phases=phases, loop=LoopMode.LOOP)


def run_three_ways(build, script):
    """Replay ``script(machines, advance)`` through the fleet columns, the
    per-machine kernel, and the literal scalar loop; exact state equality.
    ``build()`` must be deterministic."""
    cols = build()
    script(cols, lambda dt: advance_machines(cols, dt))
    flush_machines(cols)

    set_fleet_enabled(False)
    try:
        kern = build()
        script(kern, lambda dt: advance_machines(kern, dt))
        scal = build()

        def scalar(dt):
            for m in scal:
                m.advance(dt)
        script(scal, scalar)
    finally:
        set_fleet_enabled(True)

    a, b, c = fleet_state(cols), fleet_state(kern), fleet_state(scal)
    assert a == b
    assert b == c
    return cols


def hetero_fleet(seed, n=5):
    """Machines mixing every lane kind plus a banked, jittered machine."""
    ms = []
    for i in range(n):
        style = IdleStyle.HOT_LOOP if i % 2 else IdleStyle.HALT
        sigma = 0.02 if i % 2 else 0.0
        m = SMPMachine(
            MachineConfig(num_cores=3,
                          core_config=CoreConfig(latency_jitter_sigma=sigma,
                                                 idle_style=style)),
            seed=seed + i)
        m.assign(0, looping_job(f"solo{i}", (1.0, 0.4, 0.15)))
        if i % 3 == 0:
            # Two LOOP jobs: a chunked lane (scalar core.advance per span).
            m.assign(1, looping_job(f"pair{i}a", (0.8,)))
            m.assign(1, looping_job(f"pair{i}b", (0.95, 0.3)))
        if i % 2 == 0:
            m.cores[2].offline = True
        ms.append(m)
    # One banked machine, jittered: resident, chunk-walked through the
    # columns at the supply-observation interval.
    banked = SMPMachine(
        MachineConfig(num_cores=2,
                      core_config=CoreConfig(latency_jitter_sigma=0.015)),
        supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
        seed=seed + 97)
    banked.assign(0, looping_job("banked", (0.7, 0.2)))
    ms.append(banked)
    return ms


# -- bit-for-bit equivalence -------------------------------------------------------


def test_hetero_fleet_matches_both_references():
    def script(ms, advance):
        advance(0.13)
        advance(0.0007)
        now = ms[0].now_s
        ms[0].core(0).set_frequency(POWER4_TABLE.freqs_hz[4], now)
        ms[2].core(1).set_frequency(POWER4_TABLE.freqs_hz[9], now)
        advance(0.2003)

    run_three_ways(lambda: hetero_fleet(31), script)


def test_randomized_fleets_match(subtests=None):
    for seed in (1, 17, 23, 101):
        rng = np.random.default_rng(seed)
        spans = [float(d) for d in rng.uniform(1e-4, 0.09, size=24)]
        freq_picks = [(int(rng.integers(0, 6)), int(rng.integers(0, 3)),
                       int(rng.integers(0, len(POWER4_TABLE.freqs_hz))))
                      for _ in range(6)]

        def build(seed=seed):
            return hetero_fleet(seed * 1000 + 5, n=4 + seed % 3)

        def script(ms, advance, spans=spans, picks=freq_picks):
            it = iter(picks)
            for k, dt in enumerate(spans):
                advance(dt)
                if k % 4 == 3:
                    mi, ci, fi = next(it)
                    m = ms[mi % (len(ms) - 1)]
                    m.core(ci % m.num_cores).set_frequency(
                        POWER4_TABLE.freqs_hz[fi], m.now_s)

        run_three_ways(build, script)


def test_cascade_mid_span_matches():
    """A banked machine whose supplies cascade mid-span stays *resident*:
    the chunked column walk replays the bank's observations and the
    failure and its timing are identical through the fleet path."""
    def build():
        banked = SMPMachine(
            MachineConfig(num_cores=4,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
            seed=5)
        for c in range(4):
            banked.assign(c, looping_job(f"hot{c}", (1.0,)))
        plain = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=6)
        plain.assign(0, looping_job("bg", (0.5, 0.5)))
        return [banked, plain]

    def script(ms, advance):
        advance(0.3)
        ms[0].supply_bank.fail_supply(0, now_s=ms[0].now_s)
        advance(1.2)     # overload episode runs past the cascade deadline

    before = dict(fleet_stats)
    ms = run_three_ways(build, script)
    assert ms[0].supply_bank.cascade_count > 0
    # Both machines went through columns on both spans: no fallbacks.
    assert fleet_stats["advances"] == before["advances"] + 4
    assert fleet_stats["fallbacks"] == before["fallbacks"]


def test_jitter_lanes_match_both_references():
    """Busy lanes with latency jitter advance in columns.  The block-drawn
    lognormal draws must land in the same order as the scalar path: the
    refill-64 at span start on a sigma mismatch, one draw per slice, and
    the mid-span refill-256 when a long span exhausts the buffer."""
    def build():
        ms = []
        for i in range(3):
            m = SMPMachine(
                MachineConfig(num_cores=2,
                              core_config=CoreConfig(
                                  latency_jitter_sigma=0.01 * (i + 1))),
                seed=300 + i)
            m.assign(0, looping_job(f"j{i}", (1.0, 0.5, 0.2),
                                    duration_s=0.01))
            if i == 0:
                m.assign(1, looping_job("j0b", (0.85,), duration_s=0.008))
            ms.append(m)
        return ms

    def script(ms, advance):
        advance(0.035)
        advance(1.7)      # >64 phase crossings in one span: refill-256
        now = ms[0].now_s
        ms[1].core(0).set_frequency(POWER4_TABLE.freqs_hz[6], now)
        advance(0.9)
        advance(0.0004)   # short span: at most one draw per busy lane
        advance(0.42)

    before = dict(fleet_stats)
    run_three_ways(build, script)
    assert fleet_stats["fallbacks"] == before["fallbacks"]
    assert fleet_stats["advances"] == before["advances"] + 15


def test_randomized_jitter_fleets_match():
    """Randomized spans over jittered fleets, long enough to force
    mid-span refills at random buffer offsets."""
    for seed in (3, 29):
        rng = np.random.default_rng(seed)
        spans = [float(d) for d in rng.uniform(5e-4, 0.6, size=14)]

        def build(seed=seed):
            return hetero_fleet(seed * 500 + 11, n=3 + seed % 2)

        def script(ms, advance, spans=spans):
            for k, dt in enumerate(spans):
                advance(dt)
                if k % 5 == 4:
                    m = ms[k % len(ms)]
                    m.core(0).set_frequency(
                        POWER4_TABLE.freqs_hz[(k * 3) % len(
                            POWER4_TABLE.freqs_hz)], m.now_s)

        run_three_ways(build, script)


def test_jitter_sigma_changes_between_spans():
    """Replacing ``core.config`` between spans (0 -> s, s -> s', s' -> 0)
    invalidates the lane; the scalar refill discipline (sigma mismatch at
    the next span start) replays identically through the columns."""
    def build():
        m = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=71)
        m.assign(0, looping_job("sig", (0.95, 0.3), duration_s=0.012))
        m.assign(1, looping_job("sig2", (0.6,), duration_s=0.02))
        peer = SMPMachine(
            MachineConfig(num_cores=1,
                          core_config=CoreConfig(latency_jitter_sigma=0.02)),
            seed=72)
        peer.assign(0, looping_job("peer", (0.8, 0.4), duration_s=0.015))
        return [m, peer]

    def script(ms, advance):
        advance(0.08)
        for c in ms[0].cores:
            c.config = CoreConfig(latency_jitter_sigma=0.03)
        advance(0.3)      # 0 -> sigma: refill-64 fires on the new sigma
        for c in ms[0].cores:
            c.config = CoreConfig(latency_jitter_sigma=0.011)
        advance(0.3)      # sigma -> sigma': z draws reused, js recomputed
        for c in ms[0].cores:
            c.config = CoreConfig(latency_jitter_sigma=0.0)
        advance(0.2)      # sigma -> 0: jitterless again
        advance(0.1)

    run_three_ways(build, script)


def test_mutators_between_spans_match():
    """Every invalidation hook: set_frequency, add_job, steal_time,
    offline toggles, power_scale, migrate."""
    def build():
        return hetero_fleet(77, n=4)

    def script(ms, advance):
        advance(0.05)
        m = ms[0]
        m.core(1).add_job(looping_job("late", (0.9, 0.1)))
        advance(0.04)
        m.core(1).steal_time(0.003)
        advance(0.021)
        m.core(2).offline = False
        ms[1].core(2).offline = False
        advance(0.03)
        m.core(2).offline = True
        advance(0.013)
        ms[1].core(0).power_scale = 0.5
        advance(0.017)
        job = ms[2].core(0).dispatcher._queue[0]
        ms[2].migrate(job, 0, 1, cost_s=0.002)
        advance(0.044)

    run_three_ways(build, script)


def test_once_job_machine_stays_resident_through_completion():
    """A ONCE job no longer blocks residency: completion is a columnar
    crossing (queue pop + idle fall-through mid-span), so the machine
    never delegates — before, during, or after the drain."""
    jobs = []

    def build():
        m = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=9)
        once = Job(name="once",
                   phases=[synthetic_phase(0.8, duration_s=0.02)])
        jobs.append(once)
        m.assign(0, once)
        peer = SMPMachine(
            MachineConfig(num_cores=1,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=10)
        peer.assign(0, looping_job("peer", (0.6,)))
        return [m, peer]

    def script(ms, advance):
        for _ in range(8):
            advance(0.01)   # the ONCE job completes around t=0.02
        assert jobs[-1].done
        assert jobs[-1].completed_at_s is not None

    before = dict(fleet_stats)
    ms = run_three_ways(build, script)
    # Only the first replay runs through the fleet: 8 spans x 2 machines,
    # every one resident, none delegated.
    assert fleet_stats["advances"] == before["advances"] + 16
    assert fleet_stats["fallbacks"] == before["fallbacks"]
    advance_fleet(ms, 0.01)
    fl = ms[0].__dict__["_fleet_cache"][1]
    assert ms[0] in fl.resident


# -- serving traffic: ONCE-request lanes stay resident ------------------------------


def serving_build(*, nodes, procs, rate, sigma=0.02,
                  style=IdleStyle.HOT_LOOP, seed=11, traffic_seed=29,
                  spec=None):
    """A homogeneous serving fleet under constant open-loop traffic."""
    cluster = Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=sigma,
                                   idle_style=style)),
        seed=seed)
    sim = Driver(cluster.machines)
    traffic = FleetTrafficSource(
        cluster, rate_per_s=lambda t: rate, max_rate_per_s=rate,
        spec=spec, keep_records=True, seed=traffic_seed)
    return cluster.machines, sim, traffic


def serving_snapshot(machines, traffic, horizon_s):
    """Everything the scalar reference must agree on, bit for bit:
    machine state, per-request stamps (arrival / started / completed /
    ``elapsed_s``), issue and censored in-flight accounting, the censored
    fleet digest, and the arrival RNG stream positions (the next draw of
    each stream pins its position)."""
    traffic.harvest()
    records = [[(r.job.name, r.arrival_s, r.job.started_at_s,
                 r.job.completed_at_s, r.job.state, r.job.elapsed_s())
                for r in src.records]
               for src in traffic.sources]
    censored = traffic.fleet_digest(censored=True, horizon_s=horizon_s)
    next_draws = [src._rng.exponential(1.0) for src in traffic.sources]
    return (fleet_state(machines), records, traffic.issued,
            sum(s.completed for s in traffic.sources), traffic.in_flight,
            censored.value_dict(), next_draws)


def run_serving_three_ways(build, script, horizon_s):
    """Replay ``script(sim, traffic)`` through the fleet columns, the
    per-machine kernel, and the literal scalar slice loop (the kernel
    monkeypatched away); exact snapshot equality."""
    def run():
        machines, sim, traffic = build()
        script(sim, traffic)
        flush_machines(machines)
        return serving_snapshot(machines, traffic, horizon_s)

    cols = run()
    set_fleet_enabled(False)
    try:
        kern = run()
        orig = kernel_mod.try_fast_advance

        def no_fast_advance(*args, **kwargs):
            return False

        kernel_mod.try_fast_advance = no_fast_advance
        try:
            scal = run()
        finally:
            kernel_mod.try_fast_advance = orig
    finally:
        set_fleet_enabled(True)
    assert cols == kern
    assert kern == scal
    return cols


def test_serving_open_loop_three_way_equality():
    """Randomized open-loop traffic on a jittered hot-idle fleet: arrivals
    and completions land mid-span, queues drain to hot idle between them,
    and all three paths agree exactly."""
    def build():
        return serving_build(nodes=3, procs=2, rate=240.0,
                             spec=RequestSpec(instructions=8e6))

    def script(sim, traffic):
        traffic.attach(sim)
        sim.run_for(0.4)

    snap = run_serving_three_ways(build, script, 0.4)
    _, _, issued, completed, _, _, _ = snap
    assert issued > 20
    assert completed > 0


def test_serving_overload_censoring_three_way():
    """An overloaded halt-idle fleet: queues build (volatile chunked
    lanes), and the censored digest's in-flight lower bounds match the
    scalar reference exactly."""
    def build():
        return serving_build(nodes=2, procs=1, rate=3000.0, sigma=0.0,
                             style=IdleStyle.HALT, seed=4, traffic_seed=31)

    def script(sim, traffic):
        traffic.attach(sim)
        sim.run_for(0.25)

    snap = run_serving_three_ways(build, script, 0.25)
    _, _, issued, completed, in_flight, _, _ = snap
    assert completed > 0
    assert in_flight > 0    # genuinely overloaded: censoring matters


def test_serving_detach_reattach_three_way():
    """Detaching mid-run drains the queues back into idle columns;
    re-attaching resumes arrivals — bit-equal throughout."""
    def build():
        return serving_build(nodes=2, procs=2, rate=300.0, seed=7,
                             traffic_seed=17)

    def script(sim, traffic):
        traffic.attach(sim)
        sim.run_for(0.15)
        traffic.detach()
        sim.run_for(0.1)    # queues drain back to hot idle
        traffic.attach(sim)
        sim.run_for(0.15)

    run_serving_three_ways(build, script, 0.4)


def test_stock_serving_fleet_takes_no_fallbacks():
    """The ISSUE's headline: ``reason="transient"`` fallbacks are zero on
    a stock serving fleet — every span of every machine stays resident
    through arrivals, completions, buildup, and drain."""
    machines, sim, traffic = serving_build(nodes=2, procs=2, rate=500.0,
                                           seed=13, traffic_seed=23)
    traffic.attach(sim)
    before = dict(fleet_stats)
    reasons_before = fallback_breakdown()
    sim.run_for(0.5)
    assert traffic.issued > 0
    assert sum(s.completed for s in traffic.sources) > 0
    assert fleet_stats["advances"] > before["advances"]
    assert fleet_stats["fallbacks"] == before["fallbacks"]
    assert fallback_breakdown().get("transient", 0) == \
        reasons_before.get("transient", 0)


# -- fallback accounting -----------------------------------------------------------


class HookedMachine(SMPMachine):
    def _advance_to(self, t_end):   # pragma: no cover - behaviour unchanged
        super()._advance_to(t_end)


def test_subclassed_machine_falls_back_and_is_counted():
    hooked = HookedMachine(
        MachineConfig(num_cores=2,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=4)
    hooked.assign(0, looping_job("hooked", (0.8,)))
    plain = SMPMachine(
        MachineConfig(num_cores=2,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=4)
    plain.assign(0, looping_job("hooked", (0.8,)))

    before = dict(fleet_stats)
    advance_fleet([hooked, plain], 0.05)
    assert fleet_stats["fallbacks"] == before["fallbacks"] + 1
    assert fleet_stats["advances"] == before["advances"] + 1
    # The delegate advanced through machine.advance: same result as the
    # identically-seeded plain machine that went through columns.
    assert machine_state(hooked) == machine_state(plain)


def test_enabled_telemetry_stays_resident():
    """Live telemetry no longer forces the per-machine path: machines stay
    in columns, the sim_* counters batch at span boundaries, and the
    phase-transition event stream (counts, timestamps, payloads) is
    identical to both reference paths."""
    def build():
        ms = []
        for i in range(2):
            m = SMPMachine(
                MachineConfig(num_cores=2,
                              core_config=CoreConfig(
                                  latency_jitter_sigma=0.015 * i)),
                seed=40 + i)
            m.assign(0, looping_job(f"tel{i}", (0.9, 0.25), duration_s=0.02))
            ms.append(m)
        return ms

    def events(tel):
        return [(e.kind, e.sim_time_s, dict(e.attrs))
                for e in tel.events.events_of(EVENT_PHASE_TRANSITION)]

    tel_cols = Telemetry()
    with use_telemetry(tel_cols):
        cols = build()
        before = dict(fleet_stats)
        for _ in range(6):
            advance_fleet(cols, 0.017)
        assert fleet_stats["fallbacks"] == before["fallbacks"]
        assert fleet_stats["advances"] == before["advances"] + 12
        adv = tel_cols.metrics.counter("sim_fleet_advances_total")
        assert adv.value == 12.0

    tel_kern = Telemetry()
    set_fleet_enabled(False)
    try:
        with use_telemetry(tel_kern):
            kern = build()
            for _ in range(6):
                advance_machines(kern, 0.017)
        tel_scal = Telemetry()
        with use_telemetry(tel_scal):
            scal = build()
            for _ in range(6):
                for m in scal:
                    m.advance(0.017)
    finally:
        set_fleet_enabled(True)

    assert fleet_state(cols) == fleet_state(kern) == fleet_state(scal)
    assert events(tel_cols)    # phases actually crossed
    assert events(tel_cols) == events(tel_kern) == events(tel_scal)


def test_fallback_reason_breakdown_and_labels():
    """Counted fallbacks carry a reason: the module breakdown and the
    ``reason``-labelled registry series both move."""
    hooked = HookedMachine(
        MachineConfig(num_cores=2,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=4)
    hooked.assign(0, looping_job("hooked", (0.8,)))
    plain = SMPMachine(
        MachineConfig(num_cores=2,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=4)
    plain.assign(0, looping_job("hooked", (0.8,)))

    telemetry = Telemetry()
    before = fallback_breakdown()
    with use_telemetry(telemetry):
        advance_fleet([hooked, plain], 0.05)
        total = telemetry.metrics.counter("sim_fleet_fallbacks_total")
        sub = telemetry.metrics.counter("sim_fleet_fallbacks_total",
                                        labels={"reason": "subclass"})
        assert total.value == 1.0
        assert sub.value == 1.0
    after = fallback_breakdown()
    assert after.get("subclass", 0) == before.get("subclass", 0) + 1


def test_raising_cascade_falls_back_whole_span():
    """``raise_on_cascade=True`` cuts the pure plan short, so the whole
    span falls back (reason ``bank``) and ``machine.advance`` raises
    :class:`CascadeFailureError` at the identical chunk with identical
    pre-raise state on every path."""
    def build():
        banked = SMPMachine(
            MachineConfig(num_cores=4,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=True),
            seed=5)
        for c in range(4):
            banked.assign(c, looping_job(f"hot{c}", (1.0,)))
        return [banked]

    def run(ms, advance):
        advance(0.3)
        ms[0].supply_bank.fail_supply(0, now_s=ms[0].now_s)
        with pytest.raises(CascadeFailureError):
            advance(1.2)

    cols = build()
    before = fallback_breakdown()
    run(cols, lambda dt: advance_machines(cols, dt))
    flush_machines(cols)
    assert fallback_breakdown().get("bank", 0) == before.get("bank", 0) + 1

    set_fleet_enabled(False)
    try:
        kern = build()
        run(kern, lambda dt: advance_machines(kern, dt))
        scal = build()
        run(scal, lambda dt: scal[0].advance(dt))
    finally:
        set_fleet_enabled(True)
    assert fleet_state(cols) == fleet_state(kern) == fleet_state(scal)


def test_shared_bank_machines_stay_delegates():
    """A bank shared between machines needs interleaved cross-machine
    observations that the per-machine plan/replay cannot reproduce: those
    machines delegate (reason ``bank``) while stock peers stay resident,
    and all three paths still agree exactly."""
    def build():
        bank = SupplyBank.example_p630(raise_on_cascade=False)
        ms = []
        for i in range(2):
            m = SMPMachine(
                MachineConfig(num_cores=2,
                              core_config=CoreConfig(
                                  latency_jitter_sigma=0.0)),
                supply_bank=bank, seed=60 + i)
            m.assign(0, looping_job(f"sh{i}", (0.9, 0.4)))
            ms.append(m)
        peer = SMPMachine(
            MachineConfig(num_cores=1,
                          core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=66)
        peer.assign(0, looping_job("peer", (0.7,)))
        ms.append(peer)
        return ms

    def script(ms, advance):
        advance(0.12)
        advance(0.05)

    stats_before = dict(fleet_stats)
    reasons_before = fallback_breakdown()
    run_three_ways(build, script)
    assert fleet_stats["advances"] == stats_before["advances"] + 2
    assert fleet_stats["fallbacks"] == stats_before["fallbacks"] + 4
    assert fallback_breakdown().get("bank", 0) == \
        reasons_before.get("bank", 0) + 4


def test_escape_hatch_toggles_routing():
    assert fleet_enabled()
    set_fleet_enabled(False)
    assert not fleet_enabled()
    m = SMPMachine(MachineConfig(
        num_cores=1, core_config=CoreConfig(latency_jitter_sigma=0.0)), seed=0)
    before = dict(fleet_stats)
    advance_machines([m], 0.01)
    assert fleet_stats == before           # fleet module never consulted
    assert m.__dict__.get("_fleet_cache") is None


def test_cli_no_fleet_kernel_flag():
    from repro.cli import build_parser
    args = build_parser().parse_args(["run", "table3", "--no-fleet-kernel"])
    assert args.no_fleet_kernel
    args = build_parser().parse_args(["run", "table3"])
    assert not args.no_fleet_kernel


# -- lazy flush / view synchronisation ---------------------------------------------


def test_snapshot_mid_run_sees_exact_counters():
    """With flush=False the columns are authoritative, but snapshot()
    flushes through the bank hook: mid-run counter reads are exact."""
    def build():
        m = SMPMachine(MachineConfig(
            num_cores=2, core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=3)
        m.assign(0, looping_job("w", (0.85, 0.2)))
        return [m]

    cols = build()
    for _ in range(7):
        advance_fleet(cols, 0.013, flush=False)
    snap_cols = cols[0].cores[0].counters.snapshot()

    set_fleet_enabled(False)
    try:
        ref = build()
        for _ in range(7):
            advance_machines(ref, 0.013)
    finally:
        set_fleet_enabled(True)
    snap_ref = ref[0].cores[0].counters.snapshot()
    assert snap_cols.as_tuple() == snap_ref.as_tuple()

    # Residency and energy sync on flush.
    flush_machines(cols)
    assert fleet_state(cols) == fleet_state(ref)


def test_driver_flushes_on_run_until_return():
    def build():
        m = SMPMachine(MachineConfig(
            num_cores=1, core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=8)
        m.assign(0, looping_job("d", (0.75,)))
        return m

    m = build()
    sim = Simulation(m)
    sim.every(0.01, lambda t: None)   # event-dense run, all through columns
    sim.run_for(0.5)

    set_fleet_enabled(False)
    try:
        ref = build()
        sim2 = Simulation(ref)
        sim2.every(0.01, lambda t: None)
        sim2.run_for(0.5)
    finally:
        set_fleet_enabled(True)
    assert machine_state(m) == machine_state(ref)


def test_reset_fleet_dissolves_columns():
    ms = hetero_fleet(55, n=3)
    advance_fleet(ms, 0.02, flush=False)
    fl = ms[0].__dict__["_fleet_cache"][1]
    assert fl._valid
    reset_fleet(ms)
    assert not fl._valid
    assert ms[0].__dict__.get("_fleet_cache") is None
    assert all(c._fleet is None for m in ms for c in m.cores)
    # A structural mutation the hooks cannot see is now safe; the rebuilt
    # fleet runs the newly banked machine as a *resident* lane group.
    ms[0].supply_bank = SupplyBank.example_p630(raise_on_cascade=False)
    advance_fleet(ms, 0.02)
    assert ms[0] in ms[0].__dict__["_fleet_cache"][1].resident


def test_overlapping_fleets_steal_cleanly():
    """A machine moving between two machine lists detaches from the stale
    fleet (flushing it) before joining the new one."""
    ms = hetero_fleet(81, n=3)
    advance_fleet(ms, 0.02, flush=False)
    sub = [ms[0], ms[1]]
    advance_fleet(sub, 0.02, flush=False)    # steals lanes from the first
    flush_machines(sub)
    assert ms[0]._now_s == pytest.approx(0.04)
    # The machine left behind was flushed when its fleet dissolved.
    assert ms[2]._now_s == pytest.approx(0.02)
    assert ms[2].ledger.account("non_cpu").last_time_s == pytest.approx(0.02)


# -- fault scenarios end-to-end ----------------------------------------------------


@pytest.mark.parametrize("scenario", ["lossy", "crash", "chaos"])
def test_fault_scenarios_end_to_end(scenario):
    """A faulted coordinator run over a small cluster is bit-identical
    with the fleet kernel on and off — loss, crash windows, partitions,
    degraded scheduling and all."""
    def run():
        cluster = Cluster.homogeneous(
            4,
            machine_config=MachineConfig(
                num_cores=2,
                core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=2005)
        for i, node in enumerate(cluster.nodes):
            node.machine.assign(0, looping_job(f"svc{i}", (0.9, 0.3)))
        table = cluster.nodes[0].machine.table
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(
                power_limit_w=0.6 * 4 * 2 * table.max_power_w,
                counter_noise_sigma=0.0,
                sample_period_s=0.05, schedule_period_s=0.1),
            faults=fault_scenario(scenario, seed=99),
            seed=7)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(2.5)   # crosses the [1, 2) fault windows
        log = [(e.time_s, e.node_id, e.proc_id, e.freq_hz)
               for e in coord.log.schedule_entries]
        return fleet_state(cluster.machines), log

    state_on, log_on = run()
    set_fleet_enabled(False)
    try:
        state_off, log_off = run()
    finally:
        set_fleet_enabled(True)
    assert log_on == log_off
    assert state_on == state_off


# -- the batched energy ledger ----------------------------------------------------


def test_ledger_2d_batch_matches_per_account_loop():
    def build():
        led = EnergyLedger()
        for k in range(5):
            led.account(f"a{k}")
        return led

    times = np.array([0.013, 0.05, 0.0501, 0.2, 1.7])
    powers = {"a0": 3.5, "a1": 0.0, "a2": 17.25, "a3": 1e-7, "a4": 42.0}

    batch = build()
    batch.advance_many(times, powers)

    loop = build()
    for acc_name in powers:
        loop.account(acc_name)
    for name, acc in loop.accounts.items():
        acc.advance_many(times, powers.get(name, 0.0))

    scalar = build()
    for t in times:
        scalar.advance_to(float(t), powers)

    for name in powers:
        assert batch.accounts[name].energy_j == loop.accounts[name].energy_j
        assert batch.accounts[name].energy_j == scalar.accounts[name].energy_j
        assert batch.accounts[name].last_time_s == times[-1]


def test_ledger_2d_batch_respects_subclassed_accumulators():
    class Custom(EnergyAccumulator):
        pass

    led = EnergyLedger()
    led.accounts["x"] = Custom()
    led.account("y")
    led.advance_many(np.array([0.5, 1.0]), {"x": 2.0, "y": 4.0})
    assert led.accounts["x"].energy_j == 2.0
    assert led.accounts["y"].energy_j == 4.0


def test_ledger_2d_batch_rejects_backwards_time():
    led = EnergyLedger()
    led.account("a")
    led.account("b")
    led.advance_many(np.array([1.0]), {"a": 1.0, "b": 1.0})
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        led.advance_many(np.array([0.5]), {"a": 1.0, "b": 1.0})
    with pytest.raises(SimulationError):
        led.advance_many(np.array([2.0, 1.5]), {"a": 1.0, "b": 1.0})
