"""The command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import REGISTRY


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.seed == 2005
        assert not args.fast

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "fig8", "--fast", "--seed", "7", "--precision", "2"])
        assert args.fast and args.seed == 7 and args.precision == 2

    def test_run_shards_flag(self):
        args = build_parser().parse_args(
            ["run", "cluster_cap", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["run", "cluster_cap"]).shards \
            is None

    def test_faults_help_lists_scenario_descriptions(self):
        from repro.cluster.faults import FAULT_SCENARIOS
        parser = build_parser()
        text = parser.format_help()
        for sub in parser._subparsers._group_actions[0].choices.values():
            text += sub.format_help()
        flat = " ".join(text.split())   # undo argparse line wrapping
        for description in FAULT_SCENARIOS.values():
            assert description.split(",")[0] in flat


class TestCommands:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(REGISTRY)

    def test_run_table1_prints_the_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1000" in out and "140" in out

    def test_run_worked_example(self, capsys):
        assert main(["run", "worked_example"]) == 0
        out = capsys.readouterr().out
        assert "289" in out and "282" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "tableX"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_fault_scenario_lists_descriptions(self, capsys):
        from repro.cluster.faults import FAULT_SCENARIOS
        assert main(["run", "cluster_cap", "--faults", "bogus"]) == 1
        err = capsys.readouterr().err
        for name, description in FAULT_SCENARIOS.items():
            assert name in err and description in err

    def test_shards_rejected_for_non_cluster_experiment(self, capsys):
        assert main(["run", "worked_example", "--shards", "2"]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_fast_run_of_a_simulated_experiment(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out


class TestShowAndOutput:
    def test_output_writes_artifacts(self, tmp_path, capsys):
        assert main(["run", "worked_example",
                     "--output", str(tmp_path)]) == 0
        assert (tmp_path / "worked_example.json").exists()
        csvs = list(tmp_path.glob("worked_example_*.csv"))
        assert len(csvs) >= 2

    def test_show_rerenders_saved_result(self, tmp_path, capsys):
        main(["run", "worked_example", "--output", str(tmp_path)])
        capsys.readouterr()
        assert main(["show", str(tmp_path / "worked_example.json")]) == 0
        out = capsys.readouterr().out
        assert "289" in out and "282" in out

    def test_show_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "nope.json")]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_chart_flag_renders_series(self, capsys):
        assert main(["run", "fig1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o=cpu=100%" in out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out


class TestDigest:
    def test_digest_subset_writes_markdown(self, tmp_path, capsys):
        from repro.digest import write_digest
        path = write_digest(tmp_path / "d.md",
                            experiment_ids=("table1", "worked_example"))
        text = path.read_text()
        assert "# fvsst reproduction digest" in text
        assert "ALL CHECKS PASS" in text
        assert "## table1" in text and "## worked_example" in text

    def test_digest_unknown_experiment_rejected(self, tmp_path):
        from repro.digest import build_digest
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            build_digest(experiment_ids=("tableX",))

    def test_digest_cli(self, tmp_path, capsys):
        out = tmp_path / "digest.md"
        assert main(["digest", "--output", str(out)]) == 0
        assert out.exists()
        assert "digest written" in capsys.readouterr().out
