"""Nested per-node budgets."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.nested import NestedBudgetScheduler
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.errors import ClusterError, SchedulingError
from repro.experiments import run_experiment
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.units import ghz
from repro.workloads.tiers import tiered_cluster_assignment

ratios = st.floats(0.05, 20.0)


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


def views_for(node_ratios: dict[int, list[float]]) -> list[ProcessorView]:
    out = []
    for node_id, rs in sorted(node_ratios.items()):
        for proc_id, r in enumerate(rs):
            out.append(ProcessorView(node_id=node_id, proc_id=proc_id,
                                     signature=sig(r)))
    return out


class TestNestedScheduler:
    def test_node_limit_enforced_locally_only(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        v = views_for({0: [10.0, 10.0], 1: [10.0, 10.0]})
        schedule = sched.schedule_nested(v, None, {0: 150.0})
        assert sched.node_power_w(schedule, 0) <= 150.0
        assert sched.node_power_w(schedule, 1) == pytest.approx(280.0)

    def test_global_and_node_limits_compose(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        v = views_for({0: [10.0, 10.0], 1: [10.0, 10.0]})
        schedule = sched.schedule_nested(v, 300.0, {0: 100.0})
        assert sched.node_power_w(schedule, 0) <= 100.0
        assert schedule.total_power_w <= 300.0

    def test_unknown_node_rejected(self):
        sched = NestedBudgetScheduler(POWER4_TABLE)
        v = views_for({0: [1.0]})
        with pytest.raises(SchedulingError):
            sched.schedule_nested(v, None, {5: 100.0})

    def test_no_limits_matches_plain_schedule(self):
        nested = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        plain = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        v = views_for({0: [5.0, 0.075], 1: [0.3, 1.0]})
        for limit in (None, 300.0):
            a = nested.schedule_nested(v, limit)
            b = plain.schedule(v, limit)
            assert a.frequency_vector_hz() == b.frequency_vector_hz()

    @given(
        node_sizes=st.lists(st.integers(1, 3), min_size=1, max_size=3),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_limits_respected_property(self, node_sizes, seed, data):
        import numpy as np
        rng = np.random.default_rng(seed)
        node_ratios = {
            n: [float(np.exp(rng.uniform(np.log(0.05), np.log(20))))
                for _ in range(k)]
            for n, k in enumerate(node_sizes)
        }
        v = views_for(node_ratios)
        # Feasible per-node limits (>= node floor).
        node_limits = {}
        for n, k in enumerate(node_sizes):
            if data.draw(st.booleans(), label=f"limit-node-{n}"):
                lo = k * POWER4_TABLE.min_power_w
                node_limits[n] = data.draw(
                    st.floats(lo, k * 140.0), label=f"limit-{n}")
        total_procs = sum(node_sizes)
        global_limit = data.draw(
            st.one_of(st.none(),
                      st.floats(total_procs * POWER4_TABLE.min_power_w,
                                total_procs * 140.0)),
            label="global")
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule_nested(v, global_limit, node_limits)
        for n, limit in node_limits.items():
            assert sched.node_power_w(schedule, n) <= limit + 1e-9
        if global_limit is not None:
            assert schedule.total_power_w <= global_limit + 1e-9


class TestDelegatedBudgetShrink:
    """The hierarchy's rebalance shrinks a shard's *global* budget
    mid-run; the scheduler must never respond by raising any processor
    above its pre-shrink rung (the greedy reduction at the lower limit is
    a superset of the reductions at the higher one)."""

    def test_shrink_never_raises_any_processor(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        v = views_for({0: [10.0, 0.3], 1: [5.0, 0.08]})
        before = sched.schedule_nested(v, 400.0, {0: 180.0})
        after = sched.schedule_nested(v, 300.0, {0: 180.0})
        for a, b in zip(before.assignments, after.assignments):
            assert (b.node_id, b.proc_id) == (a.node_id, a.proc_id)
            assert b.freq_hz <= a.freq_hz + 1e-9

    @given(
        node_sizes=st.lists(st.integers(1, 3), min_size=1, max_size=3),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_shrink_monotone_property(self, node_sizes, seed, data):
        import numpy as np
        rng = np.random.default_rng(seed)
        node_ratios = {
            n: [float(np.exp(rng.uniform(np.log(0.05), np.log(20))))
                for _ in range(k)]
            for n, k in enumerate(node_sizes)
        }
        v = views_for(node_ratios)
        total = sum(node_sizes)
        floor = total * POWER4_TABLE.min_power_w
        b1 = data.draw(st.floats(floor, total * 140.0), label="budget")
        b2 = data.draw(st.floats(floor, b1), label="shrunk")
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        before = sched.schedule_nested(v, b1, {}, on_infeasible="floor")
        after = sched.schedule_nested(v, b2, {}, on_infeasible="floor")
        for a, b in zip(before.assignments, after.assignments):
            assert b.freq_hz <= a.freq_hz + 1e-9
        assert after.total_power_w <= b2 + 1e-9

    def test_shrink_to_floor_never_raises(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        v = views_for({0: [10.0, 10.0], 1: [0.075, 0.3]})
        before = sched.schedule_nested(v, 350.0, {1: 120.0})
        floor = 4 * POWER4_TABLE.min_power_w
        after = sched.schedule_nested(v, floor, {1: 120.0},
                                      on_infeasible="floor")
        for a, b in zip(before.assignments, after.assignments):
            assert b.freq_hz <= a.freq_hz + 1e-9
        assert all(b.freq_hz == POWER4_TABLE.f_min_hz
                   for b in after.assignments)


class TestCoordinatorNodeLimits:
    def _cluster(self, seed=6):
        cluster = Cluster.homogeneous(
            2,
            machine_config=MachineConfig(
                num_cores=2,
                core_config=CoreConfig(latency_jitter_sigma=0.0),
            ),
            seed=seed,
        )
        cluster.assign_all(tiered_cluster_assignment(2, 2, web_nodes=0,
                                                     app_nodes=2))
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(counter_noise_sigma=0.0),
            seed=seed + 1)
        sim = Simulation(cluster.machines)
        coordinator.attach(sim)
        return cluster, coordinator, sim

    def test_set_node_limit_confines_the_cut(self):
        cluster, coordinator, sim = self._cluster()
        sim.run_for(0.5)
        coordinator.set_node_limit(0, 120.0, sim.now_s)
        sim.run_for(0.5)
        assert cluster.node(0).cpu_power_w() <= 120.0
        assert cluster.node(1).cpu_power_w() > 200.0   # untouched CPU tier

    def test_lifting_the_limit_restores(self):
        cluster, coordinator, sim = self._cluster(seed=8)
        sim.run_for(0.5)
        coordinator.set_node_limit(0, 120.0, sim.now_s)
        sim.run_for(0.3)
        coordinator.set_node_limit(0, None, sim.now_s)
        sim.run_for(0.3)
        assert cluster.node(0).cpu_power_w() > 200.0

    def test_plain_scheduler_rejects_node_limits(self):
        cluster, coordinator, sim = self._cluster(seed=9)
        coordinator.scheduler = FrequencyVoltageScheduler(
            cluster.nodes[0].machine.table)
        with pytest.raises(ClusterError):
            coordinator.set_node_limit(0, 100.0, sim.now_s)


class TestClusterFailoverExperiment:
    def test_nested_beats_global_squeeze(self):
        r = run_experiment("cluster_failover", fast=True)
        assert r.scalars["nested_sick_node_w"] <= 100.0
        # The squeeze starves the healthy nodes; nested leaves them alone.
        assert r.scalars["nested_healthy_w"] > \
            2 * r.scalars["squeeze_healthy_w"]
        assert r.scalars["squeeze_norm_throughput"] < 1.0
