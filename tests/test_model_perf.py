"""Perf, PerfLoss and saturation (Sections 4.1, 4.3)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.ipc import WorkloadSignature
from repro.model.perf import (
    perf,
    perf_at_frequencies,
    perf_loss,
    saturation_frequency,
)
from repro.units import ghz


class TestPerf:
    def test_perf_is_ipc_times_frequency(self, mem_signature):
        f = ghz(0.65)
        assert perf(mem_signature, f) == pytest.approx(
            mem_signature.ipc(f) * f
        )

    def test_pure_cpu_perf_linear_in_frequency(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=0.0)
        assert perf(sig, ghz(0.5)) == pytest.approx(0.5 * perf(sig, ghz(1.0)))

    def test_memory_bound_perf_sublinear(self, mem_signature):
        # Doubling frequency must less-than-double throughput.
        assert perf(mem_signature, ghz(1.0)) < 2 * perf(mem_signature,
                                                        ghz(0.5))

    def test_perf_saturates_at_reciprocal_memory_time(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=50e-9)
        asymptote = 1.0 / sig.mem_time_per_instr_s
        assert perf(sig, ghz(100.0)) < asymptote
        assert perf(sig, ghz(100.0)) == pytest.approx(asymptote, rel=0.01)

    def test_vectorised_matches_scalar(self, mem_signature):
        freqs = np.array([ghz(0.25), ghz(0.5), ghz(1.0)])
        np.testing.assert_allclose(
            perf_at_frequencies(mem_signature, freqs),
            [perf(mem_signature, f) for f in freqs],
        )


class TestPerfLoss:
    def test_zero_at_reference(self, mem_signature):
        assert perf_loss(mem_signature, ghz(1.0), ghz(1.0)) == pytest.approx(0)

    def test_positive_for_slower_candidate(self, mem_signature):
        assert perf_loss(mem_signature, ghz(1.0), ghz(0.5)) > 0

    def test_negative_for_faster_candidate(self, mem_signature):
        assert perf_loss(mem_signature, ghz(0.5), ghz(1.0)) < 0

    def test_pure_cpu_loss_is_frequency_ratio(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=0.0)
        assert perf_loss(sig, ghz(1.0), ghz(0.75)) == pytest.approx(0.25)

    def test_memory_bound_loses_less_than_cpu_bound(self, cpu_signature,
                                                    mem_signature):
        f_ref, f = ghz(1.0), ghz(0.65)
        assert perf_loss(mem_signature, f_ref, f) < perf_loss(
            cpu_signature, f_ref, f
        )

    def test_loss_bounded_above_by_one(self, cpu_signature):
        assert perf_loss(cpu_signature, ghz(1.0), ghz(0.001)) < 1.0

    def test_loss_monotone_in_candidate(self, mem_signature):
        losses = [perf_loss(mem_signature, ghz(1.0), ghz(g))
                  for g in (0.9, 0.7, 0.5, 0.3)]
        assert losses == sorted(losses)


class TestSaturationFrequency:
    def test_memory_free_has_none(self):
        sig = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=0.0)
        with pytest.raises(ModelError):
            saturation_frequency(sig)

    def test_zero_budget_rejected(self, mem_signature):
        with pytest.raises(ModelError):
            saturation_frequency(mem_signature, loss_budget=0.0)

    def test_at_saturation_loss_equals_budget(self, mem_signature):
        budget = 0.05
        f_sat = saturation_frequency(mem_signature, loss_budget=budget)
        asymptote = 1.0 / mem_signature.mem_time_per_instr_s
        assert perf(mem_signature, f_sat) == pytest.approx(
            (1 - budget) * asymptote
        )

    def test_heavier_memory_saturates_earlier(self):
        light = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=1e-9)
        heavy = WorkloadSignature(core_cpi=1.0, mem_time_per_instr_s=10e-9)
        assert (saturation_frequency(heavy, loss_budget=0.05)
                < saturation_frequency(light, loss_budget=0.05))
