"""Property-based tests of the performance model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.ideal import ideal_frequency
from repro.model.ipc import MemoryCounts, WorkloadSignature, signature_from_counts
from repro.model.latency import POWER4_LATENCIES
from repro.model.perf import perf, perf_loss
from repro.model.twopoint import calibrate_two_point
from repro.units import ghz

signatures = st.builds(
    WorkloadSignature,
    core_cpi=st.floats(0.2, 5.0),
    mem_time_per_instr_s=st.floats(0.0, 100e-9),
)

memory_signatures = st.builds(
    WorkloadSignature,
    core_cpi=st.floats(0.2, 5.0),
    mem_time_per_instr_s=st.floats(1e-10, 100e-9),
)

frequencies = st.floats(100e6, 2e9)


class TestIpcProperties:
    @given(signatures, frequencies)
    def test_ipc_positive_and_finite(self, sig, f):
        ipc = sig.ipc(f)
        assert ipc > 0 and math.isfinite(ipc)

    @given(signatures, frequencies, frequencies)
    def test_ipc_antitone_in_frequency(self, sig, f1, f2):
        lo, hi = sorted((f1, f2))
        assert sig.ipc(lo) >= sig.ipc(hi) - 1e-15

    @given(signatures, frequencies)
    def test_ipc_bounded_by_core_reciprocal(self, sig, f):
        assert sig.ipc(f) <= 1.0 / sig.core_cpi + 1e-12


class TestPerfProperties:
    @given(signatures, frequencies, frequencies)
    def test_perf_monotone_in_frequency(self, sig, f1, f2):
        lo, hi = sorted((f1, f2))
        assert perf(sig, lo) <= perf(sig, hi) + 1e-6

    @given(memory_signatures, frequencies)
    def test_perf_below_saturation_asymptote(self, sig, f):
        assert perf(sig, f) < 1.0 / sig.mem_time_per_instr_s

    @given(signatures, frequencies, frequencies)
    def test_loss_sign_convention(self, sig, f_ref, f_cand):
        loss = perf_loss(sig, f_ref, f_cand)
        if f_cand < f_ref:
            assert loss >= -1e-12
        if f_cand > f_ref:
            assert loss <= 1e-12
        assert loss < 1.0

    @given(signatures, frequencies)
    def test_loss_zero_at_reference(self, sig, f):
        assert abs(perf_loss(sig, f, f)) < 1e-12

    @given(signatures, frequencies, frequencies, frequencies)
    def test_loss_antitone_in_candidate(self, sig, f_ref, f1, f2):
        lo, hi = sorted((f1, f2))
        assert perf_loss(sig, f_ref, lo) >= perf_loss(sig, f_ref, hi) - 1e-12


class TestIdealFrequencyProperties:
    @given(memory_signatures, st.floats(0.005, 0.5))
    def test_ideal_within_bounds_and_meets_target(self, sig, eps):
        f_max = ghz(1.0)
        f = ideal_frequency(sig, f_max, epsilon=eps,
                            ipc_threshold=float("inf"))
        assert 0 < f <= f_max
        # At the returned frequency, the loss never exceeds epsilon.
        assert perf_loss(sig, f_max, f) <= eps + 1e-9

    @given(memory_signatures, st.floats(0.005, 0.2), st.floats(0.01, 0.2))
    def test_ideal_antitone_in_epsilon(self, sig, eps, delta):
        f_max = ghz(1.0)
        kwargs = dict(ipc_threshold=float("inf"))
        f1 = ideal_frequency(sig, f_max, epsilon=eps, **kwargs)
        f2 = ideal_frequency(sig, f_max, epsilon=min(eps + delta, 0.9),
                             **kwargs)
        assert f2 <= f1 + 1e-6


class TestCalibrationProperties:
    @given(memory_signatures,
           st.floats(200e6, 900e6), st.floats(0.05, 0.8))
    @settings(max_examples=60)
    def test_two_point_roundtrip(self, sig, f1, gap_fraction):
        f2 = f1 * (1 + gap_fraction)
        cal = calibrate_two_point(f1, sig.ipc(f1), f2, sig.ipc(f2))
        assert math.isclose(cal.signature.core_cpi, sig.core_cpi,
                            rel_tol=1e-5, abs_tol=1e-9)
        assert math.isclose(cal.signature.mem_time_per_instr_s,
                            sig.mem_time_per_instr_s,
                            rel_tol=1e-4, abs_tol=1e-15)


class TestCountsProperties:
    counts = st.builds(
        MemoryCounts,
        instructions=st.floats(1.0, 1e9),
        n_l2=st.floats(0, 1e7),
        n_l3=st.floats(0, 1e6),
        n_mem=st.floats(0, 1e6),
        l1_stall_cycles=st.floats(0, 1e8),
    )

    @given(counts, counts)
    def test_signature_additive_consistency(self, a, b):
        """Aggregating counters then fitting == instruction-weighted blend."""
        alpha = 2.0
        merged = signature_from_counts(a + b, POWER4_LATENCIES, alpha=alpha)
        wa = a.instructions / (a.instructions + b.instructions)
        sig_a = signature_from_counts(a, POWER4_LATENCIES, alpha=alpha)
        sig_b = signature_from_counts(b, POWER4_LATENCIES, alpha=alpha)
        blend_m = (wa * sig_a.mem_time_per_instr_s
                   + (1 - wa) * sig_b.mem_time_per_instr_s)
        # Tolerance loose enough for the catastrophic cancellation in
        # (1 - wa) when instruction counts are wildly imbalanced.
        assert math.isclose(merged.mem_time_per_instr_s, blend_m,
                            rel_tol=1e-6, abs_tol=1e-16)
