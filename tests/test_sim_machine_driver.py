"""SMP machine, power meter and simulation driver."""

import pytest

from repro import constants
from repro.errors import SimulationError
from repro.power.supply import SupplyBank
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.idle import IdleStyle
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.job import Job
from repro.workloads.phase import Phase
from tests.conftest import make_machine


def cpu_job(name="j", instr=1e9) -> Job:
    return Job(name=name, phases=(Phase(name="p", instructions=instr,
                                        alpha=2.0),))


class TestMachineConstruction:
    def test_default_is_the_p630(self):
        m = SMPMachine()
        assert m.num_cores == 4
        assert m.table.f_max_hz == ghz(1.0)
        assert m.config.non_cpu_power_w == pytest.approx(186.0)

    def test_cores_start_at_f_max(self):
        m = make_machine(2)
        assert m.frequency_vector_hz() == [ghz(1.0), ghz(1.0)]

    def test_initial_frequency_override(self):
        m = SMPMachine(MachineConfig(num_cores=1, initial_freq_hz=mhz(650)))
        assert m.frequency_vector_hz() == [mhz(650)]

    def test_initial_frequency_must_be_operating_point(self):
        with pytest.raises(SimulationError):
            MachineConfig(num_cores=1, initial_freq_hz=mhz(640))

    def test_core_bounds_checked(self):
        m = make_machine(2)
        with pytest.raises(SimulationError):
            m.core(2)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            MachineConfig(num_cores=0)


class TestPowerViews:
    def test_full_speed_draw_matches_section2(self):
        m = make_machine(4)
        assert m.cpu_power_w() == pytest.approx(4 * 140.0)
        assert m.system_power_w() == pytest.approx(746.0)

    def test_draw_follows_frequency(self):
        m = make_machine(1)
        m.core(0).set_frequency(mhz(650), 0.0)
        assert m.cpu_power_w() == pytest.approx(57.0)

    def test_hot_idle_draws_full_power(self):
        m = make_machine(1)   # idle, HOT_LOOP by default
        assert m.cpu_power_w() == pytest.approx(140.0)

    def test_halting_idle_draws_fraction(self):
        config = MachineConfig(
            num_cores=1,
            core_config=CoreConfig(latency_jitter_sigma=0.0,
                                   idle_style=IdleStyle.HALT),
        )
        m = SMPMachine(config)
        assert m.cpu_power_w() == pytest.approx(
            140.0 * m.meter.halted_idle_fraction
        )

    def test_offline_core_draws_nothing(self):
        m = make_machine(2)
        m.core(1).offline = True
        assert m.cpu_power_w() == pytest.approx(140.0)

    def test_meter_noise_only_affects_measurement(self):
        m = SMPMachine(MachineConfig(num_cores=1, meter_noise_sigma=0.05),
                       seed=1)
        true = m.system_power_w()
        readings = {m.measure_power_w() for _ in range(8)}
        assert len(readings) > 1          # noisy
        assert m.system_power_w() == true  # truth unchanged


class TestMachineAdvance:
    def test_energy_integrates_true_power(self):
        m = make_machine(1)
        m.advance(2.0)
        assert m.ledger.energy_of("core0") == pytest.approx(280.0)
        assert m.ledger.energy_of("non_cpu") == pytest.approx(372.0)

    def test_power_sampled_at_interval_start(self):
        m = make_machine(1)
        m.advance(1.0)
        m.core(0).set_frequency(mhz(500), m.now_s)
        m.advance(1.0)
        assert m.ledger.energy_of("core0") == pytest.approx(140.0 + 35.0)

    def test_supply_bank_observed(self):
        bank = SupplyBank.example_p630(raise_on_cascade=False)
        m = SMPMachine(MachineConfig(num_cores=4), supply_bank=bank)
        bank.fail_supply(0)
        m.advance(0.5)   # overload episode starts
        m.advance(1.0)   # exceeds the 1 s deadline
        assert bank.cascade_count == 1


class TestSimulationDriver:
    def test_machines_advance_with_the_clock(self):
        m = make_machine(1)
        sim = Simulation(m)
        sim.run_for(1.5)
        assert m.now_s == pytest.approx(1.5)
        assert sim.now_s == pytest.approx(1.5)

    def test_one_off_event_fires_at_exact_time(self):
        m = make_machine(1)
        sim = Simulation(m)
        times = []
        sim.at(0.3, lambda t: times.append((t, m.now_s)))
        sim.run_for(1.0)
        assert times == [(0.3, pytest.approx(0.3))]

    def test_event_changes_take_effect_mid_run(self):
        m = make_machine(1)
        job = cpu_job(instr=1e10)
        m.assign(0, job)
        sim = Simulation(m)
        sim.at(0.5, lambda t: m.core(0).set_frequency(mhz(500), t))
        sim.run_for(1.0)
        # 0.5 s at 2e9/s plus 0.5 s at 1e9/s.
        assert job.instructions_retired == pytest.approx(1.5e9, rel=1e-6)

    def test_periodic_task_fires_on_schedule(self):
        m = make_machine(1)
        sim = Simulation(m)
        times = []
        sim.every(0.25, times.append)
        sim.run_for(1.0)
        assert times == [pytest.approx(v) for v in (0.25, 0.5, 0.75, 1.0)]

    def test_periodic_cancel(self):
        m = make_machine(1)
        sim = Simulation(m)
        times = []
        task = sim.every(0.25, times.append)
        sim.run_for(0.5)
        task.cancel()
        sim.run_for(0.5)
        assert len(times) == 2

    def test_periodic_stopiteration_ends_chain(self):
        m = make_machine(1)
        sim = Simulation(m)
        times = []

        def cb(t):
            times.append(t)
            if len(times) == 2:
                raise StopIteration

        sim.every(0.1, cb)
        sim.run_for(1.0)
        assert len(times) == 2

    def test_past_scheduling_rejected(self):
        sim = Simulation(make_machine(1))
        sim.run_for(1.0)
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda t: None)

    def test_run_backwards_rejected(self):
        sim = Simulation(make_machine(1))
        sim.run_for(1.0)
        with pytest.raises(SimulationError):
            sim.run_until(0.5)

    def test_multiple_machines_share_the_clock(self):
        a, b = make_machine(1, seed=1), make_machine(1, seed=2)
        sim = Simulation([a, b])
        sim.run_for(0.7)
        assert a.now_s == b.now_s == pytest.approx(0.7)

    def test_needs_at_least_one_machine(self):
        with pytest.raises(SimulationError):
            Simulation([])
