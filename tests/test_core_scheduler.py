"""The Figure 3 scheduling algorithm."""

import pytest

from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE, WORKED_EXAMPLE_TABLE
from repro.units import ghz, mhz


def sig(ratio: float, core_cpi: float = 0.65) -> WorkloadSignature:
    """Signature with core-to-memory cycle ratio ``ratio`` at 1 GHz."""
    return WorkloadSignature(core_cpi=core_cpi,
                             mem_time_per_instr_s=core_cpi / ratio / ghz(1.0))


def view(proc: int, signature=None, idle=False) -> ProcessorView:
    return ProcessorView(node_id=0, proc_id=proc, signature=signature,
                         idle_signaled=idle)


class TestStep1EpsilonConstrained:
    SCHED = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)

    def test_pure_cpu_stays_at_fmax(self):
        pure = WorkloadSignature(core_cpi=0.65, mem_time_per_instr_s=0.0)
        f, loss = self.SCHED.epsilon_constrained(pure)
        assert f == ghz(1.0) and loss == 0.0

    @pytest.mark.parametrize("ratio,expected_mhz", [
        (10.0, 1000),   # above the 3.8 boundary
        (2.0, 950),
        (0.45, 900),
        (0.25, 850),
        (0.17, 800),
        (0.12, 750),
        (0.09, 700),
        (0.075, 650),
        (0.06, 600),
    ])
    def test_ratio_maps_to_expected_rung(self, ratio, expected_mhz):
        f, loss = self.SCHED.epsilon_constrained(sig(ratio))
        assert f == mhz(expected_mhz)
        assert loss < 0.04

    def test_unknown_workload_gets_fmax(self):
        f, loss = self.SCHED.epsilon_constrained(None)
        assert f == ghz(1.0) and loss == 0.0

    def test_loss_at_chosen_rung_below_epsilon(self):
        for ratio in (5.0, 1.0, 0.3, 0.1, 0.05):
            f, loss = self.SCHED.epsilon_constrained(sig(ratio))
            assert loss < self.SCHED.epsilon
            lower = POWER4_TABLE.next_lower(f)
            if lower is not None:
                assert self.SCHED.predicted_loss(sig(ratio), lower) >= \
                    self.SCHED.epsilon


class TestScheduleUnconstrained:
    def test_each_processor_gets_its_eps_frequency(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule([
            view(0, sig(10.0)), view(1, sig(0.075)), view(2, None),
        ])
        assert schedule.frequency_vector_hz() == [ghz(1.0), mhz(650),
                                                  ghz(1.0)]
        assert schedule.budget_met
        assert not schedule.infeasible

    def test_idle_signal_pins_to_floor(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule([view(0, sig(10.0), idle=True)])
        assert schedule.frequency_vector_hz() == [mhz(250)]
        assert schedule.assignments[0].predicted_loss == 0.0

    def test_total_power_is_sum_of_table_entries(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule([view(0, sig(0.075)), view(1, sig(0.075))])
        assert schedule.total_power_w == pytest.approx(2 * 57.0)

    def test_duplicate_views_rejected(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        with pytest.raises(SchedulingError):
            sched.schedule([view(0), view(0)])

    def test_empty_views_rejected(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        with pytest.raises(SchedulingError):
            sched.schedule([])


class TestStep2PowerPass:
    def test_budget_enforced(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(i, sig(10.0)) for i in range(4)]   # all want 1000
        schedule = sched.schedule(views, power_limit_w=294.0)
        assert schedule.total_power_w <= 294.0
        assert schedule.budget_met

    def test_memory_bound_reduced_first(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(0, sig(10.0)), view(1, sig(0.075))]
        # Budget forcing exactly one step somewhere: 140+57=197 -> 190.
        schedule = sched.schedule(views, power_limit_w=190.0)
        a0 = schedule.assignment_for(0, 0)
        a1 = schedule.assignment_for(0, 1)
        assert a0.freq_hz == ghz(1.0)          # CPU-bound untouched
        assert a1.freq_hz < mhz(650)           # memory-bound paid

    def test_idle_processors_drained_before_busy(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(0, sig(10.0)), view(1, sig(10.0), idle=True)]
        schedule = sched.schedule(views, power_limit_w=160.0)
        assert schedule.assignment_for(0, 1).freq_hz == mhz(250)
        assert schedule.assignment_for(0, 0).freq_hz == ghz(1.0)

    def test_eps_frequency_preserved_in_assignments(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(0, sig(10.0))]
        schedule = sched.schedule(views, power_limit_w=75.0)
        a = schedule.assignments[0]
        assert a.eps_freq_hz == ghz(1.0)       # desired
        assert a.freq_hz == mhz(750)           # cap-bound actual

    def test_infeasible_raises_when_asked(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(i, sig(10.0)) for i in range(4)]
        with pytest.raises(InfeasibleBudgetError) as err:
            sched.schedule(views, power_limit_w=30.0, on_infeasible="raise")
        assert err.value.floor_power_w == pytest.approx(4 * 9.0)
        assert err.value.limit_w == 30.0

    def test_infeasible_floor_mode_flags(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(i, sig(10.0)) for i in range(4)]
        schedule = sched.schedule(views, power_limit_w=30.0)
        assert schedule.infeasible
        assert not schedule.budget_met
        assert schedule.frequency_vector_hz() == [mhz(250)] * 4

    def test_greedy_prefers_smallest_loss_at_f_less(self):
        # Paper's selection metric: smallest PerfLoss(f_max, f_less).
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [view(0, sig(0.075)), view(1, sig(0.4))]
        # eps: [650 (57 W), 900 (109 W)] = 166 W; force one step: 160 W.
        schedule = sched.schedule(views, power_limit_w=160.0)
        # The paper's metric picks whichever f_less loss is smaller;
        # verify via predicted_loss rather than hard-coding.
        loss0 = sched.predicted_loss(sig(0.075), mhz(600))
        loss1 = sched.predicted_loss(sig(0.4), mhz(850))
        reduced = schedule.assignment_for(0, 0 if loss0 < loss1 else 1)
        kept = schedule.assignment_for(0, 1 if loss0 < loss1 else 0)
        assert reduced.freq_hz < reduced.eps_freq_hz
        assert kept.freq_hz == kept.eps_freq_hz


class TestWorkedExampleVectors:
    """The Section 5 arithmetic on the 5-point ladder (epsilon = 3%)."""

    RATIOS_T0 = (0.45, 0.07, 0.12, 0.12)
    RATIOS_T1 = (0.04, 0.07, 0.12, 0.12)

    def _schedule(self, ratios):
        sched = FrequencyVoltageScheduler(WORKED_EXAMPLE_TABLE, epsilon=0.03)
        views = [view(i, sig(r)) for i, r in enumerate(ratios)]
        return sched.schedule(views, power_limit_w=294.0,
                              on_infeasible="raise")

    def test_t0_eps_vector(self):
        s = self._schedule(self.RATIOS_T0)
        assert s.eps_frequency_vector_hz() == [ghz(1.0), ghz(0.7),
                                               ghz(0.8), ghz(0.8)]

    def test_t0_actual_vector_and_power(self):
        s = self._schedule(self.RATIOS_T0)
        assert s.frequency_vector_hz() == [ghz(0.9), ghz(0.6), ghz(0.7),
                                           ghz(0.7)]
        assert s.power_vector_w() == [109.0, 48.0, 66.0, 66.0]
        assert s.total_power_w == pytest.approx(289.0)

    def test_t1_all_at_eps_frequency(self):
        s = self._schedule(self.RATIOS_T1)
        assert s.frequency_vector_hz() == s.eps_frequency_vector_hz() == [
            ghz(0.6), ghz(0.7), ghz(0.8), ghz(0.8)
        ]
        assert s.total_power_w == pytest.approx(282.0)

    def test_t1_losses_within_epsilon(self):
        s = self._schedule(self.RATIOS_T1)
        assert all(loss < 0.03 for loss in s.loss_vector())


class TestVoltages:
    def test_voltage_monotone_in_frequency(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule(
            [view(0, sig(10.0)), view(1, sig(0.075))]
        )
        a_fast = schedule.assignment_for(0, 0)
        a_slow = schedule.assignment_for(0, 1)
        assert a_fast.voltage > a_slow.voltage
        assert a_fast.voltage <= 1.3 + 1e-9

    def test_bad_epsilon_rejected(self):
        with pytest.raises(Exception):
            FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.0)
        with pytest.raises(SchedulingError):
            FrequencyVoltageScheduler(POWER4_TABLE, epsilon=1.0)
