"""Throttle actuator and idle machinery."""

import pytest

from repro.errors import FrequencyError
from repro.sim.idle import HOT_IDLE_PHASE, IdleDetector
from repro.sim.throttle import ThrottleActuator
from repro.units import ghz, mhz


class TestThrottleActuator:
    def test_instant_when_no_settling(self):
        act = ThrottleActuator(ghz(1.0))
        act.set_frequency(mhz(650), 0.0)
        assert act.effective_hz(0.0) == mhz(650)
        assert act.requested_hz == mhz(650)

    def test_settling_delays_effect(self):
        act = ThrottleActuator(ghz(1.0), settling_time_s=0.001)
        act.set_frequency(mhz(650), 1.0)
        assert act.effective_hz(1.0) == ghz(1.0)
        assert act.effective_hz(1.0005) == ghz(1.0)
        assert act.effective_hz(1.001) == mhz(650)

    def test_next_change_time(self):
        act = ThrottleActuator(ghz(1.0), settling_time_s=0.002)
        assert act.next_change_time(0.0) is None
        act.set_frequency(mhz(500), 0.0)
        assert act.next_change_time(0.0) == pytest.approx(0.002)
        assert act.next_change_time(0.01) is None  # settled

    def test_transition_counting_skips_noops(self):
        act = ThrottleActuator(ghz(1.0))
        act.set_frequency(ghz(1.0), 0.0)      # no-op
        act.set_frequency(mhz(900), 0.0)
        act.set_frequency(mhz(900), 0.1)      # no-op
        act.set_frequency(ghz(1.0), 0.2)
        assert act.transitions == 2

    def test_validate_in(self):
        act = ThrottleActuator(mhz(650))
        act.validate_in((mhz(500), mhz(650), ghz(1.0)))
        act.set_frequency(mhz(625), 0.0)
        with pytest.raises(FrequencyError):
            act.validate_in((mhz(500), mhz(650), ghz(1.0)))


class TestHotIdlePhase:
    def test_observed_ipc_matches_section_71(self, latencies):
        # The hot idle loop shows IPC ~1.3 at any frequency.
        assert HOT_IDLE_PHASE.true_ipc(latencies, ghz(1.0)) == \
            pytest.approx(1.3)
        assert HOT_IDLE_PHASE.true_ipc(latencies, mhz(250)) == \
            pytest.approx(1.3)

    def test_is_idle_flag(self):
        assert HOT_IDLE_PHASE.is_idle


class TestIdleDetector:
    def test_edge_triggered(self):
        det = IdleDetector(0, enabled=True)
        signals = []
        det.subscribe(lambda core, idle: signals.append((core, idle)))
        det.note_queue_length(0)
        det.note_queue_length(0)   # no repeat signal
        det.note_queue_length(2)
        det.note_queue_length(1)   # still busy: no signal
        det.note_queue_length(0)
        assert signals == [(0, True), (0, False), (0, True)]

    def test_disabled_swallows_signals(self):
        det = IdleDetector(1, enabled=False)
        signals = []
        det.subscribe(lambda core, idle: signals.append(idle))
        det.note_queue_length(0)
        det.note_queue_length(3)
        assert signals == []
        assert det.is_idle is False  # state still tracked

    def test_is_idle_property_tracks(self):
        det = IdleDetector(2, enabled=True)
        det.note_queue_length(0)
        assert det.is_idle
        det.note_queue_length(1)
        assert not det.is_idle
