"""The thermal substrate."""

import math

import pytest

from repro.errors import SimulationError
from repro.power.thermal import ThermalMonitor, ThermalNode, ThermalParams


class TestThermalParams:
    def test_time_constant(self):
        p = ThermalParams(r_th_k_per_w=0.5, c_th_j_per_k=20.0)
        assert p.time_constant_s == pytest.approx(10.0)

    def test_steady_state(self):
        p = ThermalParams(r_th_k_per_w=0.47)
        assert p.steady_state_c(140.0, 25.0) == pytest.approx(90.8)

    def test_sustainable_power(self):
        p = ThermalParams(r_th_k_per_w=0.47, t_limit_c=95.0)
        assert p.sustainable_power_w(25.0) == pytest.approx(70.0 / 0.47)
        assert p.sustainable_power_w(100.0) == 0.0

    def test_validation(self):
        with pytest.raises(Exception):
            ThermalParams(r_th_k_per_w=0.0)


class TestThermalNode:
    def test_relaxes_to_steady_state(self):
        node = ThermalNode(ThermalParams(), ambient_c=25.0,
                           temperature_c=25.0)
        for _ in range(100):
            node.advance(5.0, 140.0)
        assert node.temperature_c == pytest.approx(
            node.params.steady_state_c(140.0, 25.0), abs=0.01)

    def test_exact_exponential_step(self):
        params = ThermalParams(r_th_k_per_w=0.5, c_th_j_per_k=10.0)
        node = ThermalNode(params, ambient_c=20.0, temperature_c=20.0)
        node.advance(5.0, 100.0)   # tau = 5 s: one time constant
        t_ss = params.steady_state_c(100.0, 20.0)
        expected = t_ss + (20.0 - t_ss) * math.exp(-1.0)
        assert node.temperature_c == pytest.approx(expected)

    def test_cooling_when_power_drops(self):
        node = ThermalNode(ThermalParams(), ambient_c=25.0,
                           temperature_c=90.0)
        node.advance(10.0, 9.0)
        assert node.temperature_c < 90.0

    def test_over_limit_and_headroom(self):
        params = ThermalParams(t_limit_c=95.0)
        node = ThermalNode(params, ambient_c=25.0, temperature_c=97.0)
        assert node.over_limit
        assert node.headroom_c == pytest.approx(-2.0)

    def test_ambient_change_shifts_equilibrium(self):
        node = ThermalNode(ThermalParams(), ambient_c=25.0,
                           temperature_c=25.0)
        node.set_ambient(45.0)
        for _ in range(100):
            node.advance(5.0, 50.0)
        assert node.temperature_c == pytest.approx(
            45.0 + 0.47 * 50.0, abs=0.01)


class TestThermalMonitor:
    def test_tracks_hottest_core(self):
        monitor = ThermalMonitor(2, ambient_c=25.0)
        monitor.advance(0.0, 30.0, [140.0, 9.0])
        assert monitor.hottest_c == monitor.nodes[0].temperature_c
        assert monitor.nodes[0].temperature_c > monitor.nodes[1].temperature_c

    def test_warm_start(self):
        monitor = ThermalMonitor(2, ambient_c=25.0)
        monitor.warm_start(140.0)
        assert monitor.hottest_c == pytest.approx(90.8)

    def test_budget_tracks_ambient(self):
        monitor = ThermalMonitor(4, ambient_c=25.0, margin_c=3.0)
        cool_budget = monitor.cpu_budget_w()
        monitor.set_ambient(45.0)
        hot_budget = monitor.cpu_budget_w()
        assert hot_budget < cool_budget
        # (95 - 3 - 45) / 0.47 per core, times 4.
        assert hot_budget == pytest.approx(4 * 47.0 / 0.47)

    def test_budget_floor_zero(self):
        monitor = ThermalMonitor(1, ambient_c=25.0)
        monitor.set_ambient(200.0)
        assert monitor.cpu_budget_w() == 0.0

    def test_power_vector_length_checked(self):
        monitor = ThermalMonitor(2)
        with pytest.raises(SimulationError):
            monitor.advance(0.0, 1.0, [100.0])

    def test_history_recorded(self):
        monitor = ThermalMonitor(1)
        monitor.advance(1.0, 1.0, [140.0])
        monitor.advance(2.0, 1.0, [140.0])
        assert len(monitor.history) == 2
        assert monitor.history[1][1] > monitor.history[0][1]
