"""The CMOS power equation (Section 4.4)."""

import numpy as np
import pytest

from repro.errors import PowerModelError
from repro.power.cmos import CmosPowerModel
from repro.units import ghz


class TestPowerEquation:
    def test_total_is_active_plus_static(self):
        m = CmosPowerModel(capacitance_f=60e-9, leakage_s=2.0)
        f, v = ghz(1.0), 1.3
        assert m.power_w(f, v) == pytest.approx(
            m.active_power_w(f, v) + m.static_power_w(v)
        )

    def test_active_power_linear_in_frequency(self):
        m = CmosPowerModel(capacitance_f=60e-9)
        assert m.active_power_w(ghz(1.0), 1.3) == pytest.approx(
            2 * m.active_power_w(ghz(0.5), 1.3)
        )

    def test_power_quadratic_in_voltage(self):
        m = CmosPowerModel(capacitance_f=60e-9, leakage_s=1.0)
        assert m.power_w(ghz(1.0), 1.2) == pytest.approx(
            4 * m.power_w(ghz(1.0), 0.6)
        )

    def test_static_power_frequency_independent(self):
        m = CmosPowerModel(capacitance_f=60e-9, leakage_s=3.0)
        assert m.static_power_w(1.0) == pytest.approx(3.0)

    def test_zero_leakage_allowed(self):
        m = CmosPowerModel(capacitance_f=60e-9)
        assert m.static_power_w(1.3) == 0.0

    def test_nonpositive_capacitance_rejected(self):
        with pytest.raises(Exception):
            CmosPowerModel(capacitance_f=0.0)

    def test_plausible_power4_magnitude(self):
        # C sized to give ~140 W at 1 GHz / 1.3 V.
        c = 140.0 / (1.3 ** 2 * ghz(1.0))
        m = CmosPowerModel(capacitance_f=c)
        assert m.power_w(ghz(1.0), 1.3) == pytest.approx(140.0)


class TestVectorised:
    def test_matches_scalar(self):
        m = CmosPowerModel(capacitance_f=60e-9, leakage_s=1.5)
        f = np.array([ghz(0.25), ghz(0.5), ghz(1.0)])
        v = np.array([0.8, 1.0, 1.3])
        np.testing.assert_allclose(
            m.power_array_w(f, v),
            [m.power_w(fi, vi) for fi, vi in zip(f, v)],
        )

    def test_shape_mismatch_rejected(self):
        m = CmosPowerModel(capacitance_f=60e-9)
        with pytest.raises(PowerModelError):
            m.power_array_w(np.array([1e9, 2e9]), np.array([1.0]))

    def test_nonpositive_entries_rejected(self):
        m = CmosPowerModel(capacitance_f=60e-9)
        with pytest.raises(PowerModelError):
            m.power_array_w(np.array([1e9, -1e9]), np.array([1.0, 1.0]))
