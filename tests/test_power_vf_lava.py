"""Voltage curves and the Lava-fit calibrator."""

import numpy as np
import pytest

from repro.errors import PowerModelError
from repro.power.lava import fit_lava_model
from repro.power.table import POWER4_TABLE
from repro.power.vf_curve import LinearVFCurve, TableVFCurve
from repro.units import ghz, mhz


class TestLinearVFCurve:
    CURVE = LinearVFCurve(f_min_hz=mhz(250), v_min=0.7,
                          f_max_hz=ghz(1.0), v_max=1.3)

    def test_endpoints(self):
        assert self.CURVE.min_voltage(mhz(250)) == pytest.approx(0.7)
        assert self.CURVE.min_voltage(ghz(1.0)) == pytest.approx(1.3)

    def test_midpoint_interpolates(self):
        assert self.CURVE.min_voltage(mhz(625)) == pytest.approx(1.0)

    def test_clamps_below_floor(self):
        assert self.CURVE.min_voltage(mhz(100)) == pytest.approx(0.7)

    def test_rejects_above_rated_max(self):
        with pytest.raises(PowerModelError):
            self.CURVE.min_voltage(ghz(1.2))

    def test_vectorised_matches_scalar(self):
        freqs = np.array([mhz(250), mhz(500), mhz(750), ghz(1.0)])
        np.testing.assert_allclose(
            self.CURVE.min_voltage_array(freqs),
            [self.CURVE.min_voltage(f) for f in freqs],
        )

    def test_inverted_anchors_rejected(self):
        with pytest.raises(PowerModelError):
            LinearVFCurve(f_min_hz=ghz(1.0), v_min=0.7,
                          f_max_hz=mhz(250), v_max=1.3)


class TestTableVFCurve:
    CURVE = TableVFCurve({mhz(600): 1.0, mhz(800): 1.1, ghz(1.0): 1.3})

    def test_exact_lookup(self):
        assert self.CURVE.min_voltage(mhz(800)) == pytest.approx(1.1)

    def test_intermediate_rounds_up_conservatively(self):
        # A frequency between table points needs the higher voltage.
        assert self.CURVE.min_voltage(mhz(700)) == pytest.approx(1.1)

    def test_above_table_rejected(self):
        with pytest.raises(PowerModelError):
            self.CURVE.min_voltage(ghz(1.1))

    def test_voltage_must_be_monotone(self):
        with pytest.raises(PowerModelError):
            TableVFCurve({mhz(600): 1.2, mhz(800): 1.0})


class TestLavaFit:
    FIT = fit_lava_model(POWER4_TABLE)

    def test_reproduces_table_within_ten_percent(self):
        for f, p in POWER4_TABLE:
            assert self.FIT.power_w(f) == pytest.approx(p, rel=0.10)

    def test_reported_errors_are_consistent(self):
        rel = [abs(self.FIT.power_w(f) - p) / p for f, p in POWER4_TABLE]
        assert self.FIT.max_rel_error == pytest.approx(max(rel), rel=1e-6)
        assert self.FIT.rms_rel_error <= self.FIT.max_rel_error

    def test_physical_parameters(self):
        assert self.FIT.cmos.capacitance_f > 0
        assert self.FIT.cmos.leakage_s >= 0
        assert 0.4 * 1.3 <= self.FIT.vf_curve.v_min <= 1.3
        assert self.FIT.vf_curve.v_max == pytest.approx(1.3)

    def test_power_curve_monotone(self):
        freqs = np.linspace(mhz(250), ghz(1.0), 64)
        powers = self.FIT.power_array_w(freqs)
        assert np.all(np.diff(powers) > 0)

    def test_regenerate_table_roundtrip(self):
        regenerated = self.FIT.regenerate_table(POWER4_TABLE.freqs_hz)
        assert len(regenerated) == len(POWER4_TABLE)
        for (f1, p1), (f2, p2) in zip(regenerated, POWER4_TABLE):
            assert f1 == f2
            assert p1 == pytest.approx(p2, rel=0.10)

    def test_regenerate_other_ladder(self):
        coarse = self.FIT.regenerate_table([mhz(300), mhz(600), mhz(900)])
        assert len(coarse) == 3
        assert coarse.power_at(mhz(600)) == pytest.approx(48.0, rel=0.10)

    def test_bad_floor_fraction_rejected(self):
        with pytest.raises(PowerModelError):
            fit_lava_model(POWER4_TABLE, v_floor_fraction=1.5)
