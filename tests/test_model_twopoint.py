"""The two-frequency calibration approach (footnote 1, first variant)."""

import pytest

from repro.errors import ModelError
from repro.model.ipc import WorkloadSignature
from repro.model.twopoint import calibrate_two_point
from repro.units import ghz


def observe(sig: WorkloadSignature, f: float) -> float:
    return sig.ipc(f)


class TestCalibration:
    def test_exact_recovery_from_two_clean_samples(self, mem_signature):
        f1, f2 = ghz(1.0), ghz(0.6)
        cal = calibrate_two_point(f1, observe(mem_signature, f1),
                                  f2, observe(mem_signature, f2))
        assert cal.signature.core_cpi == pytest.approx(
            mem_signature.core_cpi
        )
        assert cal.signature.mem_time_per_instr_s == pytest.approx(
            mem_signature.mem_time_per_instr_s
        )

    def test_recovered_signature_predicts_third_point(self, mem_signature):
        f1, f2, f3 = ghz(1.0), ghz(0.7), ghz(0.4)
        cal = calibrate_two_point(f1, observe(mem_signature, f1),
                                  f2, observe(mem_signature, f2))
        assert cal.signature.ipc(f3) == pytest.approx(
            mem_signature.ipc(f3)
        )
        assert cal.residual_at(f3, observe(mem_signature, f3)) == \
            pytest.approx(0.0, abs=1e-12)

    def test_pure_cpu_recovers_zero_memory(self):
        sig = WorkloadSignature(core_cpi=0.8, mem_time_per_instr_s=0.0)
        cal = calibrate_two_point(ghz(1.0), observe(sig, ghz(1.0)),
                                  ghz(0.5), observe(sig, ghz(0.5)))
        assert cal.signature.mem_time_per_instr_s == pytest.approx(0.0,
                                                                   abs=1e-18)

    def test_residual_flags_nonstationary_workload(self, mem_signature,
                                                   cpu_signature):
        # Calibrate on the memory workload, score a sample from the CPU one.
        cal = calibrate_two_point(
            ghz(1.0), observe(mem_signature, ghz(1.0)),
            ghz(0.6), observe(mem_signature, ghz(0.6)),
        )
        assert cal.residual_at(ghz(0.8), observe(cpu_signature, ghz(0.8))) \
            > 0.1


class TestRejection:
    def test_too_close_frequencies(self, mem_signature):
        with pytest.raises(ModelError, match="too close"):
            calibrate_two_point(ghz(1.0), 0.5, ghz(1.0) * (1 + 1e-9), 0.5)

    def test_ipc_rising_with_frequency_rejected(self):
        # Higher IPC at the higher frequency means the workload changed.
        with pytest.raises(ModelError, match="changed"):
            calibrate_two_point(ghz(1.0), 0.9, ghz(0.5), 0.5)

    def test_inconsistent_core_cpi_rejected(self):
        # Two observations implying negative frequency-independent cycles.
        with pytest.raises(ModelError):
            calibrate_two_point(ghz(1.0), 2.0, ghz(0.5), 100.0)

    def test_nonpositive_inputs_rejected(self):
        with pytest.raises(Exception):
            calibrate_two_point(ghz(1.0), 0.0, ghz(0.5), 0.5)
