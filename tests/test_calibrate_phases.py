"""Calibration utilities and phase detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.phases import detect_phases, phase_summary
from repro.core.scheduler import FrequencyVoltageScheduler
from repro.errors import ExperimentError, WorkloadError
from repro.power.table import POWER4_TABLE, WORKED_EXAMPLE_TABLE
from repro.units import ghz, mhz
from repro.workloads.calibrate import (
    admissibility_threshold,
    ratio_band_for_rung,
    ratio_for_rung,
    signature_for_rung,
)


class TestAdmissibilityThreshold:
    def test_matches_hand_derivation(self):
        # docs/MODEL.md: at eps=0.04, f=0.65 -> 0.65*0.04/0.31.
        assert admissibility_threshold(0.65, 0.04) == pytest.approx(
            0.65 * 0.04 / 0.31)

    def test_infinite_above_one_minus_eps(self):
        assert admissibility_threshold(0.97, 0.04) == float("inf")
        assert admissibility_threshold(0.96, 0.04) == float("inf")

    def test_monotone_in_frequency(self):
        ts = [admissibility_threshold(f, 0.04)
              for f in (0.3, 0.5, 0.7, 0.9)]
        assert ts == sorted(ts)

    def test_bad_epsilon(self):
        with pytest.raises(WorkloadError):
            admissibility_threshold(0.5, 0.0)


class TestRatioForRung:
    @pytest.mark.parametrize("target_mhz", [250, 500, 650, 750, 900, 950,
                                            1000])
    def test_round_trip_through_the_scheduler(self, target_mhz):
        """The calibrated ratio's epsilon rung is exactly the target."""
        eps = 0.04
        sig = signature_for_rung(POWER4_TABLE, mhz(target_mhz), eps)
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        f, _loss = sched.epsilon_constrained(sig)
        assert f == mhz(target_mhz)

    @pytest.mark.parametrize("target_ghz", [0.6, 0.7, 0.8, 0.9, 1.0])
    def test_round_trip_on_worked_example_ladder(self, target_ghz):
        eps = 0.03
        sig = signature_for_rung(WORKED_EXAMPLE_TABLE, ghz(target_ghz), eps)
        sched = FrequencyVoltageScheduler(WORKED_EXAMPLE_TABLE, epsilon=eps)
        f, _loss = sched.epsilon_constrained(sig)
        assert f == ghz(target_ghz)

    @given(eps=st.floats(0.01, 0.2),
           idx=st.integers(0, 15))
    @settings(max_examples=60)
    def test_round_trip_property(self, eps, idx):
        target = POWER4_TABLE.freqs_hz[idx]
        try:
            sig = signature_for_rung(POWER4_TABLE, target, eps)
        except WorkloadError:
            return  # empty band: legitimately impossible at this epsilon
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        f, _ = sched.epsilon_constrained(sig)
        assert f == target

    def test_band_edges_ordered(self):
        low, high = ratio_band_for_rung(POWER4_TABLE, mhz(650), 0.04)
        assert 0 < low < high < float("inf")

    def test_bottom_rung_band_starts_at_zero(self):
        low, high = ratio_band_for_rung(POWER4_TABLE, mhz(250), 0.04)
        assert low == 0.0 and high > 0

    def test_top_rung_band_unbounded(self):
        low, high = ratio_band_for_rung(POWER4_TABLE, ghz(1.0), 0.04)
        assert high == float("inf")
        assert ratio_for_rung(POWER4_TABLE, ghz(1.0), 0.04) > low


class TestPhaseDetection:
    def _square_wave(self, hi=1.2, lo=0.1, samples=20, reps=3):
        t, v = [], []
        k = 0
        for _ in range(reps):
            for level in (hi, lo):
                for _ in range(samples):
                    t.append(k * 0.1)
                    v.append(level)
                    k += 1
        return np.array(t), np.array(v)

    def test_square_wave_segmentation(self):
        t, v = self._square_wave()
        segments = detect_phases(t, v)
        assert len(segments) == 6
        means = [round(s.mean_ipc, 1) for s in segments]
        assert means == [1.2, 0.1, 1.2, 0.1, 1.2, 0.1]

    def test_noise_does_not_fragment(self):
        rng = np.random.default_rng(0)
        t = np.arange(100) * 0.1
        v = 1.0 + 0.02 * rng.standard_normal(100)
        segments = detect_phases(t, v, rel_change=0.3)
        assert len(segments) == 1

    def test_min_dwell_suppresses_single_spikes(self):
        t = np.arange(20) * 0.1
        v = np.ones(20)
        v[7] = 5.0   # one-sample outlier
        segments = detect_phases(t, v, rel_change=0.3, min_samples=3)
        # The spike opens one short segment which the dwell closes after
        # min_samples; the series never fragments beyond that.
        assert len(segments) <= 3
        assert max(s.samples for s in segments) >= 7

    def test_summary_statistics(self):
        t, v = self._square_wave()
        stats = phase_summary(detect_phases(t, v))
        assert stats["num_phases"] == 6
        assert stats["ipc_spread"] == pytest.approx(1.1, abs=0.01)
        assert stats["min_duration_s"] > 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            detect_phases([], [])
        with pytest.raises(ExperimentError):
            detect_phases([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            phase_summary([])

    def test_detects_fig5_phases_from_a_real_log(self):
        """End to end: the daemon's own log segments into the benchmark's
        two phases."""
        from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
        from repro.sim.driver import Simulation
        from repro.workloads.synthetic import two_phase_benchmark
        from tests.conftest import make_machine

        m = make_machine(1, seed=2)
        m.assign(0, two_phase_benchmark(
            1.0, 0.2, duration_a_s=1.0, duration_b_s=1.0,
            include_init_exit=False).job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=3)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(4.0)
        t, ipc = d.log.ipc_series(0, 0)
        segments = detect_phases(t, ipc, rel_change=0.5, min_samples=5)
        stats = phase_summary(segments)
        # ~4 alternations, with short transition slivers at entry into the
        # memory phase (the scheduler's one-period lag) allowed.
        assert 3 <= stats["num_phases"] <= 8
        assert stats["ipc_spread"] > 0.5          # CPU vs memory phase
        # The two long phases dominate the timeline.
        long = sorted((s.duration_s for s in segments), reverse=True)
        assert sum(long[:4]) > 0.8 * (t[-1] - t[0])
