"""Result export/import round trips."""

import csv

import pytest

from repro.analysis.export import (
    export_csv,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.analysis.report import ExperimentResult, SeriesResult, TableResult
from repro.errors import ExperimentError


def demo_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        description="round-trip demo",
        tables=[TableResult(
            title="T", headers=("a", "b"), rows=((1, 2.5), ("x", 4)),
        )],
        series=[SeriesResult(
            title="S", x_label="t", x=(0.0, 1.0),
            series={"y1": (1.0, 2.0), "y2": (3.0, 4.0)},
        )],
        scalars={"k": 1.25},
        notes=["note one"],
    )


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        original = demo_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.tables[0].headers == original.tables[0].headers
        assert rebuilt.series[0].series == original.series[0].series
        assert rebuilt.scalars == original.scalars
        assert rebuilt.notes == original.notes

    def test_file_round_trip(self, tmp_path):
        path = save_result(demo_result(), tmp_path / "sub" / "demo.json")
        assert path.exists()
        rebuilt = load_result(path)
        assert rebuilt.render() == demo_result().render()

    def test_bad_version_rejected(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"version": 99})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"version": 1, "experiment_id": "x"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_result(tmp_path / "nope.json")


class TestCsvExport:
    def test_files_written_for_every_artifact(self, tmp_path):
        written = export_csv(demo_result(), tmp_path)
        assert len(written) == 3   # table + series + scalars
        assert all(p.exists() for p in written)

    def test_table_csv_content(self, tmp_path):
        written = export_csv(demo_result(), tmp_path)
        table_file = next(p for p in written if "_T" in p.name
                          and "scalars" not in p.name and "_S" not in p.name)
        with table_file.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_series_csv_aligns_columns(self, tmp_path):
        written = export_csv(demo_result(), tmp_path)
        series_file = next(p for p in written if "_S" in p.name)
        with series_file.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["t", "y1", "y2"]
        assert rows[2] == ["1.0", "2.0", "4.0"]

    def test_real_experiment_round_trip(self, tmp_path):
        from repro.experiments import run_experiment
        result = run_experiment("table1")
        path = save_result(result, tmp_path / "table1.json")
        rebuilt = load_result(path)
        assert rebuilt.tables[0].column("Power (W)") == \
            result.tables[0].column("Power (W)")
