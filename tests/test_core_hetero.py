"""Heterogeneous (process-variation) scheduling."""

import pytest

from repro.core.hetero import HeterogeneousScheduler
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.errors import SchedulingError
from repro.experiments import run_experiment
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE, FrequencyPowerTable
from repro.units import ghz, mhz


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


def views(*ratios):
    return [ProcessorView(node_id=0, proc_id=i, signature=sig(r))
            for i, r in enumerate(ratios)]


class TestHeterogeneousScheduler:
    def test_defaults_to_base_table(self):
        sched = HeterogeneousScheduler(POWER4_TABLE)
        assert sched.power_for(0, 0, ghz(1.0)) == 140.0
        assert sched.table_for(0, 0) is POWER4_TABLE

    def test_per_processor_override(self):
        sched = HeterogeneousScheduler.from_scales(
            POWER4_TABLE, {(0, 1): 1.2})
        assert sched.power_for(0, 0, ghz(1.0)) == 140.0
        assert sched.power_for(0, 1, ghz(1.0)) == pytest.approx(168.0)

    def test_mismatched_frequency_set_rejected(self):
        other = FrequencyPowerTable({mhz(500): 35.0, mhz(900): 109.0})
        sched = HeterogeneousScheduler(POWER4_TABLE)
        with pytest.raises(SchedulingError):
            sched.set_processor_table(0, 0, other)

    def test_schedule_totals_use_per_part_power(self):
        sched = HeterogeneousScheduler.from_scales(
            POWER4_TABLE, {(0, 0): 1.5, (0, 1): 1.5})
        schedule = sched.schedule(views(0.075, 0.075))
        assert schedule.total_power_w == pytest.approx(2 * 57.0 * 1.5)

    def test_budget_enforced_against_true_draw(self):
        # Two leaky CPU-bound parts: a homogeneous scheduler would stop at
        # 2 x 140 = 280 <= 300, but the true draw is 1.5x.
        hetero = HeterogeneousScheduler.from_scales(
            POWER4_TABLE, {(0, 0): 1.5, (0, 1): 1.5})
        schedule = hetero.schedule(views(50.0, 50.0), power_limit_w=300.0)
        assert schedule.total_power_w <= 300.0
        homogeneous = FrequencyVoltageScheduler(POWER4_TABLE)
        naive = homogeneous.schedule(views(50.0, 50.0), power_limit_w=300.0)
        # The naive plan believes it fits but would truly draw 1.5x more.
        true_draw = 1.5 * naive.total_power_w
        assert true_draw > 300.0

    def test_greedy_sheds_power_where_watts_are_cheap(self):
        # Identical workloads; part 1 draws double.  Forcing one reduction,
        # paper's metric is loss-based so ties break by proc id; but the
        # *budget* converges faster per step on the leaky part — total
        # power after scheduling must satisfy the limit either way.
        sched = HeterogeneousScheduler.from_scales(
            POWER4_TABLE, {(0, 1): 2.0})
        schedule = sched.schedule(views(0.075, 0.075),
                                  power_limit_w=160.0)
        assert schedule.total_power_w <= 160.0

    def test_equal_scales_match_base_scheduler(self):
        hetero = HeterogeneousScheduler.from_scales(
            POWER4_TABLE, {(0, i): 1.0 for i in range(3)})
        base = FrequencyVoltageScheduler(POWER4_TABLE)
        v = views(10.0, 0.3, 0.075)
        for limit in (None, 250.0, 120.0):
            s_h = hetero.schedule(v, power_limit_w=limit)
            s_b = base.schedule(v, power_limit_w=limit)
            assert s_h.frequency_vector_hz() == s_b.frequency_vector_hz()


class TestVariationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("variation", fast=True)

    def test_homogeneous_violates_aware_does_not(self, result):
        assert result.scalars["homogeneous_violation_fraction"] > 0.5
        assert result.scalars["aware_violation_fraction"] == 0.0

    def test_aware_max_within_budget(self, result):
        assert result.scalars["aware_max_w"] <= 294.0 + 1e-6
        assert result.scalars["homogeneous_max_w"] > 294.0
