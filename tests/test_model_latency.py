"""Memory latency profiles."""

import pytest

from repro.errors import ModelError
from repro.model.latency import POWER4_LATENCIES, MemoryLatencyProfile
from repro.units import ghz, ns


class TestProfileValidation:
    def test_power4_profile_values(self):
        assert POWER4_LATENCIES.t_l2_s == pytest.approx(ns(15))
        assert POWER4_LATENCIES.t_l3_s == pytest.approx(ns(113))
        assert POWER4_LATENCIES.t_mem_s == pytest.approx(ns(393))
        assert POWER4_LATENCIES.l1_latency_cycles == 4.5

    def test_monotonicity_enforced(self):
        with pytest.raises(ModelError):
            MemoryLatencyProfile(t_l2_s=ns(100), t_l3_s=ns(50),
                                 t_mem_s=ns(400))

    def test_nonpositive_rejected(self):
        with pytest.raises(Exception):
            MemoryLatencyProfile(t_l2_s=0.0, t_l3_s=ns(113), t_mem_s=ns(393))

    def test_frozen(self):
        with pytest.raises(Exception):
            POWER4_LATENCIES.t_l2_s = 1.0  # type: ignore[misc]


class TestScaled:
    def test_scaling_multiplies_offcore_only(self):
        scaled = POWER4_LATENCIES.scaled(2.0)
        assert scaled.t_l2_s == pytest.approx(2 * POWER4_LATENCIES.t_l2_s)
        assert scaled.t_mem_s == pytest.approx(2 * POWER4_LATENCIES.t_mem_s)
        assert scaled.l1_latency_cycles == POWER4_LATENCIES.l1_latency_cycles

    def test_bad_factor_rejected(self):
        with pytest.raises(Exception):
            POWER4_LATENCIES.scaled(0.0)


class TestCyclesAt:
    def test_nominal_recovers_published_cycles(self):
        l2, l3, mem = POWER4_LATENCIES.cycles_at(ghz(1.0))
        assert l2 == pytest.approx(15)
        assert l3 == pytest.approx(113)
        assert mem == pytest.approx(393)

    def test_half_clock_halves_cycle_cost(self):
        # This IS the saturation mechanism: constant wall time, fewer
        # cycles at a slower clock.
        l2_full, _, mem_full = POWER4_LATENCIES.cycles_at(ghz(1.0))
        l2_half, _, mem_half = POWER4_LATENCIES.cycles_at(ghz(0.5))
        assert l2_half == pytest.approx(l2_full / 2)
        assert mem_half == pytest.approx(mem_full / 2)
