"""Property-based tests of the scheduler and power substrate."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.model.ipc import WorkloadSignature
from repro.power.energy import EnergyAccumulator
from repro.power.table import POWER4_TABLE
from repro.sim.events import EventQueue
from repro.units import ghz

ratios = st.floats(0.02, 50.0)
epsilons = st.floats(0.01, 0.3)


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


def make_views(ratio_list):
    return [ProcessorView(node_id=0, proc_id=i, signature=sig(r))
            for i, r in enumerate(ratio_list)]


class TestSchedulerInvariants:
    @given(st.lists(ratios, min_size=1, max_size=6), epsilons)
    @settings(max_examples=60)
    def test_unconstrained_choice_respects_epsilon(self, ratio_list, eps):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        schedule = sched.schedule(make_views(ratio_list))
        for a, r in zip(schedule.assignments, ratio_list):
            assert a.predicted_loss < eps
            # No lower admissible rung exists.
            lower = POWER4_TABLE.next_lower(a.freq_hz)
            if lower is not None:
                assert sched.predicted_loss(sig(r), lower) >= eps

    @given(st.lists(ratios, min_size=1, max_size=6), epsilons,
           st.floats(40.0, 900.0))
    @settings(max_examples=60)
    def test_budget_respected_when_feasible(self, ratio_list, eps, limit):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        floor = len(ratio_list) * POWER4_TABLE.min_power_w
        assume(limit >= floor)
        schedule = sched.schedule(make_views(ratio_list),
                                  power_limit_w=limit)
        assert schedule.total_power_w <= limit + 1e-9
        assert not schedule.infeasible

    @given(st.lists(ratios, min_size=1, max_size=6), epsilons,
           st.floats(40.0, 900.0))
    @settings(max_examples=60)
    def test_never_above_eps_frequency(self, ratio_list, eps, limit):
        """Step 2 only ever lowers frequencies chosen in step 1."""
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        floor = len(ratio_list) * POWER4_TABLE.min_power_w
        assume(limit >= floor)
        schedule = sched.schedule(make_views(ratio_list),
                                  power_limit_w=limit)
        for a in schedule.assignments:
            assert a.freq_hz <= a.eps_freq_hz

    @given(st.lists(ratios, min_size=2, max_size=5), epsilons)
    @settings(max_examples=40)
    def test_deterministic(self, ratio_list, eps):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        s1 = sched.schedule(make_views(ratio_list), power_limit_w=200.0)
        s2 = sched.schedule(make_views(ratio_list), power_limit_w=200.0)
        assert s1.frequency_vector_hz() == s2.frequency_vector_hz()

    @given(st.lists(ratios, min_size=1, max_size=5), epsilons,
           st.floats(40.0, 400.0), st.floats(10.0, 200.0))
    @settings(max_examples=40)
    def test_tighter_budget_never_raises_power(self, ratio_list, eps,
                                               limit, cut):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        floor = len(ratio_list) * POWER4_TABLE.min_power_w
        assume(limit - cut >= floor)
        loose = sched.schedule(make_views(ratio_list), power_limit_w=limit)
        tight = sched.schedule(make_views(ratio_list),
                               power_limit_w=limit - cut)
        assert tight.total_power_w <= loose.total_power_w + 1e-9


class TestPowerTableProperties:
    @given(st.floats(100e6, 2e9))
    def test_quantize_brackets(self, f):
        lo = POWER4_TABLE.quantize_down(f)
        hi = POWER4_TABLE.quantize_up(f)
        assert lo <= hi
        assert lo in POWER4_TABLE and hi in POWER4_TABLE
        if POWER4_TABLE.f_min_hz <= f <= POWER4_TABLE.f_max_hz:
            assert lo <= f * (1 + 1e-12) and hi >= f * (1 - 1e-12)

    @given(st.floats(1.0, 1000.0))
    def test_max_frequency_under_is_maximal(self, limit):
        f = POWER4_TABLE.max_frequency_under(limit)
        if f is None:
            assert limit < POWER4_TABLE.min_power_w
        else:
            assert POWER4_TABLE.power_at(f) <= limit
            higher = POWER4_TABLE.next_higher(f)
            if higher is not None:
                assert POWER4_TABLE.power_at(higher) > limit


class TestEnergyProperties:
    @given(st.lists(st.tuples(st.floats(0.001, 10.0), st.floats(0, 500.0)),
                    min_size=1, max_size=20))
    def test_energy_additive_over_any_partition(self, steps):
        acc = EnergyAccumulator()
        t = 0.0
        total = 0.0
        for dt, p in steps:
            t += dt
            acc.advance_to(t, p)
            total += dt * p
        assert math.isclose(acc.energy_j, total, rel_tol=1e-9, abs_tol=1e-9)


class TestEventQueueProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.schedule(t, fired.append)
        q.run_due(200.0)
        assert fired == sorted(fired)
        assert len(fired) == len(times)
