"""Single-pass scheduler equivalence and the multi-threaded daemon."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.daemon_mt import (
    MultithreadedFvsstDaemon,
    MultithreadOverheadModel,
)
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.core.singlepass import SinglePassScheduler
from repro.errors import InfeasibleBudgetError
from repro.model.ipc import WorkloadSignature
from repro.power.table import POWER4_TABLE
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name

ratios = st.floats(0.02, 50.0)


def sig(ratio: float) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / ratio / ghz(1.0))


def views(ratio_list, idle_mask=()):
    return [
        ProcessorView(node_id=0, proc_id=i, signature=sig(r),
                      idle_signaled=i in idle_mask)
        for i, r in enumerate(ratio_list)
    ]


class TestSinglePassEquivalence:
    @given(st.lists(ratios, min_size=1, max_size=8),
           st.floats(0.01, 0.3),
           st.one_of(st.none(), st.floats(40.0, 900.0)))
    @settings(max_examples=100)
    def test_identical_to_two_pass(self, ratio_list, eps, limit):
        if limit is not None:
            assume(limit >= len(ratio_list) * POWER4_TABLE.min_power_w)
        two = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=eps)
        one = SinglePassScheduler(POWER4_TABLE, epsilon=eps)
        s2 = two.schedule(views(ratio_list), power_limit_w=limit)
        s1 = one.schedule(views(ratio_list), power_limit_w=limit)
        assert s1.frequency_vector_hz() == s2.frequency_vector_hz()
        assert s1.total_power_w == pytest.approx(s2.total_power_w)
        assert s1.eps_frequency_vector_hz() == s2.eps_frequency_vector_hz()

    def test_identical_with_idle_and_cap(self):
        two = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        one = SinglePassScheduler(POWER4_TABLE, epsilon=0.04)
        v = views([10.0, 0.075, 3.0], idle_mask={2})
        for limit in (None, 250.0, 120.0):
            for cap in (None, mhz(800)):
                s2 = two.schedule(v, power_limit_w=limit, max_freq_hz=cap)
                s1 = one.schedule(v, power_limit_w=limit, max_freq_hz=cap)
                assert s1.frequency_vector_hz() == s2.frequency_vector_hz()

    def test_infeasible_behaviour_matches(self):
        one = SinglePassScheduler(POWER4_TABLE, epsilon=0.04)
        v = views([10.0] * 4)
        with pytest.raises(InfeasibleBudgetError):
            one.schedule(v, power_limit_w=20.0, on_infeasible="raise")
        floored = one.schedule(v, power_limit_w=20.0)
        assert floored.infeasible
        assert floored.frequency_vector_hz() == [mhz(250)] * 4

    def test_worked_example_via_single_pass(self):
        from repro.power.table import WORKED_EXAMPLE_TABLE
        one = SinglePassScheduler(WORKED_EXAMPLE_TABLE, epsilon=0.03)
        v = views([0.45, 0.07, 0.12, 0.12])
        s = one.schedule(v, power_limit_w=294.0, on_infeasible="raise")
        assert s.frequency_vector_hz() == [ghz(0.9), ghz(0.6), ghz(0.7),
                                           ghz(0.7)]
        assert s.total_power_w == pytest.approx(289.0)


class TestMultithreadedDaemon:
    def _machine(self, seed=0) -> SMPMachine:
        m = SMPMachine(MachineConfig(
            num_cores=4,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ), seed=seed)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.assign(1, profile_by_name("mcf").job(loop=True))
        return m

    def test_schedules_like_the_single_threaded_daemon(self):
        def freq_vector(cls, seed):
            m = self._machine(seed)
            kwargs = {}
            if cls is MultithreadedFvsstDaemon:
                kwargs["mt_overhead"] = MultithreadOverheadModel(
                    enabled=False)
                config = DaemonConfig(counter_noise_sigma=0.0)
            else:
                config = DaemonConfig(
                    counter_noise_sigma=0.0,
                    overhead=OverheadModel(enabled=False))
            d = cls(m, config, seed=seed + 1, **kwargs)
            sim = Simulation(m)
            d.attach(sim)
            sim.run_for(1.0)
            return m.frequency_vector_hz()

        assert freq_vector(FvsstDaemon, 3) == \
            freq_vector(MultithreadedFvsstDaemon, 3)

    def test_overhead_distributed_across_cores(self):
        m = self._machine(4)
        d = MultithreadedFvsstDaemon(
            m, DaemonConfig(counter_noise_sigma=0.0, daemon_core=0),
            seed=5)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        stolen = [c.overhead_executed_s for c in m.cores]
        # Every core pays for its own collector thread.
        assert all(s > 0 for s in stolen)
        # And no single core pays for everyone (the single-threaded
        # pathology): core 0 carries only the scheduling calculation on
        # top of its own collector (~1.5 ms vs ~0.6 ms over one second).
        assert stolen[0] < 5 * stolen[3]

    def test_single_threaded_concentrates_overhead(self):
        m = self._machine(6)
        d = FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0,
                                        daemon_core=2), seed=7)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        stolen = [c.overhead_executed_s for c in m.cores]
        assert stolen[2] > 0
        assert stolen[0] == stolen[1] == stolen[3] == 0.0

    def test_mt_budget_compliance(self):
        m = self._machine(8)
        d = MultithreadedFvsstDaemon(
            m, DaemonConfig(counter_noise_sigma=0.0, power_limit_w=294.0),
            seed=9)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        assert m.cpu_power_w() <= 294.0 + 1e-9
