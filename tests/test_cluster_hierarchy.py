"""The hierarchical control plane: water-fill, shard summaries, the
fleet allocator, and the single-shard byte-identity with the flat path."""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.faults import FaultSchedule, fault_scenario, fleet_fault_scenario
from repro.cluster.hierarchy import (
    FleetAllocator,
    FleetConfig,
    ShardCoordinator,
    water_fill_budgets,
)
from repro.cluster.protocol import BudgetLease, ShardSummary, message_size_bytes
from repro.errors import ClusterError
from repro.power.table import POWER4_TABLE
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkFaults, PartitionWindow
from repro.telemetry import (
    EVENT_SHARD_LOST,
    EVENT_SHARD_REBALANCE,
    EVENT_SHARD_RECOVERED,
    Telemetry,
)
from repro.workloads.tiers import tiered_cluster_assignment


def quiet_cluster(nodes, procs=2, seed=0) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=seed,
    )


class TestWaterFill:
    def test_interpolates_between_rungs(self):
        ladders = np.array([[10.0, 20.0, 30.0],
                            [10.0, 15.0, 40.0]])
        budgets, infeasible = water_fill_budgets(ladders, 35.0)
        # totals = [20, 35, 70]; the budget lands exactly on rung 1.
        assert not infeasible
        assert budgets == pytest.approx([20.0, 15.0])
        budgets, _ = water_fill_budgets(ladders, 52.5)
        # Halfway up the rung-1 -> rung-2 span, same fraction for both.
        assert budgets == pytest.approx([25.0, 27.5])
        assert budgets.sum() == pytest.approx(52.5)

    def test_surplus_splits_slack_evenly(self):
        ladders = np.array([[5.0, 30.0], [5.0, 10.0]])
        budgets, infeasible = water_fill_budgets(ladders, 50.0)
        assert not infeasible
        assert budgets == pytest.approx([35.0, 15.0])

    def test_floor_and_infeasible(self):
        ladders = np.array([[10.0, 30.0], [10.0, 40.0]])
        budgets, infeasible = water_fill_budgets(ladders, 20.0)
        assert not infeasible
        assert budgets == pytest.approx([10.0, 10.0])
        budgets, infeasible = water_fill_budgets(ladders, 12.0)
        assert infeasible
        assert budgets == pytest.approx([10.0, 10.0])

    def test_fairness_favours_flat_ladders(self):
        # The memory-bound shard's ladder saturates early (capping costs it
        # nothing); the fill hands the spare budget to the steep shard.
        ladders = np.array([[10.0, 12.0, 12.5],    # memory-bound
                            [10.0, 40.0, 80.0]])   # CPU-bound
        budgets, _ = water_fill_budgets(ladders, 52.0)
        assert budgets[1] > budgets[0]
        assert budgets[0] == pytest.approx(12.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ClusterError):
            water_fill_budgets(np.array([1.0, 2.0]), 10.0)

    @given(
        shards=st.integers(1, 5),
        rungs=st.integers(1, 6),
        seed=st.integers(0, 1000),
        fraction=st.floats(0.0, 1.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_fill_conserves_budget_property(self, shards, rungs, seed,
                                            fraction):
        rng = np.random.default_rng(seed)
        steps = rng.uniform(0.0, 50.0, size=(shards, rungs))
        steps[:, 0] = rng.uniform(1.0, 20.0, size=shards)
        ladders = np.cumsum(steps, axis=1)
        floor = ladders[:, 0].sum()
        demand = ladders[:, -1].sum()
        budget = floor + fraction * (demand - floor)
        budgets, infeasible = water_fill_budgets(ladders, budget)
        assert not infeasible
        assert np.all(budgets >= ladders[:, 0] - 1e-9)
        if fraction <= 1.0:
            # Between floor and demand the fill spends the budget exactly.
            assert budgets.sum() == pytest.approx(budget)
        else:
            assert budgets.sum() == pytest.approx(budget)
            assert np.all(budgets >= ladders[:, -1] - 1e-9)


def _attached_allocator(nodes, shard_size, *, seed=7, budget_frac=0.7,
                        telemetry=None, faults=None, web=0, app=None,
                        fleet_kwargs=None):
    cluster = quiet_cluster(nodes, seed=seed)
    app = nodes // 2 if app is None else app
    cluster.assign_all(tiered_cluster_assignment(nodes, 2, web_nodes=web,
                                                 app_nodes=app))
    table = cluster.nodes[0].machine.table
    budget = budget_frac * nodes * 2 * table.max_power_w
    config = CoordinatorConfig(power_limit_w=budget, counter_noise_sigma=0.0,
                               sample_period_s=0.05, schedule_period_s=0.1)
    allocator = FleetAllocator(
        cluster, config,
        fleet=FleetConfig(shard_size=shard_size, **(fleet_kwargs or {})),
        telemetry=telemetry, faults=faults, seed=seed + 1)
    sim = Simulation(cluster.machines)
    allocator.attach(sim)
    return cluster, allocator, sim, budget


class TestShardSummary:
    def test_pessimistic_ladder_before_first_pass(self):
        cluster, allocator, sim, _ = _attached_allocator(4, 2)
        shard = allocator.shards[0]
        summary = shard.make_summary(0.0)
        table = POWER4_TABLE
        procs = shard.cluster.total_procs
        assert summary.capped_demand_w == tuple(
            p * procs for p in table.powers_w)
        assert summary.floor_w == pytest.approx(procs * table.min_power_w)
        assert summary.demand_w == pytest.approx(procs * table.max_power_w)

    def test_ladder_tracks_eps_rungs_after_pass(self):
        cluster, allocator, sim, _ = _attached_allocator(4, 2)
        sim.run_for(0.35)
        shard = allocator.shards[1]
        summary = shard.make_summary(sim.now_s)
        table = POWER4_TABLE
        schedule = shard.last_schedule
        assert schedule is not None
        eps = [table.index_of(a.eps_freq_hz) for a in schedule.assignments]
        # Top of the ladder = everyone at their step-1 rung.
        assert summary.demand_w == pytest.approx(
            sum(table.powers_w[i] for i in eps))
        # Bottom = everyone at the floor.
        assert summary.floor_w == pytest.approx(
            len(eps) * table.min_power_w)
        # Interior rung k caps each processor at min(eps, k).
        k = len(table) // 2
        assert summary.capped_demand_w[k] == pytest.approx(
            sum(table.powers_w[min(i, k)] for i in eps))
        assert summary.budget_w == shard.power_limit_w
        assert summary.healthy_nodes == len(shard.cluster.nodes)

    def test_summary_wire_size_is_o_rungs(self):
        summary = ShardSummary(
            shard_id=0, time_s=0.0, nodes=4, procs=8,
            capped_demand_w=tuple(float(i) for i in range(16)),
            mean_loss=0.0, budget_w=None, healthy_nodes=4, stale_nodes=0,
            lost_nodes=0)
        # Independent of node/proc counts: header + (7 + rungs) fields.
        assert message_size_bytes(summary) == 32 + (7 + 16) * 8

    def test_ladder_must_be_nondecreasing(self):
        with pytest.raises(ClusterError):
            ShardSummary(shard_id=0, time_s=0.0, nodes=1, procs=1,
                         capped_demand_w=(2.0, 1.0), mean_loss=0.0,
                         budget_w=None, healthy_nodes=1, stale_nodes=0,
                         lost_nodes=0)


class TestLeases:
    def test_stale_lease_is_dropped(self):
        cluster, allocator, sim, _ = _attached_allocator(4, 2)
        shard = allocator.shards[0]
        shard.apply_lease(BudgetLease(shard_id=0, time_s=1.0,
                                      budget_w=500.0), 1.0)
        assert shard.power_limit_w == 500.0
        shard.apply_lease(BudgetLease(shard_id=0, time_s=0.5,
                                      budget_w=900.0), 1.1)
        assert shard.power_limit_w == 500.0
        assert shard.leases_stale_dropped == 1

    def test_shrink_triggers_immediate_pass(self):
        cluster, allocator, sim, _ = _attached_allocator(4, 2)
        sim.run_for(0.35)
        shard = allocator.shards[0]
        passes_before = len(shard.log.schedule_entries)
        floor = shard.cluster.total_procs * POWER4_TABLE.min_power_w
        shard.apply_lease(BudgetLease(shard_id=0, time_s=sim.now_s,
                                      budget_w=floor), sim.now_s)
        assert len(shard.log.schedule_entries) > passes_before
        assert shard.last_schedule.total_power_w <= floor + 1e-9

    def test_negative_lease_rejected(self):
        with pytest.raises(ClusterError):
            BudgetLease(shard_id=0, time_s=0.0, budget_w=-1.0)


class TestFleetRebalance:
    def test_budget_flows_to_cpu_bound_shard(self):
        # Shard 0 = app tier (CPU-bound), shard 1 = db tier (memory-bound):
        # the fill caps the db shard near its cheap demand and hands the
        # freed watts to the app shard.
        cluster, allocator, sim, budget = _attached_allocator(
            4, 2, app=2, budget_frac=0.6)
        initial = [s.power_limit_w for s in allocator.shards]
        assert initial[0] == pytest.approx(initial[1])  # proportional seed
        sim.run_for(1.0)
        assert allocator.rebalances >= 4
        app_budget = allocator.shards[0].power_limit_w
        db_budget = allocator.shards[1].power_limit_w
        assert app_budget > db_budget
        assert app_budget + db_budget <= budget + 1e-6

    def test_committed_never_exceeds_fleet_budget(self):
        cluster, allocator, sim, budget = _attached_allocator(
            6, 2, budget_frac=0.55)
        sim.run_for(0.6)
        allocator.set_power_limit(budget * 0.7, sim.now_s)
        sim.run_for(0.6)
        allocator.set_power_limit(budget, sim.now_s)
        sim.run_for(0.6)
        assert allocator.rebalances >= 6
        assert allocator.max_committed_w <= budget + 1e-6
        assert sum(allocator.committed_w) <= budget + 1e-6

    def test_scheduled_power_honours_delegated_budgets(self):
        cluster, allocator, sim, budget = _attached_allocator(
            4, 2, budget_frac=0.6)
        sim.run_for(1.0)
        for shard in allocator.shards:
            assert shard.max_scheduled_power_w <= budget + 1e-6
            assert shard.last_schedule.total_power_w <= \
                shard.power_limit_w + 1e-9
        assert cluster.cpu_power_w() <= budget + 1e-6

    def test_rebalance_event_emitted(self):
        telemetry = Telemetry()
        cluster, allocator, sim, _ = _attached_allocator(
            4, 2, telemetry=telemetry)
        sim.run_for(0.5)
        assert telemetry.events.count(EVENT_SHARD_REBALANCE) == \
            allocator.rebalances

    def test_unlimited_budget_sends_no_shrinks(self):
        cluster = quiet_cluster(4, seed=3)
        cluster.assign_all(tiered_cluster_assignment(4, 2, web_nodes=0,
                                                     app_nodes=2))
        config = CoordinatorConfig(counter_noise_sigma=0.0,
                                   sample_period_s=0.05,
                                   schedule_period_s=0.1)
        allocator = FleetAllocator(cluster, config,
                                   fleet=FleetConfig(shard_size=2), seed=5)
        sim = Simulation(cluster.machines)
        allocator.attach(sim)
        sim.run_for(0.5)
        assert allocator.rebalances >= 2
        assert allocator.leases_sent == 0
        assert all(s.power_limit_w is None for s in allocator.shards)


class TestShardIsolation:
    def _partitioned(self, telemetry=None):
        # Cut shard 1's uplink (node 2) off the fleet tier for a window
        # long enough to cross the staleness bound.
        faults = FaultSchedule(
            network=NetworkFaults(
                partitions=(PartitionWindow(0.3, 1.1,
                                            node_ids=frozenset({2})),),
                seed=9),
            name="uplink-partition")
        return _attached_allocator(6, 2, telemetry=telemetry, faults=faults,
                                   fleet_kwargs={"rebalance_period_s": 0.2,
                                                 "staleness_bound_s": 0.3})

    def test_partitioned_shard_goes_stale_then_lost_then_recovers(self):
        telemetry = Telemetry()
        cluster, allocator, sim, budget = self._partitioned(telemetry)
        sim.run_for(0.9)
        assert allocator.shard_health[1] == "lost"
        sim.run_for(0.6)
        assert allocator.shard_health[1] in ("healthy", "recovered")
        assert telemetry.events.count(EVENT_SHARD_LOST) >= 1
        assert telemetry.events.count(EVENT_SHARD_RECOVERED) >= 1
        assert allocator.max_committed_w <= budget + 1e-6

    def test_healthy_shards_keep_scheduling_through_partition(self):
        cluster, allocator, sim, _ = self._partitioned()
        sim.run_for(1.0)
        # The fleet pass never blocked: rebalances kept firing...
        assert allocator.rebalances >= 4
        # ...and every shard (including the partitioned one, whose
        # *intra-rack* plane is intact) kept running local passes.
        for shard in allocator.shards:
            times = {e.time_s for e in shard.log.schedule_entries}
            assert max(times) > 0.85

    def test_lost_shard_budget_is_frozen_not_reallocated(self):
        cluster, allocator, sim, budget = self._partitioned()
        sim.run_for(0.9)
        assert allocator.shard_health[1] == "lost"
        frozen = allocator.committed_w[1]
        reachable = sum(w for i, w in enumerate(allocator.committed_w)
                        if i != 1)
        # The lost shard may still be drawing its budget; the others can
        # only be granted what remains.
        assert reachable <= budget - frozen + 1e-6


class TestSingleShardEquivalence:
    """shard_size >= nodes: the hierarchy must vanish byte-for-byte."""

    def _run_flat(self, scenario, seconds, limit_w):
        cluster = quiet_cluster(3, seed=11)
        cluster.assign_all(tiered_cluster_assignment(3, 2, web_nodes=1,
                                                     app_nodes=1))
        faults = fault_scenario(scenario, seed=13) if scenario else None
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(power_limit_w=limit_w,
                              counter_noise_sigma=0.0),
            faults=faults, seed=21)
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(seconds)
        coord.set_power_limit(limit_w * 0.8, sim.now_s)
        sim.run_for(0.15)
        return cluster, coord

    def _run_hier(self, scenario, seconds, limit_w):
        cluster = quiet_cluster(3, seed=11)
        cluster.assign_all(tiered_cluster_assignment(3, 2, web_nodes=1,
                                                     app_nodes=1))
        faults = fault_scenario(scenario, seed=13) if scenario else None
        allocator = FleetAllocator(
            cluster,
            CoordinatorConfig(power_limit_w=limit_w,
                              counter_noise_sigma=0.0),
            fleet=FleetConfig(shard_size=8),
            faults=faults, seed=21)
        sim = Simulation(cluster.machines)
        allocator.attach(sim)
        sim.run_for(seconds)
        allocator.set_power_limit(limit_w * 0.8, sim.now_s)
        sim.run_for(0.15)
        return cluster, allocator

    @pytest.mark.parametrize("scenario", [None, "lossy"])
    def test_single_shard_matches_flat_coordinator(self, scenario):
        seconds, limit_w = 0.55, 330.0
        flat_cluster, flat = self._run_flat(scenario, seconds, limit_w)
        hier_cluster, allocator = self._run_hier(scenario, seconds, limit_w)
        assert not allocator.hierarchical
        shard = allocator.shards[0]
        flat_entries = [dataclasses.replace(e, pass_wall_s=None)
                        for e in flat.log.schedule_entries]
        hier_entries = [dataclasses.replace(e, pass_wall_s=None)
                        for e in shard.log.schedule_entries]
        assert flat_entries == hier_entries
        for fn, hn in zip(flat_cluster.nodes, hier_cluster.nodes):
            for fc, hc in zip(fn.machine.cores, hn.machine.cores):
                assert fc.frequency_setting_hz == hc.frequency_setting_hz
                assert fc.counters.instructions == hc.counters.instructions
        # No hierarchical traffic rode the fabric.
        assert flat_cluster.network.messages_sent == \
            hier_cluster.network.messages_sent
        assert flat_cluster.network.bytes_sent == \
            hier_cluster.network.bytes_sent
        assert allocator.rebalances == 0 and allocator.leases_sent == 0


class TestFleetConfigValidation:
    def test_rejects_bad_shard_size(self):
        with pytest.raises(ClusterError):
            FleetConfig(shard_size=0)

    def test_rejects_timeout_beyond_staleness(self):
        with pytest.raises(ClusterError):
            FleetConfig(summary_timeout_s=1.0, staleness_bound_s=0.5)

    def test_period_defaults_derive_from_schedule_period(self):
        fleet = FleetConfig()
        assert fleet.effective_rebalance_period_s(0.1) == pytest.approx(0.2)
        assert fleet.effective_staleness_bound_s(0.1) == pytest.approx(0.6)


class TestCoordinatorConfigTimeoutValidation:
    def test_rejects_report_timeout_beyond_staleness_bound(self):
        with pytest.raises(ClusterError, match="staleness"):
            CoordinatorConfig(report_timeout_s=1.0, staleness_bound_s=0.5)

    def test_rejects_report_timeout_beyond_default_bound(self):
        # Default bound is 3 scheduling periods.
        with pytest.raises(ClusterError, match="staleness"):
            CoordinatorConfig(schedule_period_s=0.1, report_timeout_s=0.5)

    def test_accepts_timeout_within_bound(self):
        config = CoordinatorConfig(report_timeout_s=0.2,
                                   staleness_bound_s=0.5)
        assert config.report_timeout_s == 0.2


class TestFleetFaultScenarios:
    def test_partition_cuts_uplinks_only(self):
        plan = fleet_fault_scenario("partition", num_nodes=64, shard_size=4,
                                    seed=1)
        windows = plan.network.partitions
        assert len(windows) == 1
        cut = windows[0].node_ids
        assert cut and all(n % 4 == 0 for n in cut)

    def test_unknown_name_lists_descriptions(self):
        with pytest.raises(ClusterError, match="uplinks partitioned"):
            fleet_fault_scenario("nope", num_nodes=8, shard_size=4)

    def test_chaos_is_deterministic_in_seed(self):
        a = fleet_fault_scenario("chaos", num_nodes=32, shard_size=4, seed=2)
        b = fleet_fault_scenario("chaos", num_nodes=32, shard_size=4, seed=2)
        assert a.network.partitions == b.network.partitions
        assert a.crashes == b.crashes
        assert [a.network._rng.random() for _ in range(3)] == \
            [b.network._rng.random() for _ in range(3)]
