"""Job migration support and the consolidation governor."""

import pytest

from repro.core.consolidation import ConsolidationGovernor
from repro.errors import SimulationError
from repro.experiments import run_experiment
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz
from repro.workloads.profiles import profile_by_name


def machine(num_cores=4, seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)


class TestMigrationPrimitive:
    def test_migrate_moves_the_job(self):
        m = machine(2)
        job = profile_by_name("gzip").job(loop=True)
        m.assign(0, job)
        m.migrate(job, 0, 1)
        assert m.core(0).dispatcher.runnable == 0
        assert m.core(1).dispatcher.jobs == (job,)

    def test_job_continues_after_migration(self):
        m = machine(2)
        job = profile_by_name("mcf").job(loop=True)
        m.assign(0, job)
        sim = Simulation(m)
        sim.run_for(0.5)
        before = job.instructions_retired
        sim.at(0.5, lambda t: m.migrate(job, 0, 1))
        sim.run_for(0.5)
        assert job.instructions_retired > before

    def test_migration_cost_stalls_destination(self):
        m = machine(2)
        job = profile_by_name("gzip").job(loop=True)
        m.assign(0, job)
        m.migrate(job, 0, 1, cost_s=0.01)
        sim = Simulation(m)
        sim.run_for(0.1)
        assert m.core(1).overhead_executed_s == pytest.approx(0.01)

    def test_self_migration_rejected(self):
        m = machine(2)
        job = profile_by_name("gzip").job(loop=True)
        m.assign(0, job)
        with pytest.raises(SimulationError):
            m.migrate(job, 0, 0)

    def test_migrating_unqueued_job_rejected(self):
        m = machine(2)
        job = profile_by_name("gzip").job(loop=True)
        with pytest.raises(SimulationError):
            m.migrate(job, 0, 1)

    def test_remove_current_job_resets_quantum(self):
        m = machine(1)
        a = profile_by_name("gzip").job(loop=True)
        b = profile_by_name("mcf").job(loop=True)
        m.assign(0, a)
        m.assign(0, b)
        dispatcher = m.core(0).dispatcher
        dispatcher.remove_job(a)
        assert dispatcher.current_job() is b
        assert dispatcher.slice_limit_s() == float("inf")


class TestConsolidationGovernor:
    def _loaded(self, budget, seed=0):
        m = machine(4, seed=seed)
        for i, app in enumerate(("gzip", "gap", "mcf", "health")):
            m.assign(i, profile_by_name(app).job(loop=True))
        g = ConsolidationGovernor(m, power_limit_w=budget)
        sim = Simulation(m)
        g.attach(sim)
        return m, g, sim

    def test_packs_onto_budgeted_cores(self):
        m, g, sim = self._loaded(294.0)
        assert g.online_count == 2
        sim.run_for(1.0)
        queues = [c.dispatcher.runnable for c in m.cores]
        assert queues == [2, 2, 0, 0]
        assert m.cpu_power_w() <= 294.0

    def test_all_jobs_keep_progressing(self):
        m, g, sim = self._loaded(294.0)
        sim.run_for(2.0)
        for core in m.cores[:2]:
            for job in core.dispatcher.jobs:
                assert job.instructions_retired > 0

    def test_online_cores_run_full_speed(self):
        m, g, sim = self._loaded(294.0)
        assert m.core(0).frequency_setting_hz == ghz(1.0)
        assert m.core(1).frequency_setting_hz == ghz(1.0)

    def test_budget_relax_brings_cores_back(self):
        m, g, sim = self._loaded(150.0)
        assert g.online_count == 1
        g.set_power_limit(None, sim.now_s)
        assert g.online_count == 4
        sim.run_for(1.0)
        # Load re-spread: nobody holds more than one job for long.
        assert max(c.dispatcher.runnable for c in m.cores) == 1

    def test_at_least_one_core_stays_online(self):
        m, g, sim = self._loaded(50.0)   # below one core at f_max
        assert g.online_count == 1

    def test_migrations_counted_and_stable(self):
        m, g, sim = self._loaded(294.0)
        initial = g.migrations
        assert initial >= 2
        sim.run_for(3.0)   # several rebalance periods
        assert g.migrations == initial   # stable placement, no churn


class TestMigrationExperiment:
    def test_fvsst_wins_under_budget_ties_unconstrained(self):
        r = run_experiment("migration", fast=True)
        assert 0.9 < r.scalars["advantage@560"] < 1.1
        assert r.scalars["advantage@294"] > 1.4
        assert r.scalars["advantage@150"] > 1.8
