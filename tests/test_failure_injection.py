"""Failure injection: degraded inputs must degrade gracefully, not crash."""

import pytest

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.predictor import CounterPredictor
from repro.sim.counters import CounterReader
from repro.model.latency import POWER4_LATENCIES
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import two_phase_benchmark


def build(num_cores=1, *, jitter=0.0, settling=0.0, seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=jitter,
                               settling_time_s=settling),
    ), seed=seed)


def run_daemon(machine, *, noise=0.0, seconds=3.0, seed=1,
               **daemon_kwargs) -> FvsstDaemon:
    d = FvsstDaemon(machine, DaemonConfig(
        counter_noise_sigma=noise,
        overhead=OverheadModel(enabled=False), **daemon_kwargs), seed=seed)
    sim = Simulation(machine)
    d.attach(sim)
    sim.run_for(seconds)
    return d


class TestCounterNoise:
    @pytest.mark.parametrize("noise", [0.01, 0.05, 0.2])
    def test_daemon_survives_and_stays_on_ladder(self, noise):
        m = build()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = run_daemon(m, noise=noise)
        for entry in d.log.schedules_of(0, 0):
            assert entry.freq_hz in m.table

    def test_noise_degrades_but_does_not_destroy_accuracy(self):
        def deviation(noise):
            m = build(seed=42)
            m.assign(0, profile_by_name("mcf").job(loop=True))
            d = run_daemon(m, noise=noise, seed=43)
            return d.log.ipc_deviation(0, 0)

        clean, noisy = deviation(0.0), deviation(0.1)
        assert noisy > clean
        assert noisy < 0.5

    def test_extreme_noise_still_yields_schedules(self):
        m = build()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = run_daemon(m, noise=1.0)
        assert d.last_schedule is not None


class TestLatencyJitter:
    def test_jitter_widens_prediction_error(self):
        def deviation(jitter, seed):
            m = build(jitter=jitter, seed=seed)
            m.assign(0, profile_by_name("mcf").job(loop=True))
            d = run_daemon(m, seed=seed + 1)
            return d.log.ipc_deviation(0, 0)

        calm = deviation(0.0, 50)
        rough = deviation(0.10, 50)
        assert rough > calm

    def test_heavy_jitter_keeps_budget_compliance(self):
        m = build(num_cores=2, jitter=0.15, seed=3)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.assign(1, profile_by_name("mcf").job(loop=True))
        run_daemon(m, power_limit_w=200.0, seconds=2.0)
        # Scheduled (table) power always within the budget.
        assert m.cpu_power_w() <= 200.0 + 1e-9


class TestThrottleSettling:
    def test_settling_delay_tolerated(self):
        m = build(settling=0.002, seed=4)
        m.assign(0, two_phase_benchmark(
            1.0, 0.2, include_init_exit=False).job(loop=True))
        d = run_daemon(m, seconds=4.0)
        # Tracking still works: both ends of the ladder visited.
        res = d.log.frequency_residency(0, 0)
        assert max(res) >= mhz(950)
        assert min(res) <= mhz(500)

    def test_effective_frequency_lags_requests(self):
        m = build(settling=0.05)
        core = m.core(0)
        core.set_frequency(mhz(500), 0.0)
        assert core.effective_frequency_hz(0.01) == ghz(1.0)
        assert core.effective_frequency_hz(0.06) == mhz(500)


class TestDegenerateWindows:
    def test_predictor_handles_empty_windows(self):
        predictor = CounterPredictor(POWER4_LATENCIES)
        from repro.sim.counters import CounterSample
        empty = CounterSample(time_s=1.0, interval_s=0.1, instructions=0,
                              cycles=0, n_l2=0, n_l3=0, n_mem=0,
                              l1_stall_cycles=0, halted_cycles=1e8)
        assert predictor.signature_from_sample(empty) is None

    def test_daemon_with_offline_core_keeps_running(self):
        m = build(num_cores=2)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.core(1).offline = True
        d = run_daemon(m, seconds=1.0)
        assert d.last_schedule is not None
        # Offline core produced no counters; conservative f_max assigned.
        assert d.last_schedule.assignment_for(0, 1).freq_hz == ghz(1.0)

    def test_trigger_storm_is_stable(self):
        """Many limit changes in one window must not corrupt state."""
        m = build(num_cores=2)
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0, overhead=OverheadModel(enabled=False)),
            seed=9)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)
        for i, limit in enumerate((100.0, 250.0, 60.0, None, 150.0)):
            d.set_power_limit(limit, sim.now_s)
        sim.run_for(0.5)
        assert d.power_limit_w == 150.0
        assert m.cpu_power_w() <= 150.0 + 1e-9


class TestCounterDropouts:
    def test_dropout_returns_empty_sample_and_defers_events(self):
        from repro.model.ipc import MemoryCounts
        from repro.sim.counters import CounterBank

        bank = CounterBank()
        reader = CounterReader(bank, dropout_prob=1.0, rng=1)
        bank.add_execution(MemoryCounts(instructions=100), cycles=200)
        dropped = reader.sample(0.01)
        assert dropped.instructions == 0.0 and dropped.interval_s == 0.0
        assert reader.dropouts == 1
        # Recover: next good read carries both intervals' events and time.
        reader._dropout_prob = 0.0
        bank.add_execution(MemoryCounts(instructions=50), cycles=100)
        good = reader.sample(0.02)
        assert good.instructions == pytest.approx(150)
        assert good.cycles == pytest.approx(300)

    def test_dropout_probability_validated(self):
        from repro.errors import CounterError
        from repro.sim.counters import CounterBank

        with pytest.raises(CounterError):
            CounterReader(CounterBank(), dropout_prob=1.0 + 1e-9)

    @pytest.mark.parametrize("prob", [0.1, 0.5])
    def test_daemon_tolerates_dropouts(self, prob):
        from repro.sim.counters import CounterReader as Reader

        m = build()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=2)
        # Replace the daemon's readers with faulty ones.
        d.readers = [Reader(core.counters, dropout_prob=prob, rng=3 + i)
                     for i, core in enumerate(m.cores)]
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        assert d.last_schedule is not None
        assert d.readers[0].dropouts > 0
        # Scheduling still converges on the saturation rung.
        res = d.log.frequency_residency(0, 0)
        assert max(res, key=res.get) == mhz(650)

    def test_total_dropout_falls_back_to_cached_views(self):
        from repro.sim.counters import CounterReader as Reader

        m = build()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=4)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)          # healthy start: views cached
        healthy = m.core(0).frequency_setting_hz
        d.readers = [Reader(core.counters, dropout_prob=1.0, rng=9)
                     for core in m.cores]
        sim.run_for(0.5)          # counters now dark
        # The daemon keeps operating on its last knowledge.
        assert m.core(0).frequency_setting_hz == healthy
