"""Failure injection: degraded inputs must degrade gracefully, not crash."""

import pytest

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.faults import CrashWindow, FaultSchedule
from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.predictor import CounterPredictor
from repro.sim.counters import CounterReader
from repro.model.latency import POWER4_LATENCIES
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.sim.network import NetworkFaults, PartitionWindow
from repro.telemetry import EVENT_NODE_LOST, EVENT_NODE_RECOVERED, Telemetry
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import two_phase_benchmark
from repro.workloads.tiers import tiered_cluster_assignment


def build(num_cores=1, *, jitter=0.0, settling=0.0, seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=jitter,
                               settling_time_s=settling),
    ), seed=seed)


def run_daemon(machine, *, noise=0.0, seconds=3.0, seed=1,
               **daemon_kwargs) -> FvsstDaemon:
    d = FvsstDaemon(machine, DaemonConfig(
        counter_noise_sigma=noise,
        overhead=OverheadModel(enabled=False), **daemon_kwargs), seed=seed)
    sim = Simulation(machine)
    d.attach(sim)
    sim.run_for(seconds)
    return d


class TestCounterNoise:
    @pytest.mark.parametrize("noise", [0.01, 0.05, 0.2])
    def test_daemon_survives_and_stays_on_ladder(self, noise):
        m = build()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = run_daemon(m, noise=noise)
        for entry in d.log.schedules_of(0, 0):
            assert entry.freq_hz in m.table

    def test_noise_degrades_but_does_not_destroy_accuracy(self):
        def deviation(noise):
            m = build(seed=42)
            m.assign(0, profile_by_name("mcf").job(loop=True))
            d = run_daemon(m, noise=noise, seed=43)
            return d.log.ipc_deviation(0, 0)

        clean, noisy = deviation(0.0), deviation(0.1)
        assert noisy > clean
        assert noisy < 0.5

    def test_extreme_noise_still_yields_schedules(self):
        m = build()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = run_daemon(m, noise=1.0)
        assert d.last_schedule is not None


class TestLatencyJitter:
    def test_jitter_widens_prediction_error(self):
        def deviation(jitter, seed):
            m = build(jitter=jitter, seed=seed)
            m.assign(0, profile_by_name("mcf").job(loop=True))
            d = run_daemon(m, seed=seed + 1)
            return d.log.ipc_deviation(0, 0)

        calm = deviation(0.0, 50)
        rough = deviation(0.10, 50)
        assert rough > calm

    def test_heavy_jitter_keeps_budget_compliance(self):
        m = build(num_cores=2, jitter=0.15, seed=3)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.assign(1, profile_by_name("mcf").job(loop=True))
        run_daemon(m, power_limit_w=200.0, seconds=2.0)
        # Scheduled (table) power always within the budget.
        assert m.cpu_power_w() <= 200.0 + 1e-9


class TestThrottleSettling:
    def test_settling_delay_tolerated(self):
        m = build(settling=0.002, seed=4)
        m.assign(0, two_phase_benchmark(
            1.0, 0.2, include_init_exit=False).job(loop=True))
        d = run_daemon(m, seconds=4.0)
        # Tracking still works: both ends of the ladder visited.
        res = d.log.frequency_residency(0, 0)
        assert max(res) >= mhz(950)
        assert min(res) <= mhz(500)

    def test_effective_frequency_lags_requests(self):
        m = build(settling=0.05)
        core = m.core(0)
        core.set_frequency(mhz(500), 0.0)
        assert core.effective_frequency_hz(0.01) == ghz(1.0)
        assert core.effective_frequency_hz(0.06) == mhz(500)


class TestDegenerateWindows:
    def test_predictor_handles_empty_windows(self):
        predictor = CounterPredictor(POWER4_LATENCIES)
        from repro.sim.counters import CounterSample
        empty = CounterSample(time_s=1.0, interval_s=0.1, instructions=0,
                              cycles=0, n_l2=0, n_l3=0, n_mem=0,
                              l1_stall_cycles=0, halted_cycles=1e8)
        assert predictor.signature_from_sample(empty) is None

    def test_daemon_with_offline_core_keeps_running(self):
        m = build(num_cores=2)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.core(1).offline = True
        d = run_daemon(m, seconds=1.0)
        assert d.last_schedule is not None
        # Offline core produced no counters; conservative f_max assigned.
        assert d.last_schedule.assignment_for(0, 1).freq_hz == ghz(1.0)

    def test_trigger_storm_is_stable(self):
        """Many limit changes in one window must not corrupt state."""
        m = build(num_cores=2)
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0, overhead=OverheadModel(enabled=False)),
            seed=9)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)
        for i, limit in enumerate((100.0, 250.0, 60.0, None, 150.0)):
            d.set_power_limit(limit, sim.now_s)
        sim.run_for(0.5)
        assert d.power_limit_w == 150.0
        assert m.cpu_power_w() <= 150.0 + 1e-9


class TestCounterDropouts:
    def test_dropout_returns_empty_sample_and_defers_events(self):
        from repro.model.ipc import MemoryCounts
        from repro.sim.counters import CounterBank

        bank = CounterBank()
        reader = CounterReader(bank, dropout_prob=1.0, rng=1)
        bank.add_execution(MemoryCounts(instructions=100), cycles=200)
        dropped = reader.sample(0.01)
        assert dropped.instructions == 0.0 and dropped.interval_s == 0.0
        assert reader.dropouts == 1
        # Recover: next good read carries both intervals' events and time.
        reader._dropout_prob = 0.0
        bank.add_execution(MemoryCounts(instructions=50), cycles=100)
        good = reader.sample(0.02)
        assert good.instructions == pytest.approx(150)
        assert good.cycles == pytest.approx(300)

    def test_dropout_probability_validated(self):
        from repro.errors import CounterError
        from repro.sim.counters import CounterBank

        with pytest.raises(CounterError):
            CounterReader(CounterBank(), dropout_prob=1.0 + 1e-9)

    @pytest.mark.parametrize("prob", [0.1, 0.5])
    def test_daemon_tolerates_dropouts(self, prob):
        from repro.sim.counters import CounterReader as Reader

        m = build()
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=2)
        # Replace the daemon's readers with faulty ones.
        d.readers = [Reader(core.counters, dropout_prob=prob, rng=3 + i)
                     for i, core in enumerate(m.cores)]
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        assert d.last_schedule is not None
        assert d.readers[0].dropouts > 0
        # Scheduling still converges on the saturation rung.
        res = d.log.frequency_residency(0, 0)
        assert max(res, key=res.get) == mhz(650)

    def test_total_dropout_falls_back_to_cached_views(self):
        from repro.sim.counters import CounterReader as Reader

        m = build()
        m.assign(0, profile_by_name("gzip").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(
            counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=4)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(0.5)          # healthy start: views cached
        healthy = m.core(0).frequency_setting_hz
        d.readers = [Reader(core.counters, dropout_prob=1.0, rng=9)
                     for core in m.cores]
        sim.run_for(0.5)          # counters now dark
        # The daemon keeps operating on its last knowledge.
        assert m.core(0).frequency_setting_hz == healthy


NODES, PROCS = 3, 2


def faulty_coordinator(faults, *, budget=None, seed=7, telemetry=None,
                       **cfg_kwargs):
    """A tiered quiet cluster under a coordinator with a fault plan."""
    cluster = Cluster.homogeneous(
        NODES,
        machine_config=MachineConfig(
            num_cores=PROCS,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=0,
    )
    cluster.assign_all(tiered_cluster_assignment(NODES, PROCS,
                                                 web_nodes=1, app_nodes=1))
    coord = ClusterCoordinator(
        cluster,
        CoordinatorConfig(power_limit_w=budget, counter_noise_sigma=0.0,
                          **cfg_kwargs),
        faults=faults, telemetry=telemetry, seed=seed,
    )
    sim = Simulation(cluster.machines)
    coord.attach(sim)
    return cluster, coord, sim


def budget_for(cluster, fraction):
    table = cluster.nodes[0].machine.table
    return fraction * NODES * PROCS * table.max_power_w


class TestFaultyControlPlane:
    """Coordinator-level scenarios over an unreliable control plane.

    The safety property under every scenario: total *scheduled* power
    never exceeds the active limits — missing nodes are served from the
    signature cache, lost nodes are pinned to the frequency floor with
    their floor power carved out of the budget.  (Actual dissipated power
    can transiently exceed the budget when a slow-down command is lost in
    flight; the guarantee the paper's algorithm makes is about what it
    schedules.)
    """

    def test_dropped_reports_budget_never_exceeded(self):
        plan = FaultSchedule(network=NetworkFaults(loss_prob=0.3, seed=11))
        cluster, coord, sim = faulty_coordinator(plan, budget=None)
        budget = budget_for(cluster, 0.6)
        coord.set_power_limit(budget, 0.0)
        sim.run_for(2.0)
        assert coord.reports_dropped > 0
        assert coord.stale_passes > 0
        assert coord.max_scheduled_power_w <= budget + 1e-9
        table = cluster.nodes[0].machine.table
        for node in cluster.nodes:
            for f in node.machine.frequency_vector_hz():
                assert f in table

    def test_lost_commands_are_retransmitted(self):
        plan = FaultSchedule(network=NetworkFaults(loss_prob=0.4, seed=13))
        cluster, coord, sim = faulty_coordinator(
            plan, budget=None)
        budget = budget_for(cluster, 0.6)
        coord.set_power_limit(budget, 0.0)
        sim.run_for(2.0)
        assert coord.commands_dropped > 0
        assert coord.command_retries > 0
        assert coord.max_scheduled_power_w <= budget + 1e-9
        assert coord.last_schedule is not None
        # Retransmits got through: the cluster is not still at f_max
        # everywhere despite 40% loss.
        f_max = cluster.nodes[0].machine.table.f_max_hz
        freqs = [f for n in cluster.nodes
                 for f in n.machine.frequency_vector_hz()]
        assert min(freqs) < f_max

    def test_partition_during_curtailment_floors_lost_node(self):
        plan = FaultSchedule(network=NetworkFaults(
            partitions=(PartitionWindow(0.5, 5.0,
                                        node_ids=frozenset({1})),),
            seed=17))
        cluster, coord, sim = faulty_coordinator(plan)
        budget = budget_for(cluster, 0.6)
        sim.run_for(0.5)                        # healthy warm-up
        coord.max_scheduled_power_w = 0.0       # track the limited phase only
        coord.set_power_limit(budget, sim.now_s)  # curtailment hits now
        sim.run_for(1.0)                        # partition outlives staleness
        assert coord.node_health[1] == "lost"
        assert coord.floor_scheduled_procs > 0
        assert coord.max_scheduled_power_w <= budget + 1e-9
        f_min = cluster.nodes[0].machine.table.f_min_hz
        lost = [a for a in coord.last_schedule.assignments if a.node_id == 1]
        assert len(lost) == PROCS
        assert all(a.freq_hz == f_min for a in lost)
        # The healthy nodes are still scheduled from live reports.
        live = [a for a in coord.last_schedule.assignments if a.node_id != 1]
        assert len(live) == (NODES - 1) * PROCS

    def test_recovery_reconverges_to_fault_free_schedule(self):
        def final_state(faults):
            cluster, coord, sim = faulty_coordinator(
                faults, budget=None)
            coord.set_power_limit(budget_for(cluster, 0.7), 0.0)
            sim.run_for(3.0)
            return cluster, coord

        plan = FaultSchedule(network=NetworkFaults(
            partitions=(PartitionWindow(0.5, 1.2,
                                        node_ids=frozenset({1})),),
            seed=19))
        faulted_cluster, faulted = final_state(plan)
        clean_cluster, _clean = final_state(None)
        # The partition healed 1.8 s ago: every node reports fresh again
        # and the schedule is indistinguishable from a fault-free run.
        assert all(h in ("healthy", "recovered")
                   for h in faulted.node_health.values())
        for f_node, c_node in zip(faulted_cluster.nodes,
                                  clean_cluster.nodes):
            assert f_node.machine.frequency_vector_hz() == \
                c_node.machine.frequency_vector_hz()

    def test_crash_emits_lost_and_recovered_events(self):
        tel = Telemetry()
        plan = FaultSchedule(
            network=NetworkFaults(seed=23),
            crashes=(CrashWindow(node_id=1, start_s=0.5, end_s=1.0),))
        cluster, coord, sim = faulty_coordinator(plan, telemetry=tel)
        sim.run_for(2.0)
        assert tel.events.count(EVENT_NODE_LOST) >= 1
        assert tel.events.count(EVENT_NODE_RECOVERED) >= 1
        lost = tel.events.events_of(EVENT_NODE_LOST)[0]
        assert lost.attrs["node"] == 1
        assert coord.node_health[1] in ("healthy", "recovered")

    def test_telemetry_counts_drops_and_retries(self):
        def series_value(snapshot, name):
            return snapshot["metrics"][name]["series"][0]["value"]

        tel = Telemetry()
        plan = FaultSchedule(network=NetworkFaults(loss_prob=0.3, seed=29))
        cluster, coord, sim = faulty_coordinator(plan, telemetry=tel)
        sim.run_for(2.0)
        snap = tel.snapshot()
        assert series_value(snap, "cluster_reports_dropped_total") == \
            coord.reports_dropped > 0
        assert series_value(snap, "cluster_commands_dropped_total") == \
            coord.commands_dropped
        assert series_value(snap, "cluster_command_retries_total") == \
            coord.command_retries
        assert series_value(snap, "cluster_stale_passes_total") == \
            coord.stale_passes > 0
        health = {state: series_value(snap, f"cluster_nodes_{state}")
                  for state in ("healthy", "stale", "lost")}
        assert sum(health.values()) == NODES

    def test_report_timeout_treats_slow_replies_as_missing(self):
        # Every reply jitters; an impossibly tight timeout rejects all of
        # them, so every pass runs from cache until nodes go lost — and
        # the budget still holds.
        plan = FaultSchedule(network=NetworkFaults(jitter_sigma=0.2,
                                                   seed=31))
        cluster, coord, sim = faulty_coordinator(
            plan, budget=None, report_timeout_s=1e-9)
        budget = budget_for(cluster, 0.6)
        coord.set_power_limit(budget, 0.0)
        sim.run_for(1.0)
        assert coord.reports_dropped > 0
        assert all(h == "lost" for h in coord.node_health.values())
        assert coord.max_scheduled_power_w <= budget + 1e-9
        f_min = cluster.nodes[0].machine.table.f_min_hz
        assert all(a.freq_hz == f_min
                   for a in coord.last_schedule.assignments)

    def test_faults_none_is_byte_identical_to_no_faults(self):
        def frequency_log(faults):
            _cluster, coord, sim = faulty_coordinator(faults)
            coord.set_power_limit(200.0, 0.0)
            sim.run_for(1.0)
            return [(e.time_s, e.node_id, e.proc_id, e.freq_hz)
                    for e in coord.log.schedule_entries]

        # An installed-but-empty fault plan exercises the degraded code
        # path; with nothing going wrong it must reproduce the classic
        # synchronous pass decision-for-decision.
        empty = FaultSchedule(network=NetworkFaults(seed=37))
        assert frequency_log(empty) == frequency_log(None)
