"""The declarative scenario runner and the ASCII chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, line_chart, sparkline
from repro.core.daemon import DaemonConfig
from repro.errors import ConfigError, ExperimentError
from repro.scenario import Scenario
from repro.units import mhz
from repro.workloads.profiles import profile_by_name


class TestScenarioBuilder:
    def test_minimal_run(self):
        result = (Scenario(num_cores=1, seed=1)
                  .with_job(0, profile_by_name("mcf").job(loop=True))
                  .with_governor("fvsst")
                  .run(2.0))
        assert result.cpu_energy_j > 0
        assert result.log is not None
        residency = result.frequency_residency(0)
        assert sum(residency.values()) == pytest.approx(1.0)

    def test_governor_selection(self):
        result = (Scenario(num_cores=2, seed=2)
                  .with_governor("uniform", power_limit_w=140.0)
                  .run(0.5))
        assert result.log is None   # not a daemon
        # 140 W over two cores: 70 W each buys the 700 MHz rung (66 W).
        assert result.machine.frequency_vector_hz() == [mhz(700)] * 2

    def test_events_fire_with_result_handle(self):
        captured = []

        def drop_budget(res, t):
            res.governor.set_power_limit(100.0, t)
            captured.append(t)

        result = (Scenario(num_cores=2, seed=3)
                  .with_job(0, profile_by_name("gzip").job(loop=True))
                  .with_governor("fvsst",
                                 daemon_config=DaemonConfig(
                                     counter_noise_sigma=0.0))
                  .at(1.0, drop_budget)
                  .run(2.0))
        assert captured == [1.0]
        assert result.machine.cpu_power_w() <= 100.0 + 1e-9

    def test_settle_window(self):
        result = (Scenario(num_cores=1, seed=4)
                  .with_governor("fvsst")
                  .settle(0.5)
                  .with_job(0, profile_by_name("mcf").job(body_repeats=1))
                  .run(6.0))
        job = result.jobs[0][1]
        assert job.started_at_s >= 0.5

    def test_core_bounds_checked(self):
        with pytest.raises(ConfigError):
            Scenario(num_cores=1).with_job(3,
                                           profile_by_name("mcf").job())

    def test_event_before_settle_rejected(self):
        scenario = (Scenario(num_cores=1, seed=5)
                    .with_governor("none")
                    .settle(1.0)
                    .at(0.5, lambda r, t: None))
        with pytest.raises(ConfigError):
            scenario.run(2.0)

    def test_instructions_metric(self):
        result = (Scenario(num_cores=1, seed=6)
                  .with_job(0, profile_by_name("gzip").job(loop=True))
                  .with_governor("none")
                  .run(1.0))
        assert result.instructions_retired() > 1e8


class TestLineChart:
    def test_renders_all_series_marks(self):
        text = line_chart([0, 1, 2], {"a": [0, 1, 2], "b": [2, 1, 0]},
                          width=20, height=6, title="T")
        assert "T" in text
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_bounds_labels_present(self):
        text = line_chart([0, 10], {"y": [5.0, 15.0]}, width=10, height=4)
        assert "15" in text and "5" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            line_chart([0, 1], {})
        with pytest.raises(ExperimentError):
            line_chart([0], {"y": [1.0]})
        with pytest.raises(ExperimentError):
            line_chart([0, 1], {"y": [1.0]})
        with pytest.raises(ExperimentError):
            line_chart([0, 1], {"y": [1.0, 2.0]}, width=2, height=2)

    def test_constant_series_safe(self):
        text = line_chart([0, 1, 2], {"y": [3.0, 3.0, 3.0]})
        assert "o" in text


class TestBarChart:
    def test_scaling_and_values(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="W")
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert "2W" in lines[1]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            bar_chart([], [])
        with pytest.raises(ExperimentError):
            bar_chart(["a"], [-1.0])


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert s[0] == " " and s[-1] == "@"
        assert len(s) == 5

    def test_constant_series(self):
        assert sparkline([2.0, 2.0]) == "  "

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])
