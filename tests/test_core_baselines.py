"""Baseline governors."""

import pytest

from repro.core.baselines import (
    NoManagementGovernor,
    PowerDownGovernor,
    StaticOracleGovernor,
    UniformScalingGovernor,
    UtilizationGovernor,
    uniform_cap_frequency,
)
from repro.errors import SchedulingError
from repro.power.table import POWER4_TABLE
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.idle import IdleStyle
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name


def machine(num_cores=4, idle_style=IdleStyle.HOT_LOOP) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=0.0,
                               idle_style=idle_style),
    ), seed=0)


class TestUniformCapFrequency:
    def test_divides_budget_evenly(self):
        assert uniform_cap_frequency(POWER4_TABLE, 4, 294.0) == mhz(700)
        # 4 x 66 W = 264 <= 294; 4 x 75 = 300 > 294.

    def test_unlimited(self):
        assert uniform_cap_frequency(POWER4_TABLE, 4, None) == ghz(1.0)

    def test_floor_fallback(self):
        assert uniform_cap_frequency(POWER4_TABLE, 4, 20.0) == mhz(250)

    def test_zero_procs_rejected(self):
        with pytest.raises(SchedulingError):
            uniform_cap_frequency(POWER4_TABLE, 0, 100.0)


class TestNoManagement:
    def test_everything_at_fmax_and_unresponsive(self):
        m = machine()
        g = NoManagementGovernor(m)
        sim = Simulation(m)
        g.attach(sim)
        g.set_power_limit(100.0, 0.0)
        assert m.frequency_vector_hz() == [ghz(1.0)] * 4
        assert m.cpu_power_w() == pytest.approx(560.0)


class TestUniformScaling:
    def test_applies_shared_frequency(self):
        m = machine()
        g = UniformScalingGovernor(m, power_limit_w=294.0)
        sim = Simulation(m)
        g.attach(sim)
        assert m.frequency_vector_hz() == [mhz(700)] * 4
        assert m.cpu_power_w() <= 294.0

    def test_limit_change_reapplies(self):
        m = machine()
        g = UniformScalingGovernor(m, power_limit_w=None)
        sim = Simulation(m)
        g.attach(sim)
        g.set_power_limit(140.0, 0.0)
        assert m.frequency_vector_hz() == [mhz(500)] * 4


class TestPowerDown:
    def test_keeps_k_cores_at_fmax(self):
        m = machine()
        g = PowerDownGovernor(m, power_limit_w=294.0)
        sim = Simulation(m)
        g.attach(sim)
        assert g.online_count == 2      # 2 x 140 = 280 <= 294
        assert m.cpu_power_w() == pytest.approx(280.0)
        assert m.core(3).offline and m.core(2).offline

    def test_stranded_work_stalls(self):
        m = machine()
        job = profile_by_name("gzip").job(loop=True)
        m.assign(3, job)
        g = PowerDownGovernor(m, power_limit_w=294.0)
        sim = Simulation(m)
        g.attach(sim)
        sim.run_for(0.5)
        assert job.instructions_retired == 0.0   # migration impossible

    def test_restore_brings_cores_back(self):
        m = machine()
        g = PowerDownGovernor(m, power_limit_w=140.0)
        sim = Simulation(m)
        g.attach(sim)
        assert g.online_count == 1
        g.set_power_limit(None, 0.0)
        assert g.online_count == 4


class TestUtilization:
    def test_hot_idle_driven_to_cap(self):
        # The pathology: a hot-idle core reads 100% utilisation.
        m = machine()
        g = UtilizationGovernor(m, power_limit_w=294.0)
        sim = Simulation(m)
        g.attach(sim)
        sim.run_for(1.0)
        cap = uniform_cap_frequency(POWER4_TABLE, 4, 294.0)
        assert m.frequency_vector_hz() == [cap] * 4

    def test_halting_idle_stepped_down(self):
        m = machine(num_cores=1, idle_style=IdleStyle.HALT)
        g = UtilizationGovernor(m, power_limit_w=None)
        sim = Simulation(m)
        g.attach(sim)
        sim.run_for(2.0)
        assert m.core(0).frequency_setting_hz == mhz(250)

    def test_busy_core_stepped_up(self):
        m = machine(num_cores=1, idle_style=IdleStyle.HALT)
        m.core(0).set_frequency(mhz(250), 0.0)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        g = UtilizationGovernor(m, power_limit_w=None)
        sim = Simulation(m)
        g.attach(sim)
        sim.run_for(2.0)
        assert m.core(0).frequency_setting_hz > mhz(700)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(SchedulingError):
            UtilizationGovernor(machine(), up_threshold=0.4,
                                down_threshold=0.5)


class TestStaticOracle:
    def test_uses_ground_truth_signatures(self):
        m = machine(num_cores=2)
        m.assign(0, profile_by_name("mcf").job(loop=True))
        g = StaticOracleGovernor(m, epsilon=0.04)
        sim = Simulation(m)
        g.attach(sim)
        # mcf's first loop phase saturates at 650; idle core floor-pinned.
        assert m.core(0).frequency_setting_hz == mhz(650)
        assert m.core(1).frequency_setting_hz == mhz(250)

    def test_budget_pass_applies(self):
        m = machine(num_cores=4)
        for i in range(4):
            m.assign(i, profile_by_name("gzip").job(loop=True))
        g = StaticOracleGovernor(m, power_limit_w=294.0, epsilon=0.04)
        sim = Simulation(m)
        g.attach(sim)
        assert m.cpu_power_w() <= 294.0
