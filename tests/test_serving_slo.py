"""The SLO-aware serving layer: fleet traffic, latency digests, the
latency model, and p99-to-frequency floors through the schedulers."""

import math

import numpy as np
import pytest

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.cluster.hierarchy import FleetAllocator, FleetConfig
from repro.cluster.nested import NestedBudgetScheduler
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.errors import ClusterError, ModelError, WorkloadError
from repro.model.ipc import WorkloadSignature
from repro.model.latency import POWER4_LATENCIES
from repro.model.latency_model import (
    frequency_floor_hz,
    mm1_response_quantile_s,
    predicted_latency_quantile_s,
    service_time_s,
)
from repro.power.table import POWER4_TABLE
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.idle import IdleStyle
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.server import RequestSpec, ServerSource, constant_rate
from repro.workloads.serving import (
    DEFAULT_REQUEST_BUCKETS_S,
    BlockedDraws,
    FleetTrafficSource,
    LatencyDigest,
    flash_crowd_rate,
)
from repro.workloads.traces import RateTrace


def sig(ratio: float, core_cpi: float = 0.65) -> WorkloadSignature:
    return WorkloadSignature(core_cpi=core_cpi,
                             mem_time_per_instr_s=core_cpi / ratio / ghz(1.0))


def pview(node: int, proc: int, signature=None, idle=False) -> ProcessorView:
    return ProcessorView(node_id=node, proc_id=proc, signature=signature,
                         idle_signaled=idle)


def serving_cluster(nodes=2, procs=1, seed=0) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0,
                                   idle_style=IdleStyle.HALT),
        ),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# LatencyDigest


class TestLatencyDigest:
    def test_percentile_matches_exact_to_bucket_resolution(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(0.05, size=5000)
        digest = LatencyDigest()
        digest.observe_many(values)
        for pct in (50.0, 90.0, 99.0):
            exact = float(np.percentile(values, pct))
            approx = digest.percentile(pct)
            # The estimate lands inside the bucket that holds the exact
            # value (uppers are the le-bounds).
            i = np.searchsorted(np.array(digest.uppers), exact, side="left")
            lower = 0.0 if i == 0 else digest.uppers[i - 1]
            upper = digest.uppers[i] if i < len(digest.uppers) \
                else digest.max_s
            assert lower <= approx <= upper + 1e-12

    def test_observe_many_matches_scalar_observe(self):
        values = [0.0, 0.0004, 0.001, 0.02, 4.0, 60.0]
        a, b = LatencyDigest(), LatencyDigest()
        for v in values:
            a.observe(v)
        b.observe_many(values)
        assert a.counts == b.counts
        assert a.sum_s == pytest.approx(b.sum_s)
        assert a.max_s == b.max_s

    def test_merge_equals_union(self):
        rng = np.random.default_rng(7)
        xs, ys = rng.exponential(0.01, 300), rng.exponential(0.3, 300)
        a, b, union = LatencyDigest(), LatencyDigest(), LatencyDigest()
        a.observe_many(xs)
        b.observe_many(ys)
        union.observe_many(np.concatenate([xs, ys]))
        merged = LatencyDigest.merged([a, b])
        assert merged.counts == union.counts
        assert merged.count == union.count
        assert merged.sum_s == pytest.approx(union.sum_s)
        assert merged.percentile(99.0) == pytest.approx(
            union.percentile(99.0))
        # In-place merge leaves the operands reusable copies.
        assert a.count == 300 and b.count == 300

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(WorkloadError):
            LatencyDigest((0.1, 1.0)).merge(LatencyDigest((0.2, 1.0)))

    def test_overflow_reports_max(self):
        digest = LatencyDigest((0.001, 0.01))
        digest.observe_many([5.0, 7.0, 9.0])
        assert digest.percentile(99.0) == 9.0

    def test_fraction_below_interpolates(self):
        digest = LatencyDigest((0.01, 0.02))
        digest.observe_many([0.005] * 50 + [0.015] * 50)
        assert digest.fraction_below(0.02) == pytest.approx(1.0)
        assert digest.fraction_below(0.015) == pytest.approx(0.75)
        # 0.008 interpolates 80% of the way through the first bucket.
        assert digest.fraction_below(0.008) == pytest.approx(0.4)

    def test_value_dict_is_telemetry_shaped(self):
        digest = LatencyDigest()
        digest.observe(0.003)
        d = digest.value_dict()
        assert d["buckets"][-1] == math.inf
        assert len(d["counts"]) == len(d["buckets"])
        assert d["count"] == 1 and d["sum"] == pytest.approx(0.003)

    def test_empty_digest_raises(self):
        digest = LatencyDigest()
        with pytest.raises(WorkloadError):
            digest.percentile(99.0)
        with pytest.raises(WorkloadError):
            digest.mean_s()

    def test_bad_buckets_rejected(self):
        with pytest.raises(WorkloadError):
            LatencyDigest(())
        with pytest.raises(WorkloadError):
            LatencyDigest((0.1, 0.1))
        with pytest.raises(WorkloadError):
            LatencyDigest((0.1, math.inf))


# ---------------------------------------------------------------------------
# Rate curves and traces


class TestFlashCrowd:
    def test_shape(self):
        rate = flash_crowd_rate(10.0, 100.0, t_start_s=1.0, ramp_s=1.0,
                                hold_s=2.0, decay_s=1.0)
        assert rate(0.0) == 10.0
        assert rate(1.5) == pytest.approx(55.0)
        assert rate(2.0) == rate(3.0) == rate(4.0) == 100.0
        assert rate(4.5) == pytest.approx(55.0)
        assert rate(5.0) == rate(9.0) == 10.0

    def test_peak_below_base_rejected(self):
        with pytest.raises(WorkloadError):
            flash_crowd_rate(10.0, 5.0, t_start_s=0.0, ramp_s=1.0,
                             hold_s=1.0, decay_s=1.0)


class TestRateTrace:
    def test_step_semantics(self):
        trace = RateTrace.from_points([(0.0, 5.0), (1.0, 50.0), (2.0, 0.0)])
        rate = trace.rate_fn()
        assert rate(-1.0) == 5.0
        assert rate(0.0) == rate(0.99) == 5.0
        assert rate(1.0) == rate(1.5) == 50.0
        assert rate(2.0) == rate(100.0) == 0.0
        assert trace.max_rate_per_s == 50.0

    def test_jsonl_round_trip(self, tmp_path):
        trace = RateTrace.from_points([(0.0, 5.0), (0.5, 20.0)])
        path = tmp_path / "rates.jsonl"
        trace.dump_jsonl(path)
        assert RateTrace.load_jsonl(path) == trace

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RateTrace(times_s=(), rates_per_s=())
        with pytest.raises(WorkloadError):
            RateTrace(times_s=(1.0,), rates_per_s=(5.0,))   # not at 0
        with pytest.raises(WorkloadError):
            RateTrace(times_s=(0.0, 0.0), rates_per_s=(1.0, 2.0))
        with pytest.raises(WorkloadError):
            RateTrace(times_s=(0.0,), rates_per_s=(-1.0,))
        with pytest.raises(WorkloadError):
            RateTrace(times_s=(0.0, 1.0), rates_per_s=(1.0,))

    def test_load_rejects_junk(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(WorkloadError):
            RateTrace.load_jsonl(path)
        path.write_text('{"kind": "phase-trace", "version": 1}\n')
        with pytest.raises(WorkloadError):
            RateTrace.load_jsonl(path)
        with pytest.raises(WorkloadError):
            RateTrace.load_jsonl(tmp_path / "missing.jsonl")

    def test_drives_a_server_source(self):
        trace = RateTrace.from_points([(0.0, 0.0), (0.5, 150.0)])
        machine = SMPMachine(MachineConfig(
            num_cores=1,
            core_config=CoreConfig(latency_jitter_sigma=0.0,
                                   idle_style=IdleStyle.HALT)), seed=2)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=trace.rate_fn(),
                              max_rate_per_s=trace.max_rate_per_s, rng=3)
        source.attach(sim)
        sim.run_for(1.0)
        assert source.issued > 0
        assert all(r.arrival_s >= 0.5 for r in source.records)


# ---------------------------------------------------------------------------
# Thinning exactness (property)


class TestThinningExactness:
    def test_count_moments_match_inhomogeneous_poisson(self):
        # rate(t): 0 on [0, 0.25), 160 on [0.25, 0.75), 0 after —
        # Lambda = 80 expected arrivals per run.  Over N seeded runs the
        # per-run counts must match Poisson(80) in mean and variance
        # (thinning at max_rate=160 with zero-rate windows included).
        def rate(t):
            return 160.0 if 0.25 <= t < 0.75 else 0.0

        spec = RequestSpec(instructions=1e5)
        counts = []
        for seed in range(40):
            machine = SMPMachine(MachineConfig(
                num_cores=1,
                core_config=CoreConfig(latency_jitter_sigma=0.0,
                                       idle_style=IdleStyle.HALT)),
                seed=seed)
            sim = Simulation(machine)
            source = ServerSource(machine, 0, rate_per_s=rate,
                                  max_rate_per_s=160.0, spec=spec,
                                  rng=1000 + seed)
            source.attach(sim)
            sim.run_for(1.0)
            counts.append(source.issued)
            assert all(0.25 <= r.arrival_s < 0.75 for r in source.records)
        counts = np.array(counts, dtype=float)
        lam = 80.0
        n = counts.size
        # Mean of n Poisson(lam) draws: se = sqrt(lam/n); 4-sigma band.
        assert abs(counts.mean() - lam) < 4.0 * math.sqrt(lam / n)
        # Variance ~ lam; chi-square 99.9% band for n-1 dof is roughly
        # lam * [0.45, 1.8] at n = 40.
        assert 0.45 * lam < counts.var(ddof=1) < 1.8 * lam

    def test_buffered_draws_match_generator_stream(self):
        # BlockedDraws must reproduce the plain-Generator arrival stream:
        # it changes the batching, not the distribution.
        a = BlockedDraws(123)
        rng = np.random.default_rng(123)
        first = [a.exponential(2.0) for _ in range(300)]
        expected = rng.exponential(1.0, 256) * 2.0
        np.testing.assert_allclose(first[:256], expected)


# ---------------------------------------------------------------------------
# The latency model


class TestLatencyModel:
    SIG = RequestSpec().signature(POWER4_LATENCIES)

    def test_service_time_decreases_with_frequency(self):
        spec = RequestSpec()
        times = [service_time_s(self.SIG, spec.instructions, f)
                 for f in POWER4_TABLE.freqs_hz]
        assert all(t2 < t1 for t1, t2 in zip(times, times[1:]))

    def test_mm1_quantile_blows_up_at_saturation(self):
        assert mm1_response_quantile_s(0.002, 499.0, 99.0) < math.inf
        assert mm1_response_quantile_s(0.002, 500.0, 99.0) == math.inf
        with pytest.raises(ModelError):
            mm1_response_quantile_s(0.002, 100.0, 100.0)

    def test_floor_monotone_in_rate_and_target(self):
        spec = RequestSpec()
        floors_by_rate = [
            frequency_floor_hz(POWER4_TABLE, self.SIG, spec.instructions,
                               rate, 0.02)
            for rate in (50.0, 200.0, 400.0, 550.0)
        ]
        assert all(b >= a for a, b in zip(floors_by_rate,
                                          floors_by_rate[1:]))
        tight = frequency_floor_hz(POWER4_TABLE, self.SIG,
                                   spec.instructions, 300.0, 0.005)
        loose = frequency_floor_hz(POWER4_TABLE, self.SIG,
                                   spec.instructions, 300.0, 0.5)
        assert tight >= loose

    def test_floor_is_fmax_when_target_unreachable(self):
        spec = RequestSpec()
        floor = frequency_floor_hz(POWER4_TABLE, self.SIG,
                                   spec.instructions, 5000.0, 0.001)
        assert floor == POWER4_TABLE.f_max_hz

    def test_prediction_upper_bounds_simulated_p99(self):
        # M/M/1 is the conservative closure of the simulator's
        # near-deterministic service: predicted p99 must sit at or above
        # the simulated p99, and within an order of magnitude of it.
        rate = 300.0
        machine = SMPMachine(MachineConfig(
            num_cores=1,
            core_config=CoreConfig(latency_jitter_sigma=0.0,
                                   idle_style=IdleStyle.HALT)), seed=21)
        sim = Simulation(machine)
        source = ServerSource(machine, 0, rate_per_s=constant_rate(rate),
                              max_rate_per_s=rate, rng=22)
        source.attach(sim)
        sim.run_for(4.0)
        simulated = source.censored_latency_percentile_s(99.0)
        predicted = predicted_latency_quantile_s(
            self.SIG, RequestSpec().instructions, rate,
            machine.cores[0].frequency_setting_hz, percentile=99.0)
        assert predicted >= simulated
        assert predicted < 10.0 * simulated


# ---------------------------------------------------------------------------
# Frequency floors through the schedulers


class TestSchedulerFloors:
    def test_floors_respected_under_step2_pressure(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [pview(0, 0, sig(10.0)), pview(0, 1, sig(10.0)),
                 pview(1, 0, sig(10.0)), pview(1, 1, sig(10.0))]
        floors = {0: mhz(800)}
        schedule = sched.schedule(views, power_limit_w=330.0,
                                  min_freqs_hz=floors)
        for a in schedule.assignments:
            if a.node_id == 0:
                assert a.freq_hz >= mhz(800)
        # Node 1 absorbed the cut node 0 refused.
        assert min(a.freq_hz for a in schedule.assignments
                   if a.node_id == 1) < mhz(800)

    def test_budget_below_floors_flags_infeasible(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [pview(0, 0, sig(10.0)), pview(1, 0, sig(10.0))]
        floors = {0: ghz(1.0), 1: ghz(1.0)}
        schedule = sched.schedule(views, power_limit_w=150.0,
                                  min_freqs_hz=floors,
                                  on_infeasible="floor")
        assert schedule.infeasible
        assert all(a.freq_hz == ghz(1.0) for a in schedule.assignments)

    def test_none_and_empty_floors_identical_to_default(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        views = [pview(0, i, sig(0.1)) for i in range(3)]
        base = sched.schedule(views, power_limit_w=200.0)
        for floors in (None, {}):
            again = sched.schedule(views, power_limit_w=200.0,
                                   min_freqs_hz=floors)
            assert again.assignments == base.assignments
            assert again.total_power_w == base.total_power_w

    def test_floor_wins_over_idle_pin_and_ceiling(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        idle = sched.schedule([pview(0, 0, sig(10.0), idle=True)],
                              min_freqs_hz={0: mhz(800)})
        assert idle.assignments[0].freq_hz == mhz(800)
        capped = sched.schedule([pview(0, 0, sig(10.0))],
                                max_freq_hz=mhz(250),
                                min_freqs_hz={0: mhz(800)})
        assert capped.assignments[0].freq_hz == mhz(800)

    def test_floor_quantizes_up_and_ignores_unknown_nodes(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        schedule = sched.schedule(
            [pview(0, 0, sig(10.0), idle=True)],
            min_freqs_hz={0: mhz(760), 99: ghz(1.0)})
        assert schedule.assignments[0].freq_hz == mhz(800)

    def test_floor_must_be_positive(self):
        sched = FrequencyVoltageScheduler(POWER4_TABLE, epsilon=0.04)
        with pytest.raises(Exception):
            sched.schedule([pview(0, 0, sig(10.0))],
                           min_freqs_hz={0: -1.0})

    def test_nested_respects_floors_inside_node_limits(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        views = [pview(0, 0, sig(10.0)), pview(0, 1, sig(10.0)),
                 pview(1, 0, sig(10.0)), pview(1, 1, sig(10.0))]
        schedule = sched.schedule_nested(
            views, 400.0, {0: 170.0, 1: 170.0},
            min_freqs_hz={0: mhz(700)})
        for a in schedule.assignments:
            if a.node_id == 0:
                assert a.freq_hz >= mhz(700)

    def test_nested_floors_none_identical_to_default(self):
        sched = NestedBudgetScheduler(POWER4_TABLE, epsilon=0.04)
        views = [pview(0, 0, sig(10.0)), pview(1, 0, sig(0.1))]
        base = sched.schedule_nested(views, 250.0, {0: 120.0})
        again = sched.schedule_nested(views, 250.0, {0: 120.0},
                                      min_freqs_hz=None)
        assert again.assignments == base.assignments


# ---------------------------------------------------------------------------
# Fleet traffic


class TestFleetTrafficSource:
    def _traffic(self, cluster, rate=200.0, **kwargs):
        return FleetTrafficSource(
            cluster, rate_per_s=constant_rate(rate), max_rate_per_s=rate,
            seed=5, **kwargs)

    def test_one_stream_per_core_and_attach_detach(self):
        cluster = serving_cluster(nodes=2, procs=2)
        traffic = self._traffic(cluster)
        assert traffic.num_streams == 4
        sim = Simulation(cluster.machines)
        traffic.attach(sim)
        with pytest.raises(WorkloadError):
            traffic.attach(sim)
        sim.run_for(0.5)
        issued = traffic.issued
        assert issued > 0
        traffic.detach()
        sim.run_for(0.5)
        assert traffic.issued == issued

    def test_digests_merge_upward(self):
        cluster = serving_cluster(nodes=2, procs=1)
        traffic = self._traffic(cluster)
        sim = Simulation(cluster.machines)
        traffic.attach(sim)
        sim.run_for(1.0)
        fleet = traffic.fleet_digest()
        per_node = [traffic.node_digest(n.node_id)
                    for n in cluster.nodes]
        assert fleet.count == sum(d.count for d in per_node)
        assert fleet.count == traffic.completed
        with pytest.raises(WorkloadError):
            traffic.node_digest(999)

    def test_censored_digest_counts_in_flight(self):
        cluster = serving_cluster(nodes=1, procs=1, seed=3)
        traffic = FleetTrafficSource(
            cluster, rate_per_s=constant_rate(700.0), max_rate_per_s=700.0,
            seed=6)
        sim = Simulation(cluster.machines)
        traffic.attach(sim)
        sim.run_for(1.0)
        assert traffic.in_flight > 0
        raw = traffic.fleet_digest()
        censored = traffic.fleet_digest(censored=True, horizon_s=1.0)
        assert censored.count == raw.count + traffic.in_flight

    def test_node_demands_reports_per_core_rate(self):
        cluster = serving_cluster(nodes=2, procs=2)
        traffic = self._traffic(cluster, rate=400.0)
        demands = traffic.node_demands(0.0)
        assert set(demands) == {n.node_id for n in cluster.nodes}
        for demand in demands.values():
            assert demand.rate_per_core_per_s == pytest.approx(100.0)
            assert demand.instructions == RequestSpec().instructions

    def test_per_node_spec_mapping(self):
        cluster = serving_cluster(nodes=2, procs=2)
        lean = RequestSpec(name="frontend", instructions=1e6)
        heavy = RequestSpec(name="backend", instructions=8e6,
                            n_mem_per_instr=0.004)
        specs = {cluster.nodes[0].node_id: lean,
                 cluster.nodes[1].node_id: heavy}
        traffic = self._traffic(cluster, rate=400.0, spec=specs)
        assert traffic.spec is None   # no single fleet-wide shape
        # Every stream serves its own node's spec.
        for node_id, sources in traffic._by_node.items():
            assert all(s.spec is specs[node_id] for s in sources)
        # node_demands carries the per-node signature and instructions.
        demands = traffic.node_demands(0.0)
        for node_id, spec in specs.items():
            assert demands[node_id].instructions == spec.instructions
            assert demands[node_id].signature == \
                spec.signature(POWER4_LATENCIES)

    def test_per_node_specs_shape_the_requests_served(self):
        cluster = serving_cluster(nodes=2, procs=1)
        specs = {cluster.nodes[0].node_id: RequestSpec(instructions=5e5),
                 cluster.nodes[1].node_id: RequestSpec(instructions=2e7)}
        traffic = self._traffic(cluster, rate=60.0, spec=specs)
        sim = Simulation(cluster.machines)
        traffic.attach(sim)
        sim.run_for(1.0)
        light = traffic.node_digest(cluster.nodes[0].node_id)
        heavy = traffic.node_digest(cluster.nodes[1].node_id)
        assert light.count > 0 and heavy.count > 0
        # 40x the instructions: visibly slower requests on node 1.
        assert heavy.mean_s() > light.mean_s() * 10

    def test_per_node_spec_mapping_must_cover_served_nodes(self):
        cluster = serving_cluster(nodes=2, procs=1)
        only_first = {cluster.nodes[0].node_id: RequestSpec()}
        with pytest.raises(WorkloadError):
            self._traffic(cluster, spec=only_first)

    def test_per_node_spec_mapping_rejects_non_specs(self):
        cluster = serving_cluster(nodes=1, procs=1)
        with pytest.raises(WorkloadError):
            self._traffic(cluster,
                          spec={cluster.nodes[0].node_id: "heavy"})

    def test_seeded_reproducibility(self):
        def run():
            cluster = serving_cluster(nodes=2, procs=1)
            traffic = self._traffic(cluster)
            sim = Simulation(cluster.machines)
            traffic.attach(sim)
            sim.run_for(1.0)
            return traffic.issued, traffic.fleet_digest().value_dict()

        a, b = run(), run()
        assert a == b


# ---------------------------------------------------------------------------
# SLO mode through the coordinator


class TestCoordinatorSLO:
    def _setup(self, *, target_s, budget_w=None, nodes=2, rate=500.0,
               seed=0):
        cluster = serving_cluster(nodes=nodes, procs=1, seed=seed)
        traffic = FleetTrafficSource(
            cluster, rate_per_s=constant_rate(rate), max_rate_per_s=rate,
            seed=seed + 9)
        coordinator = ClusterCoordinator(
            cluster,
            CoordinatorConfig(power_limit_w=budget_w,
                              slo_p99_target_s=target_s),
            seed=seed + 1)
        coordinator.bind_serving(traffic)
        sim = Simulation(cluster.machines)
        coordinator.attach(sim)
        traffic.attach(sim)
        return sim, coordinator, traffic

    def test_scheduled_frequencies_respect_floors(self):
        sim, coordinator, _ = self._setup(target_s=0.01, budget_w=160.0)
        sim.run_for(1.0)
        floors = coordinator.slo_floors_hz
        assert floors and max(floors.values()) > POWER4_TABLE.f_min_hz
        for a in coordinator.last_schedule.assignments:
            assert a.freq_hz >= floors[a.node_id] - 1e-6
        assert coordinator.slo_floor_violations == 0

    def test_tight_budget_counts_infeasible_passes(self):
        sim, coordinator, _ = self._setup(target_s=0.005, budget_w=100.0)
        sim.run_for(1.0)
        assert coordinator.slo_infeasible_passes > 0
        assert coordinator.slo_floor_violations == 0

    def test_unbound_serving_raises(self):
        cluster = serving_cluster()
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(slo_p99_target_s=0.02), seed=1)
        sim = Simulation(cluster.machines)
        coordinator.attach(sim)
        with pytest.raises(ClusterError):
            coordinator.run_global_pass(0.0)

    def test_no_target_keeps_slo_machinery_idle(self):
        sim, coordinator, _ = self._setup(target_s=None)
        sim.run_for(1.0)
        assert coordinator.slo_floors_hz == {}
        assert coordinator.slo_floor_violations == 0
        assert coordinator.slo_infeasible_passes == 0

    def test_config_validation(self):
        with pytest.raises(Exception):
            CoordinatorConfig(slo_p99_target_s=-1.0)
        with pytest.raises(ClusterError):
            CoordinatorConfig(slo_p99_target_s=0.02, slo_percentile=100.0)

    def test_fast_path_invalidated_by_floor_change(self):
        # The reschedule fast path may only reuse a schedule produced
        # under the same floors; a rate change that moves the floor must
        # force a fresh pass.
        sim, coordinator, traffic = self._setup(
            target_s=0.03, budget_w=None, rate=500.0)
        sim.run_for(0.35)
        floors_before = dict(coordinator.slo_floors_hz)
        assert floors_before
        # Drop the demand to (almost) nothing: the floor falls.
        slow = constant_rate(1.0)
        for source in traffic.sources:
            source.rate = slow
        sim.run_for(0.35)
        assert coordinator.slo_floors_hz != floors_before
        assert all(f <= b for f, b in zip(
            coordinator.slo_floors_hz.values(), floors_before.values()))

    def test_degraded_lost_node_pinned_at_floor(self):
        cluster = serving_cluster(nodes=2, procs=1)
        coordinator = ClusterCoordinator(cluster, CoordinatorConfig(),
                                         seed=1)
        lost_id = cluster.nodes[1].node_id
        live_id = cluster.nodes[0].node_id
        views = [pview(live_id, 0, sig(10.0))]
        schedule = coordinator._schedule_degraded(
            views, [lost_id], {lost_id: mhz(760), live_id: mhz(700)})
        pinned = [a for a in schedule.assignments if a.node_id == lost_id]
        assert pinned and all(a.freq_hz == mhz(800) for a in pinned)
        assert all(a.eps_freq_hz == mhz(800) for a in pinned)
        live = [a for a in schedule.assignments if a.node_id == live_id]
        assert all(a.freq_hz >= mhz(700) for a in live)

    def test_degraded_saturated_budget_still_honours_floors(self):
        cluster = serving_cluster(nodes=2, procs=1)
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(power_limit_w=10.0), seed=1)
        lost_id = cluster.nodes[1].node_id
        live_id = cluster.nodes[0].node_id
        views = [pview(live_id, 0, sig(10.0))]
        schedule = coordinator._schedule_degraded(
            views, [lost_id], {live_id: mhz(800)})
        assert schedule.infeasible
        live = [a for a in schedule.assignments if a.node_id == live_id]
        assert all(a.freq_hz >= mhz(800) for a in live)


# ---------------------------------------------------------------------------
# SLO mode through the hierarchy


class TestHierarchySLO:
    def test_bind_serving_reaches_every_shard(self):
        cluster = serving_cluster(nodes=4, procs=1)
        traffic = FleetTrafficSource(
            cluster, rate_per_s=constant_rate(400.0), max_rate_per_s=400.0,
            seed=5)
        allocator = FleetAllocator(
            cluster, CoordinatorConfig(slo_p99_target_s=0.01),
            fleet=FleetConfig(shard_size=2), seed=3)
        allocator.bind_serving(traffic)
        assert allocator.num_shards == 2
        sim = Simulation(cluster.machines)
        allocator.attach(sim)
        traffic.attach(sim)
        sim.run_for(1.0)
        for shard in allocator.shards:
            assert shard.slo_floors_hz
            assert shard.slo_floor_violations == 0
            for a in shard.last_schedule.assignments:
                assert a.freq_hz >= shard.slo_floors_hz[a.node_id] - 1e-6

    def test_summary_ladder_flattened_at_floor(self):
        cluster = serving_cluster(nodes=4, procs=1)
        traffic = FleetTrafficSource(
            cluster, rate_per_s=constant_rate(400.0), max_rate_per_s=400.0,
            seed=5)
        allocator = FleetAllocator(
            cluster, CoordinatorConfig(slo_p99_target_s=0.01),
            fleet=FleetConfig(shard_size=2), seed=3)
        allocator.bind_serving(traffic)
        sim = Simulation(cluster.machines)
        allocator.attach(sim)
        traffic.attach(sim)
        sim.run_for(1.0)
        table = POWER4_TABLE
        for shard in allocator.shards:
            floor_idx = min(
                table.index_of(table.quantize_up(f))
                for f in shard.slo_floors_hz.values())
            ladder = shard.make_summary(sim.now_s).capped_demand_w
            # Below the lowest floor rung the ladder cannot fall further:
            # those rungs all cost at least the floor's power.
            assert ladder[0] == pytest.approx(ladder[floor_idx])
            assert all(b >= a - 1e-9 for a, b in zip(ladder, ladder[1:]))


# ---------------------------------------------------------------------------
# The curtailment experiment


class TestCurtailmentExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.curtailment import run
        return run(seed=2005, fast=True)

    def test_reports_three_plus_budget_levels(self, result):
        table = result.tables[0]
        slo_rows = [r for r in table.rows if str(r[0]).startswith("slo@")]
        assert len(slo_rows) >= 3
        budgets = [r[1] for r in slo_rows]
        assert budgets == sorted(budgets)
        assert any(str(r[0]).startswith("no-slo@") for r in table.rows)

    def test_floors_respected_and_compliance_monotone(self, result):
        assert result.scalars["floors_respected"] == 1.0
        assert result.scalars["compliance_monotone"] == 1.0
        assert result.scalars["compliance_min_budget"] > \
            result.scalars["no_slo_compliance"]

    def test_energy_scales_with_budget(self, result):
        assert result.scalars["slo_energy_j_max_budget"] > \
            result.scalars["slo_energy_j_min_budget"]

    def test_serving_runs_at_fleet_kernel_cost(self, result):
        # ONCE-request lanes are resident: the whole sweep runs through
        # the fleet columns with no transient fallbacks.
        assert result.scalars["fleet_residency"] == 1.0
        assert result.scalars["fleet_transient_fallbacks"] == 0.0

    def test_deterministic(self, result):
        from repro.experiments.curtailment import run
        again = run(seed=2005, fast=True)
        assert again.scalars == result.scalars
        assert again.tables[0].rows == result.tables[0].rows


# ---------------------------------------------------------------------------
# CLI flag


class TestCliSloFlag:
    def test_flag_parsed(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["run", "curtailment", "--fast", "--slo-p99-ms", "25"])
        assert args.slo_p99_ms == 25.0
        assert build_parser().parse_args(
            ["run", "curtailment"]).slo_p99_ms is None

    def test_rejected_for_non_serving_experiments(self, capsys):
        from repro.cli import main
        assert main(["run", "table1", "--slo-p99-ms", "25"]) == 1
        assert "does not support" in capsys.readouterr().err

    def test_non_positive_target_rejected(self, capsys):
        from repro.cli import main
        assert main(["run", "curtailment", "--fast",
                     "--slo-p99-ms", "0"]) == 1
        assert "positive" in capsys.readouterr().err
