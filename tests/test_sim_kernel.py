"""The batched advance kernel reproduces the scalar chunk loop bit-for-bit.

``SMPMachine.advance`` routes event-free spans through
:mod:`repro.sim.kernel`; this file re-implements the pre-kernel path — the
10 ms per-chunk loop with the literal per-core slice loop inside — and
asserts *exact* float equality of every piece of machine state (counters,
residency, job cursors, energy ledger, supply-bank bookkeeping) on mixed
and randomized scenarios, including overload episodes and cascade failures.
No tolerances anywhere: one reordered IEEE operation fails the suite.
"""

import copy

import numpy as np
import pytest

from repro.errors import CascadeFailureError
from repro.power.energy import EnergyAccumulator, EnergyLedger
from repro.power.supply import SupplyBank
from repro.power.table import POWER4_TABLE
from repro.sim import Cluster, CoreConfig, MachineConfig, SMPMachine, Simulation
from repro.sim.core import _MIN_SLICE_S
from repro.sim.idle import IdleStyle
from repro.sim.kernel import advance_machine_span
from repro.workloads.job import Job, LoopMode
from repro.workloads.synthetic import synthetic_phase


# -- the literal pre-kernel oracle ------------------------------------------------


def reference_advance(machine, dt):
    """``SMPMachine.advance`` as the literal pre-kernel code path.

    Scalar chunking at the supply-observation interval, the per-core slice
    loop inlined from ``SimulatedCore.advance`` (so the batched kernel is
    bypassed entirely), sequential ledger/bank updates per chunk.
    """
    if dt == 0.0:
        return
    start = machine._now_s
    end = start + dt
    if machine.supply_bank is None:
        bounds = [end]
    else:
        step = machine.config.supply_observation_interval_s
        n = int(dt / step)
        while n and start + n * step >= end:
            n -= 1
        bounds = [start + i * step for i in range(1, n + 1)]
        bounds.append(end)
    for t_end in bounds:
        t0 = machine._now_s
        d = t_end - t0
        powers = {f"core{c.core_id}": machine.meter.core_power_w(c, t0)
                  for c in machine.cores}
        powers["non_cpu"] = machine.meter.non_cpu_power_w
        for c in machine.cores:
            if c.offline:
                c._record_residency("__offline__", 0.0, d)
                continue
            t = t0
            e = t0 + d
            while e - t > _MIN_SLICE_S:
                t = c._advance_slice(t, e)
        machine._now_s = t_end
        machine.ledger.advance_to(t_end, powers)
        if machine.supply_bank is not None:
            machine.supply_bank.observe(t_end, machine.system_power_w())


def job_state(job):
    return (job.phase_index, job.phase_progress, job.instructions_retired,
            job.iterations, job.state, job.started_at_s, job.completed_at_s)


def core_state(core):
    # Private attrs (the fleet kernel's counter-snapshot hook) are plumbing,
    # not counter state; machines resident in fleet columns carry them.
    counters = {k: v for k, v in vars(core.counters).items()
                if not k.startswith("_")}
    return (counters, dict(core.phase_time_s),
            dict(core.freq_time_s), core._overhead_debt_s,
            core.overhead_executed_s,
            [job_state(j) for j in core.dispatcher._queue])


def machine_state(m):
    bank = None
    if m.supply_bank is not None:
        bank = (m.supply_bank.overload_since_s, m.supply_bank.cascade_count,
                [s.failed for s in m.supply_bank.supplies])
    return {
        "now": m._now_s,
        "bank": bank,
        "ledger": {name: (a.energy_j, a.last_time_s)
                   for name, a in sorted(m.ledger.accounts.items())},
        "cores": [core_state(c) for c in m.cores],
    }


def run_both(build, script):
    """Run one scenario on a kernel-path machine and on the oracle.

    ``build()`` must be deterministic (seeded); ``script(machine, advance)``
    replays the identical event sequence on both, advancing through the
    given callable.  Exact state equality afterwards.
    """
    fast = build()
    slow = build()
    script(fast, fast.advance)
    script(slow, lambda d: reference_advance(slow, d))
    assert machine_state(fast) == machine_state(slow)
    return fast, slow


def looping_job(name, ratios, *, duration_s=0.05):
    phases = tuple(
        synthetic_phase(r, duration_s=duration_s, name=f"{name}_p{k}")
        for k, r in enumerate(ratios)
    )
    return Job(name=name, phases=phases, loop=LoopMode.LOOP)


# -- mixed-machine scenarios ------------------------------------------------------


def build_mixed(seed=3):
    """One core of each kind: inlined busy, chunked busy, idle, offline."""
    m = SMPMachine(
        MachineConfig(num_cores=4,
                      core_config=CoreConfig(latency_jitter_sigma=0.02)),
        supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
        seed=seed,
    )
    m.assign(0, looping_job("solo", (1.0, 0.4, 0.15)))
    m.assign(1, looping_job("pair_a", (0.8,)))
    m.assign(1, looping_job("pair_b", (0.95, 0.3)))
    m.cores[3].offline = True
    return m


def test_mixed_cores_match_reference():
    def script(m, advance):
        advance(0.25)
        now = m.now_s
        m.core(0).set_frequency(POWER4_TABLE.freqs_hz[4], now)
        m.core(2).set_frequency(POWER4_TABLE.freqs_hz[9], now)
        advance(0.107)           # span end off the 10 ms grid
        m.core(1).steal_time(0.003)
        m.core(0).steal_time(0.002)   # debt pushes core 0 to the chunked path
        advance(0.0853)
        advance(0.01)            # exactly one observation chunk
        advance(0.0004)          # sub-chunk span

    run_both(build_mixed, script)


def test_halt_idle_and_zero_jitter_match_reference():
    def build():
        m = SMPMachine(
            MachineConfig(num_cores=3,
                          core_config=CoreConfig(latency_jitter_sigma=0.0,
                                                 idle_style=IdleStyle.HALT)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
            seed=11,
        )
        m.assign(0, looping_job("busy", (0.6, 0.25)))
        m.cores[2].offline = True
        return m

    def script(m, advance):
        advance(0.13)
        m.core(1).set_frequency(POWER4_TABLE.freqs_hz[2], m.now_s)
        advance(0.2)

    run_both(build, script)


def test_no_supply_bank_matches_reference():
    def build():
        m = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.05)),
            seed=7,
        )
        m.assign(0, looping_job("j", (0.85, 0.2, 0.9)))
        return m

    def script(m, advance):
        advance(0.4)
        m.core(0).set_frequency(POWER4_TABLE.freqs_hz[6], m.now_s)
        advance(1.1)

    run_both(build, script)


def test_once_job_declines_batched_span_without_mutation():
    m = SMPMachine(MachineConfig(num_cores=2),
                   supply_bank=SupplyBank.example_p630(),
                   seed=5)
    m.assign(0, Job(name="once",
                    phases=(synthetic_phase(1.0, duration_s=0.05),),
                    loop=LoopMode.ONCE))
    before = machine_state(m)
    assert advance_machine_span(m, [m.now_s + 0.01, m.now_s + 0.02]) is False
    assert machine_state(m) == before


def test_once_job_full_advance_matches_reference():
    """ONCE jobs take the scalar path end to end — including completion
    mid-span flipping the core idle (and its power draw) at an interior
    chunk boundary."""
    def build():
        m = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.02)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
            seed=13,
        )
        m.assign(0, Job(name="once",
                        phases=(synthetic_phase(0.7, duration_s=0.08,
                                                name="only"),),
                        loop=LoopMode.ONCE))
        m.assign(1, looping_job("bg", (0.75,)))
        return m

    def script(m, advance):
        advance(0.3)             # the ONCE job completes inside this span
        advance(0.1)

    fast, _ = run_both(build, script)
    assert fast.cores[0].is_idle


# -- overload and cascade ---------------------------------------------------------


def test_overload_cascade_counting_matches_reference():
    """Failing one PSU puts the stock machine (746 W) over a single supply
    (480 W); the deadline crossing, the cascade to dark, and the episode
    bookkeeping land on identical chunk boundaries."""
    def build():
        m = build_mixed(seed=17)
        m.supply_bank.fail_supply(0)
        return m

    def script(m, advance):
        advance(0.735)           # overload episode running
        advance(1.5)             # crosses the 1 s deadline: cascade, dark

    fast, _ = run_both(build, script)
    assert fast.supply_bank.cascade_count == 1
    assert fast.supply_bank.all_failed


def test_raising_cascade_leaves_identical_partial_state():
    def build():
        m = SMPMachine(
            MachineConfig(num_cores=4,
                          core_config=CoreConfig(latency_jitter_sigma=0.02)),
            supply_bank=SupplyBank.example_p630(),    # raise_on_cascade=True
            seed=23,
        )
        m.assign(0, looping_job("j", (1.0, 0.5)))
        m.supply_bank.fail_supply(0)
        return m

    fast = build()
    slow = build()
    with pytest.raises(CascadeFailureError):
        fast.advance(2.0)
    with pytest.raises(CascadeFailureError):
        reference_advance(slow, 2.0)
    # Both stop advanced exactly through the chunk at which observe raised.
    assert machine_state(fast) == machine_state(slow)
    assert fast.supply_bank.cascade_count == 1
    assert fast._now_s < 2.0


# -- randomized multi-segment populations -----------------------------------------


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_randomized_machines_match_reference(seed):
    rng = np.random.default_rng(seed)

    kinds = [int(rng.integers(0, 4)) for _ in range(4)]
    ratios = [float(rng.uniform(0.05, 1.0)) for _ in range(12)]
    durations = [float(rng.uniform(0.01, 0.12)) for _ in range(12)]
    segments = []
    for _ in range(6):
        segments.append((
            float(rng.uniform(0.004, 0.35)),          # span length
            int(rng.integers(0, 4)),                  # core to retune
            int(rng.integers(0, len(POWER4_TABLE.freqs_hz))),
            bool(rng.uniform() < 0.3),                # steal daemon time?
        ))

    def build():
        m = SMPMachine(
            MachineConfig(num_cores=4,
                          core_config=CoreConfig(latency_jitter_sigma=0.03)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
            seed=seed,
        )
        k = iter(range(12))
        for c, kind in enumerate(kinds):
            if kind == 0:            # single looping job: the inlined path
                m.assign(c, looping_job(
                    f"c{c}", (ratios[next(k)], ratios[next(k)]),
                    duration_s=durations[c]))
            elif kind == 1:          # two jobs: the chunked path
                m.assign(c, looping_job(f"c{c}a", (ratios[next(k)],),
                                        duration_s=durations[c]))
                m.assign(c, looping_job(f"c{c}b", (ratios[next(k)],),
                                        duration_s=durations[c + 4]))
            elif kind == 2:          # idle hot loop
                pass
            else:
                m.cores[c].offline = True
        return m

    def script(m, advance):
        for dt, core, fidx, steal in segments:
            advance(dt)
            m.core(core).set_frequency(POWER4_TABLE.freqs_hz[fidx], m.now_s)
            if steal:
                m.core(core).steal_time(0.0015)

    run_both(build, script)


# -- driver and cluster routing ---------------------------------------------------


def test_simulation_events_cut_spans_identically():
    f_low = POWER4_TABLE.freqs_hz[1]

    def build():
        m = SMPMachine(
            MachineConfig(num_cores=2,
                          core_config=CoreConfig(latency_jitter_sigma=0.02)),
            supply_bank=SupplyBank.example_p630(raise_on_cascade=False),
            seed=29,
        )
        m.assign(0, looping_job("j", (1.0, 0.3)))
        return m

    fast = build()
    sim = Simulation(fast)
    sim.at(0.0377, lambda t: fast.core(0).set_frequency(f_low, t))
    sim.run_until(0.1)

    slow = build()
    reference_advance(slow, 0.0377)
    slow.core(0).set_frequency(f_low, 0.0377)
    reference_advance(slow, 0.1 - 0.0377)

    assert machine_state(fast) == machine_state(slow)


def test_cluster_advance_matches_reference():
    def build():
        cluster = Cluster.homogeneous(
            2,
            machine_config=MachineConfig(
                num_cores=2,
                core_config=CoreConfig(latency_jitter_sigma=0.02)),
            seed=31,
        )
        for i, m in enumerate(cluster.machines):
            m.assign(0, looping_job(f"n{i}", (0.9, 0.2)))
        return cluster

    fast = build()
    slow = build()
    fast.advance(0.5)
    for m in slow.machines:
        reference_advance(m, 0.5)
    for a, b in zip(fast.machines, slow.machines):
        assert machine_state(a) == machine_state(b)


# -- bulk energy accumulation -----------------------------------------------------


class TestEnergyAdvanceMany:
    def test_matches_sequential_advance_to(self):
        times = [0.013, 0.0371, 0.0371, 0.12, 1.5]
        a = EnergyAccumulator()
        b = EnergyAccumulator()
        for t in times:
            a.advance_to(t, 73.25)
        b.advance_many(np.asarray(times), 73.25)
        assert (a.energy_j, a.last_time_s) == (b.energy_j, b.last_time_s)

    def test_zero_power_only_moves_time(self):
        a = EnergyAccumulator()
        a.advance_to(0.5, 10.0)
        a.advance_many(np.asarray([0.7, 0.9]), 0.0)
        assert a.energy_j == 5.0
        assert a.last_time_s == 0.9

    def test_empty_is_a_no_op(self):
        a = EnergyAccumulator()
        a.advance_many(np.asarray([]), 50.0)
        assert (a.energy_j, a.last_time_s) == (0.0, 0.0)

    def test_backwards_time_raises(self):
        from repro.errors import SimulationError
        a = EnergyAccumulator()
        a.advance_to(1.0, 1.0)
        with pytest.raises(SimulationError):
            a.advance_many(np.asarray([0.5]), 1.0)
        with pytest.raises(SimulationError):
            a.advance_many(np.asarray([1.5, 1.2]), 1.0)

    def test_ledger_matches_sequential(self):
        times = [0.01, 0.02, 0.35]
        powers = {"core0": 120.0, "non_cpu": 186.0}
        a = EnergyLedger()
        b = EnergyLedger()
        a.account("idle_before")         # unmentioned account advances at 0 W
        b.account("idle_before")
        for t in times:
            a.advance_to(t, powers)
        b.advance_many(np.asarray(times), powers)
        assert {n: (x.energy_j, x.last_time_s) for n, x in a.accounts.items()} \
            == {n: (x.energy_j, x.last_time_s) for n, x in b.accounts.items()}


# -- supply-span planning ---------------------------------------------------------


def bank_state(bank):
    return (bank.overload_since_s, bank.cascade_count,
            [s.failed for s in bank.supplies])


def replay_plan(bank, times, demand):
    n_exec, actions = bank.plan_constant_span(times, demand)
    for j in actions:
        bank.observe(times[j], demand)
    return n_exec


class TestPlanConstantSpan:
    TIMES = [round(0.01 * i, 10) for i in range(1, 301)]   # 3 s of 10 ms chunks

    def check(self, make_bank, demand):
        lit = make_bank()
        plan = make_bank()
        raised_lit = raised_plan = False
        try:
            for t in self.TIMES:
                lit.observe(t, demand)
        except CascadeFailureError:
            raised_lit = True
        try:
            replay_plan(plan, self.TIMES, demand)
        except CascadeFailureError:
            raised_plan = True
        assert raised_lit == raised_plan
        assert bank_state(lit) == bank_state(plan)

    def test_below_capacity(self):
        self.check(lambda: SupplyBank.example_p630(raise_on_cascade=False),
                   400.0)

    def test_overload_cascades_to_dark(self):
        def make():
            b = SupplyBank.example_p630(raise_on_cascade=False)
            b.fail_supply(0)
            return b
        self.check(make, 746.0)

    def test_overload_with_raise(self):
        def make():
            b = SupplyBank.example_p630()
            b.fail_supply(0)
            return b
        self.check(make, 746.0)

    def test_raise_cuts_span_at_cascade_boundary(self):
        b = SupplyBank.example_p630()
        b.fail_supply(0)
        n_exec, actions = b.plan_constant_span(self.TIMES, 746.0)
        assert n_exec < len(self.TIMES)
        assert actions[-1] == n_exec - 1
        # Planning is pure: nothing moved yet.
        assert bank_state(b) == (None, 0, [True, False])

    def test_mid_episode_resume(self):
        """A plan starting inside a running overload episode honours the
        already-elapsed deadline time."""
        def make():
            b = SupplyBank.example_p630(raise_on_cascade=False)
            b.fail_supply(0)
            b.observe(0.005, 746.0)      # episode opened before the span
            return b
        self.check(make, 746.0)

    def test_dark_bank_is_all_no_ops(self):
        b = SupplyBank.example_p630(raise_on_cascade=False)
        b.fail_supply(0)
        b.fail_supply(0)
        n_exec, actions = b.plan_constant_span(self.TIMES, 500.0)
        assert n_exec == len(self.TIMES)
        assert actions == []
