"""Analysis: metrics, step series, table rendering, reports."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    mean_absolute_deviation,
    normalized_performance,
    performance_loss_fraction,
    throughput_of_job,
)
from repro.analysis.report import ExperimentResult, SeriesResult, TableResult
from repro.analysis.tables import render_series, render_table
from repro.analysis.timeseries import StepSeries, moving_average, resample_step
from repro.errors import ExperimentError
from repro.workloads.job import Job
from repro.workloads.phase import Phase


class TestMetrics:
    def test_throughput_of_completed_job(self):
        j = Job(name="j", phases=(Phase(name="p", instructions=1e6,
                                        alpha=1.0),))
        j.mark_started(1.0)
        j.retire(1e6, 2.0)
        assert throughput_of_job(j) == pytest.approx(1e6)

    def test_throughput_of_running_job_rejected(self):
        j = Job(name="j", phases=(Phase(name="p", instructions=1e6,
                                        alpha=1.0),))
        with pytest.raises(ExperimentError):
            throughput_of_job(j)

    def test_normalised_performance(self):
        assert normalized_performance(80.0, 100.0) == pytest.approx(0.8)
        assert performance_loss_fraction(80.0, 100.0) == pytest.approx(0.2)

    def test_mean_absolute_deviation(self):
        assert mean_absolute_deviation([1.0, 2.0], [1.1, 1.8]) == \
            pytest.approx(0.15)

    def test_mad_shape_mismatch(self):
        with pytest.raises(ExperimentError):
            mean_absolute_deviation([1.0], [1.0, 2.0])

    def test_mad_empty(self):
        with pytest.raises(ExperimentError):
            mean_absolute_deviation([], [])


class TestStepSeries:
    SERIES = StepSeries(np.array([1.0, 2.0, 4.0]),
                        np.array([10.0, 20.0, 5.0]))

    def test_right_continuous_evaluation(self):
        assert self.SERIES.at(1.0) == 10.0
        assert self.SERIES.at(1.99) == 10.0
        assert self.SERIES.at(2.0) == 20.0
        assert self.SERIES.at(100.0) == 5.0

    def test_before_start_uses_first_value(self):
        assert self.SERIES.at(0.0) == 10.0

    def test_integral(self):
        # [1,2): 10, [2,4): 20, [4,5): 5 -> 10 + 40 + 5 = 55.
        assert self.SERIES.integral(1.0, 5.0) == pytest.approx(55.0)

    def test_mean(self):
        assert self.SERIES.mean(1.0, 5.0) == pytest.approx(55.0 / 4.0)

    def test_residency(self):
        res = self.SERIES.residency(1.0, 5.0)
        assert res[10.0] == pytest.approx(0.25)
        assert res[20.0] == pytest.approx(0.50)
        assert res[5.0] == pytest.approx(0.25)
        assert sum(res.values()) == pytest.approx(1.0)

    def test_resample(self):
        grid = np.array([1.5, 2.5, 4.5])
        np.testing.assert_allclose(resample_step(self.SERIES, grid),
                                   [10.0, 20.0, 5.0])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            StepSeries(np.array([2.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ExperimentError):
            StepSeries(np.array([]), np.array([]))
        with pytest.raises(ExperimentError):
            self.SERIES.integral(5.0, 1.0)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(moving_average(v, 1), v)

    def test_constant_preserved(self):
        v = np.full(10, 7.0)
        np.testing.assert_allclose(moving_average(v, 3), v)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=100)
        assert moving_average(v, 9).std() < v.std()

    def test_bad_window(self):
        with pytest.raises(ExperimentError):
            moving_average(np.array([1.0]), 0)


class TestRendering:
    def test_table_alignment_and_rows(self):
        text = render_table(("a", "bb"), [(1, 2.5), (10, 0.125)],
                            title="T", precision=2)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "0.12" in lines[-1]

    def test_row_width_checked(self):
        with pytest.raises(ExperimentError):
            render_table(("a",), [(1, 2)])

    def test_series_rendering(self):
        text = render_series("x", ["y1", "y2"], [1, 2],
                             [[0.1, 0.2], [0.3, 0.4]])
        assert "y1" in text and "0.4" in text

    def test_series_length_checked(self):
        with pytest.raises(ExperimentError):
            render_series("x", ["y"], [1, 2], [[0.1]])


class TestReportObjects:
    def test_table_result_column(self):
        t = TableResult(headers=("a", "b"), rows=((1, 2), (3, 4)))
        assert t.column("b") == [2, 4]
        with pytest.raises(ExperimentError):
            t.column("z")

    def test_series_result_access(self):
        s = SeriesResult(x_label="x", x=(1, 2),
                         series={"y": (0.1, 0.2)})
        assert s.y("y") == (0.1, 0.2)
        with pytest.raises(ExperimentError):
            s.y("nope")

    def test_experiment_render_contains_everything(self):
        r = ExperimentResult(
            experiment_id="test",
            description="demo",
            tables=[TableResult(headers=("a",), rows=((1,),), title="tbl")],
            series=[SeriesResult(x_label="x", x=(1,),
                                 series={"y": (2.0,)}, title="ser")],
            scalars={"k": 3.0},
            notes=["a note"],
        )
        text = r.render()
        for needle in ("== test", "tbl", "ser", "k = 3.000", "a note"):
            assert needle in text
