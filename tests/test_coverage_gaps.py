"""Targeted tests for paths the main suites do not reach."""

import pytest

from repro.core.governor import Governor
from repro.errors import (
    ExperimentError,
    SchedulingError,
    SimulationError,
)
from repro.experiments.common import make_governor, run_job_under_governor
from repro.power.supply import SupplyBank
from repro.scenario import Scenario
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import mhz
from repro.workloads.profiles import profile_by_name
from tests.conftest import make_machine


class TestGovernorBase:
    def test_sim_property_before_attach_raises(self):
        class Dummy(Governor):
            def set_power_limit(self, limit_w, now_s):
                pass

        g = Dummy(make_machine(1))
        with pytest.raises(SchedulingError):
            _ = g.sim

    def test_double_attach_rejected_at_base(self):
        class Dummy(Governor):
            def set_power_limit(self, limit_w, now_s):
                pass

        m = make_machine(1)
        g = Dummy(m)
        sim = Simulation(m)
        g.attach(sim)
        with pytest.raises(SchedulingError):
            g.attach(sim)


class TestExperimentCommon:
    def test_unknown_governor_rejected(self):
        with pytest.raises(ExperimentError, match="unknown governor"):
            make_governor("ondemand", make_machine(1), power_limit_w=None)

    def test_completed_job_rejected(self):
        job = profile_by_name("gzip").job(body_repeats=1)
        run_job_under_governor(job, "none", power_limit_w=None, seed=0)
        with pytest.raises(ExperimentError, match="already completed"):
            run_job_under_governor(job, "none", power_limit_w=None, seed=0)

    def test_timeout_guard(self):
        job = profile_by_name("health").job(body_repeats=2)
        with pytest.raises(ExperimentError, match="did not finish"):
            run_job_under_governor(job, "none", power_limit_w=None,
                                   max_duration_s=0.5, seed=0)

    def test_settle_runs_governor_before_job(self):
        run = run_job_under_governor(
            profile_by_name("gzip").job(body_repeats=1), "fvsst",
            power_limit_w=None, settle_s=0.3, seed=1,
        )
        assert run.job.started_at_s >= 0.3
        assert run.average_core_power_w > 0


class TestScenarioWithSupplyBank:
    def test_bank_observed_through_scenario(self):
        bank = SupplyBank.example_p630(raise_on_cascade=False)
        scenario = Scenario(num_cores=4, seed=1, supply_bank=bank)
        scenario.with_job(0, profile_by_name("gzip").job(loop=True))
        scenario.with_governor("none")
        scenario.at(0.5, lambda res, t: bank.fail_supply(0))
        scenario.run(3.0)
        assert bank.cascade_count >= 1   # unmanaged hot machine cascades

    def test_config_conflict_rejected(self):
        from repro.errors import ConfigError
        from repro.sim.core import CoreConfig
        with pytest.raises(ConfigError):
            Scenario(machine_config=MachineConfig(num_cores=1),
                     core_config=CoreConfig())


class TestPeriodicTaskIntrospection:
    def test_next_time_advances_and_cancels(self):
        m = make_machine(1)
        sim = Simulation(m)
        task = sim.every(0.2, lambda t: None)
        assert task.next_time_s == pytest.approx(0.2)
        sim.run_for(0.3)
        assert task.next_time_s == pytest.approx(0.4)
        task.cancel()
        assert task.next_time_s is None

    def test_zero_offset_fires_immediately(self):
        m = make_machine(1)
        sim = Simulation(m)
        fired = []
        sim.every(0.5, fired.append, start_offset_s=0.0)
        sim.run_for(0.0)
        assert fired == [0.0]


class TestClusterIdleDetection:
    def test_coordinator_pins_idle_nodes(self):
        from repro.cluster.coordinator import (
            ClusterCoordinator,
            CoordinatorConfig,
        )
        from repro.sim.cluster import Cluster
        from repro.sim.core import CoreConfig

        cluster = Cluster.homogeneous(
            2,
            machine_config=MachineConfig(
                num_cores=1,
                core_config=CoreConfig(latency_jitter_sigma=0.0,
                                       idle_detection=True),
            ),
            seed=4,
        )
        cluster.nodes[0].assign(0, profile_by_name("gzip").job(loop=True))
        coordinator = ClusterCoordinator(
            cluster,
            CoordinatorConfig(counter_noise_sigma=0.0, idle_detection=True),
            seed=5,
        )
        sim = Simulation(cluster.machines)
        coordinator.attach(sim)
        sim.run_for(1.0)
        busy = cluster.nodes[0].machine.frequency_vector_hz()[0]
        idle = cluster.nodes[1].machine.frequency_vector_hz()[0]
        assert idle == mhz(250)
        assert busy >= mhz(900)


class TestMachineEdgeCases:
    def test_zero_advance_is_noop(self):
        m = make_machine(1)
        m.advance(0.0)
        assert m.now_s == 0.0

    def test_negative_advance_rejected(self):
        m = make_machine(1)
        with pytest.raises(Exception):
            m.advance(-0.1)

    def test_measure_cpu_power_matches_truth_without_noise(self):
        m = make_machine(2)
        assert m.measure_cpu_power_w() == pytest.approx(m.cpu_power_w())

    def test_supply_observation_chunking(self):
        bank = SupplyBank.example_p630(raise_on_cascade=False,
                                       cascade_deadline_s=0.5)
        m = SMPMachine(MachineConfig(num_cores=4), supply_bank=bank, seed=0)
        bank.fail_supply(0)
        # One long advance must still trip the 0.5 s deadline internally.
        m.advance(2.0)
        assert bank.cascade_count == 1


class TestMultithreadDaemonStructuredOverheadOff:
    def test_disabled_mt_overhead_is_free(self):
        from repro.core.daemon import DaemonConfig
        from repro.core.daemon_mt import (
            MultithreadedFvsstDaemon,
            MultithreadOverheadModel,
        )
        m = make_machine(2)
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = MultithreadedFvsstDaemon(
            m, DaemonConfig(counter_noise_sigma=0.0),
            mt_overhead=MultithreadOverheadModel(enabled=False), seed=1)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(1.0)
        assert all(c.overhead_executed_s == 0.0 for c in m.cores)
