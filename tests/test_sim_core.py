"""The simulated core: analytic execution, counters, residency, overhead."""

import pytest

from repro.model.latency import POWER4_LATENCIES
from repro.sim.core import CoreConfig, SimulatedCore
from repro.sim.idle import IdleStyle
from repro.units import ghz, mhz
from repro.workloads.job import Job, LoopMode
from repro.workloads.phase import Phase


def quiet_core(freq=ghz(1.0), **cfg) -> SimulatedCore:
    defaults = dict(latency_jitter_sigma=0.0)
    defaults.update(cfg)
    return SimulatedCore(0, initial_freq_hz=freq,
                         config=CoreConfig(**defaults), rng=0)


def cpu_phase(instr=1e9, alpha=2.0) -> Phase:
    return Phase(name="cpu", instructions=instr, alpha=alpha)


def mem_phase(instr=1e7) -> Phase:
    return Phase(name="mem", instructions=instr, alpha=2.0,
                 n_mem_per_instr=0.1)


class TestAnalyticExecution:
    def test_pure_cpu_throughput_exact(self):
        core = quiet_core()
        job = Job(name="j", phases=(cpu_phase(instr=2e9, alpha=2.0),))
        core.add_job(job)
        core.advance(0.0, 0.5)
        # alpha=2 at 1 GHz -> 2e9 instr/s; 0.5 s -> 1e9 instructions.
        assert job.instructions_retired == pytest.approx(1e9, rel=1e-9)

    def test_completion_time_matches_model(self):
        phase = mem_phase(instr=1e7)
        expected = 1e7 / phase.throughput(POWER4_LATENCIES, ghz(1.0))
        core = quiet_core()
        job = Job(name="j", phases=(phase,))
        core.add_job(job)
        core.advance(0.0, expected * 1.01)
        assert job.done
        assert job.elapsed_s() == pytest.approx(expected, rel=1e-6)

    def test_memory_bound_insensitive_to_frequency(self):
        # The same memory-bound work takes almost equal wall time at
        # 650 MHz and 1 GHz: saturation, end to end.
        times = {}
        for f in (mhz(650), ghz(1.0)):
            core = quiet_core(freq=f)
            phase = Phase(name="m", instructions=1e7, alpha=2.0,
                          n_mem_per_instr=0.12)
            job = Job(name="j", phases=(phase,))
            core.add_job(job)
            core.advance(0.0, 10.0)
            times[f] = job.elapsed_s()
        assert times[mhz(650)] == pytest.approx(times[ghz(1.0)], rel=0.06)

    def test_cpu_bound_scales_with_frequency(self):
        times = {}
        for f in (mhz(500), ghz(1.0)):
            core = quiet_core(freq=f)
            job = Job(name="j", phases=(cpu_phase(instr=1e8),))
            core.add_job(job)
            core.advance(0.0, 10.0)
            times[f] = job.elapsed_s()
        assert times[mhz(500)] == pytest.approx(2 * times[ghz(1.0)],
                                                rel=1e-6)

    def test_counters_reflect_phase_rates(self):
        # HALT idle so post-completion idling leaves counters untouched.
        core = quiet_core(idle_style=IdleStyle.HALT)
        phase = Phase(name="p", instructions=1e6, alpha=2.0,
                      n_l2_per_instr=0.01, n_mem_per_instr=0.001,
                      l1_stall_cycles_per_instr=0.2)
        core.add_job(Job(name="j", phases=(phase,)))
        core.advance(0.0, 10.0)
        assert core.counters.instructions == pytest.approx(1e6)
        assert core.counters.n_l2 == pytest.approx(1e4)
        assert core.counters.n_mem == pytest.approx(1e3)
        assert core.counters.l1_stall_cycles == pytest.approx(2e5)

    def test_cycles_equal_frequency_times_busy_time(self):
        core = quiet_core(freq=mhz(800))
        core.add_job(Job(name="j", phases=(cpu_phase(),)))
        core.advance(0.0, 0.25)
        assert core.counters.cycles == pytest.approx(mhz(800) * 0.25)


class TestPhaseBoundaries:
    def test_two_phases_execute_in_order(self):
        a = Phase(name="a", instructions=1e6, alpha=1.0)
        b = Phase(name="b", instructions=1e6, alpha=1.0)
        core = quiet_core()
        job = Job(name="j", phases=(a, b))
        core.add_job(job)
        core.advance(0.0, 0.0005)   # halfway through phase a
        assert job.phase_index == 0
        core.advance(0.0005, 0.001)
        assert job.phase_index == 1
        assert core.phase_time_s["a"] == pytest.approx(0.001)

    def test_looping_job_wraps(self):
        a = Phase(name="a", instructions=1e6, alpha=1.0)
        core = quiet_core()
        job = Job(name="j", phases=(a,), loop=LoopMode.LOOP)
        core.add_job(job)
        core.advance(0.0, 0.0035)
        assert job.iterations == 3
        assert not job.done


class TestIdleBehaviour:
    def test_hot_idle_accumulates_instructions(self):
        core = quiet_core()
        core.advance(0.0, 0.1)
        assert core.is_idle
        # IPC 1.3 at 1 GHz for 0.1 s.
        assert core.counters.instructions == pytest.approx(1.3e8, rel=1e-6)
        assert core.counters.halted_cycles == 0

    def test_halt_idle_accumulates_halted_cycles(self):
        core = quiet_core(idle_style=IdleStyle.HALT)
        core.advance(0.0, 0.1)
        assert core.counters.instructions == 0
        assert core.counters.halted_cycles == pytest.approx(1e8)

    def test_idle_to_busy_transition(self):
        core = quiet_core()
        core.advance(0.0, 0.05)
        job = Job(name="j", phases=(cpu_phase(instr=1e6),))
        core.add_job(job)
        assert not core.is_idle
        core.advance(0.05, 0.05)
        assert job.done
        assert core.is_idle


class TestMultiprogramming:
    def test_two_jobs_share_the_core_fairly(self):
        a = Job(name="a", phases=(cpu_phase(instr=1e9),))
        b = Job(name="b", phases=(cpu_phase(instr=1e9),))
        core = quiet_core()
        core.add_job(a)
        core.add_job(b)
        core.advance(0.0, 1.0)
        # Equal characteristics: progress within one quantum of equal.
        assert a.instructions_retired == pytest.approx(
            b.instructions_retired, rel=0.05
        )
        total = a.instructions_retired + b.instructions_retired
        assert total == pytest.approx(2e9, rel=1e-6)  # alpha=2 @ 1 GHz, 1 s


class TestFrequencyControl:
    def test_set_frequency_changes_throughput(self):
        core = quiet_core()
        job = Job(name="j", phases=(cpu_phase(instr=1e10),))
        core.add_job(job)
        core.advance(0.0, 0.1)
        at_full = job.instructions_retired
        core.set_frequency(mhz(500), 0.1)
        core.advance(0.1, 0.1)
        at_half = job.instructions_retired - at_full
        assert at_half == pytest.approx(at_full / 2, rel=1e-6)

    def test_settling_splits_the_slice(self):
        core = quiet_core(settling_time_s=0.05)
        job = Job(name="j", phases=(cpu_phase(instr=1e10),))
        core.add_job(job)
        core.set_frequency(mhz(500), 0.0)
        core.advance(0.0, 0.1)
        # First 0.05 s at 1 GHz (2e9/s), second 0.05 s at 500 MHz (1e9/s).
        assert job.instructions_retired == pytest.approx(
            0.05 * 2e9 + 0.05 * 1e9, rel=1e-6
        )
        assert core.freq_time_s[ghz(1.0)] == pytest.approx(0.05)
        assert core.freq_time_s[mhz(500)] == pytest.approx(0.05)


class TestOverheadStealing:
    def test_debt_front_runs_job_execution(self):
        core = quiet_core()
        job = Job(name="j", phases=(cpu_phase(instr=1e10),))
        core.add_job(job)
        core.steal_time(0.01)
        core.advance(0.0, 0.1)
        # 10 ms of the 100 ms went to the daemon phase.
        assert core.overhead_executed_s == pytest.approx(0.01)
        assert job.instructions_retired == pytest.approx(0.09 * 2e9,
                                                         rel=1e-6)

    def test_offline_core_does_nothing(self):
        core = quiet_core()
        job = Job(name="j", phases=(cpu_phase(),)
                  )
        core.add_job(job)
        core.offline = True
        core.advance(0.0, 1.0)
        assert job.instructions_retired == 0
        assert core.counters.cycles == 0
        assert core.phase_time_s.get("__offline__") == pytest.approx(1.0)
