"""Telemetry wired through the daemon, cluster, simulator, and CLI.

End-to-end assertions that the instrumentation actually fires on the
paper's scenarios: scheduler passes under an enabled backend, coordinator
round trips counting protocol bytes, budget-breach events under a tight
power cap, PSU-failure events from the supply bank, and the ``--telemetry``
CLI flag producing the JSONL + Prometheus artifacts.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.daemon_mt import MultithreadedFvsstDaemon
from repro.power.supply import SupplyBank
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    EVENT_FREQUENCY_CHANGE,
    EVENT_PSU_FAILURE,
    EVENT_PSU_RESTORED,
    JsonlSink,
    Telemetry,
    prometheus_text,
    read_jsonl,
    use_telemetry,
)
from repro.workloads.profiles import profile_by_name
from repro.workloads.tiers import tiered_cluster_assignment


def quiet_machine(num_cores=2) -> SMPMachine:
    cfg = MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    )
    return SMPMachine(cfg, seed=0)


def quiet_cluster(nodes=2, procs=2) -> Cluster:
    return Cluster.homogeneous(
        nodes,
        machine_config=MachineConfig(
            num_cores=procs,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=0,
    )


def series_value(snapshot, name):
    return snapshot["metrics"][name]["series"][0]["value"]


class TestDaemonInstrumentation:
    def _run(self, telemetry, *, seconds=1.0, **cfg_kwargs):
        machine = quiet_machine()
        machine.assign(0, profile_by_name("mcf").job(loop=True))
        machine.assign(1, profile_by_name("gzip").job(loop=True))
        cfg = DaemonConfig(counter_noise_sigma=0.0,
                           overhead=OverheadModel(enabled=False),
                           **cfg_kwargs)
        daemon = FvsstDaemon(machine, cfg, telemetry=telemetry, seed=1)
        sim = Simulation(machine, telemetry=telemetry)
        daemon.attach(sim)
        sim.run_for(seconds)
        return machine, daemon, sim

    def test_counters_track_the_run(self):
        tel = Telemetry()
        self._run(tel)
        snap = tel.snapshot()
        # 1 s at t=10 ms sampling, pass period T = 10 t; the tick
        # scheduled exactly at the horizon has not fired yet.
        assert series_value(snap, "fvsst_sample_ticks_total") == 99
        assert series_value(snap, "fvsst_counter_samples_total") == 198
        assert series_value(snap, "fvsst_schedule_passes_total") == 9
        assert series_value(snap, "scheduler_passes_total") == 9
        assert series_value(snap, "fvsst_frequency_transitions_total") > 0
        hist = snap["metrics"]["fvsst_schedule_pass_seconds"]["series"][0]
        assert hist["count"] == 9
        assert series_value(snap, "sim_events_dispatched_total") >= 99

    def test_frequency_change_events_carry_hz(self):
        tel = Telemetry()
        self._run(tel)
        changes = tel.events.events_of(EVENT_FREQUENCY_CHANGE)
        assert changes
        first = changes[0]
        assert first.attrs["old_hz"] != first.attrs["new_hz"]
        assert {"proc", "old_hz", "new_hz"} <= set(first.attrs)

    def test_budget_breach_under_tight_cap(self):
        tel = Telemetry()
        self._run(tel, power_limit_w=120.0)
        assert tel.events.count(EVENT_BUDGET_BREACH) > 0
        snap = tel.snapshot()
        assert series_value(snap, "fvsst_budget_breaches_total") > 0
        assert series_value(snap, "fvsst_power_limit_watts") == 120.0

    def test_curtailment_event_on_limit_trigger(self):
        tel = Telemetry()
        machine, daemon, sim = self._run(tel, seconds=0.5)
        daemon.set_power_limit(100.0, sim.now_s)
        assert tel.events.count(EVENT_CURTAILMENT) == 1
        event = tel.events.events_of(EVENT_CURTAILMENT)[0]
        assert event.attrs["new_limit_w"] == 100.0

    def test_null_backend_records_nothing(self):
        machine, daemon, sim = self._run(None)  # default NullTelemetry
        assert daemon.telemetry.enabled is False
        snap = daemon.telemetry.snapshot()
        # Metric handles exist (registration is unconditional) but the
        # guarded hot paths never touched them.
        assert series_value(snap, "fvsst_sample_ticks_total") == 0
        assert series_value(snap, "fvsst_schedule_passes_total") == 0
        assert snap["event_counts"] == {}
        assert snap["spans_finished"] == 0
        # The run itself is unaffected.
        assert daemon.last_schedule is not None

    def test_multithreaded_daemon_instrumented(self):
        tel = Telemetry()
        machine = quiet_machine(num_cores=2)
        machine.assign(1, profile_by_name("mcf").job(loop=True))
        daemon = MultithreadedFvsstDaemon(
            machine, DaemonConfig(counter_noise_sigma=0.0, daemon_core=0),
            telemetry=tel, seed=5)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(1.0)
        snap = tel.snapshot()
        assert series_value(snap, "fvsst_schedule_passes_total") == 9
        assert series_value(snap, "fvsst_counter_samples_total") == 198
        # Per-core collector threads still steal cycles (mt semantics kept).
        assert all(c.overhead_executed_s > 0 for c in machine.cores)


class TestClusterInstrumentation:
    def _run(self, telemetry, *, budget=None, seconds=1.0, nodes=2, procs=2):
        cluster = quiet_cluster(nodes=nodes, procs=procs)
        cluster.assign_all(tiered_cluster_assignment(
            nodes, procs, web_nodes=0, app_nodes=1))
        coord = ClusterCoordinator(
            cluster,
            CoordinatorConfig(power_limit_w=budget, counter_noise_sigma=0.0),
            telemetry=telemetry,
            seed=5,
        )
        sim = Simulation(cluster.machines)
        coord.attach(sim)
        sim.run_for(seconds)
        return cluster, coord, sim

    def test_round_trips_and_protocol_bytes(self):
        tel = Telemetry()
        cluster, coord, _sim = self._run(tel)
        snap = tel.snapshot()
        passes = series_value(snap, "cluster_global_passes_total")
        assert passes == 10  # a collect fires at every k*T including t=T
        assert series_value(snap, "cluster_report_bytes_total") > 0
        assert series_value(snap, "cluster_command_bytes_total") > 0
        assert series_value(snap, "cluster_commands_sent_total") >= passes
        assert series_value(snap, "agent_reports_total") == 2 * passes
        delay = snap["metrics"]["cluster_collect_delay_seconds"]["series"][0]
        assert delay["count"] == passes
        assert delay["sum"] > 0  # network latency is nonzero

    def test_pass_wall_clock_cost_in_log_entries(self):
        tel = Telemetry()
        cluster, coord, _sim = self._run(tel)
        entries = coord.log.schedule_entries
        assert entries
        assert all(e.pass_wall_s is not None and e.pass_wall_s > 0
                   for e in entries)
        assert coord.last_pass_wall_s is not None

    def test_pass_wall_clock_populated_even_with_null_backend(self):
        cluster, coord, _sim = self._run(None)
        assert all(e.pass_wall_s is not None
                   for e in coord.log.schedule_entries)

    def test_budget_breach_events_under_cluster_cap(self):
        tel = Telemetry()
        cluster, coord, _sim = self._run(tel, budget=280.0, seconds=2.0)
        assert tel.events.count(EVENT_BUDGET_BREACH) > 0
        snap = tel.snapshot()
        assert series_value(snap, "cluster_budget_breaches_total") > 0
        # ... and the same breaches are visible in the Prometheus text.
        text = prometheus_text(tel.metrics)
        assert "cluster_budget_breaches_total" in text

    def test_spans_cover_every_pass(self):
        tel = Telemetry()
        cluster, coord, _sim = self._run(tel)
        spans = tel.tracer.finished_named("cluster.global_pass")
        assert len(spans) == 10
        assert all(s.sim_duration_s > 0 for s in spans)  # collect delay
        assert all(s.wall_duration_s > 0 for s in spans)


class TestSupplyAndSinkIntegration:
    def test_psu_failure_events(self):
        tel = Telemetry()
        with use_telemetry(tel):
            bank = SupplyBank.example_p630(raise_on_cascade=False)
            bank.fail_supply(0, now_s=1.0)
            bank.restore_supply(0, now_s=2.0)
        assert tel.events.count(EVENT_PSU_FAILURE) == 1
        assert tel.events.count(EVENT_PSU_RESTORED) == 1
        failure = tel.events.events_of(EVENT_PSU_FAILURE)[0]
        assert failure.sim_time_s == 1.0
        assert failure.attrs["cascade"] is False

    def test_jsonl_sink_captures_a_cluster_run(self, tmp_path):
        tel = Telemetry()
        path = tmp_path / "telemetry.jsonl"
        with JsonlSink(path, tel) as sink:
            cluster = quiet_cluster()
            cluster.assign_all(tiered_cluster_assignment(
                2, 2, web_nodes=0, app_nodes=1))
            coord = ClusterCoordinator(
                cluster,
                CoordinatorConfig(power_limit_w=280.0,
                                  counter_noise_sigma=0.0),
                telemetry=tel, seed=5)
            sim = Simulation(cluster.machines)
            coord.attach(sim)
            sim.run_for(1.0)
            sink.write_snapshot()
        records = read_jsonl(path)
        kinds = [r for r in records if r["type"] == "event"]
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"] == "metrics"]
        assert any(r["kind"] == EVENT_BUDGET_BREACH for r in kinds)
        assert any(r["name"] == "cluster.global_pass" for r in spans)
        assert len(metrics) == 1
        assert "cluster_budget_breaches_total" in metrics[0]["snapshot"]


class TestCliTelemetry:
    def test_run_with_telemetry_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "tel"
        rc = cli_main(["run", "worked_example", "--fast",
                       "--telemetry", str(out)])
        assert rc == 0
        assert (out / "telemetry.jsonl").exists()
        prom = (out / "metrics.prom").read_text()
        assert "# TYPE" in prom
        captured = capsys.readouterr().out
        assert "telemetry metrics" in captured
        assert f"telemetry written to {out}" in captured
        # The stream parses back.
        records = read_jsonl(out / "telemetry.jsonl")
        assert any(r["type"] == "metrics" for r in records)
