"""The continuous f_ideal closed form (Section 5)."""

import pytest

from repro.errors import ModelError
from repro.model.ideal import ideal_frequency
from repro.model.ipc import WorkloadSignature
from repro.model.perf import perf
from repro.units import ghz


class TestIdealFrequency:
    def test_cpu_bound_pinned_at_fmax(self):
        # IPC(f_max) > 1 triggers the paper's heuristic.
        sig = WorkloadSignature(core_cpi=0.6, mem_time_per_instr_s=1e-10)
        assert ideal_frequency(sig, ghz(1.0), epsilon=0.05) == ghz(1.0)

    def test_closed_form_inverts_the_loss_equation(self, mem_signature):
        # At f_ideal, performance is exactly (1 - epsilon) of Perf(f_max).
        eps = 0.04
        f_max = ghz(1.0)
        f_ideal = ideal_frequency(mem_signature, f_max, epsilon=eps,
                                  ipc_threshold=float("inf"))
        assert f_ideal < f_max
        assert perf(mem_signature, f_ideal) == pytest.approx(
            (1 - eps) * perf(mem_signature, f_max)
        )

    def test_larger_epsilon_gives_lower_frequency(self, mem_signature):
        kwargs = dict(ipc_threshold=float("inf"))
        f_small = ideal_frequency(mem_signature, ghz(1.0), epsilon=0.02,
                                  **kwargs)
        f_large = ideal_frequency(mem_signature, ghz(1.0), epsilon=0.10,
                                  **kwargs)
        assert f_large < f_small

    def test_clamped_to_f_min(self, mem_signature):
        f = ideal_frequency(mem_signature, ghz(1.0), epsilon=0.5,
                            f_min_hz=ghz(0.6), ipc_threshold=float("inf"))
        assert f == ghz(0.6)

    def test_clamped_to_f_max_for_nearly_pure_cpu(self):
        # A low-IPC but memory-free workload: the formula would ask for a
        # frequency above f_max to hit the target; must clamp down.
        sig = WorkloadSignature(core_cpi=2.0, mem_time_per_instr_s=1e-13)
        f = ideal_frequency(sig, ghz(1.0), epsilon=0.01,
                            ipc_threshold=float("inf"))
        assert f <= ghz(1.0)

    def test_mcf_like_lands_near_650(self):
        # Ratio 0.075 was placed to desire 650 MHz at epsilon = 4%.
        sig = WorkloadSignature(core_cpi=0.65,
                                mem_time_per_instr_s=0.65 / 0.075 / ghz(1.0))
        f = ideal_frequency(sig, ghz(1.0), epsilon=0.04,
                            ipc_threshold=float("inf"))
        assert ghz(0.60) < f <= ghz(0.66)

    @pytest.mark.parametrize("eps", [0.0, 1.0])
    def test_degenerate_epsilon_rejected(self, mem_signature, eps):
        with pytest.raises(ModelError):
            ideal_frequency(mem_signature, ghz(1.0), epsilon=eps)

    def test_inverted_bounds_rejected(self, mem_signature):
        with pytest.raises(ModelError):
            ideal_frequency(mem_signature, ghz(0.5), epsilon=0.05,
                            f_min_hz=ghz(1.0))

    def test_threshold_disable_still_valid(self, cpu_signature):
        # Disabling the heuristic must still return a frequency in range.
        f = ideal_frequency(cpu_signature, ghz(1.0), epsilon=0.05,
                            f_min_hz=ghz(0.25),
                            ipc_threshold=float("inf"))
        assert ghz(0.25) <= f <= ghz(1.0)
