"""Property-based tests of the daemon over random workloads and events."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.core.singlepass import SinglePassScheduler
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.workloads.generator import GeneratorSpec, WorkloadGenerator


def build_machine(seed: int, num_cores: int, jobs_seed: int) -> SMPMachine:
    machine = SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=0.01),
    ), seed=seed)
    gen = WorkloadGenerator(jobs_seed, GeneratorSpec(
        phase_duration_low_s=0.2, phase_duration_high_s=1.0))
    for i, job in enumerate(gen.jobs(num_cores)):
        machine.assign(i, job)
    return machine


class TestDaemonInvariants:
    @given(seed=st.integers(0, 10_000),
           num_cores=st.integers(1, 4),
           budget=st.floats(50.0, 500.0))
    @settings(max_examples=15, deadline=None)
    def test_scheduled_power_respects_feasible_budget(self, seed, num_cores,
                                                      budget):
        machine = build_machine(seed, num_cores, seed + 1)
        floor = num_cores * machine.table.min_power_w
        daemon = FvsstDaemon(machine, DaemonConfig(
            power_limit_w=max(budget, floor),
            counter_noise_sigma=0.005,
            overhead=OverheadModel(enabled=False)), seed=seed + 2)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(1.0)
        limit = max(budget, floor)
        assert daemon.last_schedule.total_power_w <= limit + 1e-9
        assert machine.cpu_power_w() <= limit + 1e-9

    @given(seed=st.integers(0, 10_000),
           limits=st.lists(st.floats(60.0, 500.0), min_size=1, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_budget_changes_mid_run_always_converge(self, seed, limits):
        machine = build_machine(seed, 2, seed + 1)
        daemon = FvsstDaemon(machine, DaemonConfig(
            counter_noise_sigma=0.005,
            overhead=OverheadModel(enabled=False)), seed=seed + 2)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(0.3)
        for limit in limits:
            daemon.set_power_limit(limit, sim.now_s)
            sim.run_for(0.3)
        final = limits[-1]
        floor = 2 * machine.table.min_power_w
        assert machine.cpu_power_w() <= max(final, floor) + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_single_pass_daemon_equivalent_end_to_end(self, seed):
        """Swapping the scheduler implementation must not change the
        machine's trajectory (same decisions at every pass)."""
        def run(single_pass: bool) -> list[float]:
            machine = build_machine(seed, 2, seed + 1)
            kwargs = {}
            if single_pass:
                kwargs["scheduler"] = SinglePassScheduler(machine.table)
            daemon = FvsstDaemon(machine, DaemonConfig(
                power_limit_w=200.0, counter_noise_sigma=0.0,
                overhead=OverheadModel(enabled=False)),
                seed=seed + 2, **kwargs)
            sim = Simulation(machine)
            daemon.attach(sim)
            sim.run_for(1.0)
            return [e.freq_hz for e in daemon.log.schedule_entries]

        assert run(False) == run(True)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_all_scheduled_frequencies_on_the_ladder(self, seed):
        machine = build_machine(seed, 2, seed + 1)
        daemon = FvsstDaemon(machine, DaemonConfig(
            counter_noise_sigma=0.02,
            overhead=OverheadModel(enabled=False)), seed=seed + 2)
        sim = Simulation(machine)
        daemon.attach(sim)
        sim.run_for(1.0)
        for entry in daemon.log.schedule_entries:
            assert entry.freq_hz in machine.table
            assert entry.eps_freq_hz in machine.table
            assert entry.freq_hz <= entry.eps_freq_hz + 1e-9
