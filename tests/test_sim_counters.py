"""Counter banks, snapshots and noisy readers."""

import pytest

from repro.errors import CounterError
from repro.model.ipc import MemoryCounts
from repro.sim.counters import CounterBank, CounterReader


def executed(instr=1000.0, cycles=2000.0, **kw) -> CounterBank:
    bank = CounterBank()
    bank.add_execution(MemoryCounts(instructions=instr, **kw), cycles=cycles)
    return bank


class TestCounterBank:
    def test_accumulates_execution(self):
        bank = executed(n_l2=10, n_mem=2, l1_stall_cycles=50)
        assert bank.instructions == 1000
        assert bank.cycles == 2000
        assert bank.n_l2 == 10 and bank.n_mem == 2
        assert bank.l1_stall_cycles == 50

    def test_halted_cycles_separate(self):
        bank = CounterBank()
        bank.add_halted(500)
        assert bank.halted_cycles == 500
        assert bank.cycles == 0

    def test_snapshot_is_immutable_copy(self):
        bank = executed()
        snap = bank.snapshot()
        bank.add_execution(MemoryCounts(instructions=1), cycles=1)
        assert snap.instructions == 1000

    def test_delta(self):
        bank = executed()
        before = bank.snapshot()
        bank.add_execution(MemoryCounts(instructions=500, n_mem=7),
                           cycles=900)
        delta = bank.snapshot().delta(before)
        assert delta.instructions == 500
        assert delta.cycles == 900
        assert delta.n_mem == 7

    def test_rollback_detected(self):
        a = executed().snapshot()
        b = CounterBank().snapshot()
        with pytest.raises(CounterError):
            b.delta(a)


class TestCounterSample:
    def test_derived_quantities(self):
        bank = executed(instr=800, cycles=1000)
        reader = CounterReader(bank)
        reader.sample(0.0)
        bank.add_execution(MemoryCounts(instructions=800), cycles=1000)
        s = reader.sample(0.010)
        assert s.ipc == pytest.approx(0.8)
        assert s.effective_freq_hz == pytest.approx(1000 / 0.010)
        assert s.interval_s == pytest.approx(0.010)

    def test_halted_fraction(self):
        bank = CounterBank()
        reader = CounterReader(bank)
        reader.sample(0.0)
        bank.add_execution(MemoryCounts(instructions=100), cycles=300)
        bank.add_halted(700)
        s = reader.sample(0.010)
        assert s.halted_fraction == pytest.approx(0.7)

    def test_empty_interval_is_safe(self):
        reader = CounterReader(CounterBank())
        reader.sample(0.0)
        s = reader.sample(0.010)
        assert s.ipc == 0.0
        assert s.effective_freq_hz == 0.0

    def test_memory_counts_roundtrip(self):
        bank = CounterBank()
        reader = CounterReader(bank)
        bank.add_execution(
            MemoryCounts(instructions=1000, n_l2=9, n_l3=4, n_mem=1,
                         l1_stall_cycles=30), cycles=2000)
        s = reader.sample(0.0)
        counts = s.memory_counts()
        assert counts.n_l2 == 9 and counts.n_l3 == 4 and counts.n_mem == 1
        assert counts.l1_stall_cycles == 30


class TestCounterReader:
    def test_deltas_between_samples(self):
        bank = CounterBank()
        reader = CounterReader(bank)
        reader.sample(0.0)
        bank.add_execution(MemoryCounts(instructions=100), cycles=200)
        assert reader.sample(0.01).instructions == pytest.approx(100)
        bank.add_execution(MemoryCounts(instructions=50), cycles=100)
        assert reader.sample(0.02).instructions == pytest.approx(50)

    def test_time_reversal_rejected(self):
        reader = CounterReader(CounterBank())
        reader.sample(1.0)
        with pytest.raises(CounterError):
            reader.sample(0.5)

    def test_noise_is_multiplicative_and_seeded(self):
        def sample_with(seed):
            bank = CounterBank()
            reader = CounterReader(bank, noise_sigma=0.05, rng=seed)
            bank.add_execution(MemoryCounts(instructions=1e6), cycles=2e6)
            return reader.sample(0.01)

        a, b = sample_with(1), sample_with(1)
        assert a.instructions == b.instructions  # deterministic per seed
        c = sample_with(2)
        assert c.instructions != a.instructions  # varies across seeds
        assert a.instructions == pytest.approx(1e6, rel=0.3)

    def test_noise_never_negative(self):
        bank = CounterBank()
        reader = CounterReader(bank, noise_sigma=10.0, rng=3)
        bank.add_execution(MemoryCounts(instructions=1.0), cycles=1.0)
        s = reader.sample(0.01)
        assert s.instructions >= 0.0

    def test_zero_noise_exact(self):
        bank = CounterBank()
        reader = CounterReader(bank, noise_sigma=0.0, rng=4)
        bank.add_execution(MemoryCounts(instructions=123), cycles=456)
        s = reader.sample(0.01)
        assert s.instructions == 123 and s.cycles == 456
