"""Unit conversions and validators."""

import math

import pytest

from repro import units
from repro.errors import UnitError


class TestFrequencyConversions:
    def test_mhz_to_hz(self):
        assert units.mhz(1000) == 1.0e9

    def test_ghz_to_hz(self):
        assert units.ghz(1.0) == 1.0e9

    def test_roundtrip_mhz(self):
        assert units.to_mhz(units.mhz(650)) == pytest.approx(650)

    def test_roundtrip_ghz(self):
        assert units.to_ghz(units.ghz(0.75)) == pytest.approx(0.75)


class TestTimeConversions:
    def test_ms(self):
        assert units.ms(10) == pytest.approx(0.010)

    def test_us(self):
        assert units.us(100) == pytest.approx(100e-6)

    def test_ns(self):
        assert units.ns(393) == pytest.approx(393e-9)

    def test_to_ms(self):
        assert units.to_ms(0.1) == pytest.approx(100)


class TestCycleConversions:
    def test_cycles_at_nominal_equal_ns(self):
        # 393 cycles at 1 GHz is 393 ns.
        assert units.cycles_to_seconds(393, 1e9) == pytest.approx(393e-9)

    def test_cycles_scale_with_frequency(self):
        # The same wall time costs twice the cycles at twice the clock.
        t = units.cycles_to_seconds(100, 1e9)
        assert units.seconds_to_cycles(t, 2e9) == pytest.approx(200)

    def test_zero_frequency_rejected(self):
        with pytest.raises(UnitError):
            units.cycles_to_seconds(100, 0.0)
        with pytest.raises(UnitError):
            units.seconds_to_cycles(1.0, -1e9)


class TestValidators:
    def test_check_positive_accepts(self):
        assert units.check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(UnitError, match="x"):
            units.check_positive(bad, "x")

    def test_check_non_negative_accepts_zero(self):
        assert units.check_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan")])
    def test_check_non_negative_rejects(self, bad):
        with pytest.raises(UnitError):
            units.check_non_negative(bad, "x")

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_check_fraction_accepts(self, ok):
        assert units.check_fraction(ok, "f") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(UnitError):
            units.check_fraction(bad, "f")


class TestApproxEqual:
    def test_equal_floats(self):
        assert units.approx_equal(1e9, 1e9 * (1 + 1e-12))

    def test_unequal_floats(self):
        assert not units.approx_equal(1e9, 1.0001e9)

    def test_near_zero(self):
        assert units.approx_equal(0.0, 1e-15)

    def test_error_messages_name_the_parameter(self):
        with pytest.raises(UnitError, match="my_param"):
            units.check_positive(-1, "my_param")
        assert not math.isnan(units.check_positive(1, "x"))
