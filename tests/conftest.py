"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.model.ipc import WorkloadSignature
from repro.model.latency import POWER4_LATENCIES
from repro.power.table import POWER4_TABLE, WORKED_EXAMPLE_TABLE
from repro.sim.machine import MachineConfig, SMPMachine
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.units import ghz


@pytest.fixture
def latencies():
    """The p630 latency profile."""
    return POWER4_LATENCIES


@pytest.fixture
def table():
    """The full 16-point Table 1."""
    return POWER4_TABLE


@pytest.fixture
def example_table():
    """The 5-point worked-example ladder."""
    return WORKED_EXAMPLE_TABLE


@pytest.fixture
def cpu_signature():
    """A nearly pure CPU workload (core-to-memory ratio ~ 65)."""
    return WorkloadSignature(core_cpi=0.65, mem_time_per_instr_s=1e-11)


@pytest.fixture
def mem_signature():
    """A memory-bound workload saturating near 650 MHz (ratio 0.075)."""
    return WorkloadSignature(core_cpi=0.65,
                             mem_time_per_instr_s=0.65 / 0.075 / ghz(1.0))


def make_machine(num_cores: int = 1, *, seed: int = 0,
                 jitter: float = 0.0, **core_kwargs) -> SMPMachine:
    """Deterministic machine helper (zero jitter unless asked)."""
    config = MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=jitter, **core_kwargs),
    )
    return SMPMachine(config, seed=seed)


@pytest.fixture
def quiet_machine():
    """A single-core machine with no stochastic effects."""
    return make_machine(1)


@pytest.fixture
def quiet_machine4():
    """A four-core machine with no stochastic effects."""
    return make_machine(4)


@pytest.fixture
def sim_factory():
    """Build a Simulation over one or more machines."""
    return lambda machines: Simulation(machines)
