"""End-to-end integration tests across subsystems."""

import pytest

from repro import constants
from repro.core.baselines import NoManagementGovernor, UniformScalingGovernor
from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.power.budget import ComplianceMonitor, PowerBudget
from repro.power.supply import SupplyBank
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz, mhz
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import two_phase_benchmark


def machine(num_cores=4, supply_bank=None, jitter=0.0, seed=0) -> SMPMachine:
    return SMPMachine(MachineConfig(
        num_cores=num_cores,
        core_config=CoreConfig(latency_jitter_sigma=jitter),
    ), supply_bank=supply_bank, seed=seed)


class TestPsuFailureScenario:
    """The Section 2 motivating example, end to end."""

    def test_fvsst_beats_the_cascade_deadline(self):
        bank = SupplyBank.example_p630()   # raises on cascade
        m = machine(supply_bank=bank)
        for i, app in enumerate(("gzip", "gap", "mcf", "health")):
            m.assign(i, profile_by_name(app).job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0), seed=1)
        sim = Simulation(m)
        d.attach(sim)
        monitor = ComplianceMonitor(PowerBudget(limit_w=960.0))
        sim.every(0.01, lambda t: monitor.observe(t, m.system_power_w()))

        def fail(t):
            remaining = bank.fail_supply(0)
            monitor.set_budget(PowerBudget(limit_w=remaining), t)
            d.set_power_limit(remaining - constants.NON_CPU_POWER_W, t)

        sim.at(1.0, fail)
        sim.run_for(4.0)    # raises CascadeFailureError on failure

        assert bank.cascade_count == 0
        response = monitor.response_time_s()
        assert response is not None
        assert response < constants.PSU_CASCADE_DEADLINE_S
        assert m.system_power_w() <= 480.0

    def test_unmanaged_system_cascades(self):
        bank = SupplyBank.example_p630(raise_on_cascade=False)
        m = machine(supply_bank=bank)
        g = NoManagementGovernor(m)
        sim = Simulation(m)
        g.attach(sim)
        sim.at(1.0, lambda t: bank.fail_supply(0))
        sim.run_for(4.0)
        assert bank.cascade_count >= 1

    def test_uniform_scaling_also_survives_but_slower_workload(self):
        bank = SupplyBank.example_p630()
        m = machine(supply_bank=bank)
        job = profile_by_name("mcf").job(loop=True)
        m.assign(3, job)
        g = UniformScalingGovernor(m)
        sim = Simulation(m)
        g.attach(sim)
        sim.at(1.0, lambda t: (
            bank.fail_supply(0),
            g.set_power_limit(480.0 - constants.NON_CPU_POWER_W, t),
        ))
        sim.run_for(4.0)
        assert bank.cascade_count == 0
        # Uniform cap for 4 procs at 294 W is 700 MHz.
        assert m.frequency_vector_hz() == [mhz(700)] * 4


class TestDaemonOverSyntheticBenchmark:
    def test_phase_tracking_with_noise_and_jitter(self):
        """Realistic configuration: noise, jitter, overhead all on."""
        m = machine(num_cores=1, jitter=0.02, seed=3)
        bench = two_phase_benchmark(1.0, 0.2, duration_a_s=1.0,
                                    duration_b_s=1.0,
                                    include_init_exit=False)
        m.assign(0, bench.job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.005,
                                        overhead=OverheadModel(),
                                        daemon_core=0), seed=4)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(6.0)
        residency = d.log.frequency_residency(0, 0)
        fast = sum(v for f, v in residency.items() if f >= mhz(950))
        slow = sum(v for f, v in residency.items() if f <= mhz(500))
        # Both phases visible in the frequency distribution.
        assert fast > 0.3
        assert slow > 0.3

    def test_frequency_tracks_ipc_direction(self):
        m = machine(num_cores=1, seed=5)
        bench = two_phase_benchmark(1.0, 0.2, duration_a_s=1.0,
                                    duration_b_s=1.0,
                                    include_init_exit=False)
        m.assign(0, bench.job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0), seed=6)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(6.0)
        pairs = d.log.prediction_pairs(0, 0)
        t_f, freqs = d.log.frequency_series(0, 0)
        measured = dict((t, m_) for t, _p, m_ in pairs)
        scored = [(measured[t], f) for t, f in zip(t_f, freqs)
                  if t in measured]
        assert len(scored) > 10
        median_ipc = sorted(v for v, _f in scored)[len(scored) // 2]
        hi = [f for v, f in scored if v > median_ipc]
        lo = [f for v, f in scored if v <= median_ipc]
        assert sum(hi) / len(hi) > sum(lo) / len(lo)


class TestEnergyAccountingEndToEnd:
    def test_fvsst_saves_energy_on_memory_bound_work(self):
        def run(managed: bool) -> float:
            m = machine(num_cores=1, seed=7)
            m.assign(0, profile_by_name("mcf").job(loop=True))
            sim = Simulation(m)
            if managed:
                FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0),
                            seed=8).attach(sim)
            else:
                NoManagementGovernor(m).attach(sim)
            sim.run_for(5.0)
            return m.ledger.energy_of("core0")

        ratio = run(True) / run(False)
        # Table 3: mcf's CPU energy is ~0.43-0.56 of the unmanaged run.
        assert 0.35 < ratio < 0.65

    def test_work_conservation_under_saturation(self):
        """fvsst at saturation frequency completes fixed work in nearly
        the same time (fixed-work comparison avoids the wall-clock-window
        bias against short high-IPC phases)."""
        def completion(managed: bool) -> float:
            m = machine(num_cores=1, seed=9)
            job = profile_by_name("mcf").job(body_repeats=2)
            m.assign(0, job)
            sim = Simulation(m)
            if managed:
                FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0),
                            seed=10).attach(sim)
            else:
                NoManagementGovernor(m).attach(sim)
            while not job.done:
                sim.run_for(0.5)
            return job.elapsed_s()

        slowdown = completion(True) / completion(False)
        assert slowdown < 1.07


class TestMultiprogrammedAggregation:
    def test_aggregate_signature_blends_jobs(self):
        """Two jobs on one core: the daemon schedules for the mixture."""
        m = machine(num_cores=1, seed=11)
        m.assign(0, profile_by_name("gzip").job(loop=True))
        m.assign(0, profile_by_name("mcf").job(loop=True))
        d = FvsstDaemon(m, DaemonConfig(counter_noise_sigma=0.0), seed=12)
        sim = Simulation(m)
        d.attach(sim)
        sim.run_for(3.0)
        res = d.log.frequency_residency(0, 0)
        modal = max(res, key=res.get)
        # The blend sits between mcf's 650 and gzip's 950-1000: the
        # masking effect Section 5 warns about.
        assert mhz(650) < modal < ghz(1.0)
