"""Power supplies and the Section 2 cascade scenario."""

import pytest

from repro.errors import CascadeFailureError, SimulationError
from repro.power.supply import PowerSupply, SupplyBank


def bank(deadline=1.0, **kwargs) -> SupplyBank:
    return SupplyBank(
        supplies=[PowerSupply(480.0, name="psu0"),
                  PowerSupply(480.0, name="psu1")],
        cascade_deadline_s=deadline, **kwargs,
    )


class TestCapacity:
    def test_example_configuration(self):
        b = SupplyBank.example_p630()
        assert b.capacity_w == 960.0
        assert len(b.online) == 2

    def test_failure_halves_capacity(self):
        b = bank()
        assert b.fail_supply(0) == 480.0
        assert len(b.online) == 1

    def test_restore_recovers_capacity(self):
        b = bank()
        b.fail_supply(0)
        assert b.restore_supply(0) == 960.0

    def test_fail_all_then_dark(self):
        b = bank()
        b.fail_supply(0)
        b.fail_supply(0)
        assert b.all_failed
        with pytest.raises(SimulationError):
            b.fail_supply(0)

    def test_restore_without_failure_raises(self):
        with pytest.raises(SimulationError):
            bank().restore_supply(0)

    def test_headroom(self):
        b = bank()
        assert b.headroom_w(746.0) == pytest.approx(214.0)
        b.fail_supply(0)
        assert b.headroom_w(746.0) == pytest.approx(-266.0)


class TestCascade:
    def test_no_cascade_within_capacity(self):
        b = bank()
        for t in (0.0, 1.0, 10.0):
            assert b.observe(t, 900.0) is False
        assert b.cascade_count == 0

    def test_overload_tolerated_inside_deadline(self):
        b = bank()
        b.fail_supply(0)
        assert b.observe(0.0, 746.0) is False   # episode starts
        assert b.observe(0.9, 746.0) is False   # still inside DeltaT
        assert b.cascade_count == 0

    def test_cascade_after_deadline(self):
        b = bank(raise_on_cascade=False)
        b.fail_supply(0)
        b.observe(0.0, 746.0)
        assert b.observe(1.05, 746.0) is True
        assert b.cascade_count == 1
        assert b.all_failed

    def test_cascade_raises_when_configured(self):
        b = bank()
        b.fail_supply(0)
        b.observe(0.0, 746.0)
        with pytest.raises(CascadeFailureError) as err:
            b.observe(1.2, 746.0)
        assert err.value.time_s == pytest.approx(1.2)

    def test_recovery_resets_the_episode(self):
        b = bank(raise_on_cascade=False)
        b.fail_supply(0)
        b.observe(0.0, 746.0)      # overload begins
        b.observe(0.5, 450.0)      # brought under capacity in time
        b.observe(0.6, 746.0)      # new overload episode
        assert b.observe(1.4, 746.0) is False  # only 0.8 s into episode 2
        assert b.cascade_count == 0

    def test_dark_system_observation_is_terminal_noop(self):
        b = bank(raise_on_cascade=False)
        b.fail_supply(0)
        b.fail_supply(0)
        assert b.observe(5.0, 100.0) is True
        assert b.cascade_count == 0  # nothing further failed
