"""Workload generator, traces, and cluster tiers."""

import pytest

from repro.errors import WorkloadError
from repro.model.latency import POWER4_LATENCIES
from repro.units import ghz
from repro.workloads.generator import GeneratorSpec, WorkloadGenerator
from repro.workloads.job import LoopMode
from repro.workloads.tiers import (
    TIER_APP,
    TIER_DB,
    TIER_WEB,
    tier_job,
    tiered_cluster_assignment,
)
from repro.workloads.traces import PhaseTrace, record_trace, replay_trace


class TestWorkloadGenerator:
    def test_seeded_determinism(self):
        a = WorkloadGenerator(42).jobs(3)
        b = WorkloadGenerator(42).jobs(3)
        for ja, jb in zip(a, b):
            assert [p.n_mem_per_instr for p in ja.phases] == \
                [p.n_mem_per_instr for p in jb.phases]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(1).phase()
        b = WorkloadGenerator(2).phase()
        assert a.n_mem_per_instr != b.n_mem_per_instr

    def test_phase_count_within_spec(self):
        spec = GeneratorSpec(phases_per_job_low=2, phases_per_job_high=4)
        gen = WorkloadGenerator(7, spec)
        for job in gen.jobs(10):
            assert 2 <= len(job.phases) <= 4

    def test_ratio_band_respected(self):
        spec = GeneratorSpec(ratio_low=0.1, ratio_high=1.0)
        gen = WorkloadGenerator(3, spec)
        for _ in range(20):
            phase = gen.phase()
            sig = phase.true_signature(POWER4_LATENCIES)
            ratio = sig.core_cpi / (sig.mem_time_per_instr_s * ghz(1.0))
            assert 0.05 < ratio < 2.0  # band up to share rounding

    def test_invalid_spec_rejected(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(ratio_low=2.0, ratio_high=1.0)
        with pytest.raises(WorkloadError):
            GeneratorSpec(phases_per_job_low=0)

    def test_bad_count_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(1).jobs(0)


class TestTraces:
    def test_roundtrip_preserves_phases(self):
        job = WorkloadGenerator(5).job(loop=True)
        trace = record_trace(job)
        rebuilt = replay_trace(trace)
        assert rebuilt.loop is LoopMode.LOOP
        assert len(rebuilt.phases) == len(job.phases)
        for orig, copy in zip(job.phases, rebuilt.phases):
            assert copy.n_mem_per_instr == orig.n_mem_per_instr
            assert copy.instructions == orig.instructions

    def test_file_roundtrip(self, tmp_path):
        job = WorkloadGenerator(6).job(loop=False)
        trace = record_trace(job)
        path = tmp_path / "trace.json"
        trace.dump(path)
        loaded = PhaseTrace.load(path)
        assert loaded == trace

    def test_replay_gives_fresh_job(self):
        job = WorkloadGenerator(8).job(loop=False)
        job.mark_started(0.0)
        rebuilt = replay_trace(record_trace(job), name="copy")
        assert rebuilt.name == "copy"
        assert rebuilt.instructions_retired == 0.0

    def test_malformed_dict_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseTrace.from_dict({"version": 99})
        with pytest.raises(WorkloadError):
            PhaseTrace.from_dict({"version": 1, "job_name": "x",
                                  "loop": False, "records": [{"bogus": 1}]})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            PhaseTrace.load(tmp_path / "missing.json")


class TestTiers:
    def test_tier_characters(self):
        # db is the most memory-bound tier, app the least.
        def mem_rate(tier):
            job = tier_job(tier)
            return max(p.n_mem_per_instr for p in job.phases)

        assert mem_rate(TIER_DB) > mem_rate(TIER_WEB) > mem_rate(TIER_APP)

    def test_tier_job_loops(self):
        assert tier_job("web").loop is LoopMode.LOOP

    def test_unknown_tier_rejected(self):
        with pytest.raises(WorkloadError):
            tier_job("cache")

    def test_assignment_layout(self):
        jobs = tiered_cluster_assignment(4, 2, web_nodes=1, app_nodes=1)
        assert len(jobs) == 4
        assert all(len(node_jobs) == 2 for node_jobs in jobs)
        assert jobs[0][0].name.startswith("web")
        assert jobs[1][0].name.startswith("app")
        assert jobs[2][0].name.startswith("db")
        assert jobs[3][1].name.startswith("db")

    def test_default_split_roughly_thirds(self):
        jobs = tiered_cluster_assignment(6, 1)
        names = [jobs[n][0].name.split("-")[0] for n in range(6)]
        assert names == ["web", "web", "app", "app", "db", "db"]

    def test_overfull_split_rejected(self):
        with pytest.raises(WorkloadError):
            tiered_cluster_assignment(2, 1, web_nodes=2, app_nodes=1)
