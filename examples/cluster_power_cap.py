#!/usr/bin/env python3
"""Cluster-wide power capping over tiered nodes.

A 4-node cluster laid out the way Section 4.2 describes real sites: one
web-tier node, one application-tier node, two database-tier nodes.  A
utility curtailment request arrives and the cluster must shed 30% of its
processor power budget.

The fvsst coordinator (running the paper's Figure 3 algorithm globally over
all 16 processors) is compared with slowing every node uniformly.

Run:  python examples/cluster_power_cap.py
"""

from repro import MachineConfig, Simulation, tiered_cluster_assignment
from repro.cluster import ClusterCoordinator, CoordinatorConfig
from repro.core import uniform_cap_frequency
from repro.sim import Cluster

NODES, PROCS = 4, 4
CURTAILMENT = 0.7  # fraction of peak power allowed after the request


def build_cluster(seed: int) -> Cluster:
    cluster = Cluster.homogeneous(
        NODES, machine_config=MachineConfig(num_cores=PROCS), seed=seed
    )
    cluster.assign_all(
        tiered_cluster_assignment(NODES, PROCS, web_nodes=1, app_nodes=1)
    )
    return cluster


def total_instructions(cluster: Cluster) -> float:
    return sum(core.counters.instructions
               for node in cluster.nodes for core in node.machine.cores)


def main() -> None:
    table = build_cluster(0).nodes[0].machine.table
    peak = NODES * PROCS * table.max_power_w
    budget = CURTAILMENT * peak
    print(f"peak processor power {peak:.0f} W; curtailment budget "
          f"{budget:.0f} W ({CURTAILMENT:.0%})\n")

    # --- fvsst global coordinator ------------------------------------------
    cluster = build_cluster(seed=10)
    sim = Simulation(cluster.machines)
    coordinator = ClusterCoordinator(
        cluster, CoordinatorConfig(power_limit_w=budget), seed=11
    )
    coordinator.attach(sim)
    sim.run_for(6.0)
    fvsst_work = total_instructions(cluster)
    print("fvsst coordinator:")
    for node in cluster.nodes:
        tier = ("web", "app", "db", "db")[node.node_id]
        freqs = sorted({int(f / 1e6) for f in
                        node.machine.frequency_vector_hz()})
        print(f"  node {node.node_id} ({tier}): {freqs} MHz, "
              f"{node.cpu_power_w():.0f} W")
    print(f"  cluster power {cluster.cpu_power_w():.0f} W <= {budget:.0f} W; "
          f"{cluster.network.messages_sent} control messages\n")

    # --- uniform scaling -----------------------------------------------------
    cluster_u = build_cluster(seed=10)
    sim_u = Simulation(cluster_u.machines)
    f_uniform = uniform_cap_frequency(table, NODES * PROCS, budget)
    for node in cluster_u.nodes:
        for core in node.machine.cores:
            core.set_frequency(f_uniform, 0.0)
    sim_u.run_for(6.0)
    uniform_work = total_instructions(cluster_u)
    print(f"uniform scaling: every processor at {f_uniform / 1e6:.0f} MHz, "
          f"{cluster_u.cpu_power_w():.0f} W")

    print(f"\nthroughput at equal budget: fvsst / uniform = "
          f"{fvsst_work / uniform_work:.3f}")
    print("fvsst wins by harvesting the saturated db tier's headroom "
          "instead of slowing the CPU-bound tiers.")


if __name__ == "__main__":
    main()
