#!/usr/bin/env python3
"""Surviving a machine-room cooling failure (Section 2's other trigger).

The four CPUs run flat out at 25 °C ambient, sitting near their thermal
equilibrium.  At T0 a CRAC unit fails and the inlet temperature climbs
toward 45 °C.  A thermal monitor converts the shrinking thermal headroom
into a per-processor frequency cap which fvsst applies as a thermal
throttle; the unmanaged machine sails past its 95 °C junction limit.

Note the mechanism: an *aggregate* power budget cannot protect the hottest
core (the greedy pass spares CPU-bound processors), so thermal safety uses
the per-processor frequency ceiling instead.

Run:  python examples/thermal_emergency.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    ThermalMonitor,
    ThermalParams,
    profile_by_name,
)
from repro.analysis import sparkline

T0 = 2.0
RAMP_C_PER_S = 2.0
AMBIENT_FAILED = 45.0


def run(managed: bool) -> tuple[list[float], float]:
    machine = SMPMachine(MachineConfig(num_cores=4), seed=11)
    for i, app in enumerate(("gzip", "gap", "mcf", "health")):
        machine.assign(i, profile_by_name(app).job(loop=True))
    monitor = ThermalMonitor(4, ThermalParams(), ambient_c=25.0)
    monitor.warm_start(140.0)

    sim = Simulation(machine)
    daemon = None
    if managed:
        daemon = FvsstDaemon(machine, DaemonConfig(), seed=12)
        daemon.attach(sim)

    temps: list[float] = []
    state = {"ambient": 25.0, "cap": None}

    def tick(t: float) -> None:
        if t >= T0:
            state["ambient"] = min(AMBIENT_FAILED,
                                   25.0 + RAMP_C_PER_S * (t - T0))
            monitor.set_ambient(state["ambient"])
        powers = [machine.meter.core_power_w(c, t) for c in machine.cores]
        monitor.advance(t, 0.05, powers)
        if daemon is not None:
            per_core = monitor.cpu_budget_w() / machine.num_cores
            cap = machine.table.max_frequency_under(per_core)
            cap = machine.table.f_min_hz if cap is None else cap
            if cap != state["cap"]:
                daemon.set_frequency_cap(cap, t)
                state["cap"] = cap
        temps.append(monitor.hottest_c)

    sim.every(0.05, tick)
    sim.run_for(30.0)
    return temps, machine.cpu_power_w()


def main() -> None:
    limit = ThermalParams().t_limit_c
    for managed in (False, True):
        label = "fvsst thermal throttle" if managed else "unmanaged"
        temps, final_power = run(managed)
        peak = max(temps)
        status = "OK" if peak <= limit else "OVER LIMIT"
        print(f"{label}:")
        print(f"  hottest core:  {sparkline(temps[::12])}")
        print(f"  peak {peak:.1f} C vs limit {limit:.0f} C  [{status}]; "
              f"final CPU power {final_power:.0f} W\n")


if __name__ == "__main__":
    main()
