#!/usr/bin/env python3
"""A live observability dashboard over the PSU-failure scenario.

The Section 2 motivating scenario (one of two 480 W supplies fails at T0;
fvsst must duck under the survivor's capacity before the cascade deadline)
runs with a full telemetry backend attached.  A :class:`JsonlSink` streams
every event and span to ``out/observability/telemetry.jsonl``; the script
tails that file between simulation checkpoints — exactly what an external
dashboard would do — and prints each structured event as it lands.  At the
end it renders the Prometheus text snapshot and the summary tables.

Run:  python examples/observability_dashboard.py
"""

import json
from pathlib import Path

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    SupplyBank,
    Telemetry,
    profile_by_name,
    use_telemetry,
)
from repro.constants import NON_CPU_POWER_W, PSU_CASCADE_DEADLINE_S
from repro.telemetry import JsonlSink, prometheus_text, telemetry_report

T0 = 1.0
END_S = 4.0
APPS = ("gzip", "gap", "mcf", "health")
OUT_DIR = Path("out/observability")


class JsonlTail:
    """Incrementally reads records appended to a JSONL file."""

    def __init__(self, path: Path) -> None:
        self._fh = path.open(encoding="utf-8")

    def poll(self) -> list[dict]:
        records = []
        for line in self._fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records

    def close(self) -> None:
        self._fh.close()


def describe(record: dict) -> str | None:
    """One dashboard line per streamed record (spans are kept quiet)."""
    if record["type"] != "event":
        return None
    t = record["sim_time_s"]
    attrs = record["attrs"]
    kind = record["kind"]
    if kind == "frequency_change":
        return (f"  [{t:5.2f}s] cpu{attrs['proc']} "
                f"{attrs['old_hz'] / 1e6:4.0f} -> "
                f"{attrs['new_hz'] / 1e6:4.0f} MHz")
    if kind == "budget_breach":
        return (f"  [{t:5.2f}s] BUDGET BREACH: planned "
                f"{attrs['planned_power_w']:.1f} W vs limit "
                f"{attrs['limit_w']:.1f} W "
                f"({attrs['reduction_steps']} reduction steps)")
    if kind == "psu_failure":
        return (f"  [{t:5.2f}s] PSU FAILURE: {attrs['supply']} down, "
                f"{attrs['remaining_capacity_w']:.0f} W remaining")
    if kind == "curtailment":
        return f"  [{t:5.2f}s] curtailment: new limit {attrs['new_limit_w']:.1f} W"
    if kind == "phase_transition":
        return (f"  [{t:5.2f}s] {attrs['job']}: "
                f"{attrs['from_phase']} -> {attrs['to_phase']}")
    return f"  [{t:5.2f}s] {kind}: {attrs}"


def main() -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    jsonl_path = OUT_DIR / "telemetry.jsonl"
    telemetry = Telemetry()

    with use_telemetry(telemetry), \
            JsonlSink(jsonl_path, telemetry) as sink:
        bank = SupplyBank.example_p630(
            raise_on_cascade=False,
            cascade_deadline_s=PSU_CASCADE_DEADLINE_S)
        machine = SMPMachine(MachineConfig(num_cores=4),
                             supply_bank=bank, seed=3)
        for cpu, app in enumerate(APPS):
            machine.assign(cpu, profile_by_name(app).job(loop=True))

        sim = Simulation(machine, telemetry=telemetry)
        daemon = FvsstDaemon(machine, DaemonConfig(),
                             telemetry=telemetry, seed=4)
        daemon.attach(sim)

        def on_failure(t: float) -> None:
            remaining = bank.fail_supply(0, now_s=t)
            daemon.set_power_limit(remaining - NON_CPU_POWER_W, t)

        sim.at(T0, on_failure)

        tail = JsonlTail(jsonl_path)
        print(f"PSU-failure scenario with telemetry -> {jsonl_path}")
        print(f"(supply fails at t={T0:.1f}s; cascade deadline "
              f"{PSU_CASCADE_DEADLINE_S:.1f}s)\n")

        checkpoint = 0.0
        while checkpoint < END_S:
            checkpoint = min(checkpoint + 0.25, END_S)
            sim.run_until(checkpoint)
            sink.flush()
            for record in tail.poll():
                line = describe(record)
                if line:
                    print(line)
            power = machine.system_power_w()
            print(f"t={checkpoint:5.2f}s  system {power:6.1f} W / "
                  f"capacity {bank.capacity_w:6.1f} W")
        tail.close()
        sink.write_snapshot()

    prom_path = OUT_DIR / "metrics.prom"
    prom = prometheus_text(telemetry.metrics)
    prom_path.write_text(prom, encoding="utf-8")

    print("\n--- Prometheus snapshot (" + str(prom_path) + ") ---")
    print(prom)
    print(telemetry_report(telemetry))


if __name__ == "__main__":
    main()
