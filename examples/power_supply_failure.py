#!/usr/bin/env python3
"""The Section 2 motivating scenario: surviving a power-supply failure.

The p630 draws 746 W from two 480 W supplies.  All four CPUs run real
work.  At T0 one supply fails: unless the system drops below 480 W within
the cascade deadline DeltaT, the second supply fails too and the machine
goes dark.

The script runs the scenario twice — under fvsst and unmanaged — and prints
a timeline of system power against capacity.

Run:  python examples/power_supply_failure.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    SupplyBank,
    profile_by_name,
)
from repro.constants import NON_CPU_POWER_W, PSU_CASCADE_DEADLINE_S

T0 = 1.0
APPS = ("gzip", "gap", "mcf", "health")


def run_scenario(managed: bool) -> None:
    title = "WITH fvsst" if managed else "WITHOUT management"
    print(f"\n--- {title} ---")

    bank = SupplyBank.example_p630(raise_on_cascade=False,
                                   cascade_deadline_s=PSU_CASCADE_DEADLINE_S)
    machine = SMPMachine(MachineConfig(num_cores=4), supply_bank=bank, seed=3)
    for cpu, app in enumerate(APPS):
        machine.assign(cpu, profile_by_name(app).job(loop=True))

    sim = Simulation(machine)
    daemon = None
    if managed:
        daemon = FvsstDaemon(machine, DaemonConfig(), seed=4)
        daemon.attach(sim)

    def on_failure(t: float) -> None:
        remaining = bank.fail_supply(0)
        print(f"t={t:5.2f}s  *** PSU FAILED: capacity now {remaining:.0f} W, "
              f"deadline {PSU_CASCADE_DEADLINE_S:.1f} s ***")
        if daemon is not None:
            daemon.set_power_limit(remaining - NON_CPU_POWER_W, t)

    sim.at(T0, on_failure)

    timeline = [T0 - 0.5, T0 + 0.05, T0 + 0.5, T0 + PSU_CASCADE_DEADLINE_S,
                T0 + 2.0]
    for checkpoint in timeline:
        sim.run_until(checkpoint)
        power = machine.system_power_w()
        capacity = bank.capacity_w
        status = "OK" if power <= capacity else "OVERLOAD"
        if bank.all_failed:
            status = "DARK (cascade)"
        print(f"t={checkpoint:5.2f}s  system {power:6.1f} W / "
              f"capacity {capacity:6.1f} W   [{status}]")
        if bank.all_failed:
            break

    if bank.cascade_count:
        print(f"cascade failures: {bank.cascade_count}")
    elif managed:
        print("no cascade: fvsst brought the system under the surviving "
              "supply's capacity in time, slowing the memory-bound CPUs "
              "hardest and the CPU-bound ones least.")
        for core in machine.cores:
            print(f"  cpu{core.core_id} ({APPS[core.core_id]:6s}) at "
                  f"{core.frequency_setting_hz / 1e6:.0f} MHz")


def main() -> None:
    run_scenario(managed=True)
    run_scenario(managed=False)


if __name__ == "__main__":
    main()
