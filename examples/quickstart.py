#!/usr/bin/env python3
"""Quickstart: fvsst scheduling one machine through a power-budget drop.

Builds the paper's 4-way Power4+ p630, puts mcf (memory-bound) on CPU 3
with the other CPUs hot-idling, lets fvsst settle unconstrained, then drops
the processor budget to 294 W — the post-PSU-failure budget of the paper's
motivating example — and shows how the frequency vector responds.

Run:  python examples/quickstart.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    profile_by_name,
)


def show(machine: SMPMachine, label: str) -> None:
    freqs = [f"{f / 1e6:.0f} MHz" for f in machine.frequency_vector_hz()]
    print(f"{label:<34} {freqs}  CPU power {machine.cpu_power_w():.0f} W")


def main() -> None:
    machine = SMPMachine(MachineConfig(num_cores=4), seed=1)
    machine.assign(3, profile_by_name("mcf").job(body_repeats=2))

    daemon = FvsstDaemon(machine, DaemonConfig(), seed=2)
    sim = Simulation(machine)
    daemon.attach(sim)

    show(machine, "t=0 (startup, everything at max)")

    sim.run_for(1.0)
    show(machine, "t=1 s (unconstrained fvsst)")
    print("  -> mcf saturates near 650 MHz; the idle CPUs look CPU-bound")
    print("     because the Power4+ idles hot (Section 7.1).")

    daemon.set_power_limit(294.0, sim.now_s)
    show(machine, "t=1 s (294 W budget installed)")
    print("  -> the limit-change trigger reschedules immediately;")
    print(f"     predicted power {daemon.last_schedule.total_power_w:.0f} W "
          f"<= 294 W.")

    sim.run_for(4.0)
    show(machine, "t=5 s (steady state under budget)")

    residency = daemon.log.frequency_residency(0, 3)
    top = max(residency.items(), key=lambda kv: kv[1])
    print(f"\nmcf spent {top[1]:.0%} of scheduling intervals at "
          f"{top[0] / 1e6:.0f} MHz.")


if __name__ == "__main__":
    main()
