#!/usr/bin/env python3
"""A web server through a (compressed) diurnal load cycle.

Poisson request arrivals swing between 20/s and 140/s.  Three policies
serve the same stream:

* pinned at 1000 MHz (no management),
* utilization stepping (Demand Based Switching-style),
* fvsst with idle detection.

The chart shows why the counter-driven approach is interesting even on
demand-driven work: it saves a large share of energy while keeping the p95
latency of the unmanaged server, where pure utilization stepping trades
latency away.

Run:  python examples/web_server_diurnal.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    NoManagementGovernor,
    RequestSpec,
    ServerSource,
    SMPMachine,
    Simulation,
    UtilizationGovernor,
    diurnal_rate,
)
from repro.analysis import bar_chart
from repro.sim import CoreConfig, IdleStyle

PERIOD_S = 8.0
CYCLES = 3


def run(policy: str) -> dict[str, float]:
    machine = SMPMachine(MachineConfig(
        num_cores=1,
        core_config=CoreConfig(idle_style=IdleStyle.HALT),
    ), seed=21)
    sim = Simulation(machine)
    if policy == "none":
        NoManagementGovernor(machine).attach(sim)
    elif policy == "utilization":
        UtilizationGovernor(machine).attach(sim)
    else:
        FvsstDaemon(machine, DaemonConfig(idle_detection=True),
                    seed=22).attach(sim)
    source = ServerSource(
        machine, 0,
        rate_per_s=diurnal_rate(20.0, 140.0, PERIOD_S),
        max_rate_per_s=140.0,
        spec=RequestSpec(),
        rng=23,
    )
    source.attach(sim)
    sim.run_for(CYCLES * PERIOD_S)
    return {
        "energy_j": machine.ledger.energy_of("core0"),
        "p95_ms": source.latency_percentile_s(95) * 1e3,
        "served": source.completed,
    }


def main() -> None:
    results = {p: run(p) for p in ("none", "utilization", "fvsst")}
    base = results["none"]["energy_j"]

    print(f"{CYCLES} diurnal cycles, 20-140 req/s\n")
    print(f"{'policy':<12} {'energy':>8} {'p95 latency':>12} {'served':>8}")
    for policy, r in results.items():
        print(f"{policy:<12} {r['energy_j'] / base:>7.0%} "
              f"{r['p95_ms']:>10.2f}ms {r['served']:>8}")

    print()
    print(bar_chart(
        list(results),
        [r["energy_j"] / base for r in results.values()],
        title="CPU energy (fraction of the pinned server)", width=40,
    ))
    print()
    print(bar_chart(
        list(results),
        [r["p95_ms"] for r in results.values()],
        title="p95 request latency", width=40, unit="ms",
    ))
    print("\nfvsst keeps the unmanaged server's latency at roughly half "
          "its energy; utilization stepping saves more energy but lets "
          "latency balloon when load rises faster than it steps up.")


if __name__ == "__main__":
    main()
