#!/usr/bin/env python3
"""Every power-management policy on the same machine, same budget.

Four applications on the four CPUs, a 294 W processor budget, six
policies: no management (the reference), fvsst, uniform scaling, node
power-down, utilization stepping, and consolidation-by-migration.  Scored
on delivered throughput, power compliance, and (where applicable)
migration count — the whole argument of the paper in one chart.

Run:  python examples/policy_shootout.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    profile_by_name,
)
from repro.analysis import bar_chart
from repro.core import ConsolidationGovernor
from repro.experiments.common import make_governor
from repro.sim import CoreConfig

BUDGET_W = 294.0
DURATION_S = 8.0
APPS = ("gzip", "gap", "mcf", "health")
POLICIES = ("none", "fvsst", "uniform", "powerdown", "utilization",
            "consolidation")


def run(policy: str, seed: int) -> dict:
    machine = SMPMachine(MachineConfig(
        num_cores=4,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)
    for i, app in enumerate(APPS):
        machine.assign(i, profile_by_name(app).job(loop=True))
    sim = Simulation(machine)

    migrations = 0
    limit = None if policy == "none" else BUDGET_W
    if policy == "consolidation":
        governor = ConsolidationGovernor(machine, power_limit_w=limit)
    elif policy == "fvsst":
        governor = FvsstDaemon(machine, DaemonConfig(power_limit_w=limit),
                               seed=seed + 1)
    else:
        governor = make_governor(policy, machine, power_limit_w=limit,
                                 seed=seed + 1)
    governor.attach(sim)

    peaks = []
    sim.every(0.1, lambda t: peaks.append(machine.cpu_power_w()))
    sim.run_for(DURATION_S)
    if isinstance(governor, ConsolidationGovernor):
        migrations = governor.migrations
    return {
        "work": sum(c.counters.instructions for c in machine.cores),
        "peak_w": max(peaks[2:]),   # skip the startup transient
        "migrations": migrations,
    }


def main() -> None:
    results = {p: run(p, seed=31 + i) for i, p in enumerate(POLICIES)}
    reference = results["none"]["work"]

    print(f"four applications, {BUDGET_W:.0f} W processor budget, "
          f"{DURATION_S:.0f} s\n")
    print(f"{'policy':<14} {'throughput':>10} {'peak W':>8} "
          f"{'compliant':>10} {'migrations':>11}")
    for policy, r in results.items():
        compliant = ("n/a" if policy == "none"
                     else "yes" if r["peak_w"] <= BUDGET_W + 1e-6 else "NO")
        print(f"{policy:<14} {r['work'] / reference:>9.1%} "
              f"{r['peak_w']:>8.0f} {compliant:>10} "
              f"{r['migrations']:>11}")

    print()
    managed = [p for p in POLICIES if p != "none"]
    print(bar_chart(
        managed,
        [results[p]["work"] / reference for p in managed],
        title="throughput under the budget (fraction of unmanaged)",
        width=40,
    ))
    print("\nfvsst keeps the most throughput inside the budget because it "
          "slows saturated (memory-bound) processors where the watts are "
          "free — the paper's thesis.")


if __name__ == "__main__":
    main()
