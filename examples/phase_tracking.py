#!/usr/bin/env python3
"""Watching fvsst track program phases (the Figure 5 behaviour).

The two-phase synthetic benchmark alternates 1.5 s of CPU-bound work with
1.5 s of memory-bound pointer chasing.  fvsst samples counters every 10 ms
and reschedules every 100 ms; the script prints an ASCII strip chart of
measured IPC against the scheduled frequency.

Run:  python examples/phase_tracking.py
"""

from repro import (
    DaemonConfig,
    FvsstDaemon,
    MachineConfig,
    SMPMachine,
    Simulation,
    two_phase_benchmark,
)

PHASE_S = 1.5
RUN_S = 6.0


def bar(value: float, vmax: float, width: int = 30) -> str:
    filled = int(round(width * min(value / vmax, 1.0)))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    bench = two_phase_benchmark(0.95, 0.20, duration_a_s=PHASE_S,
                                duration_b_s=PHASE_S,
                                include_init_exit=False)
    machine = SMPMachine(MachineConfig(num_cores=1), seed=5)
    machine.assign(0, bench.job(loop=True))

    daemon = FvsstDaemon(machine, DaemonConfig(daemon_core=0), seed=6)
    sim = Simulation(machine)
    daemon.attach(sim)
    sim.run_for(RUN_S)

    times, ipc = daemon.log.ipc_series(0, 0)
    t_sched, freqs = daemon.log.frequency_series(0, 0)

    print(f"{'t (s)':>6}  {'IPC':>5}  {'IPC bar':<30}  "
          f"{'freq':>8}  frequency bar")
    sched = dict(zip(t_sched.round(3), freqs))
    current_f = machine.table.f_max_hz
    for t, v in zip(times, ipc):
        current_f = sched.get(round(float(t), 3), current_f)
        if int(round(t * 100)) % 10 != 0:   # print once per 100 ms
            continue
        print(f"{t:6.2f}  {v:5.2f}  {bar(v, 1.2)}  "
              f"{current_f / 1e6:6.0f}MHz  {bar(current_f, 1e9)}")

    print("\nfrequency follows the IPC square wave with ~one scheduling "
          "period of lag; power follows frequency (Figure 5).")


if __name__ == "__main__":
    main()
