"""Datacenter-scale chaos smoke: 1024 nodes, 256 shards, injected faults.

Runs the hierarchical control plane at the scale the flat coordinator was
built to escape — 256 four-node shards under one fleet budget — through
every fleet fault scenario (``partition``: a rack-row of uplinks cut;
``crash``: every 64th agent down; ``chaos``: loss + jitter + both) and
checks the resilience contract docs/RESILIENCE.md pins:

* the fleet pass never blocks on a sick shard (rebalances keep firing
  straight through the partition window);
* every shard's *intra-rack* control plane keeps scheduling even while
  its uplink is cut;
* shard health transitions are visible through telemetry (lost and
  recovered events, health gauges); and
* the pessimistic committed accounting never promises more than the
  fleet budget, no matter what the fabric drops.

This lives in benchmarks/ (not tier-1 tests/) because a 1024-node run
costs seconds; CI runs it as the chaos-hier job, one seed per matrix
entry selected with ``-k seed<N>``.

Each seed also asserts a wall-clock budget (``CHAOS_WALL_BUDGET_S``,
default 30 s): the fleet-wide columnar kernel advances all 1024 machines
in one numpy pass per event-free span, which took this run from ~2 min
per seed to ~3 s.  The budget keeps that property pinned — a change that
knocks these machines out of fleet residency blows it immediately, long
before it merely "feels slow".
"""

import os
import time

import pytest

from repro.cluster.coordinator import CoordinatorConfig
from repro.cluster.faults import fleet_fault_scenario
from repro.cluster.hierarchy import FleetAllocator, FleetConfig
from repro.sim.cluster import Cluster
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.fleet import fleet_stats
from repro.sim.machine import MachineConfig
from repro.telemetry import (
    EVENT_SHARD_LOST,
    EVENT_SHARD_RECOVERED,
    Telemetry,
)
from repro.workloads.tiers import tiered_cluster_assignment

NODES = 1024
PROCS = 1
SHARD_SIZE = 4
NUM_SHARDS = NODES // SHARD_SIZE
BUDGET_FRACTION = 0.7

SEEDS = [pytest.param(2005, id="seed2005"),
         pytest.param(7, id="seed7"),
         pytest.param(424242, id="seed424242")]
SCENARIOS = ["partition", "crash", "chaos"]

#: Per-run wall budget; override for unusually slow machines.
WALL_BUDGET_S = float(os.environ.get("CHAOS_WALL_BUDGET_S", "30"))


def _chaos_run(seed: int, scenario: str = "chaos"):
    cluster = Cluster.homogeneous(
        NODES,
        machine_config=MachineConfig(
            num_cores=PROCS,
            core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=seed)
    cluster.assign_all(tiered_cluster_assignment(
        NODES, PROCS, web_nodes=NODES // 4, app_nodes=NODES // 4))
    table = cluster.nodes[0].machine.table
    budget = BUDGET_FRACTION * NODES * PROCS * table.max_power_w
    faults = fleet_fault_scenario(scenario, num_nodes=NODES,
                                  shard_size=SHARD_SIZE, seed=seed + 101)
    telemetry = Telemetry()
    # Coarse periods: every jittered message delivery is its own event
    # time and the simulator advances all 1024 machines at each one, so
    # control traffic — not the schedule math — dominates the wall clock.
    allocator = FleetAllocator(
        cluster,
        CoordinatorConfig(power_limit_w=budget, counter_noise_sigma=0.0,
                          sample_period_s=0.1, schedule_period_s=0.2),
        fleet=FleetConfig(shard_size=SHARD_SIZE, rebalance_period_s=0.2,
                          staleness_bound_s=0.3),
        telemetry=telemetry, faults=faults, seed=seed + 1)
    sim = Simulation(cluster.machines)
    allocator.attach(sim)
    # The chaos windows live in [0.35, 0.9); run past the heal so the
    # partitioned shards can recover.
    sim.run_for(1.2)
    return allocator, telemetry, budget


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fleet_faults_1024_nodes(scenario, seed):
    stats0 = dict(fleet_stats)
    wall0 = time.perf_counter()
    allocator, telemetry, budget = _chaos_run(seed, scenario)
    wall = time.perf_counter() - wall0
    assert wall <= WALL_BUDGET_S, (
        f"chaos run took {wall:.1f}s (> {WALL_BUDGET_S:.0f}s): machines "
        f"likely fell out of fleet-kernel residency")
    assert allocator.num_shards == NUM_SHARDS

    # Residency gate: the wall budget above is the blunt instrument, this
    # is the precise one.  Nearly every machine-span must go through the
    # fleet columns; a change that silently demotes a machine class to
    # the per-machine path shows up here as a falling ratio.
    adv = fleet_stats["advances"] - stats0["advances"]
    fell = fleet_stats["fallbacks"] - stats0["fallbacks"]
    assert adv > 0
    residency = adv / (adv + fell)
    assert residency >= 0.90, (
        f"fleet residency {residency:.1%} ({adv} advances, {fell} "
        f"fallbacks): machine-spans are leaking to the scalar path")

    # The fleet pass never blocked: one rebalance per period, throughout.
    assert allocator.rebalances >= 5

    if scenario in ("partition", "chaos"):
        # The rack-row uplink partition actually bit, and telemetry saw
        # the transitions in *and out* of lost.
        assert telemetry.events.count(EVENT_SHARD_LOST) >= 1
        assert telemetry.events.count(EVENT_SHARD_RECOVERED) >= 1
        assert allocator.summaries_dropped > 0
    else:
        # A crashed agent takes out node reports inside its rack, never
        # the uplink: the fleet tier stays fully connected.
        assert telemetry.events.count(EVENT_SHARD_LOST) == 0

    # Post-heal, the fleet converged back.  Under chaos the 5% message
    # loss never stops, so a few shards can legitimately miss both
    # post-heal rebalance rounds (four try_send legs per round trip);
    # all but a thin tail must be back.
    lost_now = [sid for sid, state in allocator.shard_health.items()
                if state == "lost"]
    # partition keeps a 2% background loss after the heal, so give it a
    # (smaller) tail too; crash has a loss-free fabric: zero tolerance.
    tail = {"chaos": NUM_SHARDS // 32,
            "partition": NUM_SHARDS // 64,
            "crash": 0}[scenario]
    assert len(lost_now) <= tail, (
        f"{len(lost_now)} shards still lost after the heal: {lost_now}")

    # Every shard's intra-rack plane kept scheduling through the window
    # (the partition only cuts the uplink, never the rack) — including
    # the shards the allocator still counts as lost.
    for shard in allocator.shards:
        times = {e.time_s for e in shard.log.schedule_entries}
        assert times and max(times) > 0.9, (
            f"shard {shard.shard_id} stopped scheduling")

    # Budget safety: the committed watts never exceeded the fleet budget.
    assert allocator.max_committed_w <= budget + 1e-6
