"""Telemetry overhead benches: instrumented vs. null-backend daemon runs.

The tentpole contract is that the null backend costs (almost) nothing —
every hot-path probe is a single ``enabled`` attribute test — and that a
fully enabled backend (metrics + spans + events, no exporters) stays
under 5% of single-node daemon throughput.

The 5% assertion lives here rather than in tier-1 ``tests/`` because
wall-clock ratios on shared CI hardware are inherently jittery; the
bench uses min-of-repeats to suppress scheduler noise.
"""

from __future__ import annotations

import time

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.machine import MachineConfig, SMPMachine
from repro.telemetry import NullTelemetry, Telemetry
from repro.workloads.profiles import profile_by_name

SIM_SECONDS = 5.0
REPEATS = 5
APPS = ("mcf", "gzip", "gap", "health")


def _run_daemon(telemetry) -> None:
    machine = SMPMachine(
        MachineConfig(num_cores=4,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=0)
    for cpu, app in enumerate(APPS):
        machine.assign(cpu, profile_by_name(app).job(loop=True))
    daemon = FvsstDaemon(
        machine,
        DaemonConfig(counter_noise_sigma=0.0, power_limit_w=250.0,
                     overhead=OverheadModel(enabled=False)),
        telemetry=telemetry, seed=1)
    sim = Simulation(machine, telemetry=telemetry)
    daemon.attach(sim)
    sim.run_for(SIM_SECONDS)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestBenchTelemetryOverhead:
    def test_bench_null_backend(self, benchmark):
        benchmark.pedantic(lambda: _run_daemon(NullTelemetry()),
                           rounds=3, iterations=1)

    def test_bench_enabled_backend(self, benchmark):
        benchmark.pedantic(lambda: _run_daemon(Telemetry()),
                           rounds=3, iterations=1)

    def test_enabled_overhead_under_5_percent(self):
        """The issue's acceptance bound on instrumented throughput.

        Null and enabled runs are interleaved so clock-speed drift and
        cache-state changes over the measurement window hit both sides
        equally; min-of-repeats suppresses scheduler noise on top.
        """
        _run_daemon(NullTelemetry())  # warm-up
        null_s = enabled_s = float("inf")
        for _ in range(REPEATS):
            null_s = min(null_s, _timed(lambda: _run_daemon(NullTelemetry())))
            enabled_s = min(enabled_s,
                            _timed(lambda: _run_daemon(Telemetry())))
        overhead = enabled_s / null_s - 1.0
        assert overhead < 0.05, (
            f"enabled telemetry costs {overhead:.1%} "
            f"(null {null_s:.3f}s, enabled {enabled_s:.3f}s)")
