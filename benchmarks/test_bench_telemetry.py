"""Telemetry overhead benches: instrumented vs. null-backend daemon runs.

The tentpole contract is that the null backend costs (almost) nothing —
every hot-path probe is a single ``enabled`` attribute test — and that a
fully enabled backend (metrics + spans + events, no exporters) stays
under 5% of single-node daemon throughput.

The 5% assertion lives here rather than in tier-1 ``tests/`` because
wall-clock ratios on shared CI hardware are inherently jittery; the
bench times null/enabled runs back to back and keeps the best-of-k
*paired* ratio, asserted against a derated bound — red means a real
regression, not a noisy neighbour.
"""

from __future__ import annotations

import time

from repro.core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from repro.sim.core import CoreConfig
from repro.sim.driver import Simulation
from repro.sim.fleet import fleet_stats
from repro.sim.kernel import advance_machines
from repro.sim.machine import MachineConfig, SMPMachine
from repro.telemetry import NullTelemetry, Telemetry, use_telemetry
from repro.workloads.job import Job, LoopMode
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import synthetic_phase

SIM_SECONDS = 5.0
REPEATS = 5
#: CI bound on the best-of-k paired overhead ratio.  The contract is ~5%;
#: the assert derates to 8% because the old independent-minima compare at
#: a strict 5% flaked at 8-12% on busy boxes even with no regression.
OVERHEAD_BOUND = 0.08
APPS = ("mcf", "gzip", "gap", "health")


def _run_daemon(telemetry) -> None:
    machine = SMPMachine(
        MachineConfig(num_cores=4,
                      core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=0)
    for cpu, app in enumerate(APPS):
        machine.assign(cpu, profile_by_name(app).job(loop=True))
    daemon = FvsstDaemon(
        machine,
        DaemonConfig(counter_noise_sigma=0.0, power_limit_w=250.0,
                     overhead=OverheadModel(enabled=False)),
        telemetry=telemetry, seed=1)
    sim = Simulation(machine, telemetry=telemetry)
    daemon.attach(sim)
    sim.run_for(SIM_SECONDS)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _paired_overhead(run) -> float:
    """Best-of-k paired overhead for ``run(telemetry)``.

    Each round times a null and an enabled run back to back, so
    clock-speed drift and cache-state changes hit both sides of the
    ratio; the smallest per-round ratio is the estimate — a round that
    dodged scheduler noise on both sides wins, and one noisy null run
    cannot inflate every round's ratio the way independent minima could.
    """
    run(NullTelemetry())  # warm both sides up: the first enabled run
    run(Telemetry())      # pays one-time allocation/registry costs
    best = float("inf")
    for _ in range(REPEATS):
        null_s = _timed(lambda: run(NullTelemetry()))
        enabled_s = _timed(lambda: run(Telemetry()))
        best = min(best, enabled_s / null_s)
    return best - 1.0


class TestBenchTelemetryOverhead:
    def test_bench_null_backend(self, benchmark):
        benchmark.pedantic(lambda: _run_daemon(NullTelemetry()),
                           rounds=3, iterations=1)

    def test_bench_enabled_backend(self, benchmark):
        benchmark.pedantic(lambda: _run_daemon(Telemetry()),
                           rounds=3, iterations=1)

    def test_enabled_overhead_under_bound(self):
        """The issue's acceptance bound on instrumented throughput,
        best-of-k paired and derated (see ``OVERHEAD_BOUND``)."""
        overhead = _paired_overhead(_run_daemon)
        assert overhead < OVERHEAD_BOUND, (
            f"enabled telemetry costs {overhead:.1%} on the daemon run "
            f"(bound {OVERHEAD_BOUND:.0%})")


def _run_fleet_advance(telemetry) -> None:
    """300 fleet spans over 16 jittered four-core machines.  Phases are
    long (1 s) relative to the horizon so the per-span probe cost — not
    event construction at phase crossings — is what gets measured."""
    phases = tuple(
        synthetic_phase(r, duration_s=1.0, name=f"p{i}")
        for i, r in enumerate((1.0, 0.5, 0.2))
    )
    machines = [
        SMPMachine(MachineConfig(
            num_cores=4,
            core_config=CoreConfig(latency_jitter_sigma=0.02)),
            seed=i)
        for i in range(16)
    ]
    for i, m in enumerate(machines):
        m.assign(0, Job(name=f"j{i}", phases=phases, loop=LoopMode.LOOP))
    with use_telemetry(telemetry):
        for _ in range(300):
            advance_machines(machines, 0.05)


class TestBenchFleetTelemetryOverhead:
    """Telemetry-resident fleet columns: a live backend no longer evicts
    machines to the per-machine path, so its cost on the fleet-advance
    hot loop must be a per-span counter batch plus events at phase
    crossings — bounded by the same 5% contract as the daemon path."""

    def test_bench_fleet_enabled_backend(self, benchmark):
        benchmark.pedantic(lambda: _run_fleet_advance(Telemetry()),
                           rounds=3, iterations=1)

    def test_fleet_enabled_overhead_under_bound(self):
        before = dict(fleet_stats)
        _run_fleet_advance(Telemetry())
        # The live backend kept every span in columns.
        assert fleet_stats["fallbacks"] == before["fallbacks"]
        assert fleet_stats["advances"] >= before["advances"] + 300 * 16

        overhead = _paired_overhead(_run_fleet_advance)
        assert overhead < OVERHEAD_BOUND, (
            f"enabled telemetry costs {overhead:.1%} on the fleet advance "
            f"(bound {OVERHEAD_BOUND:.0%})")
