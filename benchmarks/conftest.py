"""Benchmark configuration.

Every paper artifact has one bench that regenerates it (fast mode) through
``pytest-benchmark``, so ``pytest benchmarks/ --benchmark-only`` both times
the harness and re-checks the headline shapes.  Micro-benches cover the hot
paths (scheduler pass, simulator advance, predictor).
"""

import sys
from pathlib import Path

# Make `benchmarks.*` helpers importable when pytest rootdir differs.
sys.path.insert(0, str(Path(__file__).resolve().parent))
