"""Micro-benchmarks of the hot paths.

These time the components the fvsst daemon exercises every period — the
scheduling pass, the analytic core advance, counter sampling, prediction —
so regressions in the inner loops are visible independent of the
experiment-level benches.
"""

import numpy as np

from repro.core.predictor import CounterPredictor
from repro.core.scheduler import FrequencyVoltageScheduler, ProcessorView
from repro.model.ipc import WorkloadSignature
from repro.model.latency import POWER4_LATENCIES
from repro.power.supply import SupplyBank
from repro.power.table import POWER4_TABLE
from repro.sim.core import CoreConfig, SimulatedCore
from repro.sim.counters import CounterReader, CounterSample
from repro.sim.machine import MachineConfig, SMPMachine
from repro.units import ghz
from repro.workloads.job import Job, LoopMode
from repro.workloads.synthetic import synthetic_phase


def _views(n: int) -> list[ProcessorView]:
    rng = np.random.default_rng(0)
    views = []
    for i in range(n):
        ratio = float(np.exp(rng.uniform(np.log(0.05), np.log(10.0))))
        views.append(ProcessorView(
            node_id=i // 4, proc_id=i % 4,
            signature=WorkloadSignature(
                core_cpi=0.65,
                mem_time_per_instr_s=0.65 / ratio / ghz(1.0)),
        ))
    return views


class TestBenchScheduler:
    def test_bench_schedule_4_procs(self, benchmark):
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        views = _views(4)
        schedule = benchmark(lambda: sched.schedule(views,
                                                    power_limit_w=294.0))
        assert schedule.total_power_w <= 294.0

    def test_bench_schedule_256_procs(self, benchmark):
        """Cluster-scale pass: 64 nodes x 4 processors."""
        sched = FrequencyVoltageScheduler(POWER4_TABLE)
        views = _views(256)
        budget = 256 * 75.0
        schedule = benchmark(lambda: sched.schedule(views,
                                                    power_limit_w=budget))
        assert schedule.total_power_w <= budget


class TestBenchSimulatorAdvance:
    def _core(self) -> SimulatedCore:
        core = SimulatedCore(0, initial_freq_hz=ghz(1.0),
                             config=CoreConfig(latency_jitter_sigma=0.02),
                             rng=1)
        phases = tuple(
            synthetic_phase(r, duration_s=0.05, name=f"p{i}")
            for i, r in enumerate((1.0, 0.5, 0.2))
        )
        core.add_job(Job(name="j", phases=phases, loop=LoopMode.LOOP))
        return core

    def test_bench_advance_one_second(self, benchmark):
        core = self._core()
        state = {"t": 0.0}

        def advance():
            core.advance(state["t"], 1.0)
            state["t"] += 1.0

        benchmark(advance)
        assert core.counters.instructions > 0

    def test_bench_advance_16_nodes_100s(self, benchmark):
        """Cluster-scale span advance through the fleet columns: 16
        four-core machines with supply banks and latency jitter, one
        looping job plus three hot-idle cores each, 100 s of simulated
        time per round (10 000 supply-observation chunks per machine).

        Banked and jittered machines stay *resident* since the widened
        fleet kernel: the supply span is planned once per machine and
        chunk-walked inside the columns, and jitter draws come from the
        block-refilled lane buffers.  The bench asserts full residency
        and that the fleet path beats the scalar per-chunk walk (the
        pre-kernel path, forced via a subclass) by >= 4x."""
        import time as _time

        from repro.sim.fleet import fleet_stats
        from repro.sim.kernel import advance_machines

        phases = tuple(
            synthetic_phase(r, duration_s=0.05, name=f"p{i}")
            for i, r in enumerate((1.0, 0.5, 0.2))
        )

        def build(cls=SMPMachine):
            ms = [
                cls(MachineConfig(
                    num_cores=4,
                    core_config=CoreConfig(latency_jitter_sigma=0.02)),
                    supply_bank=SupplyBank.example_p630(
                        raise_on_cascade=False),
                    seed=i)
                for i in range(16)
            ]
            for i, m in enumerate(ms):
                m.assign(0, Job(name=f"j{i}", phases=phases,
                                loop=LoopMode.LOOP))
            return ms

        machines = build()
        before = dict(fleet_stats)

        def advance_all():
            advance_machines(machines, 100.0)

        benchmark(advance_all)
        # Every span kept every machine in columns: no fallbacks.
        assert fleet_stats["fallbacks"] == before["fallbacks"]
        assert fleet_stats["advances"] >= before["advances"] + 16
        # Demand (746 W) stays under two-supply capacity: no cascades.
        assert all(m.supply_bank.cascade_count == 0 for m in machines)
        assert machines[0].ledger.total_energy_j > 0

        # The >= 4x acceptance vs the scalar per-chunk walk, measured on
        # a shorter horizon.  Subclassing _advance_to defeats both the
        # machine-span kernel and fleet residency, which is exactly the
        # pre-kernel path.
        class ScalarForced(SMPMachine):
            def _advance_to(self, t_end):
                super()._advance_to(t_end)

        fleet_s = scalar_s = float("inf")
        for _ in range(2):
            ms = build()
            t0 = _time.perf_counter()
            advance_machines(ms, 5.0)
            fleet_s = min(fleet_s, _time.perf_counter() - t0)
            ms = build(ScalarForced)
            t0 = _time.perf_counter()
            advance_machines(ms, 5.0)
            scalar_s = min(scalar_s, _time.perf_counter() - t0)
        speedup = scalar_s / fleet_s
        assert speedup >= 4.0, (
            f"fleet span advance {fleet_s * 1e3:.1f} ms vs scalar "
            f"per-chunk walk {scalar_s * 1e3:.1f} ms: only {speedup:.1f}x"
        )

    def test_bench_serving_advance(self, benchmark):
        """Open-loop serving at fleet-kernel cost: 16 eight-core nodes
        under constant Poisson traffic for 100 simulated seconds.  Every
        request is a ONCE job; since completion became a columnar
        crossing the lanes stay resident through arrival, completion, and
        the drain back to hot idle — the bench asserts *zero* fallbacks
        (``reason="transient"`` included) and >= 5x over the forced-scalar
        path (``--no-fleet-kernel``) on a shorter horizon."""
        import time as _time

        from repro.sim.cluster import Cluster
        from repro.sim.driver import Simulation
        from repro.sim.fleet import fallback_breakdown, fleet_stats
        from repro.sim.kernel import set_fleet_enabled
        from repro.workloads.server import RequestSpec
        from repro.workloads.serving import FleetTrafficSource

        def build():
            cluster = Cluster.homogeneous(
                16,
                machine_config=MachineConfig(
                    num_cores=8,
                    core_config=CoreConfig(latency_jitter_sigma=0.02)),
                seed=3)
            sim = Simulation(cluster.machines)
            traffic = FleetTrafficSource(
                cluster, rate_per_s=lambda t: 128.0, max_rate_per_s=128.0,
                spec=RequestSpec(instructions=2e7), seed=41)
            traffic.attach(sim)
            return sim, traffic

        state = {}

        def serve_100s():
            sim, traffic = build()
            sim.run_for(100.0)
            state["traffic"] = traffic

        before = dict(fleet_stats)
        transient_before = fallback_breakdown().get("transient", 0)
        benchmark(serve_100s)
        traffic = state["traffic"]
        assert traffic.issued > 10_000
        assert traffic.completed > 10_000
        # Resident serving lanes: no fallbacks of any reason, and in
        # particular no "transient" ones (the pre-crossing ONCE reason).
        assert fleet_stats["fallbacks"] == before["fallbacks"]
        assert fallback_breakdown().get("transient", 0) == transient_before
        assert fleet_stats["advances"] > before["advances"]

        # The >= 5x acceptance vs the forced-scalar path, min-of-2 on a
        # 10 s horizon (same traffic, same seeds, bit-identical results).
        fleet_s = scalar_s = float("inf")
        for _ in range(2):
            sim, _ = build()
            t0 = _time.perf_counter()
            sim.run_for(10.0)
            fleet_s = min(fleet_s, _time.perf_counter() - t0)
            set_fleet_enabled(False)
            try:
                sim, _ = build()
                t0 = _time.perf_counter()
                sim.run_for(10.0)
                scalar_s = min(scalar_s, _time.perf_counter() - t0)
            finally:
                set_fleet_enabled(True)
        speedup = scalar_s / fleet_s
        assert speedup >= 5.0, (
            f"fleet serving advance {fleet_s * 1e3:.1f} ms vs forced "
            f"scalar {scalar_s * 1e3:.1f} ms: only {speedup:.1f}x"
        )

    def test_bench_advance_1024_nodes_10s(self, benchmark):
        """Fleet-scale span advance: 1024 bankless single-core machines
        driven through the event loop with a 10 ms periodic tick — the
        chaos-smoke access pattern.  Every span goes through the fleet
        columns (one numpy pass over all 1024 lanes), which is the layer-6
        win; disabling the fleet kernel makes this bench ~2 orders of
        magnitude slower."""
        from repro.sim.driver import Simulation

        phases = tuple(
            synthetic_phase(r, duration_s=0.05, name=f"p{i}")
            for i, r in enumerate((1.0, 0.5, 0.2))
        )
        machines = [
            SMPMachine(MachineConfig(
                num_cores=1,
                core_config=CoreConfig(latency_jitter_sigma=0.0)),
                seed=i)
            for i in range(1024)
        ]
        for i, m in enumerate(machines):
            if i % 2 == 0:
                m.assign(0, Job(name=f"j{i}", phases=phases,
                                loop=LoopMode.LOOP))
        sim = Simulation(machines)
        sim.every(0.010, lambda t: None)

        def advance_all():
            sim.run_for(10.0)

        benchmark(advance_all)
        assert machines[0].cores[0].counters.instructions > 0


class TestBenchCounterPath:
    def test_bench_counter_sampling(self, benchmark):
        core = SimulatedCore(0, initial_freq_hz=ghz(1.0),
                             config=CoreConfig(latency_jitter_sigma=0.0),
                             rng=2)
        core.add_job(Job(name="j",
                         phases=(synthetic_phase(0.5, duration_s=10.0),),
                         loop=LoopMode.LOOP))
        reader = CounterReader(core.counters, noise_sigma=0.005, rng=3)
        state = {"t": 0.0}

        def sample_tick():
            core.advance(state["t"], 0.01)
            state["t"] += 0.01
            return reader.sample(state["t"])

        sample = benchmark(sample_tick)
        assert sample.interval_s > 0

    def test_bench_prediction(self, benchmark):
        predictor = CounterPredictor(POWER4_LATENCIES)
        sample = CounterSample(
            time_s=0.1, interval_s=0.1, instructions=5e7, cycles=1e8,
            n_l2=2e5, n_l3=5e4, n_mem=3e5, l1_stall_cycles=5e6,
            halted_cycles=0.0,
        )
        freqs = POWER4_TABLE.freqs_array()

        def predict_all():
            sig = predictor.signature_from_sample(sample)
            return sig.ipc_array(freqs)

        ipcs = benchmark(predict_all)
        assert len(ipcs) == 16


class TestBenchSinglePassScheduler:
    def test_bench_single_pass_256_procs(self, benchmark):
        """The heap-based single-pass variant at cluster scale."""
        from repro.core.singlepass import SinglePassScheduler
        sched = SinglePassScheduler(POWER4_TABLE)
        views = _views(256)
        budget = 256 * 75.0
        schedule = benchmark(lambda: sched.schedule(views,
                                                    power_limit_w=budget))
        assert schedule.total_power_w <= budget


def _node_reports(nodes: int, procs: int, seed: int = 17, start: int = 0):
    from repro.cluster.protocol import NodeReport, ProcReport
    rng = np.random.default_rng(seed)
    reports = []
    for n in range(start, start + nodes):
        prs = []
        for p in range(procs):
            instr = float(rng.uniform(5e5, 5e6))
            prs.append(ProcReport(
                proc_id=p, instructions=instr,
                cycles=instr * float(rng.uniform(0.8, 2.5)),
                n_l2=float(rng.uniform(0.0, 2e4)),
                n_l3=float(rng.uniform(0.0, 8e3)),
                n_mem=float(rng.uniform(0.0, 4e3)),
                l1_stall_cycles=float(rng.uniform(0.0, 1e5)),
                halted_cycles=0.0, interval_s=0.1, idle_signaled=False))
        reports.append(NodeReport(node_id=n, time_s=0.1, procs=tuple(prs)))
    return reports


def _coordinator(columnar: bool):
    from repro.cluster.coordinator import ClusterCoordinator, CoordinatorConfig
    from repro.sim.cluster import Cluster
    from repro.sim.core import CoreConfig
    from repro.sim.machine import MachineConfig
    cluster = Cluster.homogeneous(
        1,
        machine_config=MachineConfig(
            num_cores=1, core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=1)
    return ClusterCoordinator(
        cluster, CoordinatorConfig(power_limit_w=None, columnar=columnar),
        seed=2)


class TestBenchClusterPass:
    """The coordinator's global-pass hot path (views -> schedule -> record)
    at 64 nodes x 4 processors, columnar vs the per-object reference."""

    def _run(self, benchmark, columnar: bool):
        from repro.core.logs import FvsstLog
        coord = _coordinator(columnar)
        reports = _node_reports(64, 4)

        def one_pass():
            coord.log = FvsstLog()
            if columnar:
                views = coord._view_batch_from_reports(reports)
            else:
                views = coord._views_from_reports(reports)
            schedule = coord.scheduler.schedule(views, None,
                                                on_infeasible="floor")
            coord._record(schedule, 0.1)
            return schedule

        schedule = benchmark(one_pass)
        assert len(schedule.assignments) == 256

    def test_bench_cluster_pass_64x4_columnar(self, benchmark):
        self._run(benchmark, columnar=True)

    def test_bench_cluster_pass_64x4_object(self, benchmark):
        self._run(benchmark, columnar=False)


class TestBenchHierarchicalPass:
    """One full hierarchical round at datacenter scale: 1024 nodes in 256
    four-node shards (4096 processors).  Per shard: columnar views from
    the rack's reports -> Figure 3 pass against the delegated budget ->
    record -> summary ladder; then one fleet water-fill over all 256
    ladders.  The fleet tier itself touches O(shards x rungs) floats, so
    the round should cost ~256x the 4-node shard pass plus noise."""

    def test_bench_hier_round_1024_nodes(self, benchmark):
        from repro.cluster.coordinator import ClusterCoordinator, \
            CoordinatorConfig
        from repro.cluster.hierarchy import FleetAllocator, FleetConfig, \
            water_fill_budgets
        from repro.core.logs import FvsstLog
        from repro.sim.cluster import Cluster
        from repro.sim.core import CoreConfig
        from repro.sim.machine import MachineConfig

        nodes, procs, shard_size = 1024, 4, 4
        budget = nodes * procs * 75.0
        cluster = Cluster.homogeneous(
            nodes,
            machine_config=MachineConfig(
                num_cores=procs,
                core_config=CoreConfig(latency_jitter_sigma=0.0)),
            seed=1)
        alloc = FleetAllocator(
            cluster, CoordinatorConfig(power_limit_w=budget, columnar=True),
            fleet=FleetConfig(shard_size=shard_size), seed=2)
        shard_reports = [
            _node_reports(shard_size, procs, seed=17 + i,
                          start=i * shard_size)
            for i in range(alloc.num_shards)
        ]

        def one_round():
            ladders = []
            for shard, reports in zip(alloc.shards, shard_reports):
                shard.log = FvsstLog()
                views = shard._view_batch_from_reports(reports)
                schedule = shard.scheduler.schedule(
                    views, shard.power_limit_w, on_infeasible="floor")
                shard._record(schedule, 0.1)
                shard.last_schedule = schedule
                ladders.append(shard.make_summary(0.1).capped_demand_w)
            return water_fill_budgets(np.asarray(ladders), budget)

        budgets, infeasible = benchmark(one_round)
        assert len(budgets) == 256 and not infeasible
        assert float(budgets.sum()) <= budget + 1e-6


class TestBenchLogQueries:
    """Vectorised query paths of the columnar scheduling log."""

    def _populated_log(self, passes: int = 200, procs: int = 256):
        from repro.core.logs import FvsstLog
        rng = np.random.default_rng(5)
        log = FvsstLog()
        node_ids = [i // 4 for i in range(procs)]
        proc_ids = [i % 4 for i in range(procs)]
        freqs = POWER4_TABLE.freqs_hz
        for k in range(passes):
            f = [freqs[int(r)] for r in rng.integers(0, len(freqs), procs)]
            log.record_schedule_pass(
                0.1 * (k + 1), node_ids, proc_ids, f, f,
                [1.1] * procs, [70.0] * procs, [0.01] * procs,
                power_limit_w=None, infeasible=False)
        return log

    def test_bench_power_series(self, benchmark):
        log = self._populated_log()
        times, power = benchmark(log.power_series)
        assert len(times) == 200

    def test_bench_frequency_residency(self, benchmark):
        log = self._populated_log()
        residency = benchmark(log.frequency_residency, node_id=0, proc_id=0)
        assert abs(sum(residency.values()) - 1.0) < 1e-9
