"""Compare a fresh pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/compare_baseline.py BASELINE.json CURRENT.json \
        [--max-ratio 3.0] [--max-ratio-for NAME=RATIO ...]

Exits non-zero when any benchmark present in both files regressed by more
than ``--max-ratio`` on mean time.  ``--max-ratio-for`` overrides the
threshold for one benchmark (repeatable) — microsecond-scale benches on
shared CI runners need more headroom than millisecond ones.  Benchmarks
missing from either side are reported but never fail the check (machines
differ; new benches have no history yet).  ``make bench-save`` /
``make bench-compare`` wrap this.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _means(path: Path) -> dict[str, float]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark JSON {path}: {exc}")
    return {b["name"]: float(b["stats"]["mean"])
            for b in data.get("benchmarks", [])}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when current mean exceeds baseline mean "
                             "by more than this factor (default 3.0)")
    parser.add_argument("--max-ratio-for", action="append", default=[],
                        metavar="NAME=RATIO",
                        help="per-benchmark threshold override "
                             "(repeatable)")
    args = parser.parse_args(argv)
    overrides: dict[str, float] = {}
    for spec in args.max_ratio_for:
        name, sep, value = spec.partition("=")
        if not sep:
            sys.exit(f"error: --max-ratio-for expects NAME=RATIO, "
                     f"got {spec!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            sys.exit(f"error: bad ratio in --max-ratio-for {spec!r}")

    baseline = _means(args.baseline)
    current = _means(args.current)
    failures = []
    width = max((len(n) for n in current), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'(new)':>12}  {mean:>12.3e}      -")
            continue
        ratio = mean / base if base > 0 else float("inf")
        limit = overrides.get(name, args.max_ratio)
        flag = ""
        if ratio > limit:
            failures.append((name, ratio))
            flag = f"  REGRESSION (>{limit:g}x)"
        print(f"{name:<{width}}  {base:>12.3e}  {mean:>12.3e}  "
              f"{ratio:5.2f}{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  {baseline[name]:>12.3e}  {'(absent)':>12}"
              f"      -")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond their "
              f"threshold vs the baseline mean.")
        return 1
    print("\nno regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
