"""Benches for the worked example, failover scenario, cluster extension
and ablations."""

from repro.experiments import run_experiment


def _once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


class TestBenchWorkedExample:
    def test_bench_worked_example(self, benchmark):
        result = benchmark(lambda: run_experiment("worked_example"))
        assert result.scalars["t0_total_power_w"] == 289.0
        assert result.scalars["t1_total_power_w"] == 282.0


class TestBenchFailover:
    def test_bench_failover(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("failover", fast=True))
        assert result.scalars["fvsst_response_s"] < result.scalars[
            "deadline_s"]


class TestBenchCluster:
    def test_bench_cluster_cap(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("cluster_cap", fast=True))
        assert (result.scalars["fvsst_norm_throughput"]
                > result.scalars["uniform_norm_throughput"])


class TestBenchAblations:
    def test_bench_ablation_epsilon(self, benchmark):
        result = _once(
            benchmark, lambda: run_experiment("ablation_epsilon", fast=True))
        energy = result.tables[0].column("norm_energy")
        assert energy[0] > energy[-1]

    def test_bench_ablation_period(self, benchmark):
        result = _once(
            benchmark, lambda: run_experiment("ablation_period", fast=True))
        overhead = result.tables[0].column("overhead_fraction")
        assert overhead[0] >= overhead[-1]

    def test_bench_ablation_predictor(self, benchmark):
        result = benchmark(lambda: run_experiment("ablation_predictor"))
        assert all(result.tables[0].column("covers_latency_variation"))

    def test_bench_ablation_policies(self, benchmark):
        result = _once(
            benchmark, lambda: run_experiment("ablation_policies", fast=True))
        rows = {row[0]: row[1] for row in result.tables[0].rows}
        assert rows["fvsst"] >= max(rows["uniform"], rows["powerdown"])


class TestBenchExtensions:
    def test_bench_thermal(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("thermal", fast=True))
        assert result.scalars["managed_peak_c"] <= 95.0

    def test_bench_server_demand(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("server_demand", fast=True))
        assert result.scalars["fvsst_norm_energy"] < 0.8

    def test_bench_ablation_daemon(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("ablation_daemon", fast=True))
        assert result.scalars["multi_impact"] <= result.scalars[
            "single_impact"] + 1e-3

    def test_bench_masking(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("masking", fast=True))
        assert result.scalars["victim_loss_crowded"] > \
            result.scalars["victim_loss_alone"]

    def test_bench_variation(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("variation", fast=True))
        assert result.scalars["aware_violation_fraction"] == 0.0

    def test_bench_sensitivity_latency(self, benchmark):
        result = _once(
            benchmark,
            lambda: run_experiment("sensitivity_latency", fast=True))
        assert len(result.tables[0].rows) == 5

    def test_bench_migration(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("migration", fast=True))
        assert result.scalars["advantage@294"] > 1.4

    def test_bench_server_ablation_daemon_design(self, benchmark):
        result = _once(
            benchmark,
            lambda: run_experiment("sensitivity_noise", fast=True))
        assert len(result.tables[0].rows) == 5

    def test_bench_cluster_failover(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("cluster_failover", fast=True))
        assert result.scalars["nested_sick_node_w"] <= 100.0

    def test_bench_response_time(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("response_time", fast=True))
        assert result.scalars["trigger_response_s"] < 0.05
