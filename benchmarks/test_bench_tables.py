"""Benches regenerating the paper's three tables."""

import pytest

from repro.experiments import run_experiment


class TestBenchTable1:
    def test_bench_table1(self, benchmark):
        result = benchmark(lambda: run_experiment("table1"))
        table = result.tables[0]
        assert table.column("Power (W)")[0] == 9.0
        assert table.column("Power (W)")[-1] == 140.0


class TestBenchTable2:
    def test_bench_table2(self, benchmark):
        benchmark.group = "table2"
        result = benchmark.pedantic(
            lambda: run_experiment("table2", fast=True),
            rounds=1, iterations=1,
        )
        starred = result.tables[0].column("CPU3*")
        assert all(v < 0.05 for v in starred)


class TestBenchTable3:
    def test_bench_table3(self, benchmark):
        benchmark.group = "table3"
        result = benchmark.pedantic(
            lambda: run_experiment("table3", fast=True),
            rounds=1, iterations=1,
        )
        rows = {row[0]: dict(zip(result.tables[0].headers[1:], row[1:]))
                for row in result.tables[0].rows}
        assert rows["Perf @ 35W"]["mcf"] > rows["Perf @ 35W"]["gzip"]
        assert rows["Energy @ 140W"]["mcf"] < 0.65
