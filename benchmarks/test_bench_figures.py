"""Benches regenerating every figure of the evaluation section."""

from repro.experiments import run_experiment


def _once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


class TestBenchFig1:
    def test_bench_fig1(self, benchmark):
        result = benchmark(lambda: run_experiment("fig1"))
        idx = result.series[0].x.index(500)
        assert result.series[0].y("cpu=0%")[idx] > 0.95


class TestBenchFig4:
    def test_bench_fig4(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig4", fast=True))
        assert result.scalars["max_impact_fraction"] < 0.08


class TestBenchFig5:
    def test_bench_fig5(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig5", fast=True))
        assert (result.scalars["mean_freq_high_ipc_mhz"]
                > result.scalars["mean_freq_low_ipc_mhz"])


class TestBenchFig6:
    def test_bench_fig6(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig6", fast=True))
        assert result.scalars["mem_phase_at_min_cap"] > 0.95


class TestBenchFig7:
    def test_bench_fig7(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig7", fast=True))
        p100 = result.series[0].y("phase100_normalised")
        assert p100[2] < p100[1] < p100[0]


class TestBenchFig8:
    def test_bench_fig8(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig8", fast=True))
        assert result.scalars["mcf@1000_modal_mhz"] == 650


class TestBenchFig9And10:
    def test_bench_fig9(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig9", fast=True))
        assert result.scalars["max_actual_mhz"] <= 750

    def test_bench_fig10(self, benchmark):
        result = _once(benchmark,
                       lambda: run_experiment("fig10", fast=True))
        assert result.scalars["max_actual_mhz"] <= 750
