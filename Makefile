# Canonical developer commands for the fvsst reproduction.

.PHONY: install test bench bench-save bench-sim bench-fleet bench-hier \
	bench-compare chaos-hier experiments validate examples all

BENCH_BASELINE := benchmarks/BENCH_hotpaths.json
BENCH_CURRENT  := .bench_current.json

install:
	pip install -e '.[dev]' --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulation-layer benches only: the batched advance kernel's hot paths
# (core slice loop, cluster-scale machine spans, counter sampling).
bench-sim:
	pytest benchmarks/test_bench_hotpaths.py --benchmark-only \
		-k "advance or counter"

# The fleet-wide columnar kernel's hot path only: 1024 bankless machines
# through the event loop, every span one numpy pass over all lanes.
bench-fleet:
	pytest benchmarks/test_bench_hotpaths.py --benchmark-only \
		-k advance_1024_nodes

# The hierarchical control plane's hot path only: one full fleet round
# (256 shard passes + water-fill) over 1024 nodes.
bench-hier:
	pytest benchmarks/test_bench_hotpaths.py --benchmark-only -k hier

# Datacenter-scale chaos smoke: 1024 nodes / 256 shards through the
# partition/crash/chaos fleet fault scenarios, three seeds.  Costs a few
# minutes per seed; CI runs one seed per matrix entry (-k seed2005 etc.).
chaos-hier:
	pytest benchmarks/test_chaos_hier.py

# Refresh the committed hot-path baseline (do this on the reference
# machine after an intentional perf change, and commit the JSON).
bench-save:
	pytest benchmarks/test_bench_hotpaths.py --benchmark-only \
		--benchmark-json=$(BENCH_BASELINE)

# Re-run the hot-path benches and fail on >3x mean regression vs the
# committed baseline (same check CI's bench-smoke job runs).
bench-compare:
	pytest benchmarks/test_bench_hotpaths.py --benchmark-only \
		--benchmark-json=$(BENCH_CURRENT)
	python benchmarks/compare_baseline.py $(BENCH_BASELINE) \
		$(BENCH_CURRENT) --max-ratio 3.0 \
		--max-ratio-for test_bench_frequency_residency=5.0 \
		--max-ratio-for test_bench_power_series=5.0 \
		--max-ratio-for test_bench_hier_round_1024_nodes=5.0 \
		--max-ratio-for test_bench_advance_1024_nodes_10s=5.0 \
		--max-ratio-for test_bench_advance_16_nodes_100s=2.0 \
		--max-ratio-for test_bench_serving_advance=5.0

experiments:
	fvsst run all

validate:
	fvsst validate

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench validate
