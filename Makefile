# Canonical developer commands for the fvsst reproduction.

.PHONY: install test bench experiments validate examples all

install:
	pip install -e '.[dev]' --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	fvsst run all

validate:
	fvsst validate

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench validate
