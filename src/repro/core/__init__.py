"""fvsst — the frequency and voltage scheduler (the paper's contribution).

* :mod:`~repro.core.predictor` — counter-driven IPC prediction.
* :mod:`~repro.core.scheduler` — the Figure 3 three-step algorithm.
* :mod:`~repro.core.continuous` — the ``f_ideal`` continuous variant.
* :mod:`~repro.core.voltage` — minimum-voltage assignment (step 3).
* :mod:`~repro.core.triggers` — the three scheduling triggers of Section 5.
* :mod:`~repro.core.logs` — scheduling and counter logs (Section 6).
* :mod:`~repro.core.daemon` — the fvsst daemon tying it all together.
* :mod:`~repro.core.governor` — common governor interface.
* :mod:`~repro.core.baselines` — comparison policies (no management,
  uniform scaling, node power-down, utilization-driven, static oracle).
"""

from .predictor import (
    CounterPredictor,
    AlphaPredictor,
    PredictorProtocol,
    SignatureArrays,
)
from .scheduler import (
    ProcessorView,
    ViewBatch,
    ProcessorAssignment,
    Schedule,
    FrequencyVoltageScheduler,
)
from .continuous import ContinuousFrequencyScheduler
from .singlepass import SinglePassScheduler
from .hetero import HeterogeneousScheduler
from .consolidation import ConsolidationGovernor
from .voltage import VoltageSelector, default_vf_curve
from .triggers import TriggerBus, PowerLimitChange, IdleTransition
from .logs import ScheduleLogEntry, CounterLogEntry, FvsstLog
from .daemon import FvsstDaemon, DaemonConfig, OverheadModel
from .daemon_mt import MultithreadedFvsstDaemon, MultithreadOverheadModel
from .governor import Governor
from .baselines import (
    NoManagementGovernor,
    UniformScalingGovernor,
    PowerDownGovernor,
    UtilizationGovernor,
    StaticOracleGovernor,
    uniform_cap_frequency,
)

__all__ = [
    "CounterPredictor",
    "AlphaPredictor",
    "PredictorProtocol",
    "SignatureArrays",
    "ProcessorView",
    "ViewBatch",
    "ProcessorAssignment",
    "Schedule",
    "FrequencyVoltageScheduler",
    "ContinuousFrequencyScheduler",
    "SinglePassScheduler",
    "HeterogeneousScheduler",
    "ConsolidationGovernor",
    "VoltageSelector",
    "default_vf_curve",
    "TriggerBus",
    "PowerLimitChange",
    "IdleTransition",
    "ScheduleLogEntry",
    "CounterLogEntry",
    "FvsstLog",
    "FvsstDaemon",
    "DaemonConfig",
    "OverheadModel",
    "MultithreadedFvsstDaemon",
    "MultithreadOverheadModel",
    "Governor",
    "NoManagementGovernor",
    "UniformScalingGovernor",
    "PowerDownGovernor",
    "UtilizationGovernor",
    "StaticOracleGovernor",
    "uniform_cap_frequency",
]
