"""Baseline power-management policies.

The alternatives the paper positions fvsst against:

* :class:`NoManagementGovernor` — everything at ``f_max`` always; the
  energy-normalisation baseline of Table 3 ("a system which does not
  respond to changes in frequency needs").
* :class:`UniformScalingGovernor` — "slowing all nodes in a system
  uniformly" (abstract): the highest single frequency whose aggregate
  power fits the budget, applied to every processor.
* :class:`PowerDownGovernor` — "powering down some nodes" (abstract):
  keep as many processors as fit the budget at ``f_max``, switch the rest
  off; their work stalls (migration is assumed impossible, Section 1).
* :class:`UtilizationGovernor` — a Demand-Based-Switching/LongRun-style
  policy (Section 3.1): step frequency up when utilisation is high, down
  when low, with no knowledge of memory behaviour.  On a hot-idling
  Power4+ it sees 100% utilisation always — the failure mode the related
  work section points at.
* :class:`StaticOracleGovernor` — step 1+2 run once on ground-truth
  signatures: the best any static assignment could do, for ablations.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..power.table import FrequencyPowerTable
from ..sim.counters import CounterReader
from ..sim.driver import Simulation
from ..sim.machine import SMPMachine
from ..units import check_positive
from .governor import Governor
from .scheduler import FrequencyVoltageScheduler, ProcessorView

__all__ = [
    "uniform_cap_frequency",
    "NoManagementGovernor",
    "UniformScalingGovernor",
    "PowerDownGovernor",
    "UtilizationGovernor",
    "StaticOracleGovernor",
]


def uniform_cap_frequency(table: FrequencyPowerTable, num_procs: int,
                          limit_w: float | None) -> float:
    """Highest frequency every one of ``num_procs`` processors can run at
    simultaneously within ``limit_w`` (the uniform-scaling rule).

    Falls back to the table floor when even that exceeds the limit.
    """
    if num_procs < 1:
        raise SchedulingError("need at least one processor")
    if limit_w is None:
        return table.f_max_hz
    check_positive(limit_w, "limit_w")
    f = table.max_frequency_under(limit_w / num_procs)
    return table.f_min_hz if f is None else f


class NoManagementGovernor(Governor):
    """All processors at f_max, always; ignores power limits entirely."""

    name = "none"

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        for core in self.machine.cores:
            core.set_frequency(self.machine.table.f_max_hz, sim.now_s)

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        pass  # deliberately unresponsive


class UniformScalingGovernor(Governor):
    """One shared frequency chosen purely from the budget."""

    name = "uniform"

    def __init__(self, machine: SMPMachine, *,
                 power_limit_w: float | None = None) -> None:
        super().__init__(machine)
        self.power_limit_w = power_limit_w

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        self._apply(sim.now_s)

    def _apply(self, now_s: float) -> None:
        f = uniform_cap_frequency(self.machine.table,
                                  self.machine.num_cores, self.power_limit_w)
        for core in self.machine.cores:
            core.set_frequency(f, now_s)

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        self.power_limit_w = limit_w
        self._apply(now_s)


class PowerDownGovernor(Governor):
    """Keep k processors at f_max, power the rest off.

    Processors are taken offline from the highest index down, matching the
    convention that low-numbered processors host system work.
    """

    name = "powerdown"

    def __init__(self, machine: SMPMachine, *,
                 power_limit_w: float | None = None) -> None:
        super().__init__(machine)
        self.power_limit_w = power_limit_w

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        self._apply(sim.now_s)

    def _apply(self, now_s: float) -> None:
        table = self.machine.table
        n = self.machine.num_cores
        if self.power_limit_w is None:
            online = n
        else:
            online = min(n, int(self.power_limit_w // table.max_power_w))
        for i, core in enumerate(self.machine.cores):
            core.offline = i >= online
            if not core.offline:
                core.set_frequency(table.f_max_hz, now_s)

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        self.power_limit_w = limit_w
        self._apply(now_s)

    @property
    def online_count(self) -> int:
        return sum(1 for c in self.machine.cores if not c.offline)


class UtilizationGovernor(Governor):
    """DBS/LongRun-style utilisation stepping (no memory awareness).

    Utilisation is the non-halted fraction of the last period.  A hot-idle
    core never halts, so its utilisation reads 1.0 and it gets driven to
    the cap — the pathology Sections 3.1/5 describe.
    """

    name = "utilization"

    def __init__(self, machine: SMPMachine, *,
                 power_limit_w: float | None = None,
                 period_s: float = 0.100,
                 up_threshold: float = 0.90,
                 down_threshold: float = 0.50) -> None:
        super().__init__(machine)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise SchedulingError("thresholds must satisfy 0 < down < up <= 1")
        self.power_limit_w = power_limit_w
        self.period_s = period_s
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.readers = [CounterReader(core.counters)
                        for core in machine.cores]

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        self._cap_all(sim.now_s)
        sim.every(self.period_s, self._on_tick, name="utilization-governor")

    def _cap_hz(self) -> float:
        return uniform_cap_frequency(self.machine.table,
                                     self.machine.num_cores,
                                     self.power_limit_w)

    def _cap_all(self, now_s: float) -> None:
        cap = self._cap_hz()
        for core in self.machine.cores:
            core.set_frequency(min(core.frequency_setting_hz, cap), now_s)

    def _on_tick(self, now_s: float) -> None:
        table = self.machine.table
        cap = self._cap_hz()
        for core, reader in zip(self.machine.cores, self.readers):
            sample = reader.sample(now_s)
            utilization = 1.0 - sample.halted_fraction
            current = core.frequency_setting_hz
            if utilization > self.up_threshold:
                target = table.next_higher(current) or current
            elif utilization < self.down_threshold:
                target = table.next_lower(current) or current
            else:
                target = current
            core.set_frequency(min(target, cap), now_s)

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        self.power_limit_w = limit_w
        self._cap_all(now_s)


class StaticOracleGovernor(Governor):
    """Figure 3 run once on ground-truth signatures (ablation upper bound)."""

    name = "oracle"

    def __init__(self, machine: SMPMachine, *,
                 power_limit_w: float | None = None,
                 epsilon: float | None = None) -> None:
        super().__init__(machine)
        self.power_limit_w = power_limit_w
        kwargs = {} if epsilon is None else {"epsilon": epsilon}
        self.scheduler = FrequencyVoltageScheduler(machine.table, **kwargs)

    def _views(self) -> list[ProcessorView]:
        views = []
        for core in self.machine.cores:
            job = core.dispatcher.current_job()
            signature = (None if job is None else
                         job.current_phase.true_signature(core.latencies))
            views.append(ProcessorView(node_id=0, proc_id=core.core_id,
                                       signature=signature,
                                       idle_signaled=job is None))
        return views

    def _apply(self, now_s: float) -> None:
        schedule = self.scheduler.schedule(self._views(), self.power_limit_w,
                                           on_infeasible="floor")
        for a in schedule.assignments:
            self.machine.core(a.proc_id).set_frequency(a.freq_hz, now_s)

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        self._apply(sim.now_s)

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        self.power_limit_w = limit_w
        self._apply(now_s)
