"""Process variation: per-processor power tables.

Section 5 already admits per-processor *voltage* tables ("the voltage table
is different for each processor if there is significant process
variation"); the same physics makes per-processor *power* differ too — a
leaky part draws more at every operating point.  The related work
(Section 3.2, Kumar et al.; Ghiasi & Grunwald) studies exactly such
single-ISA heterogeneous parts.

:class:`HeterogeneousScheduler` runs Figure 3 with a per-processor power
lookup: step 2's greedy pass then naturally prefers shedding power where a
watt buys the least performance *on that specific part*, and the predicted
total honestly reflects the mixed silicon.  A homogeneous scheduler on the
same machine under-estimates the draw of leaky parts and can violate the
budget it believes it met — the ``variation`` experiment measures that gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import constants
from ..errors import SchedulingError
from ..power.table import FrequencyPowerTable
from .scheduler import FrequencyVoltageScheduler, ProcessorView
from .voltage import VoltageSelector

__all__ = ["HeterogeneousScheduler"]


class HeterogeneousScheduler(FrequencyVoltageScheduler):
    """Figure 3 with per-processor operating-point tables."""

    def __init__(self, default_table: FrequencyPowerTable, *,
                 epsilon: float = constants.DEFAULT_EPSILON,
                 voltage_selector: VoltageSelector | None = None) -> None:
        super().__init__(default_table, epsilon=epsilon,
                         voltage_selector=voltage_selector)
        self._tables: dict[tuple[int, int], FrequencyPowerTable] = {}

    def set_processor_table(self, node_id: int, proc_id: int,
                            table: FrequencyPowerTable) -> None:
        """Install a processor-specific table.

        Every per-processor table must offer the same frequency set as the
        default (the parts are the same design at the same operating
        points; only their power differs).
        """
        if table.freqs_hz != self.table.freqs_hz:
            raise SchedulingError(
                "per-processor table must share the default frequency set"
            )
        self._tables[(node_id, proc_id)] = table

    def table_for(self, node_id: int, proc_id: int) -> FrequencyPowerTable:
        """The table in force for one processor."""
        return self._tables.get((node_id, proc_id), self.table)

    def power_for(self, node_id: int, proc_id: int, freq_hz: float) -> float:
        return self.table_for(node_id, proc_id).power_at(freq_hz)

    def _power_ladders(self, views: Sequence[ProcessorView]) -> np.ndarray:
        # Bulk form of power_for: one cached row per processor's table.
        return np.array([
            self.table_for(v.node_id, v.proc_id).powers_array()
            for v in views
        ])

    @classmethod
    def from_scales(cls, default_table: FrequencyPowerTable,
                    scales: dict[tuple[int, int], float], *,
                    epsilon: float = constants.DEFAULT_EPSILON,
                    voltage_selector: VoltageSelector | None = None
                    ) -> "HeterogeneousScheduler":
        """Build from per-processor power multipliers (the common
        corner-lot description: 'this part draws 12% more')."""
        scheduler = cls(default_table, epsilon=epsilon,
                        voltage_selector=voltage_selector)
        for key, scale in scales.items():
            scheduler.set_processor_table(
                key[0], key[1], default_table.scaled_power(scale))
        return scheduler
