"""The single-pass scheduler (Section 5: "it is possible to implement in a
single pass scheduler").

Historically this module carried the heap-based alternative to Figure 3's
rescanning two-pass loop: compute each processor's whole ladder of
(frequency, power, predicted loss) rungs up front, seed a min-heap with
each processor's first *downward* rung keyed by loss, and pop until the
budget is met — O(total rungs x log procs) instead of O(steps x procs) —
while producing **exactly the same schedule** (same greedy metric, same
deterministic tie-break), which the property tests verify.

That formulation is now the base implementation:
:class:`~repro.core.scheduler.FrequencyVoltageScheduler` evaluates step 1
as one vectorised ``(P x F)`` loss matrix and runs step 2 through the same
heap (``_reduce_indices``).  :class:`SinglePassScheduler` remains as the
Section 5 name for that algorithm — kept for API compatibility and so the
benches can time both entry points.
"""

from __future__ import annotations

from .scheduler import FrequencyVoltageScheduler

__all__ = ["SinglePassScheduler"]


class SinglePassScheduler(FrequencyVoltageScheduler):
    """Heap-based single-pass equivalent of the Figure 3 algorithm.

    Identical to the base scheduler since the vectorisation unified the
    two implementations; the equivalence tests keep pinning that the two
    names schedule identically.
    """
