"""The single-pass scheduler (Section 5: "it is possible to implement in a
single pass scheduler").

The two-pass Figure 3 algorithm first fixes every processor's
epsilon-constrained frequency, then walks power down step by step,
re-scanning all processors for the smallest next-step loss each iteration —
O(steps × procs).  The single-pass formulation computes, for each
processor, its whole ladder of (frequency, power, predicted loss) rungs up
front, seeds a min-heap with each processor's first *downward* rung keyed
by loss, and pops until the budget is met — O(total rungs × log procs) —
while producing **exactly the same schedule** (same greedy metric, same
deterministic tie-break), which the property tests verify.
"""

from __future__ import annotations

import heapq
from typing import Literal, Sequence

from .. import constants
from ..errors import InfeasibleBudgetError, SchedulingError
from ..power.table import FrequencyPowerTable
from .scheduler import (
    FrequencyVoltageScheduler,
    ProcessorAssignment,
    ProcessorView,
    Schedule,
)
from .voltage import VoltageSelector

__all__ = ["SinglePassScheduler"]


class SinglePassScheduler(FrequencyVoltageScheduler):
    """Heap-based single-pass equivalent of the Figure 3 algorithm."""

    def schedule(self, views: Sequence[ProcessorView],
                 power_limit_w: float | None = None, *,
                 max_freq_hz: float | None = None,
                 on_infeasible: Literal["floor", "raise"] = "floor") -> Schedule:
        if not views:
            raise SchedulingError("no processors to schedule")
        keys = [(v.node_id, v.proc_id) for v in views]
        if len(set(keys)) != len(keys):
            raise SchedulingError("duplicate (node, proc) in views")
        cap_hz: float | None = None
        if max_freq_hz is not None:
            if max_freq_hz < self.table.f_min_hz:
                raise SchedulingError("frequency ceiling below ladder floor")
            cap_hz = self.table.quantize_down(max_freq_hz)

        # One pass over processors: epsilon rung + heap seeding.
        freqs: list[float] = []
        eps_freqs: list[float] = []
        heap: list[tuple[float, int, int, int]] = []  # (loss, node, proc, i)
        for i, view in enumerate(views):
            if view.idle_signaled:
                f = self.table.f_min_hz
            else:
                f, _ = self.epsilon_constrained(view.signature)
            eps_freqs.append(f)
            if cap_hz is not None:
                f = min(f, cap_hz)
            freqs.append(f)

        total = sum(
            self.power_for(v.node_id, v.proc_id, f)
            for v, f in zip(views, freqs)
        )
        infeasible = False
        if power_limit_w is not None and total > power_limit_w:
            for i, view in enumerate(views):
                self._push_next(heap, views, freqs, i)
            while total > power_limit_w:
                if not heap:
                    if on_infeasible == "raise":
                        raise InfeasibleBudgetError(
                            f"power floor {total:.1f} W exceeds limit "
                            f"{power_limit_w:.1f} W",
                            floor_power_w=total, limit_w=power_limit_w,
                        )
                    infeasible = True
                    break
                _loss, _node, _proc, i = heapq.heappop(heap)
                f_less = self.table.next_lower(freqs[i])
                if f_less is None:
                    continue   # stale entry: already at the floor
                view = views[i]
                total -= self.power_for(view.node_id, view.proc_id, freqs[i])
                freqs[i] = f_less
                total += self.power_for(view.node_id, view.proc_id, freqs[i])
                self._push_next(heap, views, freqs, i)

        assignments = []
        for view, f, eps_f in zip(views, freqs, eps_freqs):
            loss = 0.0 if view.idle_signaled else self.predicted_loss(
                view.signature, f)
            assignments.append(ProcessorAssignment(
                node_id=view.node_id, proc_id=view.proc_id,
                freq_hz=f,
                voltage=self.voltages.min_voltage(view.node_id,
                                                  view.proc_id, f),
                power_w=self.power_for(view.node_id, view.proc_id, f),
                predicted_loss=loss,
                eps_freq_hz=eps_f,
            ))
        return Schedule(
            assignments=tuple(assignments),
            total_power_w=sum(a.power_w for a in assignments),
            power_limit_w=power_limit_w,
            epsilon=self.epsilon,
            infeasible=infeasible,
        )

    def _push_next(self, heap, views, freqs, i) -> None:
        """Push processor ``i``'s next downward rung onto the heap."""
        f_less = self.table.next_lower(freqs[i])
        if f_less is None:
            return
        view = views[i]
        loss = 0.0 if view.idle_signaled else self.predicted_loss(
            view.signature, f_less)
        heapq.heappush(heap, (loss, view.node_id, view.proc_id, i))
