"""The continuous-frequency scheduler variant (Section 5's extension).

"Rather than calculating the performance loss at each available frequency,
the scheduler could instead calculate ``f_ideal`` ... treats frequencies
continuously rather than discretely and scales to the frequency determined
by epsilon."

The variant replaces step 1 of Figure 3 with the closed-form
:func:`~repro.model.ideal.ideal_frequency`, then (for hardware with a fixed
ladder) quantises to the nearest operating point not below the ideal, and
reuses the same step-2 power pass.  On ladders with many points this costs
one formula evaluation per processor instead of one loss evaluation per
(processor, frequency) pair — the computational concern the paper raises
for "systems with many frequencies or ... continuous frequency scaling".
"""

from __future__ import annotations

from typing import Literal, Sequence

from .. import constants
from ..model.ideal import ideal_frequency
from ..power.table import FrequencyPowerTable
from .scheduler import FrequencyVoltageScheduler, ProcessorView, Schedule
from .voltage import VoltageSelector

__all__ = ["ContinuousFrequencyScheduler"]


class ContinuousFrequencyScheduler(FrequencyVoltageScheduler):
    """Figure 3 with step 1 replaced by the ``f_ideal`` closed form.

    ``quantize`` selects how the continuous ideal maps onto the table:
    ``"up"`` (default) takes the lowest operating point at or above
    ``f_ideal`` — conservative, since running slightly faster than ideal
    can only reduce the loss; ``"nearest"`` takes the closest point.
    """

    def __init__(self, table: FrequencyPowerTable, *,
                 epsilon: float = constants.DEFAULT_EPSILON,
                 voltage_selector: VoltageSelector | None = None,
                 quantize: Literal["up", "nearest"] = "up") -> None:
        super().__init__(table, epsilon=epsilon,
                         voltage_selector=voltage_selector)
        if quantize not in ("up", "nearest"):
            raise ValueError(f"unknown quantize mode {quantize!r}")
        self.quantize = quantize

    def epsilon_constrained(self, signature) -> tuple[float, float]:
        """Closed-form ideal frequency, quantised to the ladder."""
        if signature is None:
            return self.table.f_max_hz, 0.0
        f_ideal = ideal_frequency(
            signature,
            self.table.f_max_hz,
            epsilon=self.epsilon,
            f_min_hz=self.table.f_min_hz,
        )
        if self.quantize == "up":
            f = self.table.quantize_up(f_ideal)
        else:
            f = self.table.nearest(f_ideal)
        return f, self.predicted_loss(signature, f)

    def ideal_frequency_vector(self, views: Sequence[ProcessorView]
                               ) -> list[float]:
        """The raw (unquantised) ideal frequencies — for continuous-scaling
        hardware and for the ablation benches."""
        out = []
        for view in views:
            if view.idle_signaled or view.signature is None:
                out.append(self.table.f_min_hz if view.idle_signaled
                           else self.table.f_max_hz)
            else:
                out.append(ideal_frequency(
                    view.signature, self.table.f_max_hz,
                    epsilon=self.epsilon, f_min_hz=self.table.f_min_hz,
                ))
        return out

    def schedule(self, views: Sequence[ProcessorView],
                 power_limit_w: float | None = None, *,
                 on_infeasible: Literal["floor", "raise"] = "floor") -> Schedule:
        # Inherited implementation already routes step 1 through the
        # overridden epsilon_constrained(); nothing further to change.
        return super().schedule(views, power_limit_w,
                                on_infeasible=on_infeasible)
