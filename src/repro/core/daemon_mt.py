"""The multi-threaded daemon of Section 9 (future work, built).

"Currently, the implementation of the scheduler is as a single-threaded
program using the kernel to collect the performance counter data.  A
better one would use multiple threads, two per processor.  One thread on
each processor collects the performance counter data from the counters at
user level while the other one controls the throttling or frequency and
voltage scaling for it."

Modelled consequences versus the single-threaded daemon:

* counter reads happen *at user level on each processor* — cheaper per
  read (no kernel crossing) and charged to the core being sampled rather
  than piling onto one host core;
* actuation cost is likewise charged to the affected core;
* only the scheduling calculation itself remains centralised.

The scheduling logic is inherited unchanged; only overhead placement and
magnitude differ, which the overhead ablation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.counters import CounterSample  # noqa: F401  (doc reference)
from ..units import check_non_negative
from .daemon import DaemonConfig, FvsstDaemon
from .logs import CounterLogEntry

__all__ = ["MultithreadOverheadModel", "MultithreadedFvsstDaemon"]


@dataclass(frozen=True, slots=True)
class MultithreadOverheadModel:
    """Costs of the two-threads-per-processor design."""

    #: User-level counter read, charged to the sampled core.
    sample_cost_s: float = 6e-6
    #: One scheduling calculation, charged to the daemon core.
    schedule_cost_s: float = 150e-6
    #: One frequency actuation, charged to the actuated core.
    actuation_cost_s: float = 8e-6
    enabled: bool = True

    def __post_init__(self) -> None:
        check_non_negative(self.sample_cost_s, "sample_cost_s")
        check_non_negative(self.schedule_cost_s, "schedule_cost_s")
        check_non_negative(self.actuation_cost_s, "actuation_cost_s")


class MultithreadedFvsstDaemon(FvsstDaemon):
    """fvsst with per-processor collector/actuator threads."""

    name = "fvsst-mt"

    def __init__(self, machine, config: DaemonConfig | None = None, *,
                 mt_overhead: MultithreadOverheadModel | None = None,
                 **kwargs) -> None:
        super().__init__(machine, config, **kwargs)
        self.mt_overhead = mt_overhead or MultithreadOverheadModel()

    # Overhead placement overrides -------------------------------------------------

    def _collect_samples(self, now_s: float) -> None:
        cfg = self.config
        for i, reader in enumerate(self.readers):
            sample = reader.sample(now_s)
            self._windows[i].append(sample)
            self.log.record_sample(CounterLogEntry(
                time_s=now_s, node_id=cfg.node_id, proc_id=i, sample=sample,
            ))
            if self.mt_overhead.enabled:
                # The collector thread runs on the core it samples.
                self.machine.core(i).steal_time(self.mt_overhead.sample_cost_s)

    def _charge_transition(self, core) -> None:
        if self.mt_overhead.enabled:
            # The actuator thread runs on the core it throttles.
            core.steal_time(self.mt_overhead.actuation_cost_s)

    def _after_apply(self) -> None:
        if self.mt_overhead.enabled:
            self.machine.core(self.config.daemon_core).steal_time(
                self.mt_overhead.schedule_cost_s
            )

    def _charge_overhead(self, cost_s: float) -> None:
        # Parent-class bulk charging is fully replaced by the per-core
        # placement above.
        pass
