"""Minimum-voltage assignment (Figure 3, step 3).

"The algorithm relies on a table look-up to determine the lowest voltage
setting allowed for the selected frequency of each processor.  It may be
the case that the voltage table is different for each processor if there is
significant process variation among them."

A :class:`VoltageSelector` maps (node, proc, frequency) to a voltage via a
default curve plus optional per-processor overrides.  The default curve is
the V(f) recovered by the Lava fit of Table 1.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..power.lava import fit_lava_model
from ..power.table import POWER4_TABLE
from ..power.vf_curve import VoltageFrequencyCurve

__all__ = ["default_vf_curve", "VoltageSelector"]


@lru_cache(maxsize=1)
def default_vf_curve() -> VoltageFrequencyCurve:
    """The minimum-voltage curve implied by Table 1 (computed once)."""
    return fit_lava_model(POWER4_TABLE).vf_curve


class VoltageSelector:
    """Per-processor minimum-voltage lookup with process-variation overrides."""

    def __init__(self, curve: VoltageFrequencyCurve | None = None) -> None:
        self._default = curve if curve is not None else default_vf_curve()
        self._overrides: dict[tuple[int, int], VoltageFrequencyCurve] = {}
        # Per-curve memo: ladders have ~16 rungs, so a pass over hundreds of
        # processors asks for the same handful of voltages.  Keyed by curve
        # identity; cleared whenever the curve set changes, so an id() can
        # never outlive the curve it names.
        self._cache: dict[tuple[int, float], float] = {}

    def set_processor_curve(self, node_id: int, proc_id: int,
                            curve: VoltageFrequencyCurve) -> None:
        """Install a processor-specific curve (process variation)."""
        self._overrides[(node_id, proc_id)] = curve
        self._cache.clear()

    def min_voltage(self, node_id: int, proc_id: int, freq_hz: float) -> float:
        """The lowest stable voltage for this processor at this frequency."""
        curve = self._overrides.get((node_id, proc_id), self._default)
        key = (id(curve), freq_hz)
        v = self._cache.get(key)
        if v is None:
            v = self._cache[key] = curve.min_voltage(freq_hz)
        return v

    def rung_voltages(self, freqs_hz: Sequence[float]) -> list[float] | None:
        """Per-rung voltages when every processor shares the default curve,
        or ``None`` when process-variation overrides make the answer
        processor-dependent.  Lets a scheduling pass replace P per-processor
        lookups with one list indexed by rung."""
        if self._overrides:
            return None
        return [self.min_voltage(0, 0, f) for f in freqs_hz]
