"""The common governor interface.

A governor is anything that owns the frequency settings of a machine's
processors: the fvsst daemon, or any of the baseline policies the paper
argues against (uniform slowdown, node power-down, utilization-driven
scaling, doing nothing).  Experiments attach exactly one governor to a
machine and drive the simulation; because all governors share this
interface, every experiment can be rerun under every policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import SchedulingError
from ..sim.driver import Simulation
from ..sim.machine import SMPMachine

__all__ = ["Governor"]


class Governor(ABC):
    """Owns the operating points of one machine."""

    #: Short policy name for logs and result tables.
    name: str = "governor"

    def __init__(self, machine: SMPMachine) -> None:
        self.machine = machine
        self._sim: Simulation | None = None

    @property
    def sim(self) -> Simulation:
        """The simulation this governor is attached to."""
        if self._sim is None:
            raise SchedulingError(f"{self.name} is not attached to a simulation")
        return self._sim

    def attach(self, sim: Simulation) -> None:
        """Bind to a simulation and install periodic tasks / initial state.

        Subclasses must call ``super().attach(sim)`` first.
        """
        if self._sim is not None:
            raise SchedulingError(f"{self.name} is already attached")
        self._sim = sim

    @abstractmethod
    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        """React to a change of the global processor power limit.

        ``None`` lifts the limit.  Called by trigger sources (supply
        monitors, experiments) at simulation time ``now_s``.
        """
