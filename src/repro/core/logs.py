"""Scheduling and counter logs (Section 6).

"The program generates both scheduling and performance counter data logs
that provide performance and frequency information for monitoring and data
analysis."  These logs are the raw material of every figure in the paper:
Figure 5's IPC/frequency/power series, Figure 8's frequency residency,
Figure 9/10's desired-vs-actual traces, and Table 2's predicted-vs-measured
IPC deviations all come out of :class:`FvsstLog` queries.

The backing store is columnar: rows live in growable numpy arrays (one per
field), recorded either entry-by-entry (:meth:`FvsstLog.record_sample` /
:meth:`FvsstLog.record_schedule`, the daemon's scalar path) or as whole
scheduling passes at once (:meth:`FvsstLog.record_schedule_pass`, the
cluster coordinator's bulk path).  Queries run vectorised over the columns
through a lazily built per-``(node, proc)`` row index; the familiar
``ScheduleLogEntry``/``CounterLogEntry`` objects are materialised lazily
(and cached) only when someone actually asks for them.  ``None`` in the
optional float fields is stored as NaN, so an *actual* NaN recorded there
would read back as ``None`` — no producer records NaN.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExperimentError
from ..sim.counters import CounterSample

__all__ = ["ScheduleLogEntry", "CounterLogEntry", "FvsstLog"]


@dataclass(frozen=True, slots=True)
class CounterLogEntry:
    """One counter sample from one processor."""

    time_s: float
    node_id: int
    proc_id: int
    sample: CounterSample


@dataclass(frozen=True, slots=True)
class ScheduleLogEntry:
    """One scheduling decision for one processor."""

    time_s: float
    node_id: int
    proc_id: int
    #: Final scheduled frequency.
    freq_hz: float
    #: Step-1 epsilon-constrained ("desired") frequency.
    eps_freq_hz: float
    voltage: float
    power_w: float
    predicted_loss: float
    #: IPC the predictor expects at ``freq_hz`` over the next interval
    #: (None when the window carried no usable data).
    predicted_ipc: float | None
    #: The limit in force (None = unconstrained).
    power_limit_w: float | None
    #: True when this decision hit the infeasible-floor path.
    infeasible: bool
    #: Wall-clock cost of the pass that produced this decision (None when
    #: the producer does not measure it).  The coordinator fills this in,
    #: making prediction-overhead claims checkable from the log alone.
    pass_wall_s: float | None = None


class _ColumnStore:
    """Growable structure-of-arrays store with amortised-doubling appends."""

    __slots__ = ("_spec", "_cols", "_n", "_cap")

    def __init__(self, spec: dict[str, type]) -> None:
        self._spec = dict(spec)
        self._cols: dict[str, np.ndarray] = {}
        self._n = 0
        self._cap = 0

    def __len__(self) -> int:
        return self._n

    def append(self, count: int, **values) -> None:
        """Append ``count`` rows; each value is a scalar (broadcast) or a
        length-``count`` sequence."""
        need = self._n + count
        if need > self._cap:
            new_cap = max(64, 2 * self._cap)
            while new_cap < need:
                new_cap *= 2
            for name, dt in self._spec.items():
                fresh = np.empty(new_cap, dtype=dt)
                old = self._cols.get(name)
                if old is not None:
                    fresh[:self._n] = old[:self._n]
                self._cols[name] = fresh
            self._cap = new_cap
        stop = self._n + count
        for name, value in values.items():
            self._cols[name][self._n:stop] = value
        self._n = stop

    def column(self, name: str) -> np.ndarray:
        """Read-only view of one column's filled rows."""
        if self._n == 0:
            return np.empty(0, dtype=self._spec[name])
        return self._cols[name][:self._n]


_SCHED_SPEC = {
    "time_s": float, "node_id": np.int64, "proc_id": np.int64,
    "freq_hz": float, "eps_freq_hz": float, "voltage": float,
    "power_w": float, "predicted_loss": float, "predicted_ipc": float,
    "power_limit_w": float, "infeasible": bool, "pass_wall_s": float,
}

_COUNTER_SPEC = {
    "time_s": float, "node_id": np.int64, "proc_id": np.int64,
    "sample_time_s": float, "interval_s": float, "instructions": float,
    "cycles": float, "n_l2": float, "n_l3": float, "n_mem": float,
    "l1_stall_cycles": float, "halted_cycles": float,
}


class FvsstLog:
    """Accumulated logs plus the queries the experiments need."""

    __slots__ = ("_sched", "_counters", "_pending_sched", "_pending_counters",
                 "_sched_cache", "_counter_cache", "_sched_index",
                 "_sched_indexed", "_counter_index", "_counter_indexed")

    def __init__(self) -> None:
        self._sched = _ColumnStore(_SCHED_SPEC)
        self._counters = _ColumnStore(_COUNTER_SPEC)
        #: Entry objects recorded scalar-style, not yet moved into columns.
        self._pending_sched: list[ScheduleLogEntry] = []
        self._pending_counters: list[CounterLogEntry] = []
        #: Materialised entry lists (invalidated by any record).
        self._sched_cache: list[ScheduleLogEntry] | None = None
        self._counter_cache: list[CounterLogEntry] | None = None
        #: Lazily built (node, proc) -> row-offsets maps plus watermarks of
        #: how many column rows each has already absorbed.
        self._sched_index: dict[tuple[int, int], list[int]] = {}
        self._sched_indexed = 0
        self._counter_index: dict[tuple[int, int], list[int]] = {}
        self._counter_indexed = 0

    # -- recording -----------------------------------------------------------------

    def record_sample(self, entry: CounterLogEntry) -> None:
        self._pending_counters.append(entry)
        self._counter_cache = None

    def record_schedule(self, entry: ScheduleLogEntry) -> None:
        self._pending_sched.append(entry)
        self._sched_cache = None

    def record_schedule_pass(self, time_s: float,
                             node_ids: Sequence[int],
                             proc_ids: Sequence[int],
                             freqs_hz: Sequence[float],
                             eps_freqs_hz: Sequence[float],
                             voltages: Sequence[float],
                             powers_w: Sequence[float],
                             predicted_losses: Sequence[float], *,
                             predicted_ipcs: Sequence[float | None] | None = None,
                             power_limit_w: float | None = None,
                             infeasible: bool = False,
                             pass_wall_s: float | None = None) -> None:
        """Record one whole scheduling pass columnar — one row per
        processor, one append, no per-row entry objects."""
        count = len(node_ids)
        if not count:
            return
        self._flush_sched()
        nan = math.nan
        if predicted_ipcs is None:
            ipc_col: float | list[float] = nan
        else:
            ipc_col = [nan if v is None else v for v in predicted_ipcs]
        self._sched.append(
            count,
            time_s=time_s, node_id=node_ids, proc_id=proc_ids,
            freq_hz=freqs_hz, eps_freq_hz=eps_freqs_hz, voltage=voltages,
            power_w=powers_w, predicted_loss=predicted_losses,
            predicted_ipc=ipc_col,
            power_limit_w=nan if power_limit_w is None else power_limit_w,
            infeasible=infeasible,
            pass_wall_s=nan if pass_wall_s is None else pass_wall_s,
        )
        self._sched_cache = None

    # -- column flushing --------------------------------------------------------------

    def _flush_sched(self) -> None:
        pend = self._pending_sched
        if not pend:
            return
        nan = math.nan
        self._sched.append(
            len(pend),
            time_s=[e.time_s for e in pend],
            node_id=[e.node_id for e in pend],
            proc_id=[e.proc_id for e in pend],
            freq_hz=[e.freq_hz for e in pend],
            eps_freq_hz=[e.eps_freq_hz for e in pend],
            voltage=[e.voltage for e in pend],
            power_w=[e.power_w for e in pend],
            predicted_loss=[e.predicted_loss for e in pend],
            predicted_ipc=[nan if e.predicted_ipc is None else e.predicted_ipc
                           for e in pend],
            power_limit_w=[nan if e.power_limit_w is None else e.power_limit_w
                           for e in pend],
            infeasible=[e.infeasible for e in pend],
            pass_wall_s=[nan if e.pass_wall_s is None else e.pass_wall_s
                         for e in pend],
        )
        self._pending_sched = []

    def _flush_counters(self) -> None:
        pend = self._pending_counters
        if not pend:
            return
        self._counters.append(
            len(pend),
            time_s=[e.time_s for e in pend],
            node_id=[e.node_id for e in pend],
            proc_id=[e.proc_id for e in pend],
            sample_time_s=[e.sample.time_s for e in pend],
            interval_s=[e.sample.interval_s for e in pend],
            instructions=[e.sample.instructions for e in pend],
            cycles=[e.sample.cycles for e in pend],
            n_l2=[e.sample.n_l2 for e in pend],
            n_l3=[e.sample.n_l3 for e in pend],
            n_mem=[e.sample.n_mem for e in pend],
            l1_stall_cycles=[e.sample.l1_stall_cycles for e in pend],
            halted_cycles=[e.sample.halted_cycles for e in pend],
        )
        self._pending_counters = []

    # -- lazy materialisation -----------------------------------------------------------

    @property
    def schedule_entries(self) -> list[ScheduleLogEntry]:
        """All scheduling decisions, in record order, as entry objects."""
        if self._sched_cache is None:
            self._flush_sched()
            s = self._sched
            self._sched_cache = [
                ScheduleLogEntry(
                    time_s=t, node_id=nd, proc_id=pc, freq_hz=f,
                    eps_freq_hz=ef, voltage=v, power_w=w, predicted_loss=pl,
                    predicted_ipc=None if ipc != ipc else ipc,
                    power_limit_w=None if lim != lim else lim,
                    infeasible=inf,
                    pass_wall_s=None if ws != ws else ws,
                )
                for t, nd, pc, f, ef, v, w, pl, ipc, lim, inf, ws in zip(
                    s.column("time_s").tolist(), s.column("node_id").tolist(),
                    s.column("proc_id").tolist(), s.column("freq_hz").tolist(),
                    s.column("eps_freq_hz").tolist(),
                    s.column("voltage").tolist(), s.column("power_w").tolist(),
                    s.column("predicted_loss").tolist(),
                    s.column("predicted_ipc").tolist(),
                    s.column("power_limit_w").tolist(),
                    s.column("infeasible").tolist(),
                    s.column("pass_wall_s").tolist())
            ]
        return self._sched_cache

    @property
    def counter_entries(self) -> list[CounterLogEntry]:
        """All counter samples, in record order, as entry objects."""
        if self._counter_cache is None:
            self._flush_counters()
            s = self._counters
            self._counter_cache = [
                CounterLogEntry(
                    time_s=t, node_id=nd, proc_id=pc,
                    sample=CounterSample(
                        time_s=st, interval_s=dt, instructions=instr,
                        cycles=cyc, n_l2=l2, n_l3=l3, n_mem=mm,
                        l1_stall_cycles=l1, halted_cycles=hc),
                )
                for t, nd, pc, st, dt, instr, cyc, l2, l3, mm, l1, hc in zip(
                    s.column("time_s").tolist(), s.column("node_id").tolist(),
                    s.column("proc_id").tolist(),
                    s.column("sample_time_s").tolist(),
                    s.column("interval_s").tolist(),
                    s.column("instructions").tolist(),
                    s.column("cycles").tolist(), s.column("n_l2").tolist(),
                    s.column("n_l3").tolist(), s.column("n_mem").tolist(),
                    s.column("l1_stall_cycles").tolist(),
                    s.column("halted_cycles").tolist())
            ]
        return self._counter_cache

    # -- the (node, proc) row index ------------------------------------------------------

    def _sched_rows(self, node_id: int, proc_id: int) -> np.ndarray:
        self._flush_sched()
        n = len(self._sched)
        if self._sched_indexed < n:
            start = self._sched_indexed
            nodes = self._sched.column("node_id")[start:].tolist()
            procs = self._sched.column("proc_id")[start:].tolist()
            index = self._sched_index
            for off, key in enumerate(zip(nodes, procs), start=start):
                index.setdefault(key, []).append(off)
            self._sched_indexed = n
        return np.asarray(self._sched_index.get((node_id, proc_id), []),
                          dtype=np.intp)

    def _counter_rows(self, node_id: int, proc_id: int) -> np.ndarray:
        self._flush_counters()
        n = len(self._counters)
        if self._counter_indexed < n:
            start = self._counter_indexed
            nodes = self._counters.column("node_id")[start:].tolist()
            procs = self._counters.column("proc_id")[start:].tolist()
            index = self._counter_index
            for off, key in enumerate(zip(nodes, procs), start=start):
                index.setdefault(key, []).append(off)
            self._counter_indexed = n
        return np.asarray(self._counter_index.get((node_id, proc_id), []),
                          dtype=np.intp)

    # -- per-processor filters -------------------------------------------------------

    def samples_of(self, node_id: int, proc_id: int) -> list[CounterLogEntry]:
        entries = self.counter_entries
        return [entries[i] for i in
                self._counter_rows(node_id, proc_id).tolist()]

    def schedules_of(self, node_id: int, proc_id: int) -> list[ScheduleLogEntry]:
        entries = self.schedule_entries
        return [entries[i] for i in
                self._sched_rows(node_id, proc_id).tolist()]

    # -- series (Figures 5, 9, 10) ----------------------------------------------------

    def ipc_series(self, node_id: int, proc_id: int
                   ) -> tuple[np.ndarray, np.ndarray]:
        """(times, measured IPC) of one processor."""
        rows = self._counter_rows(node_id, proc_id)
        t = self._counters.column("time_s")[rows]
        instr = self._counters.column("instructions")[rows]
        cyc = self._counters.column("cycles")[rows]
        ran = cyc > 0.0
        ipc = np.where(ran, instr / np.where(ran, cyc, 1.0), 0.0)
        return t, ipc

    def frequency_series(self, node_id: int, proc_id: int, *,
                         desired: bool = False
                         ) -> tuple[np.ndarray, np.ndarray]:
        """(times, scheduled frequency); ``desired=True`` returns the
        step-1 epsilon-constrained series instead (Figure 9's two curves)."""
        rows = self._sched_rows(node_id, proc_id)
        t = self._sched.column("time_s")[rows]
        f = self._sched.column("eps_freq_hz" if desired else "freq_hz")[rows]
        return t, f

    def power_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, total scheduled processor power) across all processors.

        When a processor carries several decisions at one instant — a
        trigger pass (``set_power_limit`` / ``set_node_limit``) landing at
        the same ``time_s`` as a periodic pass — only the *last* recorded
        decision per ``(time, node, proc)`` counts: the later pass
        supersedes the earlier one, it does not add to it.
        """
        self._flush_sched()
        count = len(self._sched)
        if count == 0:
            return np.array([]), np.array([])
        t = self._sched.column("time_s")
        nd = self._sched.column("node_id")
        pc = self._sched.column("proc_id")
        w = self._sched.column("power_w")
        # Stable sort by (time, node, proc) keeps record order within a
        # key, so the last row of each group is the latest decision.
        order = np.lexsort((pc, nd, t))
        ts, ns, ps = t[order], nd[order], pc[order]
        last = np.ones(count, dtype=bool)
        last[:-1] = ~((ts[1:] == ts[:-1]) & (ns[1:] == ns[:-1])
                      & (ps[1:] == ps[:-1]))
        keep = order[last]
        times, inverse = np.unique(t[keep], return_inverse=True)
        totals = np.bincount(inverse, weights=w[keep], minlength=times.size)
        return times, totals

    # -- residency (Figure 8) -----------------------------------------------------------

    def frequency_residency(self, node_id: int, proc_id: int, *,
                            desired: bool = False) -> dict[float, float]:
        """Fraction of scheduling intervals spent at each frequency.

        Each schedule entry holds until the next one, so with a fixed
        period the interval count is proportional to time.
        """
        rows = self._sched_rows(node_id, proc_id)
        if rows.size == 0:
            raise ExperimentError(
                f"no schedule entries for node {node_id} proc {proc_id}"
            )
        f = self._sched.column("eps_freq_hz" if desired else "freq_hz")[rows]
        values, counts = np.unique(f, return_counts=True)
        total = rows.size
        return {v: c / total
                for v, c in zip(values.tolist(), counts.tolist())}

    # -- predictor accuracy (Table 2) ------------------------------------------------------

    def prediction_pairs(self, node_id: int, proc_id: int
                         ) -> list[tuple[float, float, float]]:
        """(decision time, predicted IPC, measured IPC over the following
        scheduling interval) triples.

        The measured value aggregates all counter samples between this
        scheduling decision and the next, matching how the prototype's
        post-processing scored the predictor.
        """
        schedules = [e for e in self.schedules_of(node_id, proc_id)
                     if e.predicted_ipc is not None]
        samples = self.samples_of(node_id, proc_id)
        pairs: list[tuple[float, float, float]] = []
        for i, dec in enumerate(schedules):
            t_end = (schedules[i + 1].time_s if i + 1 < len(schedules)
                     else float("inf"))
            window = [s.sample for s in samples
                      if dec.time_s < s.time_s <= t_end]
            instr = sum(s.instructions for s in window)
            cycles = sum(s.cycles for s in window)
            if cycles > 0 and instr > 0:
                pairs.append((dec.time_s, dec.predicted_ipc, instr / cycles))
        return pairs

    def ipc_deviation(self, node_id: int, proc_id: int, *,
                      skip_head: int = 0, skip_tail: int = 0) -> float:
        """Mean absolute predicted-vs-measured IPC deviation.

        ``skip_head``/``skip_tail`` drop decisions at the run's edges —
        Table 2's ``CPU3*`` column excludes the benchmark's initialisation
        and termination windows this way.
        """
        pairs = self.prediction_pairs(node_id, proc_id)
        if skip_tail:
            pairs = pairs[:-skip_tail]
        if skip_head:
            pairs = pairs[skip_head:]
        if not pairs:
            raise ExperimentError("no prediction pairs to score")
        return float(np.mean([abs(p - m) for _, p, m in pairs]))
