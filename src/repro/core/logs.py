"""Scheduling and counter logs (Section 6).

"The program generates both scheduling and performance counter data logs
that provide performance and frequency information for monitoring and data
analysis."  These logs are the raw material of every figure in the paper:
Figure 5's IPC/frequency/power series, Figure 8's frequency residency,
Figure 9/10's desired-vs-actual traces, and Table 2's predicted-vs-measured
IPC deviations all come out of :class:`FvsstLog` queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExperimentError
from ..sim.counters import CounterSample

__all__ = ["ScheduleLogEntry", "CounterLogEntry", "FvsstLog"]


@dataclass(frozen=True, slots=True)
class CounterLogEntry:
    """One counter sample from one processor."""

    time_s: float
    node_id: int
    proc_id: int
    sample: CounterSample


@dataclass(frozen=True, slots=True)
class ScheduleLogEntry:
    """One scheduling decision for one processor."""

    time_s: float
    node_id: int
    proc_id: int
    #: Final scheduled frequency.
    freq_hz: float
    #: Step-1 epsilon-constrained ("desired") frequency.
    eps_freq_hz: float
    voltage: float
    power_w: float
    predicted_loss: float
    #: IPC the predictor expects at ``freq_hz`` over the next interval
    #: (None when the window carried no usable data).
    predicted_ipc: float | None
    #: The limit in force (None = unconstrained).
    power_limit_w: float | None
    #: True when this decision hit the infeasible-floor path.
    infeasible: bool
    #: Wall-clock cost of the pass that produced this decision (None when
    #: the producer does not measure it).  The coordinator fills this in,
    #: making prediction-overhead claims checkable from the log alone.
    pass_wall_s: float | None = None


@dataclass
class FvsstLog:
    """Accumulated logs plus the queries the experiments need."""

    counter_entries: list[CounterLogEntry] = field(default_factory=list)
    schedule_entries: list[ScheduleLogEntry] = field(default_factory=list)

    # -- recording -----------------------------------------------------------------

    def record_sample(self, entry: CounterLogEntry) -> None:
        self.counter_entries.append(entry)

    def record_schedule(self, entry: ScheduleLogEntry) -> None:
        self.schedule_entries.append(entry)

    # -- per-processor filters -------------------------------------------------------

    def samples_of(self, node_id: int, proc_id: int) -> list[CounterLogEntry]:
        return [e for e in self.counter_entries
                if e.node_id == node_id and e.proc_id == proc_id]

    def schedules_of(self, node_id: int, proc_id: int) -> list[ScheduleLogEntry]:
        return [e for e in self.schedule_entries
                if e.node_id == node_id and e.proc_id == proc_id]

    # -- series (Figures 5, 9, 10) ----------------------------------------------------

    def ipc_series(self, node_id: int, proc_id: int
                   ) -> tuple[np.ndarray, np.ndarray]:
        """(times, measured IPC) of one processor."""
        entries = self.samples_of(node_id, proc_id)
        t = np.array([e.time_s for e in entries])
        ipc = np.array([e.sample.ipc for e in entries])
        return t, ipc

    def frequency_series(self, node_id: int, proc_id: int, *,
                         desired: bool = False
                         ) -> tuple[np.ndarray, np.ndarray]:
        """(times, scheduled frequency); ``desired=True`` returns the
        step-1 epsilon-constrained series instead (Figure 9's two curves)."""
        entries = self.schedules_of(node_id, proc_id)
        t = np.array([e.time_s for e in entries])
        f = np.array([e.eps_freq_hz if desired else e.freq_hz
                      for e in entries])
        return t, f

    def power_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, total scheduled processor power) across all processors."""
        by_time: dict[float, float] = {}
        for e in self.schedule_entries:
            by_time[e.time_s] = by_time.get(e.time_s, 0.0) + e.power_w
        times = np.array(sorted(by_time))
        return times, np.array([by_time[t] for t in times])

    # -- residency (Figure 8) -----------------------------------------------------------

    def frequency_residency(self, node_id: int, proc_id: int, *,
                            desired: bool = False) -> dict[float, float]:
        """Fraction of scheduling intervals spent at each frequency.

        Each schedule entry holds until the next one, so with a fixed
        period the interval count is proportional to time.
        """
        entries = self.schedules_of(node_id, proc_id)
        if not entries:
            raise ExperimentError(
                f"no schedule entries for node {node_id} proc {proc_id}"
            )
        counts: dict[float, int] = {}
        for e in entries:
            f = e.eps_freq_hz if desired else e.freq_hz
            counts[f] = counts.get(f, 0) + 1
        total = len(entries)
        return {f: c / total for f, c in sorted(counts.items())}

    # -- predictor accuracy (Table 2) ------------------------------------------------------

    def prediction_pairs(self, node_id: int, proc_id: int
                         ) -> list[tuple[float, float, float]]:
        """(decision time, predicted IPC, measured IPC over the following
        scheduling interval) triples.

        The measured value aggregates all counter samples between this
        scheduling decision and the next, matching how the prototype's
        post-processing scored the predictor.
        """
        schedules = [e for e in self.schedules_of(node_id, proc_id)
                     if e.predicted_ipc is not None]
        samples = self.samples_of(node_id, proc_id)
        pairs: list[tuple[float, float, float]] = []
        for i, dec in enumerate(schedules):
            t_end = (schedules[i + 1].time_s if i + 1 < len(schedules)
                     else float("inf"))
            window = [s.sample for s in samples
                      if dec.time_s < s.time_s <= t_end]
            instr = sum(s.instructions for s in window)
            cycles = sum(s.cycles for s in window)
            if cycles > 0 and instr > 0:
                pairs.append((dec.time_s, dec.predicted_ipc, instr / cycles))
        return pairs

    def ipc_deviation(self, node_id: int, proc_id: int, *,
                      skip_head: int = 0, skip_tail: int = 0) -> float:
        """Mean absolute predicted-vs-measured IPC deviation.

        ``skip_head``/``skip_tail`` drop decisions at the run's edges —
        Table 2's ``CPU3*`` column excludes the benchmark's initialisation
        and termination windows this way.
        """
        pairs = self.prediction_pairs(node_id, proc_id)
        if skip_tail:
            pairs = pairs[:-skip_tail]
        if skip_head:
            pairs = pairs[skip_head:]
        if not pairs:
            raise ExperimentError("no prediction pairs to score")
        return float(np.mean([abs(p - m) for _, p, m in pairs]))
