"""The frequency and voltage scheduling algorithm (Figure 3).

Three steps over all processors of all nodes:

1. For every processor, compute the predicted performance loss (relative to
   ``f_max``) at every available frequency and pick the lowest frequency
   whose loss is strictly below ``epsilon`` — the *epsilon-constrained*
   frequency.  An idle-signalled processor gets ``f_min`` outright; a
   processor with no usable counter data conservatively gets ``f_max``.
2. While aggregate processor power exceeds the global limit, repeatedly
   take the processor whose *next lower* frequency has the smallest
   predicted loss versus ``f_max`` and move it down one step.  Idle
   processors (predicted loss 0) drain first; processors with unknown
   workloads are treated pessimistically as pure-CPU (loss grows linearly
   as frequency drops).
3. Assign each processor the minimum stable voltage for its frequency.

If every processor reaches the bottom of the ladder and power still
exceeds the limit, the budget is infeasible for DVFS alone; callers choose
between an exception and the floor schedule (the daemon applies the floor
and lets the compliance monitor record the violation — powering nodes down
is a different governor's job).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from .. import constants
from ..errors import InfeasibleBudgetError, SchedulingError
from ..model.ipc import WorkloadSignature
from ..model.perf import perf_loss
from ..power.table import FrequencyPowerTable
from ..telemetry import Telemetry, get_telemetry
from ..units import check_positive
from .voltage import VoltageSelector

__all__ = [
    "ProcessorView",
    "ProcessorAssignment",
    "Schedule",
    "FrequencyVoltageScheduler",
]


@dataclass(frozen=True, slots=True)
class ProcessorView:
    """What the scheduler knows about one processor at scheduling time."""

    node_id: int
    proc_id: int
    #: Aggregate workload signature from the last window (None = no data).
    signature: WorkloadSignature | None
    #: True when an idle signal is active for this processor (Section 5).
    idle_signaled: bool = False


@dataclass(frozen=True, slots=True)
class ProcessorAssignment:
    """One processor's scheduled operating point."""

    node_id: int
    proc_id: int
    freq_hz: float
    voltage: float
    power_w: float
    #: Predicted fractional loss vs f_max at the final frequency.
    predicted_loss: float
    #: The step-1 epsilon-constrained frequency (before the power pass) —
    #: the "desired" frequency of Figures 9/10.
    eps_freq_hz: float


@dataclass(frozen=True)
class Schedule:
    """A complete scheduling decision."""

    assignments: tuple[ProcessorAssignment, ...]
    total_power_w: float
    power_limit_w: float | None
    epsilon: float
    #: True when the power limit could not be met even at the floor.
    infeasible: bool = field(default=False)
    #: Step-2 downward moves this pass took (0 = step-1 demand already fit
    #: the budget; > 0 means the budget bit — a telemetry "budget breach").
    reduction_steps: int = field(default=0)

    @property
    def budget_met(self) -> bool:
        """Whether predicted power respects the limit (True if unlimited)."""
        if self.power_limit_w is None:
            return True
        return self.total_power_w <= self.power_limit_w + 1e-9

    def frequency_vector_hz(self) -> list[float]:
        """Final frequencies, in (node, proc) order."""
        return [a.freq_hz for a in self.assignments]

    def eps_frequency_vector_hz(self) -> list[float]:
        """Step-1 epsilon-constrained frequencies, in (node, proc) order."""
        return [a.eps_freq_hz for a in self.assignments]

    def power_vector_w(self) -> list[float]:
        """Per-processor power, in (node, proc) order."""
        return [a.power_w for a in self.assignments]

    def loss_vector(self) -> list[float]:
        """Per-processor predicted loss, in (node, proc) order."""
        return [a.predicted_loss for a in self.assignments]

    def assignment_for(self, node_id: int, proc_id: int) -> ProcessorAssignment:
        for a in self.assignments:
            if a.node_id == node_id and a.proc_id == proc_id:
                return a
        raise SchedulingError(f"no assignment for node {node_id} proc {proc_id}")


class FrequencyVoltageScheduler:
    """The Figure 3 algorithm over a fixed operating-point table."""

    def __init__(self, table: FrequencyPowerTable, *,
                 epsilon: float = constants.DEFAULT_EPSILON,
                 voltage_selector: VoltageSelector | None = None,
                 telemetry: Telemetry | None = None) -> None:
        check_positive(epsilon, "epsilon")
        if epsilon >= 1.0:
            raise SchedulingError("epsilon must be < 1")
        self.table = table
        self.epsilon = epsilon
        self.voltages = voltage_selector or VoltageSelector()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        m = self.telemetry.metrics
        self._m_passes = m.counter(
            "scheduler_passes_total", "Complete Figure 3 scheduling passes")
        self._m_step1 = m.counter(
            "scheduler_step1_evaluations_total",
            "Step-1 epsilon-constrained frequency selections (one per view)")
        self._m_step2 = m.counter(
            "scheduler_step2_iterations_total",
            "Step-2 greedy one-step frequency reductions")
        self._m_loss = m.counter(
            "scheduler_loss_evaluations_total",
            "Predicted-loss evaluations across steps 1 and 2")
        self._m_pass_seconds = m.histogram(
            "scheduler_pass_seconds",
            "Wall-clock latency of one scheduling pass")

    # -- step 1 ------------------------------------------------------------------

    def power_for(self, node_id: int, proc_id: int, freq_hz: float) -> float:
        """Power of one processor at an operating point.

        The base scheduler assumes identical parts; the heterogeneous
        subclass overrides this with per-processor tables (process
        variation).
        """
        return self.table.power_at(freq_hz)

    def predicted_loss(self, signature: WorkloadSignature | None,
                       freq_hz: float) -> float:
        """Predicted loss vs f_max at ``freq_hz``.

        Unknown workloads are treated as pure CPU (the pessimistic bound
        ``1 - f/f_max``).
        """
        if signature is None:
            return 1.0 - freq_hz / self.table.f_max_hz
        return perf_loss(signature, self.table.f_max_hz, freq_hz)

    def epsilon_constrained(self, signature: WorkloadSignature | None
                            ) -> tuple[float, float]:
        """Lowest frequency with predicted loss < epsilon.

        Returns ``(freq_hz, predicted_loss_at_freq)``.  Always succeeds:
        ``f_max`` has loss 0.
        """
        freqs = self.table.freqs_array()
        if signature is None:
            losses = 1.0 - freqs / self.table.f_max_hz
        else:
            perf = signature.ipc_array(freqs) * freqs
            losses = (perf[-1] - perf) / perf[-1]
        admissible = np.flatnonzero(losses < self.epsilon)
        idx = int(admissible[0]) if admissible.size else len(freqs) - 1
        return float(freqs[idx]), float(losses[idx])

    # -- the full pass ------------------------------------------------------------

    def schedule(self, views: Sequence[ProcessorView],
                 power_limit_w: float | None = None, *,
                 max_freq_hz: float | None = None,
                 on_infeasible: Literal["floor", "raise"] = "floor") -> Schedule:
        """Run steps 1–3 and return the complete decision.

        ``max_freq_hz`` is an optional per-processor frequency ceiling —
        the mechanism a *thermal* constraint needs, since an aggregate
        power budget cannot stop one CPU-bound processor from running hot
        while its neighbours idle cold.  The ceiling is quantised down to
        the ladder and applied after step 1 (the epsilon-constrained
        "desired" frequency is recorded unclamped).
        """
        if not views:
            raise SchedulingError("no processors to schedule")
        keys = [(v.node_id, v.proc_id) for v in views]
        if len(set(keys)) != len(keys):
            raise SchedulingError("duplicate (node, proc) in views")
        if power_limit_w is not None:
            check_positive(power_limit_w, "power_limit_w")
        cap_hz: float | None = None
        if max_freq_hz is not None:
            check_positive(max_freq_hz, "max_freq_hz")
            if max_freq_hz < self.table.f_min_hz:
                raise SchedulingError(
                    f"frequency ceiling {max_freq_hz:.3e} Hz below the "
                    f"ladder floor {self.table.f_min_hz:.3e} Hz"
                )
            cap_hz = self.table.quantize_down(max_freq_hz)

        tel = self.telemetry
        wall0 = time.perf_counter() if tel.enabled else 0.0

        # Step 1: epsilon-constrained frequencies (then the ceiling).
        freqs: list[float] = []
        eps_freqs: list[float] = []
        step1_evals = 0
        for view in views:
            if view.idle_signaled:
                f = self.table.f_min_hz
            else:
                f, _ = self.epsilon_constrained(view.signature)
                step1_evals += 1
            eps_freqs.append(f)
            if cap_hz is not None:
                f = min(f, cap_hz)
            freqs.append(f)

        # Step 2: greedy power reduction.
        infeasible = False
        steps = loss_evals = 0
        if power_limit_w is not None:
            infeasible, steps, loss_evals = self._reduce_to_budget(
                views, freqs, power_limit_w, on_infeasible)

        # Step 3: voltages, and assembly.
        assignments = []
        for view, f, eps_f in zip(views, freqs, eps_freqs):
            loss = 0.0 if view.idle_signaled else self.predicted_loss(
                view.signature, f)
            assignments.append(ProcessorAssignment(
                node_id=view.node_id,
                proc_id=view.proc_id,
                freq_hz=f,
                voltage=self.voltages.min_voltage(view.node_id, view.proc_id, f),
                power_w=self.power_for(view.node_id, view.proc_id, f),
                predicted_loss=loss,
                eps_freq_hz=eps_f,
            ))
        total = sum(a.power_w for a in assignments)
        if tel.enabled:
            self._m_passes.inc()
            self._m_step1.inc(step1_evals)
            self._m_step2.inc(steps)
            # Step 1 scores the whole ladder per view; step 2 one candidate
            # per probed processor per iteration.
            self._m_loss.inc(step1_evals * len(self.table) + loss_evals)
            self._m_pass_seconds.observe(time.perf_counter() - wall0)
        return Schedule(
            assignments=tuple(assignments),
            total_power_w=total,
            power_limit_w=power_limit_w,
            epsilon=self.epsilon,
            infeasible=infeasible,
            reduction_steps=steps,
        )

    def _reduce_to_budget(self, views: Sequence[ProcessorView],
                          freqs: list[float], limit_w: float,
                          on_infeasible: Literal["floor", "raise"]
                          ) -> tuple[bool, int, int]:
        """Step 2 in place on ``freqs``.

        Returns ``(infeasible, reduction_steps, loss_evaluations)`` so the
        caller can both flag the breach and feed the telemetry counters.
        """
        def total() -> float:
            return sum(
                self.power_for(v.node_id, v.proc_id, f)
                for v, f in zip(views, freqs)
            )

        steps = loss_evals = 0
        while total() > limit_w:
            best_idx: int | None = None
            best_key: tuple[float, int, int] | None = None
            for i, view in enumerate(views):
                f_less = self.table.next_lower(freqs[i])
                if f_less is None:
                    continue
                # Idle processors cost nothing to slow down.
                loss = 0.0 if view.idle_signaled else self.predicted_loss(
                    view.signature, f_less)
                loss_evals += 1
                key = (loss, view.node_id, view.proc_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = i
            if best_idx is None:
                floor = total()
                if on_infeasible == "raise":
                    raise InfeasibleBudgetError(
                        f"power floor {floor:.1f} W exceeds limit {limit_w:.1f} W"
                        " with every processor at minimum frequency",
                        floor_power_w=floor, limit_w=limit_w,
                    )
                return True, steps, loss_evals
            freqs[best_idx] = self.table.next_lower(freqs[best_idx])  # type: ignore[assignment]
            steps += 1
        return False, steps, loss_evals
