"""The frequency and voltage scheduling algorithm (Figure 3).

Three steps over all processors of all nodes:

1. For every processor, compute the predicted performance loss (relative to
   ``f_max``) at every available frequency and pick the lowest frequency
   whose loss is strictly below ``epsilon`` — the *epsilon-constrained*
   frequency.  An idle-signalled processor gets ``f_min`` outright; a
   processor with no usable counter data conservatively gets ``f_max``.
2. While aggregate processor power exceeds the global limit, repeatedly
   take the processor whose *next lower* frequency has the smallest
   predicted loss versus ``f_max`` and move it down one step.  Idle
   processors (predicted loss 0) drain first; processors with unknown
   workloads are treated pessimistically as pure-CPU (loss grows linearly
   as frequency drops).
3. Assign each processor the minimum stable voltage for its frequency.

The implementation is vectorised: step 1 evaluates one ``(P x F)``
predicted-loss matrix over all processors and all ladder rungs in a single
numpy pass, and step 2 runs the Section 5 single-pass formulation — a
min-heap holding each processor's next downward rung keyed by incremental
loss — instead of rescanning every processor per reduction.  Both produce
exactly the schedule the literal Figure 3 loops would (same greedy metric,
same deterministic tie-break, bit-identical losses), which the worked
example and the property tests pin.

If every processor reaches the bottom of the ladder and power still
exceeds the limit, the budget is infeasible for DVFS alone; callers choose
between an exception and the floor schedule (the daemon applies the floor
and lets the compliance monitor record the violation — powering nodes down
is a different governor's job).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Literal, Mapping, NamedTuple, Sequence

import numpy as np

from .. import constants
from ..errors import InfeasibleBudgetError, SchedulingError
from ..model.ipc import WorkloadSignature
from ..model.perf import perf_loss
from ..power.table import FrequencyPowerTable
from ..telemetry import Telemetry, get_telemetry
from ..units import check_positive
from .voltage import VoltageSelector

__all__ = [
    "ProcessorView",
    "ViewBatch",
    "ProcessorAssignment",
    "Schedule",
    "FrequencyVoltageScheduler",
]


@dataclass(frozen=True, slots=True)
class ProcessorView:
    """What the scheduler knows about one processor at scheduling time."""

    node_id: int
    proc_id: int
    #: Aggregate workload signature from the last window (None = no data).
    signature: WorkloadSignature | None
    #: True when an idle signal is active for this processor (Section 5).
    idle_signaled: bool = False


class ViewBatch:
    """Structure-of-arrays form of a population of :class:`ProcessorView`.

    The scheduler's vectorised pass never needs the per-processor objects —
    only the signature columns, the idle mask, and the (node, proc) keys.
    A ``ViewBatch`` carries exactly those as numpy arrays, so a producer
    that already has columns (the cluster coordinator's batched predictor
    path) can skip building N·P ``ProcessorView``/``WorkloadSignature``
    objects per pass, and the scheduler can skip re-extracting arrays from
    them.

    Rows without a usable signature (``has_signature`` False) must hold the
    neutral placeholder values ``core_cpi = 1.0`` and
    ``mem_time_per_instr_s = 0.0`` — the same placeholders the vectorised
    loss matrix uses before masking — which the batched predictors emit.

    The batch also quacks like ``Sequence[ProcessorView]``: iteration and
    indexing lazily materialise (and cache) the equivalent view objects, so
    pointwise fallback paths (subclasses overriding ``predicted_loss``,
    ``epsilon_constrained`` or ``power_for``) and existing callers keep
    working unchanged, just at object-construction cost.
    """

    __slots__ = ("node_ids", "proc_ids", "has_signature", "core_cpi",
                 "mem_time_per_instr_s", "idle_signaled", "_views")

    def __init__(self, node_ids, proc_ids, has_signature, core_cpi,
                 mem_time_per_instr_s, idle_signaled=None) -> None:
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        self.proc_ids = np.asarray(proc_ids, dtype=np.int64)
        self.has_signature = np.asarray(has_signature, dtype=bool)
        self.core_cpi = np.asarray(core_cpi, dtype=float)
        self.mem_time_per_instr_s = np.asarray(mem_time_per_instr_s,
                                               dtype=float)
        n = self.node_ids.size
        if idle_signaled is None:
            self.idle_signaled = np.zeros(n, dtype=bool)
        else:
            self.idle_signaled = np.asarray(idle_signaled, dtype=bool)
        for name in ("proc_ids", "has_signature", "core_cpi",
                     "mem_time_per_instr_s", "idle_signaled"):
            if getattr(self, name).shape != (n,):
                raise SchedulingError(
                    f"ViewBatch column {name!r} has shape "
                    f"{getattr(self, name).shape}, expected ({n},)"
                )
        self._views: list[ProcessorView] | None = None

    @classmethod
    def from_views(cls, views: Sequence[ProcessorView]) -> "ViewBatch":
        """Column form of existing view objects (the thin adapter)."""
        n = len(views)
        batch = cls(
            node_ids=[v.node_id for v in views],
            proc_ids=[v.proc_id for v in views],
            has_signature=np.fromiter(
                (v.signature is not None for v in views), dtype=bool,
                count=n),
            core_cpi=[v.signature.core_cpi if v.signature is not None
                      else 1.0 for v in views],
            mem_time_per_instr_s=[
                v.signature.mem_time_per_instr_s
                if v.signature is not None else 0.0 for v in views],
            idle_signaled=np.fromiter(
                (v.idle_signaled for v in views), dtype=bool, count=n),
        )
        batch._views = list(views)
        return batch

    # -- Sequence[ProcessorView] compatibility ---------------------------------

    def views(self) -> list[ProcessorView]:
        """The equivalent view objects (materialised once, then cached)."""
        if self._views is None:
            sigs = [
                WorkloadSignature(core_cpi=c, mem_time_per_instr_s=m)
                if h else None
                for h, c, m in zip(self.has_signature.tolist(),
                                   self.core_cpi.tolist(),
                                   self.mem_time_per_instr_s.tolist())
            ]
            self._views = [
                ProcessorView(node_id=nd, proc_id=pc, signature=sig,
                              idle_signaled=idle)
                for nd, pc, sig, idle in zip(self.node_ids.tolist(),
                                             self.proc_ids.tolist(), sigs,
                                             self.idle_signaled.tolist())
            ]
        return self._views

    def __len__(self) -> int:
        return self.node_ids.size

    def __iter__(self):
        return iter(self.views())

    def __getitem__(self, index):
        return self.views()[index]

    def __repr__(self) -> str:
        return (f"ViewBatch({len(self)} procs, "
                f"{int(self.has_signature.sum())} with signatures, "
                f"{int(self.idle_signaled.sum())} idle)")


def _view_columns(views: "Sequence[ProcessorView] | ViewBatch"
                  ) -> tuple[list[int], list[int], np.ndarray]:
    """``(node_ids, proc_ids, idle mask)`` of a view population.

    The id lists come out as plain Python values (heap keys and assignment
    fields want them scalar); the idle mask as a bool array.  A
    :class:`ViewBatch` hands its columns over directly.
    """
    if isinstance(views, ViewBatch):
        return (views.node_ids.tolist(), views.proc_ids.tolist(),
                views.idle_signaled)
    n = len(views)
    return ([v.node_id for v in views], [v.proc_id for v in views],
            np.fromiter((v.idle_signaled for v in views), dtype=bool,
                        count=n))


class ProcessorAssignment(NamedTuple):
    """One processor's scheduled operating point.

    A ``NamedTuple`` rather than a dataclass: a global pass materialises
    one per processor, and tuple construction is ~3x cheaper than a frozen
    dataclass ``__init__`` — it is the dominant per-processor cost once
    the rest of the pass is columnar.  Field access, equality, and
    ``repr`` are unchanged.
    """

    node_id: int
    proc_id: int
    freq_hz: float
    voltage: float
    power_w: float
    #: Predicted fractional loss vs f_max at the final frequency.
    predicted_loss: float
    #: The step-1 epsilon-constrained frequency (before the power pass) —
    #: the "desired" frequency of Figures 9/10.
    eps_freq_hz: float


@dataclass(frozen=True)
class Schedule:
    """A complete scheduling decision."""

    assignments: tuple[ProcessorAssignment, ...]
    total_power_w: float
    power_limit_w: float | None
    epsilon: float
    #: True when the power limit could not be met even at the floor.
    infeasible: bool = field(default=False)
    #: Step-2 downward moves this pass took (0 = step-1 demand already fit
    #: the budget; > 0 means the budget bit — a telemetry "budget breach").
    reduction_steps: int = field(default=0)

    @property
    def budget_met(self) -> bool:
        """Whether predicted power respects the limit (True if unlimited)."""
        if self.power_limit_w is None:
            return True
        return self.total_power_w <= self.power_limit_w + 1e-9

    def frequency_vector_hz(self) -> list[float]:
        """Final frequencies, in (node, proc) order."""
        return [a.freq_hz for a in self.assignments]

    def eps_frequency_vector_hz(self) -> list[float]:
        """Step-1 epsilon-constrained frequencies, in (node, proc) order."""
        return [a.eps_freq_hz for a in self.assignments]

    def power_vector_w(self) -> list[float]:
        """Per-processor power, in (node, proc) order."""
        return [a.power_w for a in self.assignments]

    def loss_vector(self) -> list[float]:
        """Per-processor predicted loss, in (node, proc) order."""
        return [a.predicted_loss for a in self.assignments]

    def assignment_for(self, node_id: int, proc_id: int) -> ProcessorAssignment:
        for a in self.assignments:
            if a.node_id == node_id and a.proc_id == proc_id:
                return a
        raise SchedulingError(f"no assignment for node {node_id} proc {proc_id}")


class FrequencyVoltageScheduler:
    """The Figure 3 algorithm over a fixed operating-point table."""

    def __init__(self, table: FrequencyPowerTable, *,
                 epsilon: float = constants.DEFAULT_EPSILON,
                 voltage_selector: VoltageSelector | None = None,
                 telemetry: Telemetry | None = None) -> None:
        check_positive(epsilon, "epsilon")
        if epsilon >= 1.0:
            raise SchedulingError("epsilon must be < 1")
        self.table = table
        self.epsilon = epsilon
        self.voltages = voltage_selector or VoltageSelector()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        m = self.telemetry.metrics
        self._m_passes = m.counter(
            "scheduler_passes_total", "Complete Figure 3 scheduling passes")
        self._m_step1 = m.counter(
            "scheduler_step1_evaluations_total",
            "Step-1 epsilon-constrained frequency selections (one per view)")
        self._m_step2 = m.counter(
            "scheduler_step2_iterations_total",
            "Step-2 greedy one-step frequency reductions")
        self._m_loss = m.counter(
            "scheduler_loss_evaluations_total",
            "Predicted-loss evaluations across steps 1 and 2")
        self._m_pass_seconds = m.histogram(
            "scheduler_pass_seconds",
            "Wall-clock latency of one scheduling pass")

    # -- step 1 ------------------------------------------------------------------

    def power_for(self, node_id: int, proc_id: int, freq_hz: float) -> float:
        """Power of one processor at an operating point.

        The base scheduler assumes identical parts; the heterogeneous
        subclass overrides this with per-processor tables (process
        variation).
        """
        return self.table.power_at(freq_hz)

    def predicted_loss(self, signature: WorkloadSignature | None,
                       freq_hz: float) -> float:
        """Predicted loss vs f_max at ``freq_hz``.

        Unknown workloads are treated as pure CPU (the pessimistic bound
        ``1 - f/f_max``).
        """
        if signature is None:
            return 1.0 - freq_hz / self.table.f_max_hz
        return perf_loss(signature, self.table.f_max_hz, freq_hz)

    def epsilon_constrained(self, signature: WorkloadSignature | None
                            ) -> tuple[float, float]:
        """Lowest frequency with predicted loss < epsilon.

        Returns ``(freq_hz, predicted_loss_at_freq)``.  Always succeeds:
        ``f_max`` has loss 0.
        """
        freqs = self.table.freqs_array()
        if signature is None:
            losses = 1.0 - freqs / self.table.f_max_hz
        else:
            perf = signature.ipc_array(freqs) * freqs
            losses = (perf[-1] - perf) / perf[-1]
        admissible = np.flatnonzero(losses < self.epsilon)
        idx = int(admissible[0]) if admissible.size else len(freqs) - 1
        return float(freqs[idx]), float(losses[idx])

    # -- vectorised evaluation -----------------------------------------------------

    def _loss_matrix(self, views: Sequence[ProcessorView]) -> np.ndarray:
        """Predicted loss vs ``f_max`` for every (processor, rung) pair.

        Row ``i`` holds :meth:`predicted_loss` of ``views[i]`` at every
        ladder frequency (ascending) — one numpy pass instead of ``P x F``
        scalar model evaluations.  The elementwise operations mirror the
        scalar path exactly (``ipc * f``, then the relative drop against
        the ``f_max`` column), so entries are bit-identical to
        :meth:`predicted_loss`.  Idle signals are a step-2/3 concern and
        do not zero rows here.
        """
        freqs = self.table.freqs_array()
        if type(self).predicted_loss is not FrequencyVoltageScheduler.predicted_loss:
            # A subclass redefined the loss model: honour it pointwise.
            return np.array([
                [self.predicted_loss(v.signature, f) for f in self.table.freqs_hz]
                for v in views
            ])
        if isinstance(views, ViewBatch):
            # Columns arrive ready-made; no per-view extraction at all.
            has_sig = views.has_signature
            c0 = views.core_cpi
            m = views.mem_time_per_instr_s
        else:
            n = len(views)
            has_sig = np.fromiter((v.signature is not None for v in views),
                                  dtype=bool, count=n)
            c0 = np.array([v.signature.core_cpi if v.signature is not None
                           else 1.0 for v in views])
            m = np.array([v.signature.mem_time_per_instr_s
                          if v.signature is not None else 0.0 for v in views])
        ipc = 1.0 / (c0[:, None] + m[:, None] * freqs[None, :])
        perf = ipc * freqs[None, :]
        ref = perf[:, -1:]
        losses = (ref - perf) / ref
        if not has_sig.all():
            # No counter data: the pessimistic pure-CPU bound 1 - f/f_max.
            pessimistic = 1.0 - freqs / self.table.f_max_hz
            losses = np.where(has_sig[:, None], losses, pessimistic[None, :])
        return losses

    def _step1_indices(self, views: Sequence[ProcessorView],
                       losses: np.ndarray) -> np.ndarray:
        """Epsilon-constrained rung index per view (idle handled by caller).

        The vectorised first-admissible-rung selection; falls back to the
        (possibly overridden) :meth:`epsilon_constrained` pointwise when a
        subclass replaced step 1, e.g. the continuous-frequency variant.
        """
        if (type(self).epsilon_constrained
                is not FrequencyVoltageScheduler.epsilon_constrained):
            return np.array([
                self.table.index_of(self.epsilon_constrained(v.signature)[0])
                for v in views
            ])
        admissible = losses < self.epsilon
        return np.where(admissible.any(axis=1), admissible.argmax(axis=1),
                        losses.shape[1] - 1)

    def _power_ladders(self, views: Sequence[ProcessorView]) -> np.ndarray:
        """Per-processor power at every rung, shape ``(P, F)``.

        Homogeneous parts share one row (a broadcast view of the table's
        cached power array); a subclass with per-processor power overrides
        :meth:`power_for` (or this method, for bulk lookups) instead.
        """
        if type(self).power_for is FrequencyVoltageScheduler.power_for:
            powers = self.table.powers_array()
            return np.broadcast_to(powers, (len(views), powers.size))
        return np.array([
            [self.power_for(v.node_id, v.proc_id, f)
             for f in self.table.freqs_hz]
            for v in views
        ])

    # -- the full pass ------------------------------------------------------------

    def schedule(self, views: "Sequence[ProcessorView] | ViewBatch",
                 power_limit_w: float | None = None, *,
                 max_freq_hz: float | None = None,
                 min_freqs_hz: Mapping[int, float] | None = None,
                 on_infeasible: Literal["floor", "raise"] = "floor") -> Schedule:
        """Run steps 1–3 and return the complete decision.

        ``max_freq_hz`` is an optional per-processor frequency ceiling —
        the mechanism a *thermal* constraint needs, since an aggregate
        power budget cannot stop one CPU-bound processor from running hot
        while its neighbours idle cold.  The ceiling is quantised down to
        the ladder and applied after step 1 (the epsilon-constrained
        "desired" frequency is recorded unclamped).

        ``min_freqs_hz`` maps node ids to per-node frequency *floors* —
        the mechanism an SLO-latency constraint needs: a node serving
        requests must not drop below the frequency that keeps its tail
        latency under target, no matter how deep the power budget cuts.
        Floors are quantised up to the ladder, win conflicts with the
        idle pin and the ceiling, and bound step 2 from below; a budget
        unreachable without breaking a floor is reported ``infeasible``
        (the floor schedule stands).  Nodes absent from the map have no
        floor; map entries for nodes absent from ``views`` are ignored
        (a degraded pass schedules live nodes only).
        """
        n = len(views)
        if not n:
            raise SchedulingError("no processors to schedule")
        nodes_list, procs_list, idle = _view_columns(views)
        keys = set(zip(nodes_list, procs_list))
        if len(keys) != n:
            raise SchedulingError("duplicate (node, proc) in views")
        if power_limit_w is not None:
            check_positive(power_limit_w, "power_limit_w")
        cap_idx: int | None = None
        if max_freq_hz is not None:
            check_positive(max_freq_hz, "max_freq_hz")
            if max_freq_hz < self.table.f_min_hz:
                raise SchedulingError(
                    f"frequency ceiling {max_freq_hz:.3e} Hz below the "
                    f"ladder floor {self.table.f_min_hz:.3e} Hz"
                )
            cap_idx = self.table.index_of(self.table.quantize_down(max_freq_hz))
        floor_idx = self._floor_indices(nodes_list, min_freqs_hz)

        tel = self.telemetry
        wall0 = time.perf_counter() if tel.enabled else 0.0

        # Step 1: one (P x F) loss matrix, the epsilon rule as a vectorised
        # first-admissible-rung selection, idle pins, the ceiling, then the
        # SLO floors (floors win: a request-serving node must hold its tail
        # latency even against a thermal ceiling or an idle signal).
        losses = self._loss_matrix(views)
        idx = self._step1_indices(views, losses)
        idx[idle] = 0
        eps_idx = idx.copy()
        if cap_idx is not None:
            np.minimum(idx, cap_idx, out=idx)
        if floor_idx is not None:
            np.maximum(idx, floor_idx, out=idx)
        step1_evals = n - int(idle.sum())

        # Step 2: heap-based greedy power reduction.
        infeasible = False
        steps = loss_evals = 0
        if power_limit_w is not None:
            # Idle processors cost nothing to slow down.
            step2_losses = np.where(idle[:, None], 0.0, losses) \
                if idle.any() else losses
            infeasible, steps, loss_evals = self._reduce_indices(
                nodes_list, procs_list, idx, step2_losses,
                self._power_ladders(views), power_limit_w, on_infeasible,
                floor_idx=floor_idx)

        # Step 3: voltages, and assembly.
        assignments, total = self._assemble_assignments(
            nodes_list, procs_list, idx, eps_idx, losses, idle)
        if tel.enabled:
            self._m_passes.inc()
            self._m_step1.inc(step1_evals)
            self._m_step2.inc(steps)
            # Step 1 scores the whole ladder per view; step 2 one candidate
            # per heap push.
            self._m_loss.inc(step1_evals * len(self.table) + loss_evals)
            self._m_pass_seconds.observe(time.perf_counter() - wall0)
        return Schedule(
            assignments=assignments,
            total_power_w=total,
            power_limit_w=power_limit_w,
            epsilon=self.epsilon,
            infeasible=infeasible,
            reduction_steps=steps,
        )

    def _assemble_assignments(self, nodes_list: list[int],
                              procs_list: list[int], idx: np.ndarray,
                              eps_idx: np.ndarray, losses: np.ndarray,
                              idle: np.ndarray
                              ) -> tuple[tuple[ProcessorAssignment, ...],
                                         float]:
        """Step 3 plus assembly: the final per-processor operating points.

        Works column-wise: per-field lists indexed by rung, then one
        positional ``map`` over the columns — scalar lookups off plain
        Python lists beat numpy scalar indexing at this size, and one
        ``map`` beats P keyword constructor calls.  Homogeneous parts read
        power straight off the table's rung tuple (``power_for`` resolves
        to exactly that entry), and a plain :class:`VoltageSelector` with
        no per-processor overrides collapses to one voltage per rung.
        """
        n = len(nodes_list)
        freqs_list = self.table.freqs_hz
        idx_list = idx.tolist()
        freq_i = [freqs_list[k] for k in idx_list]
        eps_i = [freqs_list[k] for k in eps_idx.tolist()]
        loss_i = np.where(idle, 0.0, losses[np.arange(n), idx]).tolist()
        rung_volts = self.voltages.rung_voltages(freqs_list) \
            if type(self.voltages) is VoltageSelector else None
        if rung_volts is not None:
            volt_i = [rung_volts[k] for k in idx_list]
        else:
            min_voltage = self.voltages.min_voltage
            volt_i = [min_voltage(nodes_list[i], procs_list[i], freq_i[i])
                      for i in range(n)]
        if type(self).power_for is FrequencyVoltageScheduler.power_for:
            powers_list = self.table.powers_w
            power_i = [powers_list[k] for k in idx_list]
        else:
            power_for = self.power_for
            power_i = [power_for(nodes_list[i], procs_list[i], freq_i[i])
                       for i in range(n)]
        assignments = tuple(map(ProcessorAssignment, nodes_list, procs_list,
                                freq_i, volt_i, power_i, loss_i, eps_i))
        return assignments, sum(power_i)

    def _floor_indices(self, node_ids: Sequence[int],
                       min_freqs_hz: Mapping[int, float] | None
                       ) -> np.ndarray | None:
        """Per-row rung floors from a node-id -> frequency-floor map.

        Floors are quantised *up* (the next ladder point at or above the
        requested frequency — rounding down would break the latency
        guarantee the floor encodes) and clamp to the top of the ladder.
        Nodes absent from the map floor at rung 0; map entries naming no
        row are ignored.  Returns ``None`` when no floors apply.
        """
        if not min_freqs_hz:
            return None
        idx_by_node: dict[int, int] = {}
        for node_id, freq_hz in min_freqs_hz.items():
            check_positive(freq_hz, f"min_freqs_hz[{node_id}]")
            idx_by_node[node_id] = self.table.index_of(
                self.table.quantize_up(freq_hz))
        floor_idx = np.fromiter((idx_by_node.get(node_id, 0)
                                 for node_id in node_ids),
                                dtype=np.int64, count=len(node_ids))
        return floor_idx if floor_idx.any() else None

    def _reduce_indices(self, node_ids: Sequence[int],
                        proc_ids: Sequence[int],
                        idx: np.ndarray, losses: np.ndarray,
                        ladders: np.ndarray, limit_w: float,
                        on_infeasible: Literal["floor", "raise"],
                        floor_idx: np.ndarray | None = None
                        ) -> tuple[bool, int, int]:
        """Heap-based step 2, in place on the rung indices ``idx``.

        ``node_ids``/``proc_ids`` supply the deterministic heap tie-break
        keys; ``losses`` are step-2 incremental-loss rows (idle rows zeroed
        by the caller); ``ladders`` is the ``(P x F)`` per-processor power
        matrix.  Each processor holds exactly one live heap entry — its
        next downward rung keyed by ``(loss, node, proc)`` — so the pop
        order reproduces Figure 3's rescanning greedy exactly, in
        O(total rungs x log P) instead of O(steps x P).

        ``floor_idx`` raises individual processors' reduction floors above
        rung 0 (per-node SLO frequency floors); without it every processor
        may drain to the bottom of the ladder, exactly as before.

        Returns ``(infeasible, reduction_steps, loss_evaluations)`` so the
        caller can both flag the breach and feed the telemetry counters.
        """
        n = len(node_ids)
        idx_list = idx.tolist()
        lo_list = [0] * n if floor_idx is None else floor_idx.tolist()
        # Python-sum in view order, exactly as a per-processor rescan would.
        total = sum(ladders[np.arange(n), idx].tolist())
        if total <= limit_w:
            return False, 0, 0
        # The loop below is scalar by nature; plain nested lists beat numpy
        # scalar indexing several-fold.  A broadcast ladder (homogeneous
        # parts) collapses to one shared row.
        if ladders.ndim == 2 and ladders.strides[0] == 0:
            ladder_rows = [ladders[0].tolist()] * n
        else:
            ladder_rows = ladders.tolist()
        loss_rows = losses.tolist()
        heap: list[tuple[float, int, int, int]] = []  # (loss, node, proc, i)
        loss_evals = 0
        for i in range(n):
            k = idx_list[i]
            if k > lo_list[i]:
                heap.append((loss_rows[i][k - 1],
                             node_ids[i], proc_ids[i], i))
                loss_evals += 1
        heapq.heapify(heap)
        heappop, heappush = heapq.heappop, heapq.heappush
        steps = 0
        try:
            while total > limit_w:
                if not heap:
                    if on_infeasible == "raise":
                        raise InfeasibleBudgetError(
                            f"power floor {total:.1f} W exceeds limit "
                            f"{limit_w:.1f} W"
                            " with every processor at minimum frequency",
                            floor_power_w=total, limit_w=limit_w,
                        )
                    return True, steps, loss_evals
                _loss, node_id, proc_id, i = heappop(heap)
                k = idx_list[i]
                if k <= lo_list[i]:
                    continue   # stale entry: already at the floor
                row = ladder_rows[i]
                total += row[k - 1] - row[k]
                idx_list[i] = k - 1
                steps += 1
                if k - 1 > lo_list[i]:
                    heappush(heap, (loss_rows[i][k - 2],
                                    node_id, proc_id, i))
                    loss_evals += 1
        finally:
            idx[:] = idx_list
        return False, steps, loss_evals

    def _reduce_to_budget(self, views: "Sequence[ProcessorView] | ViewBatch",
                          freqs: list[float], limit_w: float,
                          on_infeasible: Literal["floor", "raise"]
                          ) -> tuple[bool, int, int]:
        """Step 2 in place on ``freqs`` (explicit frequency-list form).

        A wrapper over :meth:`_reduce_indices` for callers that carry
        frequency lists rather than rung indices — the nested-budget
        scheduler's scoped per-node passes.  Returns
        ``(infeasible, reduction_steps, loss_evaluations)``.
        """
        nodes_list, procs_list, idle = _view_columns(views)
        idx = np.array([self.table.index_of(f) for f in freqs])
        losses = self._loss_matrix(views)
        if idle.any():
            losses = np.where(idle[:, None], 0.0, losses)
        result = self._reduce_indices(nodes_list, procs_list, idx, losses,
                                      self._power_ladders(views), limit_w,
                                      on_infeasible)
        freqs_arr = self.table.freqs_array()
        freqs[:] = [float(freqs_arr[int(k)]) for k in idx]
        return result
