"""The fvsst daemon (Section 6).

A privileged user-level process that periodically reads the performance
counters of every processor (period ``t``), runs the Figure 3 scheduling
calculation every ``T = n * t`` (or immediately on a power-limit trigger),
applies the chosen frequencies through the throttle actuators, and logs
both streams.  Its own execution steals core time according to an
:class:`OverheadModel` — the overhead Figure 4 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from .. import constants
from ..errors import SchedulingError
from ..sim.counters import CounterReader, CounterSample
from ..sim.driver import Simulation
from ..sim.machine import SMPMachine
from ..sim.rng import spawn_rngs
from ..telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    EVENT_FREQUENCY_CHANGE,
    Telemetry,
    get_telemetry,
)
from ..units import check_non_negative, check_positive
from .governor import Governor
from .logs import CounterLogEntry, FvsstLog, ScheduleLogEntry
from .predictor import CounterPredictor, PredictorProtocol
from .scheduler import FrequencyVoltageScheduler, ProcessorView, Schedule
from .triggers import IdleTransition, PowerLimitChange, TriggerBus

__all__ = ["OverheadModel", "DaemonConfig", "FvsstDaemon"]


@dataclass(frozen=True, slots=True)
class OverheadModel:
    """CPU time fvsst's own code consumes (charged to its host core)."""

    #: Reading one core's counters through the kernel interface.
    sample_cost_s: float = 25e-6
    #: One scheduling calculation (all processors).
    schedule_cost_s: float = 150e-6
    #: Applying one frequency change through the throttle interface.
    actuation_cost_s: float = 10e-6
    enabled: bool = True

    def __post_init__(self) -> None:
        check_non_negative(self.sample_cost_s, "sample_cost_s")
        check_non_negative(self.schedule_cost_s, "schedule_cost_s")
        check_non_negative(self.actuation_cost_s, "actuation_cost_s")


@dataclass(frozen=True)
class DaemonConfig:
    """fvsst tunables (defaults are the paper's: t=10 ms, T=100 ms)."""

    epsilon: float = constants.DEFAULT_EPSILON
    #: Counter sampling period t.
    sample_period_s: float = constants.DEFAULT_DISPATCH_PERIOD_S
    #: Scheduling every n samples (T = n * t).
    schedule_every: int = 10
    #: Global processor power limit (None = unconstrained).
    power_limit_w: float | None = None
    #: Multiplicative noise on counter reads.
    counter_noise_sigma: float = 0.005
    #: Core the single-threaded daemon runs on.
    daemon_core: int = 0
    overhead: OverheadModel = field(default_factory=OverheadModel)
    #: Subscribe to idle signals and pin idle processors at f_min.
    idle_detection: bool = False
    #: Infer idleness from the halted-cycle counter instead of (or in
    #: addition to) explicit signals: a window whose halted fraction
    #: exceeds this threshold marks the processor idle for the next pass.
    #: Section 5: "If the processor idles by halting and has a performance
    #: counter that tracks the number of halted cycles, then there is no
    #: need for the idle indicator."  ``None`` disables the inference
    #: (meaningless on hot-idling parts, whose counter never moves).
    halted_idle_threshold: float | None = None
    #: Close the loop against the power meter (Section 5: "the use of
    #: power measurement ... ensures that the system stays below the
    #: absolute limit").  When the *measured* processor draw exceeds the
    #: limit — table drift, process variation, meter truth vs belief —
    #: the daemon tightens an internal planning limit proportionally and
    #: relaxes it back when headroom reappears.
    measured_feedback: bool = False
    #: Proportional tightening gain applied to the measured excess.
    feedback_gain: float = 0.8
    #: Fraction of the remaining gap recovered per pass — but only while
    #: the measured draw sits below the limit by ``feedback_margin`` (a
    #: deadband that prevents the tighten/relax limit cycle).
    feedback_relax: float = 0.10
    #: Relative headroom required before the planning limit relaxes.
    feedback_margin: float = 0.03
    #: Node id used in logs and views (single-machine daemons are node 0).
    node_id: int = 0

    def __post_init__(self) -> None:
        check_positive(self.sample_period_s, "sample_period_s")
        if self.schedule_every < 1:
            raise SchedulingError("schedule_every must be >= 1")
        if self.power_limit_w is not None:
            check_positive(self.power_limit_w, "power_limit_w")
        check_non_negative(self.counter_noise_sigma, "counter_noise_sigma")
        if self.halted_idle_threshold is not None and not \
                0.0 < self.halted_idle_threshold <= 1.0:
            raise SchedulingError(
                "halted_idle_threshold must lie in (0, 1]"
            )
        if not 0.0 < self.feedback_gain <= 2.0:
            raise SchedulingError("feedback_gain must lie in (0, 2]")
        if not 0.0 < self.feedback_relax <= 1.0:
            raise SchedulingError("feedback_relax must lie in (0, 1]")

    @property
    def schedule_period_s(self) -> float:
        """T = n * t."""
        return self.sample_period_s * self.schedule_every


class FvsstDaemon(Governor):
    """The frequency and voltage scheduler daemon."""

    name = "fvsst"

    def __init__(self, machine: SMPMachine,
                 config: DaemonConfig | None = None, *,
                 scheduler: FrequencyVoltageScheduler | None = None,
                 predictor: PredictorProtocol | None = None,
                 telemetry: Telemetry | None = None,
                 seed: int | None = None) -> None:
        super().__init__(machine)
        self.config = config or DaemonConfig()
        cfg = self.config
        if not 0 <= cfg.daemon_core < machine.num_cores:
            raise SchedulingError(
                f"daemon_core {cfg.daemon_core} out of range"
            )
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.scheduler = scheduler or FrequencyVoltageScheduler(
            machine.table, epsilon=cfg.epsilon, telemetry=self.telemetry
        )
        self.predictor = predictor or CounterPredictor(machine.config.latencies)
        rngs = spawn_rngs(seed, machine.num_cores)
        self.readers = [
            CounterReader(core.counters,
                          noise_sigma=cfg.counter_noise_sigma, rng=rngs[i])
            for i, core in enumerate(machine.cores)
        ]
        self.log = FvsstLog()
        self.triggers = TriggerBus()
        self.triggers.subscribe(PowerLimitChange, self._on_limit_trigger)
        self.triggers.subscribe(IdleTransition, self._on_idle_trigger)
        self.power_limit_w = cfg.power_limit_w
        self._windows: list[list[CounterSample]] = [
            [] for _ in machine.cores
        ]
        self._cached_views: list[ProcessorView] | None = None
        self._idle_flags = [False] * machine.num_cores
        self._sample_count = 0
        #: Per-processor frequency ceiling (thermal throttle), if any.
        self.frequency_cap_hz: float | None = None
        #: Internal planning limit maintained by the measured-power
        #: feedback loop (None until the loop engages).
        self._planning_limit_w: float | None = None
        #: Last schedule applied (None before the first pass).
        self.last_schedule: Schedule | None = None
        m = self.telemetry.metrics
        self._m_sample_ticks = m.counter(
            "fvsst_sample_ticks_total", "Counter-sampling timer firings")
        self._m_samples = m.counter(
            "fvsst_counter_samples_total", "Per-processor counter reads")
        self._m_sample_seconds = m.histogram(
            "fvsst_sample_pass_seconds",
            "Wall-clock latency of one sampling pass (all processors)")
        self._m_sched_passes = m.counter(
            "fvsst_schedule_passes_total", "Daemon scheduling passes")
        self._m_sched_seconds = m.histogram(
            "fvsst_schedule_pass_seconds",
            "Wall-clock latency of one daemon scheduling pass")
        self._m_transitions = m.counter(
            "fvsst_frequency_transitions_total",
            "Applied frequency changes (actuations)")
        self._m_breaches = m.counter(
            "fvsst_budget_breaches_total",
            "Passes whose step-1 demand exceeded the power limit")
        self._m_planned_power = m.gauge(
            "fvsst_planned_power_watts",
            "Total scheduled processor power of the last pass")
        self._m_limit = m.gauge(
            "fvsst_power_limit_watts",
            "Power limit in force (-1 when unconstrained)")
        # Per-tick stats batch locally (plain attribute updates) and
        # flush into the registry once per scheduling pass / snapshot.
        self._pending_ticks = 0
        self._pending_sample_s: list[float] = []
        if self.telemetry.enabled:
            self.telemetry.add_flusher(self._flush_sample_stats)

    # -- attachment ---------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Install the periodic sampler (and idle subscriptions)."""
        super().attach(sim)
        if self.config.idle_detection:
            for core in self.machine.cores:
                core.idle_detector.enabled = True
                core.idle_detector.subscribe(self._idle_signal_from_core)
        sim.every(self.config.sample_period_s, self._on_sample_tick,
                  name="fvsst-sample")

    # -- the sampling/scheduling loop --------------------------------------------------

    def _charge_overhead(self, cost_s: float) -> None:
        if self.config.overhead.enabled and cost_s > 0.0:
            self.machine.core(self.config.daemon_core).steal_time(cost_s)

    def _on_sample_tick(self, now_s: float) -> None:
        if self.telemetry.enabled:
            wall0 = time.perf_counter()
            self._collect_samples(now_s)
            self._pending_ticks += 1
            self._pending_sample_s.append(time.perf_counter() - wall0)
        else:
            self._collect_samples(now_s)
        self._sample_count += 1
        if self._sample_count % self.config.schedule_every == 0:
            self._run_schedule(now_s)

    def _flush_sample_stats(self) -> None:
        """Push tick-batched stats into the registry (one lock per batch)."""
        if self._pending_ticks:
            self._m_sample_ticks.inc(self._pending_ticks)
            self._m_samples.inc(self._pending_ticks * self.machine.num_cores)
            self._pending_ticks = 0
        if self._pending_sample_s:
            self._m_sample_seconds.observe_many(self._pending_sample_s)
            self._pending_sample_s = []

    def _collect_samples(self, now_s: float) -> None:
        """Read every processor's counters (kernel-mediated, bulk-charged);
        the multi-threaded daemon overrides the charging placement."""
        cfg = self.config
        for i, reader in enumerate(self.readers):
            sample = reader.sample(now_s)
            self._windows[i].append(sample)
            self.log.record_sample(CounterLogEntry(
                time_s=now_s, node_id=cfg.node_id, proc_id=i, sample=sample,
            ))
        self._charge_overhead(cfg.overhead.sample_cost_s
                              * self.machine.num_cores)

    def _aggregate_window(self, proc: int, now_s: float) -> CounterSample | None:
        window = self._windows[proc]
        if not window:
            return None
        return CounterSample(
            time_s=now_s,
            interval_s=sum(s.interval_s for s in window),
            instructions=sum(s.instructions for s in window),
            cycles=sum(s.cycles for s in window),
            n_l2=sum(s.n_l2 for s in window),
            n_l3=sum(s.n_l3 for s in window),
            n_mem=sum(s.n_mem for s in window),
            l1_stall_cycles=sum(s.l1_stall_cycles for s in window),
            halted_cycles=sum(s.halted_cycles for s in window),
        )

    def _build_views(self, now_s: float) -> list[ProcessorView]:
        views: list[ProcessorView] = []
        threshold = self.config.halted_idle_threshold
        for i in range(self.machine.num_cores):
            aggregate = self._aggregate_window(i, now_s)
            signature = (None if aggregate is None
                         else self.predictor.signature_from_sample(aggregate))
            if signature is None and self._cached_views is not None:
                # Window too thin (e.g. a trigger fired mid-window): fall
                # back to the last pass's knowledge.
                signature = self._cached_views[i].signature
            idle = self._idle_flags[i]
            if (threshold is not None and aggregate is not None
                    and aggregate.halted_fraction >= threshold):
                # Halting hardware: the counter itself is the idle
                # indicator (Section 5) — no explicit signal required.
                idle = True
            views.append(ProcessorView(
                node_id=self.config.node_id,
                proc_id=i,
                signature=signature,
                idle_signaled=idle,
            ))
        return views

    def _effective_limit_w(self, now_s: float) -> float | None:
        """The limit the scheduler plans against this pass.

        With measured feedback enabled, the measured processor draw is
        compared with the hard limit: excess tightens the internal
        planning limit proportionally; compliance relaxes it back toward
        the hard limit.
        """
        cfg = self.config
        if self.power_limit_w is None:
            self._planning_limit_w = None
            return None
        if not cfg.measured_feedback:
            return self.power_limit_w
        if self._planning_limit_w is None:
            self._planning_limit_w = self.power_limit_w
        measured = self.machine.measure_cpu_power_w()
        excess = measured - self.power_limit_w
        if excess > 0.0:
            floor = self.machine.num_cores * self.machine.table.min_power_w
            self._planning_limit_w = max(
                floor * 0.5, self._planning_limit_w - cfg.feedback_gain * excess
            )
        elif measured <= self.power_limit_w * (1.0 - cfg.feedback_margin):
            # Deadband: only creep back up with real headroom in hand.
            gap = self.power_limit_w - self._planning_limit_w
            self._planning_limit_w += cfg.feedback_relax * gap
        return min(self._planning_limit_w, self.power_limit_w)

    def _run_schedule(self, now_s: float) -> None:
        tel = self.telemetry
        if not tel.enabled:
            self._schedule_pass(now_s)
            return
        wall0 = time.perf_counter()
        with tel.tracer.span("fvsst.schedule_pass", sim_time_s=now_s,
                             node=self.config.node_id) as span:
            schedule, transitions = self._schedule_pass(now_s)
            span.set_attr("transitions", transitions)
            span.set_attr("total_power_w", schedule.total_power_w)
            span.set_attr("infeasible", schedule.infeasible)
        elapsed = time.perf_counter() - wall0
        self._flush_sample_stats()
        self._m_sched_passes.inc()
        self._m_sched_seconds.observe(elapsed)
        self._m_transitions.inc(transitions)
        self._m_planned_power.set(schedule.total_power_w)
        self._m_limit.set(-1.0 if self.power_limit_w is None
                          else self.power_limit_w)
        if schedule.reduction_steps or schedule.infeasible:
            self._m_breaches.inc()
            tel.emit(EVENT_BUDGET_BREACH, sim_time_s=now_s,
                     node=self.config.node_id,
                     limit_w=schedule.power_limit_w,
                     planned_power_w=schedule.total_power_w,
                     reduction_steps=schedule.reduction_steps,
                     infeasible=schedule.infeasible)

    def _schedule_pass(self, now_s: float) -> tuple[Schedule, int]:
        """One full pass: views → schedule → actuation → logs."""
        cfg = self.config
        views = self._build_views(now_s)
        self._cached_views = views
        schedule = self.scheduler.schedule(views,
                                           self._effective_limit_w(now_s),
                                           max_freq_hz=self.frequency_cap_hz,
                                           on_infeasible="floor")
        transitions = self._apply(schedule, now_s)
        self._charge_overhead(cfg.overhead.schedule_cost_s
                              + cfg.overhead.actuation_cost_s * transitions)
        for view, assignment in zip(views, schedule.assignments):
            predicted = (None if view.signature is None
                         else view.signature.ipc(assignment.freq_hz))
            self.log.record_schedule(ScheduleLogEntry(
                time_s=now_s,
                node_id=assignment.node_id,
                proc_id=assignment.proc_id,
                freq_hz=assignment.freq_hz,
                eps_freq_hz=assignment.eps_freq_hz,
                voltage=assignment.voltage,
                power_w=assignment.power_w,
                predicted_loss=assignment.predicted_loss,
                predicted_ipc=predicted,
                power_limit_w=self.power_limit_w,
                infeasible=schedule.infeasible,
            ))
        self.last_schedule = schedule
        for w in self._windows:
            w.clear()
        return schedule, transitions

    def _apply(self, schedule: Schedule, now_s: float) -> int:
        """Push the decision into the actuators; returns transition count."""
        tel = self.telemetry
        transitions = 0
        for assignment in schedule.assignments:
            core = self.machine.core(assignment.proc_id)
            old_hz = core.frequency_setting_hz
            if old_hz != assignment.freq_hz:
                transitions += 1
                self._charge_transition(core)
                if tel.enabled:
                    tel.emit(EVENT_FREQUENCY_CHANGE, sim_time_s=now_s,
                             node=self.config.node_id,
                             proc=assignment.proc_id,
                             old_hz=old_hz, new_hz=assignment.freq_hz)
            core.set_frequency(assignment.freq_hz, now_s)
        self._after_apply()
        return transitions

    def _charge_transition(self, core) -> None:
        """Per-core actuation charge hook (bulk-charged here; the
        multi-threaded daemon steals from the actuated core instead)."""

    def _after_apply(self) -> None:
        """Post-actuation hook (the multi-threaded daemon charges the
        centralised scheduling calculation here)."""

    # -- triggers --------------------------------------------------------------------

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        """Install a new global limit and reschedule immediately.

        This is the rapid-response path of the motivating example: the
        system must be under the new limit well before the supply cascade
        deadline, so the daemon does not wait for the next timer firing.
        """
        self.triggers.publish(PowerLimitChange(time_s=now_s,
                                               new_limit_w=limit_w))

    def _on_limit_trigger(self, trigger: PowerLimitChange) -> None:
        self.power_limit_w = trigger.new_limit_w
        self._planning_limit_w = None   # feedback restarts at the new limit
        if self.telemetry.enabled:
            self.telemetry.emit(EVENT_CURTAILMENT,
                                sim_time_s=trigger.time_s,
                                node=self.config.node_id,
                                new_limit_w=trigger.new_limit_w)
        self._run_schedule(trigger.time_s)

    def set_frequency_cap(self, cap_hz: float | None, now_s: float) -> None:
        """Install (or lift, with ``None``) a per-processor frequency
        ceiling and reschedule immediately.

        This is the thermal-throttle path: unlike the aggregate power
        limit, a ceiling bounds *every* processor, so the hottest core's
        power is actually constrained (see the thermal experiment).
        """
        self.frequency_cap_hz = cap_hz
        self._run_schedule(now_s)

    def _idle_signal_from_core(self, core_id: int, is_idle: bool) -> None:
        now = self.sim.now_s if self._sim is not None else 0.0
        self.triggers.publish(IdleTransition(
            time_s=now, node_id=self.config.node_id,
            proc_id=core_id, is_idle=is_idle,
        ))

    def _on_idle_trigger(self, trigger: IdleTransition) -> None:
        self._idle_flags[trigger.proc_id] = trigger.is_idle
        if trigger.is_idle:
            # Pin the idle processor at the floor immediately (Section 5).
            self.machine.core(trigger.proc_id).set_frequency(
                self.machine.table.f_min_hz, trigger.time_s
            )
        else:
            # Leaving idle: resume normal operation right away rather than
            # waiting out the timer at the floor frequency.
            self._run_schedule(trigger.time_s)

    # -- conveniences -----------------------------------------------------------------

    def with_config(self, **changes) -> "FvsstDaemon":
        """A fresh daemon on the same machine with amended config (used by
        parameter-sweep benches)."""
        return FvsstDaemon(self.machine, replace(self.config, **changes),
                           scheduler=self.scheduler, predictor=self.predictor,
                           telemetry=self.telemetry)
