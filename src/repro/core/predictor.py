"""Counter-driven IPC predictors.

Two realisations of the Section 4.3 model:

* :class:`CounterPredictor` (the default, and what a deployed system does):
  recover the frequency-independent CPI component ``c0`` from the *observed*
  CPI at the interval's effective frequency —

      c0 = CPI_observed - m * f_effective

  where ``m`` comes from the memory counters and the latency table.  This
  needs no assumed ``alpha``: whatever ILP the workload achieved is folded
  into the observation.  Remaining error sources: phase transitions between
  the observation and prediction windows, counter noise, latency jitter,
  and throttle settling — exactly the sources the paper discusses with
  Table 2.

* :class:`AlphaPredictor` (the paper's literal equation): build ``c0`` from
  an assumed platform constant ``alpha`` plus counted L1 stalls.  Biased
  whenever the true ILP differs from the assumption (the "predictor does
  not account for non-memory stalls" bias named in Section 8.1); kept for
  the predictor-variant ablation.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..errors import ModelError
from ..model.ipc import WorkloadSignature, signature_from_counts
from ..model.latency import MemoryLatencyProfile
from ..sim.counters import CounterSample
from ..units import check_positive

__all__ = ["PredictorProtocol", "CounterPredictor", "AlphaPredictor",
           "SignatureArrays"]

#: Floor on the recovered core CPI: even a perfect machine needs some
#: cycles per instruction; noise must not drive ``c0`` to zero or negative.
_MIN_CORE_CPI = 0.05

#: Minimum instructions in a window for a meaningful signature.
_MIN_INSTRUCTIONS = 1000.0


#: Column triple returned by the batched predictor paths:
#: ``(has_signature, core_cpi, mem_time_per_instr_s)``.  Rows whose window
#: carries no usable signature hold the scheduler's neutral placeholder
#: values (``core_cpi = 1.0``, ``mem_time_per_instr_s = 0.0``) and are
#: masked out by ``has_signature``.
SignatureArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


class PredictorProtocol(Protocol):
    """What the daemon and scheduler require of a predictor.

    Predictors may additionally offer the optional batched entry point
    ``signatures_from_arrays`` (see :class:`CounterPredictor`); callers
    feature-detect it with ``hasattr`` and fall back to per-sample calls.
    """

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        """Workload signature from one counter window, or ``None`` when the
        window carries too little information (halted/empty intervals)."""
        ...


class CounterPredictor:
    """Observation-calibrated predictor (no assumed alpha)."""

    def __init__(self, latencies: MemoryLatencyProfile, *,
                 min_instructions: float = _MIN_INSTRUCTIONS) -> None:
        check_positive(min_instructions, "min_instructions")
        self.latencies = latencies
        self.min_instructions = min_instructions

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        if sample.instructions < self.min_instructions or sample.cycles <= 0.0:
            return None
        if sample.interval_s <= 0.0:
            return None
        cpi_observed = sample.cycles / sample.instructions
        mem_time_per_instr = (
            sample.memory_counts().memory_time_s(self.latencies)
            / sample.instructions
        )
        f_effective = sample.effective_freq_hz
        core_cpi = cpi_observed - mem_time_per_instr * f_effective
        core_cpi = max(core_cpi, _MIN_CORE_CPI)
        return WorkloadSignature(
            core_cpi=core_cpi, mem_time_per_instr_s=mem_time_per_instr
        )

    def predict_ipc(self, sample: CounterSample, freq_hz: float) -> float | None:
        """Projected IPC at ``freq_hz`` (None on an uninformative window)."""
        sig = self.signature_from_sample(sample)
        return None if sig is None else sig.ipc(freq_hz)

    def signatures_from_arrays(self, instructions: np.ndarray,
                               cycles: np.ndarray, n_l2: np.ndarray,
                               n_l3: np.ndarray, n_mem: np.ndarray,
                               l1_stall_cycles: np.ndarray,
                               interval_s: np.ndarray) -> SignatureArrays:
        """Vectorised :meth:`signature_from_sample` over N windows at once.

        One numpy evaluation replaces N scalar calls; every elementwise
        operation mirrors the scalar path in the same order, so valid rows
        are bit-identical to the per-sample signatures.  Inputs must be
        non-negative, as counter readers produce them (a scalar call would
        reject negative counts with an exception; the batch path does not
        re-validate per row).
        """
        instr = np.asarray(instructions, dtype=float)
        cyc = np.asarray(cycles, dtype=float)
        interval = np.asarray(interval_s, dtype=float)
        valid = (instr >= self.min_instructions) & (cyc > 0.0) \
            & (interval > 0.0)
        safe_instr = np.where(valid, instr, 1.0)
        safe_interval = np.where(valid, interval, 1.0)
        cpi_observed = cyc / safe_instr
        lat = self.latencies
        mem_total_s = (np.asarray(n_l2, dtype=float) * lat.t_l2_s
                       + np.asarray(n_l3, dtype=float) * lat.t_l3_s
                       + np.asarray(n_mem, dtype=float) * lat.t_mem_s)
        mem_time = mem_total_s / safe_instr
        f_effective = cyc / safe_interval
        core_cpi = np.maximum(cpi_observed - mem_time * f_effective,
                              _MIN_CORE_CPI)
        return (valid,
                np.where(valid, core_cpi, 1.0),
                np.where(valid, mem_time, 0.0))


class AlphaPredictor:
    """The paper's literal equation with an assumed platform ``alpha``."""

    def __init__(self, latencies: MemoryLatencyProfile, *, alpha: float,
                 min_instructions: float = _MIN_INSTRUCTIONS) -> None:
        check_positive(alpha, "alpha")
        check_positive(min_instructions, "min_instructions")
        self.latencies = latencies
        self.alpha = alpha
        self.min_instructions = min_instructions

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        if sample.instructions < self.min_instructions:
            return None
        try:
            return signature_from_counts(
                sample.memory_counts(), self.latencies, alpha=self.alpha
            )
        except ModelError:
            return None

    def predict_ipc(self, sample: CounterSample, freq_hz: float) -> float | None:
        """Projected IPC at ``freq_hz`` (None on an uninformative window)."""
        sig = self.signature_from_sample(sample)
        return None if sig is None else sig.ipc(freq_hz)

    def signatures_from_arrays(self, instructions: np.ndarray,
                               cycles: np.ndarray, n_l2: np.ndarray,
                               n_l3: np.ndarray, n_mem: np.ndarray,
                               l1_stall_cycles: np.ndarray,
                               interval_s: np.ndarray) -> SignatureArrays:
        """Vectorised :meth:`signature_from_sample` over N windows at once.

        The alpha model ignores ``cycles`` and ``interval_s`` (the assumed
        platform constant replaces observation) exactly as the scalar path
        does; they are accepted so both predictors share one batched
        calling convention.  Valid rows are bit-identical to the scalar
        signatures.
        """
        del cycles, interval_s  # unused by the alpha model, as scalar
        instr = np.asarray(instructions, dtype=float)
        valid = instr >= self.min_instructions
        safe_instr = np.where(valid, instr, 1.0)
        core_cpi = (1.0 / self.alpha
                    + np.asarray(l1_stall_cycles, dtype=float) / safe_instr)
        lat = self.latencies
        mem_total_s = (np.asarray(n_l2, dtype=float) * lat.t_l2_s
                       + np.asarray(n_l3, dtype=float) * lat.t_l3_s
                       + np.asarray(n_mem, dtype=float) * lat.t_mem_s)
        mem_time = mem_total_s / safe_instr
        return (valid,
                np.where(valid, core_cpi, 1.0),
                np.where(valid, mem_time, 0.0))
