"""Counter-driven IPC predictors.

Two realisations of the Section 4.3 model:

* :class:`CounterPredictor` (the default, and what a deployed system does):
  recover the frequency-independent CPI component ``c0`` from the *observed*
  CPI at the interval's effective frequency —

      c0 = CPI_observed - m * f_effective

  where ``m`` comes from the memory counters and the latency table.  This
  needs no assumed ``alpha``: whatever ILP the workload achieved is folded
  into the observation.  Remaining error sources: phase transitions between
  the observation and prediction windows, counter noise, latency jitter,
  and throttle settling — exactly the sources the paper discusses with
  Table 2.

* :class:`AlphaPredictor` (the paper's literal equation): build ``c0`` from
  an assumed platform constant ``alpha`` plus counted L1 stalls.  Biased
  whenever the true ILP differs from the assumption (the "predictor does
  not account for non-memory stalls" bias named in Section 8.1); kept for
  the predictor-variant ablation.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import ModelError
from ..model.ipc import WorkloadSignature, signature_from_counts
from ..model.latency import MemoryLatencyProfile
from ..sim.counters import CounterSample
from ..units import check_positive

__all__ = ["PredictorProtocol", "CounterPredictor", "AlphaPredictor"]

#: Floor on the recovered core CPI: even a perfect machine needs some
#: cycles per instruction; noise must not drive ``c0`` to zero or negative.
_MIN_CORE_CPI = 0.05

#: Minimum instructions in a window for a meaningful signature.
_MIN_INSTRUCTIONS = 1000.0


class PredictorProtocol(Protocol):
    """What the daemon and scheduler require of a predictor."""

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        """Workload signature from one counter window, or ``None`` when the
        window carries too little information (halted/empty intervals)."""
        ...


class CounterPredictor:
    """Observation-calibrated predictor (no assumed alpha)."""

    def __init__(self, latencies: MemoryLatencyProfile, *,
                 min_instructions: float = _MIN_INSTRUCTIONS) -> None:
        check_positive(min_instructions, "min_instructions")
        self.latencies = latencies
        self.min_instructions = min_instructions

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        if sample.instructions < self.min_instructions or sample.cycles <= 0.0:
            return None
        if sample.interval_s <= 0.0:
            return None
        cpi_observed = sample.cycles / sample.instructions
        mem_time_per_instr = (
            sample.memory_counts().memory_time_s(self.latencies)
            / sample.instructions
        )
        f_effective = sample.effective_freq_hz
        core_cpi = cpi_observed - mem_time_per_instr * f_effective
        core_cpi = max(core_cpi, _MIN_CORE_CPI)
        return WorkloadSignature(
            core_cpi=core_cpi, mem_time_per_instr_s=mem_time_per_instr
        )

    def predict_ipc(self, sample: CounterSample, freq_hz: float) -> float | None:
        """Projected IPC at ``freq_hz`` (None on an uninformative window)."""
        sig = self.signature_from_sample(sample)
        return None if sig is None else sig.ipc(freq_hz)


class AlphaPredictor:
    """The paper's literal equation with an assumed platform ``alpha``."""

    def __init__(self, latencies: MemoryLatencyProfile, *, alpha: float,
                 min_instructions: float = _MIN_INSTRUCTIONS) -> None:
        check_positive(alpha, "alpha")
        check_positive(min_instructions, "min_instructions")
        self.latencies = latencies
        self.alpha = alpha
        self.min_instructions = min_instructions

    def signature_from_sample(self, sample: CounterSample) -> WorkloadSignature | None:
        if sample.instructions < self.min_instructions:
            return None
        try:
            return signature_from_counts(
                sample.memory_counts(), self.latencies, alpha=self.alpha
            )
        except ModelError:
            return None

    def predict_ipc(self, sample: CounterSample, freq_hz: float) -> float | None:
        """Projected IPC at ``freq_hz`` (None on an uninformative window)."""
        sig = self.signature_from_sample(sample)
        return None if sig is None else sig.ipc(freq_hz)
