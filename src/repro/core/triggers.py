"""The scheduling triggers of Section 5.

"Three possible triggers for changing frequency and voltage are considered
here": a change of the global power limit, the periodic timer, and idle
enter/exit signals.  The timer lives inside the daemon (it *is* the
scheduling period ``T``); the other two arrive asynchronously through a
:class:`TriggerBus`, decoupling their sources (supply monitors, firmware
idle detection, operators) from the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SchedulingError
from ..units import check_non_negative, check_positive

__all__ = ["PowerLimitChange", "IdleTransition", "TriggerBus"]


@dataclass(frozen=True, slots=True)
class PowerLimitChange:
    """The global processor power limit changed (PSU loss/restore,
    curtailment request, ...)."""

    time_s: float
    new_limit_w: float | None   #: None lifts the limit entirely

    def __post_init__(self) -> None:
        check_non_negative(self.time_s, "time_s")
        if self.new_limit_w is not None:
            check_positive(self.new_limit_w, "new_limit_w")


@dataclass(frozen=True, slots=True)
class IdleTransition:
    """A processor entered or left the idle loop."""

    time_s: float
    node_id: int
    proc_id: int
    is_idle: bool

    def __post_init__(self) -> None:
        check_non_negative(self.time_s, "time_s")


class TriggerBus:
    """Typed publish/subscribe for trigger events."""

    _TYPES = (PowerLimitChange, IdleTransition)

    def __init__(self) -> None:
        self._subscribers: dict[type, list[Callable]] = {
            t: [] for t in self._TYPES
        }
        #: Every trigger ever published, in order (for logs and tests).
        self.history: list[object] = []

    def subscribe(self, trigger_type: type, callback: Callable) -> None:
        """Register ``callback(trigger)`` for one trigger type."""
        if trigger_type not in self._subscribers:
            raise SchedulingError(
                f"unknown trigger type {trigger_type!r}; known: "
                f"{[t.__name__ for t in self._TYPES]}"
            )
        self._subscribers[trigger_type].append(callback)

    def publish(self, trigger: PowerLimitChange | IdleTransition) -> int:
        """Deliver a trigger to its subscribers; returns delivery count."""
        callbacks = self._subscribers.get(type(trigger))
        if callbacks is None:
            raise SchedulingError(f"unknown trigger {trigger!r}")
        self.history.append(trigger)
        for cb in callbacks:
            cb(trigger)
        return len(callbacks)
