"""Work scheduling: consolidation by migration (the rival approach).

The paper's Section 1 argues for scheduling *frequencies* rather than
*work* — migration has overhead, is often impossible in clusters, and
needs OS scheduler changes.  To measure that argument, this governor is
the strongest reasonable member of the work-scheduling family on one SMP:
under a power budget, keep ``k = floor(limit / P(f_max))`` cores online at
full frequency, power the rest down, and *migrate* their jobs onto the
online cores (round-robin packed), paying a per-migration cold-cache cost.
When the budget relaxes, cores come back and load re-spreads.

The comparison against fvsst is the ``migration`` experiment: frequency
scheduling exploits saturation (memory-bound jobs keep their own core at a
slow rung); consolidation time-slices everything at full speed.
"""

from __future__ import annotations

from ..sim.driver import Simulation
from ..sim.machine import SMPMachine
from ..units import check_non_negative
from ..workloads.job import Job
from .governor import Governor

__all__ = ["ConsolidationGovernor"]


class ConsolidationGovernor(Governor):
    """Power-down + migration work scheduler."""

    name = "consolidation"

    def __init__(self, machine: SMPMachine, *,
                 power_limit_w: float | None = None,
                 migration_cost_s: float = 0.005,
                 rebalance_period_s: float = 0.5) -> None:
        super().__init__(machine)
        check_non_negative(migration_cost_s, "migration_cost_s")
        self.power_limit_w = power_limit_w
        self.migration_cost_s = migration_cost_s
        self.rebalance_period_s = rebalance_period_s
        #: Total migrations performed (the overhead the paper avoids).
        self.migrations = 0

    # -- helpers -------------------------------------------------------------------

    def _online_count(self) -> int:
        n = self.machine.num_cores
        if self.power_limit_w is None:
            return n
        k = int(self.power_limit_w // self.machine.table.max_power_w)
        return max(1, min(n, k))   # at least one core stays up

    def _gather_jobs(self) -> list[tuple[int, Job]]:
        jobs = []
        for core in self.machine.cores:
            for job in core.dispatcher.jobs:
                jobs.append((core.core_id, job))
        return jobs

    def _apply(self, now_s: float) -> None:
        online = self._online_count()
        table = self.machine.table
        placed = self._gather_jobs()
        # Pack jobs round-robin over the online cores, migrating whatever
        # sits on an offline core (or needs rebalancing).  Keyed by object
        # identity: Job instances are mutable and unhashable by design.
        targets: dict[int, int] = {}
        for i, (_src, job) in enumerate(
                sorted(placed, key=lambda e: e[1].name)):
            targets[id(job)] = i % online
        for src, job in placed:
            dst = targets[id(job)]
            if src != dst:
                self.machine.migrate(job, src, dst,
                                     cost_s=self.migration_cost_s)
                self.migrations += 1
        for i, core in enumerate(self.machine.cores):
            core.offline = i >= online
            if not core.offline:
                core.set_frequency(table.f_max_hz, now_s)

    # -- governor interface -----------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        super().attach(sim)
        self._apply(sim.now_s)
        sim.every(self.rebalance_period_s, self._apply,
                  name="consolidation-rebalance")

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        self.power_limit_w = limit_w
        self._apply(now_s)

    @property
    def online_count(self) -> int:
        return sum(1 for c in self.machine.cores if not c.offline)
