"""``python -m repro`` forwards to the CLI."""

from .cli import main

raise SystemExit(main())
