"""Performance and performance-loss metrics (Section 4.3).

``Perf(f) = IPC(f) * f`` is throughput in instructions per second.  The paper
defines the loss between a reference frequency and a candidate; we adopt the
sign convention actually used by its worked example (positive = loss):

    perf_loss(ref, cand) = (Perf(ref) - Perf(cand)) / Perf(ref)

so values in ``(0, 1]`` are losses, negative values are gains, and the
scheduler's acceptance test is ``perf_loss(f_max, f) < epsilon``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..units import check_fraction, check_positive
from .ipc import WorkloadSignature

__all__ = [
    "perf",
    "perf_loss",
    "perf_at_frequencies",
    "saturation_frequency",
]


def perf(signature: WorkloadSignature, freq_hz: float) -> float:
    """Throughput ``IPC(f) * f`` in instructions/second at ``freq_hz``.

    For memory-bound work this saturates at ``1 / m`` as ``f`` grows, where
    ``m`` is the per-instruction memory time — the saturation phenomenon of
    Figure 1.
    """
    check_positive(freq_hz, "freq_hz")
    return signature.ipc(freq_hz) * freq_hz


def perf_at_frequencies(signature: WorkloadSignature, freqs_hz) -> np.ndarray:
    """Vectorised ``Perf(f)`` over an array of frequencies."""
    freqs = np.asarray(freqs_hz, dtype=float)
    if freqs.size and np.any(freqs <= 0):
        raise ModelError("all frequencies must be positive")
    return signature.ipc_array(freqs) * freqs


def perf_loss(signature: WorkloadSignature, ref_freq_hz: float, cand_freq_hz: float) -> float:
    """Fractional performance loss at ``cand_freq_hz`` relative to ``ref_freq_hz``.

    Positive return values are losses (candidate slower than reference),
    negative values gains.  Always < 1 because ``Perf`` is positive.
    """
    p_ref = perf(signature, ref_freq_hz)
    p_cand = perf(signature, cand_freq_hz)
    return (p_ref - p_cand) / p_ref


def saturation_frequency(signature: WorkloadSignature, *, loss_budget: float = 0.01) -> float:
    """Frequency beyond which at most ``loss_budget`` of asymptotic throughput
    remains unrealised.

    The asymptotic throughput of a workload with memory time ``m > 0`` per
    instruction is ``1/m``.  Solving ``Perf(f) = (1 - loss_budget)/m`` for
    ``f`` gives the characteristic saturation point of Figure 1:

        f_sat = (1 - loss_budget) * c0 / (loss_budget * m)

    Raises :class:`~repro.errors.ModelError` for memory-free workloads, which
    never saturate (throughput is linear in ``f``).
    """
    check_fraction(loss_budget, "loss_budget")
    if loss_budget == 0.0:
        raise ModelError("loss_budget must be > 0; saturation is asymptotic")
    m = signature.mem_time_per_instr_s
    if m == 0.0:
        raise ModelError("a memory-free workload has no saturation frequency")
    return (1.0 - loss_budget) * signature.core_cpi / (loss_budget * m)
