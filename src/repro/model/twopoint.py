"""Two-frequency calibration (footnote 1, first approach, from [2]).

Instead of assuming ``alpha`` and the latency table, observe the same
workload at two different frequencies.  Because ``CPI(f) = c0 + m*f`` is
affine in ``f``, two observations identify both components exactly:

    m  = (CPI_1 - CPI_2) / (f_1 - f_2)
    c0 = CPI_1 - m * f_1

This trades a second measurement (and the assumption that the workload did
not change between the two samples) for independence from the constant-
latency and known-``alpha`` assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..units import check_positive
from .ipc import WorkloadSignature

__all__ = ["TwoPointCalibration", "calibrate_two_point"]

#: Minimum relative frequency separation for a well-conditioned solve.
_MIN_RELATIVE_SEPARATION = 1e-6


@dataclass(frozen=True, slots=True)
class TwoPointCalibration:
    """One observation pair and the signature it induces."""

    freq1_hz: float
    ipc1: float
    freq2_hz: float
    ipc2: float
    signature: WorkloadSignature

    def residual_at(self, freq_hz: float, observed_ipc: float) -> float:
        """Absolute IPC residual of a third observation against the fit —
        a cheap online check that the workload stayed stationary."""
        return abs(self.signature.ipc(freq_hz) - observed_ipc)


def calibrate_two_point(
    freq1_hz: float,
    ipc1: float,
    freq2_hz: float,
    ipc2: float,
) -> TwoPointCalibration:
    """Solve for the workload signature from two (frequency, IPC) samples.

    Raises
    ------
    ModelError
        If the frequencies are too close to separate the components, or if
        the solved components are unphysical (negative memory time arises
        when the higher frequency showed *higher* IPC — i.e. the workload
        changed between samples).
    """
    check_positive(freq1_hz, "freq1_hz")
    check_positive(freq2_hz, "freq2_hz")
    check_positive(ipc1, "ipc1")
    check_positive(ipc2, "ipc2")

    separation = abs(freq1_hz - freq2_hz) / max(freq1_hz, freq2_hz)
    if separation < _MIN_RELATIVE_SEPARATION:
        raise ModelError(
            f"frequencies {freq1_hz} and {freq2_hz} are too close to calibrate"
        )

    cpi1 = 1.0 / ipc1
    cpi2 = 1.0 / ipc2
    m = (cpi1 - cpi2) / (freq1_hz - freq2_hz)
    c0 = cpi1 - m * freq1_hz
    if m < 0.0:
        raise ModelError(
            "negative memory component: IPC rose with frequency, the workload "
            "likely changed between the two samples"
        )
    if c0 <= 0.0:
        raise ModelError(
            "non-positive core CPI: observations are inconsistent with the model"
        )
    signature = WorkloadSignature(core_cpi=c0, mem_time_per_instr_s=m)
    return TwoPointCalibration(
        freq1_hz=freq1_hz, ipc1=ipc1, freq2_hz=freq2_hz, ipc2=ipc2,
        signature=signature,
    )
