"""Best/worst-case latency-bound prediction (footnote 1, second approach).

The constant-latency assumption of the base model is a known source of error:
real service times vary with queueing, page-mode hits, and prefetching.  The
footnote describes an investigated alternative that brackets the truth by
evaluating the model at *best-case* and *worst-case* latency profiles,
yielding an interval prediction at each candidate frequency.

A conservative scheduler can then test ``epsilon`` against the pessimistic
end of the interval before lowering frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..units import check_positive
from .ipc import MemoryCounts, signature_from_counts
from .latency import MemoryLatencyProfile

__all__ = ["LatencyBounds", "PredictionInterval", "predict_ipc_bounds"]


@dataclass(frozen=True, slots=True)
class LatencyBounds:
    """A pair of latency profiles bracketing the true service times."""

    best: MemoryLatencyProfile
    worst: MemoryLatencyProfile

    def __post_init__(self) -> None:
        if not (
            self.best.t_l2_s <= self.worst.t_l2_s
            and self.best.t_l3_s <= self.worst.t_l3_s
            and self.best.t_mem_s <= self.worst.t_mem_s
        ):
            raise ModelError("best-case latencies must not exceed worst-case")

    @classmethod
    def from_nominal(
        cls,
        nominal: MemoryLatencyProfile,
        *,
        spread: float,
    ) -> "LatencyBounds":
        """Symmetric bounds ``nominal * (1 -/+ spread)``, ``0 < spread < 1``."""
        check_positive(spread, "spread")
        if spread >= 1.0:
            raise ModelError("spread must be < 1 so best-case stays positive")
        return cls(best=nominal.scaled(1.0 - spread), worst=nominal.scaled(1.0 + spread))


@dataclass(frozen=True, slots=True)
class PredictionInterval:
    """An IPC prediction interval ``[low, high]`` at one frequency.

    ``low`` comes from the worst-case latencies (slow memory -> low IPC);
    ``high`` from the best-case ones.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 < self.low <= self.high:
            raise ModelError(f"invalid interval [{self.low}, {self.high}]")

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def predict_ipc_bounds(
    counts: MemoryCounts,
    bounds: LatencyBounds,
    freq_hz: float,
    *,
    alpha: float,
) -> PredictionInterval:
    """Project an IPC interval at ``freq_hz`` from counter deltas.

    The interval is exact under the model family: any constant latency
    profile lying between ``bounds.best`` and ``bounds.worst`` produces an
    IPC inside the returned interval, because IPC is monotone decreasing in
    each ``T_i``.
    """
    sig_best = signature_from_counts(counts, bounds.best, alpha=alpha)
    sig_worst = signature_from_counts(counts, bounds.worst, alpha=alpha)
    return PredictionInterval(
        low=sig_worst.ipc(freq_hz),
        high=sig_best.ipc(freq_hz),
    )
