"""The continuous "ideal frequency" extension (Section 5).

For processors offering many (or continuous) frequency settings, evaluating
``PerfLoss`` at every step is wasteful.  The paper instead inverts the
performance equation: given a tolerated loss ``epsilon`` relative to
``f_max``, the target throughput is ``P_t = Perf(f_max) * (1 - epsilon)`` and

    Perf(f) = f / (c0 + m*f) = P_t
    =>  f_ideal = P_t * c0 / (1 - m * P_t)

which is the paper's closed form (the paper writes ``c0 = 1/alpha`` and
multiplies through by ``Instr``; ours keeps the L1 stall term inside ``c0``).
CPU-bound work (paper heuristic: ``IPC > 1`` at ``f_max``) gets ``f_max``.
"""

from __future__ import annotations

from ..errors import ModelError
from ..units import check_fraction, check_positive
from .ipc import WorkloadSignature
from .perf import perf

__all__ = ["ideal_frequency"]

#: IPC above which the paper's heuristic declares a workload CPU-bound and
#: pins it at the maximum frequency.
CPU_BOUND_IPC_THRESHOLD = 1.0


def ideal_frequency(
    signature: WorkloadSignature,
    f_max_hz: float,
    *,
    epsilon: float,
    f_min_hz: float | None = None,
    ipc_threshold: float = CPU_BOUND_IPC_THRESHOLD,
) -> float:
    """Continuous frequency at which the workload loses exactly ``epsilon``
    of its ``f_max`` throughput.

    Parameters
    ----------
    signature:
        Frequency-separable workload description.
    f_max_hz:
        Nominal maximum frequency; both the loss reference and the ceiling of
        the returned value.
    epsilon:
        Tolerated fractional performance loss, in ``(0, 1)``.
    f_min_hz:
        Optional hardware floor; the result is clamped up to it.
    ipc_threshold:
        The paper pins workloads with ``IPC(f_max) > 1`` at ``f_max``; pass a
        different threshold (or ``float('inf')`` to disable the heuristic and
        always use the closed form).

    Returns
    -------
    float
        The ideal frequency in Hz, clamped into ``[f_min_hz, f_max_hz]``.
    """
    check_positive(f_max_hz, "f_max_hz")
    check_fraction(epsilon, "epsilon")
    if epsilon in (0.0, 1.0):
        raise ModelError("epsilon must lie strictly between 0 and 1")
    if f_min_hz is not None:
        check_positive(f_min_hz, "f_min_hz")
        if f_min_hz > f_max_hz:
            raise ModelError(f"f_min {f_min_hz} exceeds f_max {f_max_hz}")

    if signature.ipc(f_max_hz) > ipc_threshold:
        return f_max_hz

    target = perf(signature, f_max_hz) * (1.0 - epsilon)
    m = signature.mem_time_per_instr_s
    denom = 1.0 - m * target
    if denom <= 0.0:
        # Target throughput at or above the saturation asymptote 1/m: no
        # finite frequency reaches it, so the best available is f_max.
        f_ideal = f_max_hz
    else:
        f_ideal = target * signature.core_cpi / denom

    f_ideal = min(f_ideal, f_max_hz)
    if f_min_hz is not None:
        f_ideal = max(f_ideal, f_min_hz)
    return f_ideal
