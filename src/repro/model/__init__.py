"""Section 4.3 performance model: counter-driven IPC prediction.

The model decomposes cycles-per-instruction into a frequency-independent core
component (ideal CPI ``1/alpha`` plus L1 stall cycles) and a
frequency-dependent memory component reconstructed from L2/L3/DRAM access
counts and their constant wall-clock service times:

    CPI(f) = 1/alpha + S_L1 + [(N_L2*T_L2 + N_L3*T_L3 + N_mem*T_mem)/Instr] * f

Submodules:

* :mod:`~repro.model.latency` — memory-hierarchy service-time profiles.
* :mod:`~repro.model.ipc` — the CPI/IPC projection equations.
* :mod:`~repro.model.perf` — ``Perf(f) = IPC(f) * f`` and ``PerfLoss``.
* :mod:`~repro.model.ideal` — the closed-form continuous ``f_ideal``.
* :mod:`~repro.model.bounds` — best/worst-case latency bound predictor
  (footnote 1, second approach).
* :mod:`~repro.model.twopoint` — two-frequency calibration (footnote 1,
  first approach, from reference [2]).
* :mod:`~repro.model.latency_model` — request-latency prediction and the
  SLO latency-to-frequency floor (serving layer).
"""

from .latency import MemoryLatencyProfile, POWER4_LATENCIES
from .ipc import MemoryCounts, WorkloadSignature, predict_cpi, predict_ipc, signature_from_counts
from .perf import perf, perf_loss, perf_at_frequencies, saturation_frequency
from .ideal import ideal_frequency
from .bounds import LatencyBounds, PredictionInterval, predict_ipc_bounds
from .twopoint import TwoPointCalibration, calibrate_two_point
from .latency_model import (
    frequency_floor_hz,
    mm1_response_quantile_s,
    predicted_latency_quantile_s,
    service_time_s,
)

__all__ = [
    "MemoryLatencyProfile",
    "POWER4_LATENCIES",
    "MemoryCounts",
    "WorkloadSignature",
    "predict_cpi",
    "predict_ipc",
    "signature_from_counts",
    "perf",
    "perf_loss",
    "perf_at_frequencies",
    "saturation_frequency",
    "ideal_frequency",
    "LatencyBounds",
    "PredictionInterval",
    "predict_ipc_bounds",
    "TwoPointCalibration",
    "calibrate_two_point",
    "service_time_s",
    "mm1_response_quantile_s",
    "predicted_latency_quantile_s",
    "frequency_floor_hz",
]
