"""Request-latency prediction: (arrival rate, demand, frequency) -> time.

The serving layer needs the inverse of the paper's performance model: not
"how much slower does this workload run at ``f``", but "how fast must the
processor run so the *tail* of request completion times stays under an SLO
target".  This module supplies that mapping, in three pieces:

* :func:`service_time_s` — one request's pure execution time at a
  frequency, straight from the Section 4.3 CPI model: ``instructions /
  (IPC(f) * f)``.  Memory-bound requests flatten with frequency exactly as
  ``Perf(f)`` does.
* :func:`mm1_response_quantile_s` — the response-time (queueing + service)
  quantile of an M/M/1 queue at the given arrival rate.  Open-loop Poisson
  arrivals onto one core are exactly M/*/1; modelling service as
  exponential is the *conservative* closure (the simulator's requests are
  near-deterministic, and M/D/1 waits are shorter than M/M/1 waits at
  every load), so predicted quantiles upper-bound simulated ones — the
  right direction for a floor that must *guarantee* an SLO.  The
  completion-time-vs-frequency models of the virtualized-power literature
  (PAPERS.md) validate the same shape: latency explodes as utilisation
  ``rho = rate x service`` approaches 1, which is precisely what a
  too-low frequency does.
* :func:`frequency_floor_hz` — the lowest ladder frequency whose predicted
  quantile meets the target: the per-node floor the SLO-aware coordinator
  feeds into the Figure 3 step-1/step-2 kernels.

All inputs are per *core*: the serving layer drives one arrival stream
per processor, so each (core, stream) pair is its own single-server queue.
"""

from __future__ import annotations

import math

from ..errors import ModelError
from ..power.table import FrequencyPowerTable
from ..units import check_non_negative, check_positive
from .ipc import WorkloadSignature

__all__ = [
    "service_time_s",
    "mm1_response_quantile_s",
    "frequency_floor_hz",
    "predicted_latency_quantile_s",
]


def service_time_s(signature: WorkloadSignature, instructions: float,
                   freq_hz: float) -> float:
    """Pure execution time of one request at ``freq_hz`` (no queueing)."""
    check_positive(instructions, "instructions")
    check_positive(freq_hz, "freq_hz")
    return instructions / (signature.ipc(freq_hz) * freq_hz)


def mm1_response_quantile_s(service_s: float, rate_per_s: float,
                            percentile: float) -> float:
    """Response-time percentile of an M/M/1 queue.

    With utilisation ``rho = rate x service < 1`` the sojourn time is
    exponential with mean ``service / (1 - rho)``, so the ``p``-quantile
    is ``-ln(1 - p/100) x service / (1 - rho)``.  At or beyond saturation
    (``rho >= 1``) the queue has no stationary distribution and the
    quantile is ``inf`` — callers treat that as "this frequency cannot
    serve this rate at all".
    """
    check_positive(service_s, "service_s")
    check_non_negative(rate_per_s, "rate_per_s")
    if not 0.0 < percentile < 100.0:
        raise ModelError(f"percentile must be in (0, 100), got {percentile}")
    rho = rate_per_s * service_s
    if rho >= 1.0:
        return math.inf
    return -math.log(1.0 - percentile / 100.0) * service_s / (1.0 - rho)


def predicted_latency_quantile_s(signature: WorkloadSignature,
                                 instructions: float, rate_per_s: float,
                                 freq_hz: float, *,
                                 percentile: float = 99.0) -> float:
    """Predicted response-time percentile at one operating point."""
    return mm1_response_quantile_s(
        service_time_s(signature, instructions, freq_hz),
        rate_per_s, percentile)


def frequency_floor_hz(table: FrequencyPowerTable,
                       signature: WorkloadSignature, instructions: float,
                       rate_per_s: float, target_s: float, *,
                       percentile: float = 99.0) -> float:
    """Lowest ladder frequency whose predicted percentile meets ``target_s``.

    Scans the ladder bottom-up (predicted latency is monotone decreasing
    in frequency, so the first admissible rung is the floor).  When even
    ``f_max`` misses the target the floor is ``f_max`` — the scheduler
    cannot buy more latency than the hardware has, and the compliance
    report shows the miss.
    """
    check_positive(target_s, "target_s")
    for freq_hz in table.freqs_hz:
        predicted = predicted_latency_quantile_s(
            signature, instructions, rate_per_s, freq_hz,
            percentile=percentile)
        if predicted <= target_s:
            return freq_hz
    return table.f_max_hz
