"""Memory-hierarchy service-time profiles.

The model of Section 4.3 assumes each level of the hierarchy below the L1 has
a *constant wall-clock* service time ``T_i`` (the footnote acknowledges this
is an approximation).  The paper measured these on the p630 as 15 / 113 / 393
processor cycles at the nominal 1 GHz for L2 / L3 / DRAM, i.e. 15 / 113 /
393 ns.  The L1 is on-core, so its latency scales *with* the core clock and
contributes to the frequency-independent stall term instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..errors import ModelError
from ..units import check_non_negative, check_positive

__all__ = ["MemoryLatencyProfile", "POWER4_LATENCIES"]


@dataclass(frozen=True, slots=True)
class MemoryLatencyProfile:
    """Constant wall-clock service times of the off-core memory levels.

    Attributes
    ----------
    t_l2_s, t_l3_s, t_mem_s:
        Service time, in seconds, of an access that is satisfied by the L2,
        the L3, or DRAM respectively.
    l1_latency_cycles:
        L1 hit latency in *cycles* (frequency-invariant in cycles because the
        L1 runs at core speed).  Used by the simulator to derive L1 stall
        cycles; the predictor folds these into the frequency-independent term.
    """

    t_l2_s: float
    t_l3_s: float
    t_mem_s: float
    l1_latency_cycles: float = constants.L1_LATENCY_CYCLES

    def __post_init__(self) -> None:
        check_positive(self.t_l2_s, "t_l2_s")
        check_positive(self.t_l3_s, "t_l3_s")
        check_positive(self.t_mem_s, "t_mem_s")
        check_non_negative(self.l1_latency_cycles, "l1_latency_cycles")
        if not self.t_l2_s <= self.t_l3_s <= self.t_mem_s:
            raise ModelError(
                "latency profile must be monotone: "
                f"t_l2={self.t_l2_s} <= t_l3={self.t_l3_s} <= t_mem={self.t_mem_s}"
            )

    def scaled(self, factor: float) -> "MemoryLatencyProfile":
        """Return a profile with all off-core latencies scaled by ``factor``.

        Used by the bounds predictor (best/worst case latencies) and by
        failure-injection tests that perturb the memory subsystem.
        """
        check_positive(factor, "factor")
        return MemoryLatencyProfile(
            t_l2_s=self.t_l2_s * factor,
            t_l3_s=self.t_l3_s * factor,
            t_mem_s=self.t_mem_s * factor,
            l1_latency_cycles=self.l1_latency_cycles,
        )

    def cycles_at(self, freq_hz: float) -> tuple[float, float, float]:
        """Off-core latencies expressed in cycles at ``freq_hz``.

        Demonstrates the saturation mechanism: the same wall-clock service
        time costs more cycles at a higher clock.
        """
        check_positive(freq_hz, "freq_hz")
        return (
            self.t_l2_s * freq_hz,
            self.t_l3_s * freq_hz,
            self.t_mem_s * freq_hz,
        )


#: The measured p630/Power4+ profile from Section 7.1.
POWER4_LATENCIES = MemoryLatencyProfile(
    t_l2_s=constants.L2_LATENCY_S,
    t_l3_s=constants.L3_LATENCY_S,
    t_mem_s=constants.MEM_LATENCY_S,
    l1_latency_cycles=constants.L1_LATENCY_CYCLES,
)
