"""The CPI/IPC projection equations of Section 4.3.

Given performance-counter data gathered over an interval at *any* frequency,
the model projects the IPC the same work would achieve at another frequency.
The key quantity is the per-instruction *memory time*

    m = (N_L2*T_L2 + N_L3*T_L3 + N_mem*T_mem) / Instr        [seconds/instr]

which is frequency-invariant, while its contribution in cycles is ``m * f``.
The frequency-independent cycle component is

    c0 = 1/alpha + S_L1                                      [cycles/instr]

so ``CPI(f) = c0 + m*f`` and ``IPC(f) = 1 / (c0 + m*f)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..units import check_non_negative, check_positive
from .latency import MemoryLatencyProfile

__all__ = [
    "MemoryCounts",
    "WorkloadSignature",
    "predict_cpi",
    "predict_ipc",
    "signature_from_counts",
]


@dataclass(frozen=True, slots=True)
class MemoryCounts:
    """Raw per-interval counter deltas, as a Power4+-style kernel interface
    would report them.

    Attributes
    ----------
    instructions:
        Instructions completed in the interval.
    n_l2, n_l3, n_mem:
        Number of accesses *serviced by* the L2, the L3 and DRAM.  (An L1
        miss that hits in L2 counts once in ``n_l2`` only.)
    l1_stall_cycles:
        Stall cycles attributable to L1 hits beyond the pipelined single
        cycle — frequency-independent in cycles.
    """

    instructions: float
    n_l2: float = 0.0
    n_l3: float = 0.0
    n_mem: float = 0.0
    l1_stall_cycles: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.instructions, "instructions")
        check_non_negative(self.n_l2, "n_l2")
        check_non_negative(self.n_l3, "n_l3")
        check_non_negative(self.n_mem, "n_mem")
        check_non_negative(self.l1_stall_cycles, "l1_stall_cycles")

    def __add__(self, other: "MemoryCounts") -> "MemoryCounts":
        if not isinstance(other, MemoryCounts):
            return NotImplemented
        return MemoryCounts(
            instructions=self.instructions + other.instructions,
            n_l2=self.n_l2 + other.n_l2,
            n_l3=self.n_l3 + other.n_l3,
            n_mem=self.n_mem + other.n_mem,
            l1_stall_cycles=self.l1_stall_cycles + other.l1_stall_cycles,
        )

    def memory_time_s(self, latencies: MemoryLatencyProfile) -> float:
        """Total off-core wall-clock time, ``N_L2*T_L2 + N_L3*T_L3 + N_mem*T_mem``."""
        return (
            self.n_l2 * latencies.t_l2_s
            + self.n_l3 * latencies.t_l3_s
            + self.n_mem * latencies.t_mem_s
        )


@dataclass(frozen=True, slots=True)
class WorkloadSignature:
    """The two frequency-separable per-instruction components of a workload.

    ``core_cpi`` is in cycles/instruction; ``mem_time_per_instr_s`` is in
    seconds/instruction.  Together they determine IPC at every frequency:
    ``IPC(f) = 1 / (core_cpi + mem_time_per_instr_s * f)``.
    """

    core_cpi: float
    mem_time_per_instr_s: float

    def __post_init__(self) -> None:
        check_positive(self.core_cpi, "core_cpi")
        check_non_negative(self.mem_time_per_instr_s, "mem_time_per_instr_s")

    def cpi(self, freq_hz: float) -> float:
        """Projected cycles per instruction at ``freq_hz``."""
        check_positive(freq_hz, "freq_hz")
        return self.core_cpi + self.mem_time_per_instr_s * freq_hz

    def ipc(self, freq_hz: float) -> float:
        """Projected instructions per cycle at ``freq_hz``."""
        return 1.0 / self.cpi(freq_hz)

    def ipc_array(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Vectorised IPC projection over an array of frequencies."""
        freqs = np.asarray(freqs_hz, dtype=float)
        if np.any(freqs <= 0):
            raise ModelError("all frequencies must be positive")
        return 1.0 / (self.core_cpi + self.mem_time_per_instr_s * freqs)

    @property
    def is_memory_free(self) -> bool:
        """True when the workload never leaves the core/L1 (pure CPU work)."""
        return self.mem_time_per_instr_s == 0.0


def signature_from_counts(
    counts: MemoryCounts,
    latencies: MemoryLatencyProfile,
    *,
    alpha: float,
) -> WorkloadSignature:
    """Build a :class:`WorkloadSignature` from raw counter deltas.

    ``alpha`` is the IPC of an ideal stall-free machine for this workload —
    a per-platform constant combining the workload's ILP with the core's
    issue resources (Section 4.3).  The prototype treats it as a calibrated
    constant; the predictor in :mod:`repro.core.predictor` estimates it
    online instead.
    """
    check_positive(alpha, "alpha")
    if counts.instructions <= 0:
        raise ModelError("cannot form a signature from zero instructions")
    core_cpi = 1.0 / alpha + counts.l1_stall_cycles / counts.instructions
    mem_time = counts.memory_time_s(latencies) / counts.instructions
    return WorkloadSignature(core_cpi=core_cpi, mem_time_per_instr_s=mem_time)


def predict_cpi(
    counts: MemoryCounts,
    latencies: MemoryLatencyProfile,
    freq_hz: float,
    *,
    alpha: float,
) -> float:
    """Project CPI at ``freq_hz`` from counter deltas (Section 4.3 equation)."""
    return signature_from_counts(counts, latencies, alpha=alpha).cpi(freq_hz)


def predict_ipc(
    counts: MemoryCounts,
    latencies: MemoryLatencyProfile,
    freq_hz: float,
    *,
    alpha: float,
) -> float:
    """Project IPC at ``freq_hz`` from counter deltas (Section 4.3 equation)."""
    return 1.0 / predict_cpi(counts, latencies, freq_hz, alpha=alpha)
