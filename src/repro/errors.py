"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so callers
can catch package failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "UnitError",
    "ModelError",
    "PowerModelError",
    "FrequencyError",
    "BudgetError",
    "InfeasibleBudgetError",
    "SimulationError",
    "SchedulingError",
    "WorkloadError",
    "CounterError",
    "ClusterError",
    "CascadeFailureError",
    "ExperimentError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class UnitError(ReproError):
    """A quantity was supplied in an impossible range for its unit."""


class ModelError(ReproError):
    """The performance model was given inputs outside its domain."""


class PowerModelError(ReproError):
    """The power model was given inputs outside its domain."""


class FrequencyError(ReproError):
    """A frequency is not in the machine's available frequency set."""


class BudgetError(ReproError):
    """A power budget is malformed (non-positive, inverted margins, ...)."""


class InfeasibleBudgetError(BudgetError):
    """No frequency assignment can satisfy the power budget.

    Raised by the scheduler when every processor already sits at the lowest
    available frequency and aggregate power still exceeds the limit.  Callers
    (e.g. the cluster coordinator) may respond by powering nodes down.
    """

    def __init__(self, message: str, *, floor_power_w: float | None = None,
                 limit_w: float | None = None) -> None:
        super().__init__(message)
        #: Aggregate power with every processor at its minimum frequency.
        self.floor_power_w = floor_power_w
        #: The budget that could not be met.
        self.limit_w = limit_w


class SimulationError(ReproError):
    """The machine simulator reached an inconsistent state."""


class SchedulingError(ReproError):
    """The frequency/voltage scheduler was misused."""


class WorkloadError(ReproError):
    """A workload/phase/job specification is invalid."""


class CounterError(ReproError):
    """Performance counter access failed or produced inconsistent values."""


class ClusterError(ReproError):
    """Cluster coordination failed (unknown node, protocol violation, ...)."""


class CascadeFailureError(SimulationError):
    """The system stayed over the power-supply capacity past the deadline.

    Models the cascading power-supply failure of Section 2 of the paper: if
    demand is not brought under the surviving supply's capacity within
    ``delta_t`` seconds of the first failure, the second supply fails too.
    """

    def __init__(self, message: str, *, time_s: float | None = None) -> None:
        super().__init__(message)
        #: Simulation time at which the cascade occurred.
        self.time_s = time_s


class ExperimentError(ReproError):
    """An experiment harness was asked for an unknown artifact or failed."""


class TelemetryError(ReproError):
    """Telemetry misuse: bad metric name, kind conflict, invalid buckets,
    negative counter increment, or a malformed exported record."""
