"""Declarative scenario construction and execution.

Experiments, examples and downstream users keep rebuilding the same thing:
a machine, workloads on cores, one governor, some timed events, a
measurement window.  :class:`Scenario` captures that shape declaratively
and runs it, returning a :class:`ScenarioResult` with the common
measurements — so a new study is a few lines of configuration rather than
a page of wiring.

    result = (Scenario(num_cores=4, seed=7)
              .with_job(3, profile_by_name("mcf").job(loop=True))
              .with_governor("fvsst", power_limit_w=294.0)
              .at(2.0, lambda sc, t: sc.governor.set_power_limit(150.0, t))
              .run(6.0))
    print(result.cpu_energy_j, result.frequency_residency(3))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .core.daemon import DaemonConfig, FvsstDaemon
from .core.governor import Governor
from .core.logs import FvsstLog
from .errors import ConfigError
from .experiments.common import make_governor
from .power.supply import SupplyBank
from .sim.core import CoreConfig
from .sim.driver import Simulation
from .sim.machine import MachineConfig, SMPMachine
from .units import check_non_negative, check_positive
from .workloads.job import Job

__all__ = ["Scenario", "ScenarioResult"]


@dataclass
class ScenarioResult:
    """Measurements from one scenario run."""

    machine: SMPMachine
    governor: Governor
    sim: Simulation
    duration_s: float
    jobs: list[tuple[int, Job]]

    @property
    def cpu_energy_j(self) -> float:
        """Total processor energy over the run."""
        return sum(
            self.machine.ledger.energy_of(f"core{i}")
            for i in range(self.machine.num_cores)
        )

    def core_energy_j(self, core: int) -> float:
        return self.machine.ledger.energy_of(f"core{core}")

    @property
    def log(self) -> FvsstLog | None:
        """The fvsst log, when the governor was a daemon."""
        return self.governor.log if isinstance(self.governor,
                                               FvsstDaemon) else None

    def frequency_residency(self, core: int) -> dict[float, float]:
        """Ground-truth frequency residency of one core (wall-time based,
        works under every governor)."""
        times = self.machine.core(core).freq_time_s
        total = sum(times.values())
        if total <= 0:
            raise ConfigError(f"core {core} recorded no execution time")
        return {f: t / total for f, t in sorted(times.items())}

    def instructions_retired(self) -> float:
        """Aggregate instructions across all cores."""
        return sum(c.counters.instructions for c in self.machine.cores)


class Scenario:
    """A builder for machine + workload + governor + events."""

    def __init__(self, *, num_cores: int = 4, seed: int = 0,
                 machine_config: MachineConfig | None = None,
                 core_config: CoreConfig | None = None,
                 supply_bank: SupplyBank | None = None) -> None:
        if machine_config is not None and core_config is not None:
            raise ConfigError(
                "give machine_config or core_config, not both"
            )
        if machine_config is None:
            machine_config = MachineConfig(
                num_cores=num_cores,
                core_config=core_config or CoreConfig(),
            )
        self._machine_config = machine_config
        self._seed = seed
        self._supply_bank = supply_bank
        self._jobs: list[tuple[int, Job]] = []
        self._governor_name = "none"
        self._governor_kwargs: dict = {}
        self._daemon_config: DaemonConfig | None = None
        self._events: list[tuple[float, Callable]] = []
        self._settle_s = 0.0

    # -- declarative pieces ----------------------------------------------------------

    def with_job(self, core: int, job: Job) -> "Scenario":
        """Place a job on a core."""
        if not 0 <= core < self._machine_config.num_cores:
            raise ConfigError(f"core {core} out of range")
        self._jobs.append((core, job))
        return self

    def with_governor(self, name: str, *, power_limit_w: float | None = None,
                      daemon_config: DaemonConfig | None = None) -> "Scenario":
        """Select the governor by name (see experiments.common)."""
        self._governor_name = name
        self._governor_kwargs = {"power_limit_w": power_limit_w}
        self._daemon_config = daemon_config
        return self

    def at(self, time_s: float,
           action: Callable[["ScenarioResult", float], None]) -> "Scenario":
        """Schedule ``action(result, t)`` at an absolute simulation time."""
        check_non_negative(time_s, "time_s")
        self._events.append((time_s, action))
        return self

    def settle(self, seconds: float) -> "Scenario":
        """Let the governor warm up before jobs are enqueued."""
        check_non_negative(seconds, "seconds")
        self._settle_s = seconds
        return self

    # -- execution ---------------------------------------------------------------------

    def run(self, duration_s: float) -> ScenarioResult:
        """Build everything and advance the simulation."""
        check_positive(duration_s, "duration_s")
        machine = SMPMachine(self._machine_config,
                             supply_bank=self._supply_bank, seed=self._seed)
        governor = make_governor(
            self._governor_name, machine,
            power_limit_w=self._governor_kwargs.get("power_limit_w"),
            daemon_config=self._daemon_config,
            seed=self._seed + 1,
        )
        sim = Simulation(machine)
        governor.attach(sim)
        result = ScenarioResult(machine=machine, governor=governor, sim=sim,
                                duration_s=duration_s, jobs=self._jobs)
        if self._settle_s:
            sim.run_for(self._settle_s)
        for core, job in self._jobs:
            machine.assign(core, job)
        for time_s, action in sorted(self._events, key=lambda e: e[0]):
            if time_s < sim.now_s:
                raise ConfigError(
                    f"event at {time_s}s is before the settle window"
                )
            sim.at(time_s, lambda t, a=action: a(result, t))
        sim.run_for(duration_s)
        return result
