"""Messages of the cluster scheduling protocol.

Kept deliberately small: one report per node per scheduling period carrying
a per-processor counter summary, and one command per node carrying its
frequency vector.  Sizes are estimated so the network model can charge
realistic latency — the communication overhead the paper amortises with a
large ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError

__all__ = ["ProcReport", "NodeReport", "FrequencyCommand",
           "message_size_bytes"]

#: Encoded size of one float field on the wire.
_FIELD_BYTES = 8
#: Fixed framing/header cost per message.
_HEADER_BYTES = 32


@dataclass(frozen=True, slots=True)
class ProcReport:
    """Counter summary of one processor over the last window."""

    proc_id: int
    instructions: float
    cycles: float
    n_l2: float
    n_l3: float
    n_mem: float
    l1_stall_cycles: float
    halted_cycles: float
    interval_s: float
    idle_signaled: bool


@dataclass(frozen=True, slots=True)
class NodeReport:
    """All processor summaries of one node."""

    node_id: int
    time_s: float
    procs: tuple[ProcReport, ...]

    def __post_init__(self) -> None:
        ids = [p.proc_id for p in self.procs]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"node {self.node_id}: duplicate proc ids")


@dataclass(frozen=True, slots=True)
class FrequencyCommand:
    """The coordinator's decision for one node."""

    node_id: int
    time_s: float
    #: Frequency per commanded processor (parallel to :attr:`proc_ids`).
    freqs_hz: tuple[float, ...]
    #: Voltage per commanded processor, same indexing.
    voltages: tuple[float, ...]
    #: Which processor each slot addresses.  ``None`` is the legacy
    #: positional encoding (slot i = processor i), which is only sound
    #: when the command covers every processor of the node — the agent
    #: enforces that.
    proc_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.freqs_hz) != len(self.voltages):
            raise ClusterError("frequency and voltage vectors differ in length")
        if self.proc_ids is not None:
            if len(self.proc_ids) != len(self.freqs_hz):
                raise ClusterError(
                    "proc_ids and frequency vectors differ in length")
            if any(p < 0 for p in self.proc_ids):
                raise ClusterError("proc ids must be non-negative")
            if len(set(self.proc_ids)) != len(self.proc_ids):
                raise ClusterError(
                    f"command for node {self.node_id}: duplicate proc ids")


def message_size_bytes(message: NodeReport | FrequencyCommand) -> int:
    """Wire-size estimate for the network model."""
    if isinstance(message, NodeReport):
        per_proc = 9 * _FIELD_BYTES + 1  # 9 numeric fields + idle flag
        return _HEADER_BYTES + per_proc * len(message.procs)
    if isinstance(message, FrequencyCommand):
        # Proc ids pack into the per-slot field estimate (a u16 rides in
        # the slack of the 8-byte float fields), so carrying them does not
        # change the wire-size estimate — and therefore not the delays of
        # existing fault-free runs.
        return _HEADER_BYTES + 2 * _FIELD_BYTES * len(message.freqs_hz)
    raise ClusterError(f"unknown message type {type(message).__name__}")
