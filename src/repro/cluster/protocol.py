"""Messages of the cluster scheduling protocol.

Kept deliberately small: one report per node per scheduling period carrying
a per-processor counter summary, and one command per node carrying its
frequency vector.  Sizes are estimated so the network model can charge
realistic latency — the communication overhead the paper amortises with a
large ``T``.

The hierarchical control plane (:mod:`repro.cluster.hierarchy`) adds two
messages on the rack→datacenter tier: a :class:`ShardSummary` (one compact
fixed-size record per shard per rebalance round — columnar aggregates, no
per-processor payload, so the fleet tier's traffic is O(shards)) and a
:class:`BudgetLease` delegating a power budget back down to a shard.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError

__all__ = ["ProcReport", "NodeReport", "FrequencyCommand",
           "ShardSummary", "BudgetLease", "message_size_bytes"]

#: Encoded size of one float field on the wire.
_FIELD_BYTES = 8
#: Fixed framing/header cost per message.
_HEADER_BYTES = 32


@dataclass(frozen=True, slots=True)
class ProcReport:
    """Counter summary of one processor over the last window."""

    proc_id: int
    instructions: float
    cycles: float
    n_l2: float
    n_l3: float
    n_mem: float
    l1_stall_cycles: float
    halted_cycles: float
    interval_s: float
    idle_signaled: bool


@dataclass(frozen=True, slots=True)
class NodeReport:
    """All processor summaries of one node."""

    node_id: int
    time_s: float
    procs: tuple[ProcReport, ...]

    def __post_init__(self) -> None:
        ids = [p.proc_id for p in self.procs]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"node {self.node_id}: duplicate proc ids")


@dataclass(frozen=True, slots=True)
class FrequencyCommand:
    """The coordinator's decision for one node."""

    node_id: int
    time_s: float
    #: Frequency per commanded processor (parallel to :attr:`proc_ids`).
    freqs_hz: tuple[float, ...]
    #: Voltage per commanded processor, same indexing.
    voltages: tuple[float, ...]
    #: Which processor each slot addresses.  ``None`` is the legacy
    #: positional encoding (slot i = processor i), which is only sound
    #: when the command covers every processor of the node — the agent
    #: enforces that.
    proc_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.freqs_hz) != len(self.voltages):
            raise ClusterError("frequency and voltage vectors differ in length")
        if self.proc_ids is not None:
            if len(self.proc_ids) != len(self.freqs_hz):
                raise ClusterError(
                    "proc_ids and frequency vectors differ in length")
            if any(p < 0 for p in self.proc_ids):
                raise ClusterError("proc ids must be non-negative")
            if len(set(self.proc_ids)) != len(self.proc_ids):
                raise ClusterError(
                    f"command for node {self.node_id}: duplicate proc ids")


@dataclass(frozen=True, slots=True)
class ShardSummary:
    """One shard's compact state for the fleet allocator.

    Fixed-size per shard: a handful of scalars plus one power-demand value
    per ladder rung (``capped_demand_w[k]`` = the shard's total scheduled
    power if every processor were capped at rung ``k`` while keeping its
    step-1 epsilon-constrained frequency where that is already lower).
    The fleet tier never sees per-processor state — the top of the tree
    scales as O(shards), not O(processors).
    """

    shard_id: int
    time_s: float
    nodes: int
    procs: int
    #: Power-demand ladder over the rung index (nondecreasing);
    #: ``capped_demand_w[0]`` is the shard floor, ``capped_demand_w[-1]``
    #: the shard's unconstrained step-1 demand.
    capped_demand_w: tuple[float, ...]
    #: Mean predicted performance loss of the shard's last local schedule.
    mean_loss: float
    #: Delegated budget the shard is currently scheduling against
    #: (ground truth for the allocator's committed-power accounting).
    budget_w: float | None
    healthy_nodes: int
    stale_nodes: int
    lost_nodes: int

    def __post_init__(self) -> None:
        if not self.capped_demand_w:
            raise ClusterError(
                f"shard {self.shard_id}: empty demand ladder")
        if any(b > a + 1e-9 for a, b in zip(self.capped_demand_w[1:],
                                            self.capped_demand_w[:-1])):
            raise ClusterError(
                f"shard {self.shard_id}: demand ladder must be "
                f"nondecreasing")

    @property
    def floor_w(self) -> float:
        """Shard power with every processor at the frequency floor."""
        return self.capped_demand_w[0]

    @property
    def demand_w(self) -> float:
        """Shard power at the unconstrained step-1 operating points."""
        return self.capped_demand_w[-1]


@dataclass(frozen=True, slots=True)
class BudgetLease:
    """The fleet allocator's delegated budget for one shard.

    Idempotent, and stale-guarded by ``time_s`` exactly like
    :class:`FrequencyCommand`: a delayed duplicate of an old rebalance
    decision must not override a newer one.
    """

    shard_id: int
    time_s: float
    budget_w: float | None

    def __post_init__(self) -> None:
        if self.budget_w is not None and self.budget_w < 0.0:
            raise ClusterError(
                f"shard {self.shard_id}: negative budget lease")


def message_size_bytes(
        message: NodeReport | FrequencyCommand | ShardSummary | BudgetLease
) -> int:
    """Wire-size estimate for the network model."""
    if isinstance(message, NodeReport):
        per_proc = 9 * _FIELD_BYTES + 1  # 9 numeric fields + idle flag
        return _HEADER_BYTES + per_proc * len(message.procs)
    if isinstance(message, FrequencyCommand):
        # Proc ids pack into the per-slot field estimate (a u16 rides in
        # the slack of the 8-byte float fields), so carrying them does not
        # change the wire-size estimate — and therefore not the delays of
        # existing fault-free runs.
        return _HEADER_BYTES + 2 * _FIELD_BYTES * len(message.freqs_hz)
    if isinstance(message, ShardSummary):
        # 7 scalar fields plus one float per ladder rung.
        return _HEADER_BYTES + (7 + len(message.capped_demand_w)) * _FIELD_BYTES
    if isinstance(message, BudgetLease):
        return _HEADER_BYTES + 3 * _FIELD_BYTES
    raise ClusterError(f"unknown message type {type(message).__name__}")
