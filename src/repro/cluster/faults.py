"""Fault injection for the cluster control plane.

The paper's premise is reacting to supply failures and curtailment *before
a cascading failure* (Sections 1, 6) — which means the control plane itself
must keep the safety property when its own messages fail.  This module is
the injection side: a :class:`FaultSchedule` combines a seeded
:class:`~repro.sim.network.NetworkFaults` plan (message loss, latency
jitter, partition windows) with agent crash/recover windows, and the named
scenarios give the CLI and the experiments a shared vocabulary
(``--faults lossy``).

The tolerance side — report timeouts, the last-known-good signature cache,
pessimistic floor scheduling of lost nodes, command acknowledgements with
bounded retransmit — lives in :class:`~repro.cluster.coordinator.ClusterCoordinator`.
See docs/RESILIENCE.md for the full fault model and degraded-mode
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError
from ..sim.network import NetworkFaults, PartitionWindow
from ..sim.rng import spawn_seeds
from ..units import check_non_negative

__all__ = [
    "CrashWindow",
    "FaultSchedule",
    "FAULT_SCENARIOS",
    "FLEET_FAULT_SCENARIOS",
    "fault_scenario",
    "fleet_fault_scenario",
    "scenario_catalog",
]


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """One agent outage: the node's agent is down in ``[start_s, end_s)``.

    While crashed the agent takes no counter samples, serves no reports,
    and applies no commands; its in-memory counter windows are lost (a
    crash wipes process state).  At ``end_s`` it recovers empty-handed.
    """

    node_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ClusterError("node_id must be non-negative")
        check_non_negative(self.start_s, "start_s")
        if self.end_s <= self.start_s:
            raise ClusterError(
                f"crash window [{self.start_s}, {self.end_s}) is empty"
            )

    def covers(self, node_id: int, now_s: float) -> bool:
        return self.node_id == node_id and self.start_s <= now_s < self.end_s


class FaultSchedule:
    """A deterministic, seeded plan of everything that goes wrong.

    One object describes the whole run: the network-level fault plan plus
    agent crash windows.  Install it on a cluster (or hand it to a
    :class:`~repro.cluster.coordinator.ClusterCoordinator`, which installs
    it) and the control plane runs in degraded mode.
    """

    def __init__(self, *, network: NetworkFaults | None = None,
                 crashes: tuple[CrashWindow, ...] = (),
                 name: str = "custom") -> None:
        self.network = network
        self.crashes = tuple(crashes)
        self.name = name

    def node_crashed(self, node_id: int, now_s: float) -> bool:
        """Whether the node's agent is down at ``now_s``."""
        return any(w.covers(node_id, now_s) for w in self.crashes)

    def install(self, cluster) -> None:
        """Attach the network-level plan to the cluster's interconnect."""
        cluster.network.faults = self.network

    def __repr__(self) -> str:
        return (f"FaultSchedule(name={self.name!r}, "
                f"crashes={len(self.crashes)}, "
                f"network={'on' if self.network else 'off'})")


#: Named scenarios: scenario -> one-line description (CLI help and docs).
FAULT_SCENARIOS: dict[str, str] = {
    "none": "no injected faults (identical to the default control plane)",
    "light": "2% message loss, mild latency jitter",
    "lossy": "15% message loss, heavy latency jitter",
    "partition": "node 1 partitioned during [1.0 s, 2.0 s), plus 2% loss",
    "crash": "node 1's agent down during [1.0 s, 2.0 s)",
    "chaos": "10% loss, jitter, a partition window and an agent crash",
}


def scenario_catalog(scenarios: dict[str, str] | None = None) -> str:
    """One line per scenario, ``name — description`` (CLI help, errors)."""
    catalog = FAULT_SCENARIOS if scenarios is None else scenarios
    return "\n".join(f"  {name} — {desc}" for name, desc in catalog.items())


def fault_scenario(name: str, *, seed: int | None = None
                   ) -> FaultSchedule | None:
    """Build a named scenario (``None`` for the fault-free ``"none"``).

    Scenarios are deterministic in ``seed``: loss and jitter streams are
    spawned from it, and partition/crash windows are fixed sim times
    chosen to land inside the short experiment horizons (a few seconds).
    """
    if name not in FAULT_SCENARIOS:
        raise ClusterError(
            f"unknown fault scenario {name!r}; available:\n"
            f"{scenario_catalog()}"
        )
    if name == "none":
        return None
    net_seed = spawn_seeds(seed, 1)[0]
    if name == "light":
        return FaultSchedule(
            network=NetworkFaults(loss_prob=0.02, jitter_sigma=0.1,
                                  seed=net_seed),
            name=name)
    if name == "lossy":
        return FaultSchedule(
            network=NetworkFaults(loss_prob=0.15, jitter_sigma=0.25,
                                  seed=net_seed),
            name=name)
    if name == "partition":
        return FaultSchedule(
            network=NetworkFaults(
                loss_prob=0.02, seed=net_seed,
                partitions=(PartitionWindow(1.0, 2.0,
                                            node_ids=frozenset({1})),)),
            name=name)
    if name == "crash":
        return FaultSchedule(
            network=NetworkFaults(seed=net_seed),
            crashes=(CrashWindow(node_id=1, start_s=1.0, end_s=2.0),),
            name=name)
    # "chaos"
    return FaultSchedule(
        network=NetworkFaults(
            loss_prob=0.10, jitter_sigma=0.3, seed=net_seed,
            partitions=(PartitionWindow(1.0, 1.8,
                                        node_ids=frozenset({1})),)),
        crashes=(CrashWindow(node_id=2, start_s=2.0, end_s=2.6),),
        name=name)


#: Fleet-scale scenarios for the hierarchical control plane (sized to the
#: cluster, unlike the fixed-node-id :data:`FAULT_SCENARIOS`).
FLEET_FAULT_SCENARIOS: dict[str, str] = {
    "partition": "a quarter of the shard uplinks partitioned during "
                 "[0.35 s, 0.85 s), plus 2% loss",
    "crash": "every 64th node's agent down during [0.4 s, 0.9 s)",
    "chaos": "5% loss, jitter, the uplink partition and the agent crashes",
}


def fleet_fault_scenario(name: str, *, num_nodes: int, shard_size: int,
                         seed: int | None = None) -> FaultSchedule:
    """Build a fleet-scale scenario sized to ``num_nodes`` shards.

    A shard's uplink to the fleet tier is its *first* node
    (:attr:`~repro.cluster.hierarchy.ShardCoordinator.uplink_node_id`),
    so partitioning node ids ``k * shard_size`` cuts whole shards off the
    allocator while their intra-rack control plane keeps running.
    Windows land inside the short chaos-run horizons (~1.2 s).
    """
    if name not in FLEET_FAULT_SCENARIOS:
        raise ClusterError(
            f"unknown fleet fault scenario {name!r}; available:\n"
            f"{scenario_catalog(FLEET_FAULT_SCENARIOS)}"
        )
    if num_nodes < 1 or shard_size < 1:
        raise ClusterError("num_nodes and shard_size must be positive")
    net_seed = spawn_seeds(seed, 1)[0]
    num_shards = (num_nodes + shard_size - 1) // shard_size
    # Uplinks of the second quarter of the shards: a contiguous band, as a
    # rack-row switch failure would cut it.
    band = range(num_shards // 4, num_shards // 2)
    uplinks = frozenset(s * shard_size for s in band) or frozenset({0})
    partition = PartitionWindow(0.35, 0.85, node_ids=uplinks)
    crashes = tuple(CrashWindow(node_id=n, start_s=0.4, end_s=0.9)
                    for n in range(0, num_nodes, 64))
    if name == "partition":
        return FaultSchedule(
            network=NetworkFaults(loss_prob=0.02, seed=net_seed,
                                  partitions=(partition,)),
            name=name)
    if name == "crash":
        return FaultSchedule(network=NetworkFaults(seed=net_seed),
                             crashes=crashes, name=name)
    # "chaos"
    return FaultSchedule(
        network=NetworkFaults(loss_prob=0.05, jitter_sigma=0.2,
                              seed=net_seed, partitions=(partition,)),
        crashes=crashes, name=name)
