"""The per-node agent.

Each node runs a lightweight agent (the cluster analogue of the fvsst
daemon's data-collection half): it samples local counters every ``t``,
aggregates them into per-processor summaries, and on request produces a
:class:`~repro.cluster.protocol.NodeReport`.  Frequency commands from the
coordinator are applied locally through the same actuators the single-node
daemon uses.
"""

from __future__ import annotations

from ..errors import ClusterError
from ..sim.counters import CounterReader, CounterSample
from ..sim.driver import Simulation
from ..sim.node import ClusterNode
from ..sim.rng import spawn_rngs
from ..telemetry import EVENT_FREQUENCY_CHANGE, Telemetry, get_telemetry
from ..units import check_positive
from .protocol import FrequencyCommand, NodeReport, ProcReport

__all__ = ["NodeAgent"]


class NodeAgent:
    """Counter collection and command application on one node."""

    def __init__(self, node: ClusterNode, *,
                 sample_period_s: float = 0.010,
                 counter_noise_sigma: float = 0.005,
                 idle_detection: bool = False,
                 telemetry: Telemetry | None = None,
                 seed: int | None = None) -> None:
        check_positive(sample_period_s, "sample_period_s")
        self.node = node
        self.sample_period_s = sample_period_s
        self.idle_detection = idle_detection
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        m = self.telemetry.metrics
        self._m_samples = m.counter(
            "agent_counter_samples_total",
            "Per-processor counter reads across all node agents")
        self._m_reports = m.counter(
            "agent_reports_total", "Node reports produced for the coordinator")
        self._m_commands = m.counter(
            "agent_commands_applied_total",
            "Frequency commands applied by node agents")
        rngs = spawn_rngs(seed, node.machine.num_cores)
        self.readers = [
            CounterReader(core.counters, noise_sigma=counter_noise_sigma,
                          rng=rngs[i])
            for i, core in enumerate(node.machine.cores)
        ]
        self._windows: list[list[CounterSample]] = [
            [] for _ in node.machine.cores
        ]
        self._idle_flags = [False] * node.machine.num_cores
        self._attached = False

    def attach(self, sim: Simulation) -> None:
        """Install the periodic local sampler."""
        if self._attached:
            raise ClusterError(f"agent of node {self.node.node_id} already attached")
        self._attached = True
        if self.idle_detection:
            for core in self.node.machine.cores:
                core.idle_detector.enabled = True
                core.idle_detector.subscribe(self._on_idle_signal)
        sim.every(self.sample_period_s, self._on_sample,
                  name=f"agent-n{self.node.node_id}-sample")

    def _on_sample(self, now_s: float) -> None:
        for i, reader in enumerate(self.readers):
            self._windows[i].append(reader.sample(now_s))
        if self.telemetry.enabled:
            self._m_samples.inc(len(self.readers))

    def _on_idle_signal(self, core_id: int, is_idle: bool) -> None:
        self._idle_flags[core_id] = is_idle

    # -- protocol ----------------------------------------------------------------

    def make_report(self, now_s: float) -> NodeReport:
        """Summarise and clear the current windows."""
        procs = []
        for i, window in enumerate(self._windows):
            procs.append(ProcReport(
                proc_id=i,
                instructions=sum(s.instructions for s in window),
                cycles=sum(s.cycles for s in window),
                n_l2=sum(s.n_l2 for s in window),
                n_l3=sum(s.n_l3 for s in window),
                n_mem=sum(s.n_mem for s in window),
                l1_stall_cycles=sum(s.l1_stall_cycles for s in window),
                halted_cycles=sum(s.halted_cycles for s in window),
                interval_s=sum(s.interval_s for s in window),
                idle_signaled=self._idle_flags[i],
            ))
            window.clear()
        if self.telemetry.enabled:
            self._m_reports.inc()
        return NodeReport(node_id=self.node.node_id, time_s=now_s,
                          procs=tuple(procs))

    def apply_command(self, command: FrequencyCommand, now_s: float) -> None:
        """Set local frequencies per the coordinator's decision."""
        if command.node_id != self.node.node_id:
            raise ClusterError(
                f"command for node {command.node_id} delivered to node "
                f"{self.node.node_id}"
            )
        cores = self.node.machine.cores
        if len(command.freqs_hz) != len(cores):
            raise ClusterError(
                f"command carries {len(command.freqs_hz)} frequencies for "
                f"{len(cores)} processors"
            )
        tel = self.telemetry
        for core, freq in zip(cores, command.freqs_hz):
            old_hz = core.frequency_setting_hz
            if tel.enabled and old_hz != freq:
                tel.emit(EVENT_FREQUENCY_CHANGE, sim_time_s=now_s,
                         node=self.node.node_id, proc=core.core_id,
                         old_hz=old_hz, new_hz=freq)
            core.set_frequency(freq, now_s)
        if tel.enabled:
            self._m_commands.inc()
