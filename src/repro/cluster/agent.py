"""The per-node agent.

Each node runs a lightweight agent (the cluster analogue of the fvsst
daemon's data-collection half): it samples local counters every ``t``,
aggregates them into per-processor summaries, and on request produces a
:class:`~repro.cluster.protocol.NodeReport`.  Frequency commands from the
coordinator are applied locally through the same actuators the single-node
daemon uses.

Two delivery-failure rules matter on a lossy network:

* counter windows survive until the coordinator *accepts* the report
  (:meth:`NodeAgent.confirm_report`); a dropped report costs a round trip,
  not the data;
* commands are applied by explicit processor id and are idempotent, so a
  retransmitted command is harmless and a stale one (older than the newest
  applied) is ignored.
"""

from __future__ import annotations

from ..errors import ClusterError
from ..sim.counters import CounterReader, CounterSample
from ..sim.driver import Simulation
from ..sim.node import ClusterNode
from ..sim.rng import spawn_rngs
from ..telemetry import EVENT_FREQUENCY_CHANGE, Telemetry, get_telemetry
from ..units import check_positive
from .faults import FaultSchedule
from .protocol import FrequencyCommand, NodeReport, ProcReport

__all__ = ["NodeAgent"]


class NodeAgent:
    """Counter collection and command application on one node."""

    def __init__(self, node: ClusterNode, *,
                 sample_period_s: float = 0.010,
                 counter_noise_sigma: float = 0.005,
                 idle_detection: bool = False,
                 telemetry: Telemetry | None = None,
                 faults: FaultSchedule | None = None,
                 seed: int | None = None) -> None:
        check_positive(sample_period_s, "sample_period_s")
        self.node = node
        self.sample_period_s = sample_period_s
        self.idle_detection = idle_detection
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.faults = faults
        m = self.telemetry.metrics
        self._m_samples = m.counter(
            "agent_counter_samples_total",
            "Per-processor counter reads across all node agents")
        self._m_reports = m.counter(
            "agent_reports_total", "Node reports produced for the coordinator")
        self._m_commands = m.counter(
            "agent_commands_applied_total",
            "Frequency commands applied by node agents")
        rngs = spawn_rngs(seed, node.machine.num_cores)
        self.readers = [
            CounterReader(core.counters, noise_sigma=counter_noise_sigma,
                          rng=rngs[i])
            for i, core in enumerate(node.machine.cores)
        ]
        self._windows: list[list[CounterSample]] = [
            [] for _ in node.machine.cores
        ]
        self._idle_flags = [False] * node.machine.num_cores
        self._attached = False
        #: Samples per window covered by the last unconfirmed report.
        self._pending_counts: list[int] | None = None
        #: Decision time of the newest applied command (stale-command guard).
        self._last_command_time_s = float("-inf")
        self._was_crashed = False

    def attach(self, sim: Simulation) -> None:
        """Install the periodic local sampler."""
        if self._attached:
            raise ClusterError(f"agent of node {self.node.node_id} already attached")
        self._attached = True
        if self.idle_detection:
            for core in self.node.machine.cores:
                core.idle_detector.enabled = True
                core.idle_detector.subscribe(self._on_idle_signal)
        sim.every(self.sample_period_s, self._on_sample,
                  name=f"agent-n{self.node.node_id}-sample")

    # -- crash state -------------------------------------------------------------

    def crashed(self, now_s: float) -> bool:
        """Whether the agent is down at ``now_s`` (manual or scheduled)."""
        if self.node.crashed:
            return True
        return (self.faults is not None
                and self.faults.node_crashed(self.node.node_id, now_s))

    def _on_sample(self, now_s: float) -> None:
        if self.crashed(now_s):
            if not self._was_crashed:
                # The crash wiped the agent's process state: windows and
                # any unconfirmed report snapshot are gone.
                self._was_crashed = True
                for window in self._windows:
                    window.clear()
                self._pending_counts = None
            # The counters keep running under the crashed agent; discard
            # the unobserved interval so recovery starts a clean window.
            for reader in self.readers:
                reader.sample(now_s)
            return
        self._was_crashed = False
        for i, reader in enumerate(self.readers):
            self._windows[i].append(reader.sample(now_s))
        if self.telemetry.enabled:
            self._m_samples.inc(len(self.readers))

    def _on_idle_signal(self, core_id: int, is_idle: bool) -> None:
        self._idle_flags[core_id] = is_idle

    # -- protocol ----------------------------------------------------------------

    def make_report(self, now_s: float) -> NodeReport:
        """Summarise the current windows into a report.

        The windows are *retained* until :meth:`confirm_report` — on a
        lossy network the report may never arrive, and clearing eagerly
        would destroy the window data with it.  An unconfirmed report is
        simply superseded: the next one covers the same samples plus
        whatever accumulated since.
        """
        procs = []
        self._pending_counts = [len(w) for w in self._windows]
        for i, window in enumerate(self._windows):
            procs.append(ProcReport(
                proc_id=i,
                instructions=sum(s.instructions for s in window),
                cycles=sum(s.cycles for s in window),
                n_l2=sum(s.n_l2 for s in window),
                n_l3=sum(s.n_l3 for s in window),
                n_mem=sum(s.n_mem for s in window),
                l1_stall_cycles=sum(s.l1_stall_cycles for s in window),
                halted_cycles=sum(s.halted_cycles for s in window),
                interval_s=sum(s.interval_s for s in window),
                idle_signaled=self._idle_flags[i],
            ))
        if self.telemetry.enabled:
            self._m_reports.inc()
        return NodeReport(node_id=self.node.node_id, time_s=now_s,
                          procs=tuple(procs))

    def confirm_report(self) -> None:
        """Acknowledge delivery of the last report: drop its samples.

        Only the samples the report covered are dropped; anything sampled
        after :meth:`make_report` stays for the next window.
        """
        if self._pending_counts is None:
            return
        for window, count in zip(self._windows, self._pending_counts):
            del window[:count]
        self._pending_counts = None

    def apply_command(self, command: FrequencyCommand, now_s: float) -> None:
        """Set local frequencies per the coordinator's decision.

        Commands address processors by explicit id (:attr:`FrequencyCommand.proc_ids`)
        so a partial command — e.g. one excluding an offline processor —
        retunes exactly the processors it names.  A legacy command without
        ids must cover every processor positionally.  Stale commands
        (older than the newest applied) are dropped: with retransmits a
        delayed duplicate of an old decision must not override a newer one.
        """
        if command.node_id != self.node.node_id:
            raise ClusterError(
                f"command for node {command.node_id} delivered to node "
                f"{self.node.node_id}"
            )
        cores = self.node.machine.cores
        if command.proc_ids is None:
            # Legacy positional encoding: only sound for full-width
            # commands, where slot i is processor i by construction.
            if len(command.freqs_hz) != len(cores):
                raise ClusterError(
                    f"command carries {len(command.freqs_hz)} frequencies for "
                    f"{len(cores)} processors"
                )
            targets = list(zip(cores, command.freqs_hz))
        else:
            targets = []
            for proc_id, freq in zip(command.proc_ids, command.freqs_hz):
                if not 0 <= proc_id < len(cores):
                    raise ClusterError(
                        f"command for node {command.node_id} addresses "
                        f"processor {proc_id}; node has {len(cores)}"
                    )
                targets.append((cores[proc_id], freq))
        if command.time_s < self._last_command_time_s:
            return
        self._last_command_time_s = command.time_s
        tel = self.telemetry
        for core, freq in targets:
            old_hz = core.frequency_setting_hz
            if tel.enabled and old_hz != freq:
                tel.emit(EVENT_FREQUENCY_CHANGE, sim_time_s=now_s,
                         node=self.node.node_id, proc=core.core_id,
                         old_hz=old_hz, new_hz=freq)
            core.set_frequency(freq, now_s)
        if tel.enabled:
            self._m_commands.inc()
