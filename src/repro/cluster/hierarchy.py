"""The hierarchical (rack -> datacenter) control plane.

The flat :class:`~repro.cluster.coordinator.ClusterCoordinator` runs one
Figure 3 pass over every processor of every node — fast after the columnar
work, but still a single synchronous bottleneck whose cost grows with the
fleet.  This module splits the tree in two tiers:

* a :class:`ShardCoordinator` per rack — a full coordinator (columnar
  pass, nested budgets, degraded mode) over its own few nodes, scheduling
  against a *delegated* power budget; and
* one :class:`FleetAllocator` on top, which never sees a processor: every
  rebalance period it gathers one compact :class:`ShardSummary` per shard
  (a power-demand ladder over the frequency rungs, O(rungs) floats) and
  re-splits the fleet budget with a FastCap-style fair water-fill in rung
  space, leasing the new budgets back down.

Fairness follows FastCap (PAPERS.md): rather than trimming shards
proportionally to demand, the allocator finds the uniform *rung level*
(fractional between ladder points) that makes the summed capped demands
meet the budget — every shard is throttled to the same depth of its own
ladder, so a shard with memory-bound (cheap-to-slow) work absorbs cuts
before one whose ladder rises steeply.

Budget safety across an unreliable fabric uses pessimistic *committed*
accounting: a grow lease raises the shard's committed power at send time
(an overcount if the lease drops — safe), while a shrink lease leaves the
committed value high until a fresh summary proves the shard applied it.
Grows are throttled by the pool ``B - sum(committed)``, so the fleet never
promises more than the budget even while leases and summaries are in
flight or lost.  Leases are stale-guarded by send time, so a delayed
duplicate of an old rebalance cannot override a newer decision.

A partitioned, lossy, or crashed shard degrades alone: its summary simply
fails to arrive, the allocator serves from a cached summary within
``staleness_bound_s`` and then declares the shard *lost* — freezing its
committed budget (it may still be drawing it) and excluding it from the
water-fill — while every healthy shard keeps scheduling.  The fleet pass
itself never blocks on a sick shard.

With one shard the allocator is pure pass-through: no summaries, no
leases, no rebalance tick, no extra randomness — byte-identical to the
flat coordinator (pinned by an equivalence test).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from ..core.scheduler import FrequencyVoltageScheduler
from ..errors import ClusterError
from ..sim.cluster import Cluster
from ..sim.driver import Simulation
from ..sim.rng import spawn_seeds
from ..telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    EVENT_SHARD_LOST,
    EVENT_SHARD_REBALANCE,
    EVENT_SHARD_RECOVERED,
    Telemetry,
    get_telemetry,
)
from ..units import check_positive
from .coordinator import _CONTROL_FRAME_BYTES, ClusterCoordinator, CoordinatorConfig
from .faults import FaultSchedule
from .protocol import BudgetLease, ShardSummary, message_size_bytes

__all__ = [
    "FleetConfig",
    "ShardCoordinator",
    "FleetAllocator",
    "water_fill_budgets",
]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of the fleet (datacenter) tier."""

    #: Nodes per shard (rack size); the last shard takes the remainder.
    shard_size: int = 4
    #: Budget rebalance period (None = 2 shard scheduling periods).  Must
    #: comfortably exceed the network round trip, so a lease is applied
    #: before the next summary reports the shard's budget.
    rebalance_period_s: float | None = None
    #: A summary whose round trip exceeds this is treated as missing for
    #: the rebalance (None = accept any delay).
    summary_timeout_s: float | None = None
    #: How long a cached summary may serve before the shard counts as
    #: lost (None = 3 rebalance periods).
    staleness_bound_s: float | None = None

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ClusterError("shard_size must be at least 1")
        if self.rebalance_period_s is not None:
            check_positive(self.rebalance_period_s, "rebalance_period_s")
        if self.summary_timeout_s is not None:
            check_positive(self.summary_timeout_s, "summary_timeout_s")
        if self.staleness_bound_s is not None:
            check_positive(self.staleness_bound_s, "staleness_bound_s")
        if (self.summary_timeout_s is not None
                and self.staleness_bound_s is not None
                and self.summary_timeout_s > self.staleness_bound_s):
            raise ClusterError(
                f"summary_timeout_s ({self.summary_timeout_s:g} s) exceeds "
                f"staleness_bound_s ({self.staleness_bound_s:g} s): every "
                f"summary slow enough to time out would already be stale"
            )

    def effective_rebalance_period_s(self, schedule_period_s: float) -> float:
        """The rebalance period with its shard-period default applied."""
        if self.rebalance_period_s is not None:
            return self.rebalance_period_s
        return 2.0 * schedule_period_s

    def effective_staleness_bound_s(self, schedule_period_s: float) -> float:
        """The staleness bound with its period-derived default applied."""
        if self.staleness_bound_s is not None:
            return self.staleness_bound_s
        return 3.0 * self.effective_rebalance_period_s(schedule_period_s)


def water_fill_budgets(ladders: np.ndarray, budget_w: float
                       ) -> tuple[np.ndarray, bool]:
    """FastCap-style fair split of ``budget_w`` across shard ladders.

    ``ladders`` is ``(shards, rungs)``, each row nondecreasing:
    ``ladders[i, k]`` is shard *i*'s total power with every processor
    capped at rung ``k`` (and at its epsilon-constrained rung where that
    is lower).  The fill finds the uniform fractional rung level at which
    the summed capped demands meet the budget and reads each shard's
    budget off its own ladder at that level — the same cap depth for
    everyone, so cuts land where they cost the least frequency.

    Returns ``(budgets, infeasible)``; ``infeasible`` means the budget is
    below the summed floors, in which case every shard gets its floor
    (the allocator's callers treat that like the scheduler's
    ``on_infeasible="floor"``).
    """
    ladders = np.asarray(ladders, dtype=float)
    if ladders.ndim != 2 or ladders.shape[1] < 1:
        raise ClusterError("ladders must be a (shards, rungs) matrix")
    totals = ladders.sum(axis=0)
    if budget_w >= totals[-1]:
        # Unconstrained: everyone gets demand, plus an even slack share
        # (headroom for the next window's drift).
        slack = (budget_w - totals[-1]) / ladders.shape[0]
        return ladders[:, -1] + slack, False
    if budget_w <= totals[0]:
        return ladders[:, 0].copy(), bool(budget_w < totals[0] - 1e-9)
    k = int(np.searchsorted(totals, budget_w, side="right")) - 1
    span = totals[k + 1] - totals[k]
    frac = 0.0 if span <= 0.0 else (budget_w - totals[k]) / span
    return ladders[:, k] + (ladders[:, k + 1] - ladders[:, k]) * frac, False


class ShardCoordinator(ClusterCoordinator):
    """One rack's coordinator, scheduling against a delegated budget.

    A full :class:`ClusterCoordinator` (columnar pass, nested budgets,
    degraded mode) over a sub-cluster that shares the fleet fabric; on
    top of it, the two fleet-tier verbs: summarise state *up*
    (:meth:`make_summary`) and apply a budget lease *down*
    (:meth:`apply_lease`).  The shard's uplink is its first node — a
    partition window covering that node id cuts the shard off the fleet
    tier without touching its intra-rack traffic.
    """

    def __init__(self, shard_id: int, cluster: Cluster,
                 config: CoordinatorConfig | None = None, **kwargs) -> None:
        super().__init__(cluster, config, **kwargs)
        self.shard_id = shard_id
        self.uplink_node_id = cluster.nodes[0].node_id
        self._last_lease_time_s = -math.inf
        self.leases_applied = 0
        self.leases_stale_dropped = 0

    # -- fleet-tier verbs --------------------------------------------------------

    def make_summary(self, now_s: float) -> ShardSummary:
        """The shard's compact state for the fleet allocator.

        The demand ladder comes from the *last* local schedule's
        epsilon-constrained rungs — the shard's own measurement-driven
        step 1 — so the allocator water-fills over real demand without
        ever seeing a processor.  Before the first pass the ladder is
        pessimistic (every processor at the top rung).
        """
        sched = self.scheduler
        table = sched.table
        powers = table.powers_array()
        rungs = np.arange(len(table))
        schedule = self.last_schedule
        if schedule is None or not schedule.assignments:
            procs = self.cluster.total_procs
            ladder = powers * procs
            mean_loss = 0.0
            procs_n = procs
        else:
            assignments = schedule.assignments
            procs_n = len(assignments)
            eps_idx = np.fromiter(
                (table.index_of(a.eps_freq_hz) for a in assignments),
                dtype=np.intp, count=procs_n)
            capped = np.minimum(eps_idx[:, None], rungs[None, :])
            if self.slo_floors_hz:
                # SLO floors flatten the ladder from below: rungs under a
                # processor's floor still cost the floor's power, so the
                # water-fill cannot be tempted by savings the schedule
                # will refuse to realise.
                floor_rungs = np.fromiter(
                    (table.index_of(table.quantize_up(
                        self.slo_floors_hz[a.node_id]))
                     if a.node_id in self.slo_floors_hz else 0
                     for a in assignments),
                    dtype=np.intp, count=procs_n)
                capped = np.maximum(floor_rungs[:, None], capped)
            if type(sched).power_for is FrequencyVoltageScheduler.power_for:
                ladder = powers[capped].sum(axis=0)
            else:
                # Heterogeneous power model: per-processor ladder rows.
                rows = np.array(
                    [[sched.power_for(a.node_id, a.proc_id, f)
                      for f in table.freqs_hz] for a in assignments])
                ladder = np.take_along_axis(rows, capped, axis=1).sum(axis=0)
            mean_loss = float(np.mean([a.predicted_loss
                                       for a in assignments]))
        counts = {"healthy": 0, "stale": 0, "lost": 0}
        for state in self.node_health.values():
            counts["healthy" if state == "recovered" else state] += 1
        return ShardSummary(
            shard_id=self.shard_id,
            time_s=now_s,
            nodes=len(self.cluster.nodes),
            procs=procs_n,
            capped_demand_w=tuple(float(w) for w in ladder),
            mean_loss=mean_loss,
            budget_w=self.power_limit_w,
            healthy_nodes=counts["healthy"],
            stale_nodes=counts["stale"],
            lost_nodes=counts["lost"],
        )

    def apply_lease(self, lease: BudgetLease, now_s: float) -> None:
        """Adopt a delegated budget (idempotent, stale-guarded).

        A shrink triggers an immediate local pass — the shard must stop
        drawing the surrendered power before the allocator re-leases it —
        while a grow just takes effect at the next periodic pass.
        """
        if lease.time_s < self._last_lease_time_s:
            self.leases_stale_dropped += 1
            return
        self._last_lease_time_s = lease.time_s
        previous = self.power_limit_w
        self.power_limit_w = lease.budget_w
        self.leases_applied += 1
        shrink = lease.budget_w is not None and (
            previous is None or lease.budget_w < previous - 1e-9)
        if shrink:
            self.run_global_pass(now_s)


class FleetAllocator:
    """The datacenter tier: shard coordinators under one fleet budget.

    Slices the cluster into ``shard_size``-node racks, runs one
    :class:`ShardCoordinator` per rack, and periodically rebalances the
    fleet power budget across them (:meth:`run_rebalance`).  The top tier
    holds O(shards) state — summaries, health, committed watts — never
    per-processor views, so it scales past the flat coordinator.

    With a single shard the allocator is a transparent wrapper around one
    coordinator over the whole cluster: same seed tree, no fleet traffic,
    no rebalance tick — byte-identical to the flat path.
    """

    def __init__(self, cluster: Cluster,
                 config: CoordinatorConfig | None = None, *,
                 fleet: FleetConfig | None = None,
                 telemetry: Telemetry | None = None,
                 faults: FaultSchedule | None = None,
                 seed: int | None = None,
                 **shard_kwargs) -> None:
        self.cluster = cluster
        self.config = config or CoordinatorConfig()
        self.fleet = fleet or FleetConfig()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.faults = faults
        self.power_limit_w = self.config.power_limit_w
        size = self.fleet.shard_size
        groups = [cluster.nodes[i:i + size]
                  for i in range(0, len(cluster.nodes), size)]
        self.shards: list[ShardCoordinator] = []
        if len(groups) == 1:
            # Pass-through: the whole cluster, the root seed, the exact
            # config — nothing hierarchical consumes randomness or fabric.
            self.shards.append(ShardCoordinator(
                0, cluster, self.config, telemetry=self.telemetry,
                faults=faults, seed=seed, **shard_kwargs))
        else:
            shard_seeds = spawn_seeds(seed, len(groups))
            total_procs = cluster.total_procs
            for i, nodes in enumerate(groups):
                share = None
                if self.power_limit_w is not None:
                    procs = sum(n.num_procs for n in nodes)
                    share = self.power_limit_w * procs / total_procs
                shard_config = replace(self.config, power_limit_w=share)
                self.shards.append(ShardCoordinator(
                    i, Cluster(list(nodes), network=cluster.network),
                    shard_config, telemetry=self.telemetry, faults=faults,
                    seed=shard_seeds[i], **shard_kwargs))
        #: Pessimistic committed watts per shard (see module docstring).
        self.committed_w: list[float] = [
            s.power_limit_w if s.power_limit_w is not None else math.inf
            for s in self.shards]
        #: Health per shard: healthy/stale/lost/recovered.
        self.shard_health: dict[int, str] = {
            s.shard_id: "healthy" for s in self.shards}
        self._summary_cache: dict[int, tuple[float, ShardSummary]] = {}
        self._sim: Simulation | None = None
        # Plain tallies (readable with telemetry disabled).
        self.rebalances = 0
        self.summaries_dropped = 0
        self.leases_sent = 0
        self.leases_dropped = 0
        #: Largest sum of committed watts any rebalance ever promised —
        #: the budget-safety witness (must never exceed the fleet limit).
        self.max_committed_w = 0.0
        self.last_rebalance_wall_s: float | None = None
        m = self.telemetry.metrics
        self._m_rebalances = m.counter(
            "shard_rebalance_passes_total", "Fleet budget rebalance passes")
        self._m_rebalance_seconds = m.histogram(
            "shard_rebalance_seconds",
            "Wall-clock latency of one fleet rebalance pass")
        self._m_summaries = m.counter(
            "shard_summaries_total",
            "Shard summaries received by the fleet allocator")
        self._m_summaries_dropped = m.counter(
            "shard_summaries_dropped_total",
            "Shard summaries lost to drops, partitions, or timeouts")
        self._m_leases_sent = m.counter(
            "shard_leases_sent_total", "Budget leases dispatched to shards")
        self._m_leases_dropped = m.counter(
            "shard_leases_dropped_total", "Budget leases lost in flight")
        self._m_committed = m.gauge(
            "shard_committed_watts",
            "Sum of budget watts currently committed to shards")
        self._m_health = {
            state: m.gauge(
                f"shard_health_{state}",
                f"Shards currently in the {state!r} health state")
            for state in ("healthy", "stale", "lost")
        }

    # -- introspection -----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def hierarchical(self) -> bool:
        """Whether the fleet tier is actually active (more than 1 shard)."""
        return len(self.shards) > 1

    @property
    def sim(self) -> Simulation:
        if self._sim is None:
            raise ClusterError("fleet allocator is not attached")
        return self._sim

    @property
    def rebalance_period_s(self) -> float:
        return self.fleet.effective_rebalance_period_s(
            self.config.schedule_period_s)

    @property
    def staleness_bound_s(self) -> float:
        return self.fleet.effective_staleness_bound_s(
            self.config.schedule_period_s)

    def node_health(self) -> dict[int, str]:
        """Fleet-wide node health, merged from every shard."""
        merged: dict[int, str] = {}
        for shard in self.shards:
            merged.update(shard.node_health)
        return merged

    def bind_serving(self, traffic) -> None:
        """Bind SLO-mode serving traffic on every shard.

        Shards own disjoint node sets and each filters the fleet-wide
        ``node_demands`` down to its own nodes, so one traffic source
        serves the whole tree.
        """
        for shard in self.shards:
            shard.bind_serving(traffic)

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Install every shard; arm the rebalance tick when hierarchical."""
        if self._sim is not None:
            raise ClusterError("fleet allocator already attached")
        self._sim = sim
        for shard in self.shards:
            shard.attach(sim)
        if self.hierarchical:
            sim.every(self.rebalance_period_s, self._on_rebalance_tick,
                      name="fleet-rebalance")

    def _on_rebalance_tick(self, now_s: float) -> None:
        self.run_rebalance(now_s)

    # -- the fleet pass ----------------------------------------------------------

    def run_rebalance(self, now_s: float) -> None:
        """Collect summaries, water-fill the budget, lease it back down.

        Never blocks on a sick shard: a missing summary downgrades that
        shard (stale, then lost) and the fill proceeds over the rest.
        """
        tel = self.telemetry
        wall0 = time.perf_counter()
        if tel.enabled:
            with tel.tracer.span("fleet.rebalance", sim_time_s=now_s,
                                 shards=len(self.shards)):
                self._rebalance_body(now_s)
        else:
            self._rebalance_body(now_s)
        self.last_rebalance_wall_s = time.perf_counter() - wall0
        self.rebalances += 1
        if tel.enabled:
            self._m_rebalances.inc()
            self._m_rebalance_seconds.observe(self.last_rebalance_wall_s)

    def _rebalance_body(self, now_s: float) -> None:
        tel = self.telemetry
        summaries = self._collect_summaries(now_s)
        usable: list[int] = []       # shard indices with a live ladder
        ladders: list[tuple[float, ...]] = []
        lost: list[int] = []
        bound = self.staleness_bound_s
        for i, shard in enumerate(self.shards):
            sid = shard.shard_id
            if sid in summaries:
                summary = summaries[sid]
                self._summary_cache[sid] = (now_s, summary)
                recovered = self.shard_health[sid] == "lost"
                self._set_shard_health(sid, "recovered" if recovered
                                       else "healthy", now_s)
                # Resync: the summary's applied budget is ground truth for
                # the committed accounting (an unconstrained shard can draw
                # up to its demand).
                self.committed_w[i] = (summary.budget_w
                                       if summary.budget_w is not None
                                       else summary.demand_w)
                usable.append(i)
                ladders.append(summary.capped_demand_w)
                continue
            cached = self._summary_cache.get(sid)
            if (cached is not None and now_s - cached[0] <= bound
                    and self.shard_health[sid] != "lost"):
                self._set_shard_health(sid, "stale", now_s)
                usable.append(i)
                ladders.append(cached[1].capped_demand_w)
            else:
                self._set_shard_health(sid, "lost", now_s)
                lost.append(i)
        self._update_health_gauges()

        budget = self.power_limit_w
        infeasible = False
        if budget is not None and usable:
            if len({len(l) for l in ladders}) != 1:
                raise ClusterError("shard demand ladders differ in length")
            # A lost shard may still be drawing its committed budget;
            # carve it out before filling the reachable shards.
            frozen = sum(self.committed_w[i] for i in lost)
            available = max(0.0, budget - frozen)
            targets, infeasible = water_fill_budgets(
                np.asarray(ladders), available)
            self._dispatch_leases(usable, targets, budget, now_s)
            if infeasible and tel.enabled:
                tel.emit(EVENT_BUDGET_BREACH, sim_time_s=now_s,
                         scope="fleet", limit_w=budget,
                         available_w=available,
                         floor_w=float(np.asarray(ladders)[:, 0].sum()))
        committed = sum(self.committed_w)
        if budget is not None:
            self.max_committed_w = max(self.max_committed_w, committed)
        if tel.enabled:
            if budget is not None and math.isfinite(committed):
                self._m_committed.set(committed)
            tel.emit(EVENT_SHARD_REBALANCE, sim_time_s=now_s,
                     budget_w=budget, shards=len(self.shards),
                     usable=len(usable), lost=len(lost),
                     infeasible=infeasible)

    def _collect_summaries(self, now_s: float) -> dict[int, ShardSummary]:
        """One summary round trip per shard over the (possibly faulty)
        fabric; a shard whose request or reply dies is simply absent."""
        tel = self.telemetry
        network = self.cluster.network
        timeout = self.fleet.summary_timeout_s
        fresh: dict[int, ShardSummary] = {}
        dropped = 0
        for shard in self.shards:
            uplink = shard.uplink_node_id
            if self.faults is not None:
                request = network.try_send(_CONTROL_FRAME_BYTES,
                                           now_s=now_s, node_id=uplink)
                if request is None:
                    dropped += 1
                    continue
                summary = shard.make_summary(now_s)
                reply = network.try_send(message_size_bytes(summary),
                                         now_s=now_s, node_id=uplink)
                if reply is None:
                    dropped += 1
                    continue
                if timeout is not None and request + reply > timeout:
                    dropped += 1
                    continue
            else:
                summary = shard.make_summary(now_s)
                network.round_trip_s(_CONTROL_FRAME_BYTES,
                                     message_size_bytes(summary))
            fresh[shard.shard_id] = summary
        self.summaries_dropped += dropped
        if tel.enabled:
            self._m_summaries.inc(len(fresh))
            if dropped:
                self._m_summaries_dropped.inc(dropped)
        return fresh

    def _dispatch_leases(self, usable: list[int], targets: np.ndarray,
                         budget: float, now_s: float) -> None:
        """Ship the water-filled budgets with pessimistic accounting.

        Shrinks go out as-is (committed stays high until the shard's next
        fresh summary proves it applied the cut); grows are throttled by
        the uncommitted pool and committed at send time, so the sum of
        commitments never exceeds the fleet budget.
        """
        growers: list[tuple[int, float]] = []   # (shard index, desired +W)
        for i, target in zip(usable, targets):
            target = float(target)
            committed = self.committed_w[i]
            if target < committed - 1e-9:
                self._send_lease(i, target, now_s)
            elif target > committed + 1e-9:
                growers.append((i, target - committed))
        if not growers:
            return
        finite = [w for w in self.committed_w if math.isfinite(w)]
        if len(finite) != len(self.committed_w):
            # Some shard's commitment is unknown (never summarised while
            # unconstrained): no safe pool to grow from yet.
            return
        pool = max(0.0, budget - sum(finite))
        total_desired = sum(d for _, d in growers)
        scale = min(1.0, pool / total_desired) if total_desired > 0 else 0.0
        for i, desired in growers:
            grant = desired * scale
            if grant <= 1e-9:
                continue
            self.committed_w[i] += grant
            self._send_lease(i, self.committed_w[i], now_s)

    def _send_lease(self, index: int, budget_w: float | None,
                    now_s: float) -> None:
        shard = self.shards[index]
        lease = BudgetLease(shard_id=shard.shard_id, time_s=now_s,
                            budget_w=budget_w)
        size = message_size_bytes(lease)
        network = self.cluster.network
        if self.faults is not None:
            delay = network.try_send(size, now_s=now_s,
                                     node_id=shard.uplink_node_id)
        else:
            delay = network.send(size)
        self.leases_sent += 1
        if self.telemetry.enabled:
            self._m_leases_sent.inc()
        if delay is None:
            self.leases_dropped += 1
            if self.telemetry.enabled:
                self._m_leases_dropped.inc()
            return
        self.sim.at(now_s + delay,
                    lambda t, s=shard, l=lease: s.apply_lease(l, t),
                    name=f"apply-lease-s{shard.shard_id}")

    # -- health ------------------------------------------------------------------

    def _set_shard_health(self, shard_id: int, state: str,
                          now_s: float) -> None:
        previous = self.shard_health[shard_id]
        if previous == state:
            return
        self.shard_health[shard_id] = state
        if self.telemetry.enabled:
            if state == "lost":
                self.telemetry.emit(EVENT_SHARD_LOST, sim_time_s=now_s,
                                    shard=shard_id, previous=previous)
            elif previous == "lost":
                self.telemetry.emit(EVENT_SHARD_RECOVERED,
                                    sim_time_s=now_s, shard=shard_id)

    def _update_health_gauges(self) -> None:
        if not self.telemetry.enabled:
            return
        counts = {"healthy": 0, "stale": 0, "lost": 0}
        for state in self.shard_health.values():
            counts["healthy" if state == "recovered" else state] += 1
        for state, gauge in self._m_health.items():
            gauge.set(counts[state])

    # -- triggers ----------------------------------------------------------------

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        """Change the fleet budget and rebalance immediately.

        Single-shard mode delegates straight to the coordinator (same
        behaviour as the flat path); hierarchical mode re-splits at once
        so curtailment response time includes only one rebalance round.
        """
        self.power_limit_w = limit_w
        if not self.hierarchical:
            self.shards[0].set_power_limit(limit_w, now_s)
            return
        if self.telemetry.enabled:
            self.telemetry.emit(EVENT_CURTAILMENT, sim_time_s=now_s,
                                scope="fleet", new_limit_w=limit_w)
        if limit_w is None:
            for i in range(len(self.shards)):
                self.committed_w[i] = math.inf
                self._send_lease(i, None, now_s)
            return
        self.run_rebalance(now_s)
