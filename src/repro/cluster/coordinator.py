"""The global cluster coordinator.

Runs the Figure 3 algorithm across every processor of every node under one
global power limit.  Every scheduling period ``T`` it synchronously
collects a report from each agent (paying network round trips), converts
the reports to processor views through the predictor, schedules, and ships
per-node frequency commands whose *application is delayed by the network*
— so the measured response time to a power-limit trigger includes the
communication the paper says ``T`` amortises.

With a :class:`~repro.cluster.faults.FaultSchedule` installed the
coordinator runs every pass in *degraded mode*:

* report collection tolerates drops, partitions, crashed agents, and (when
  ``report_timeout_s`` is set) late replies — a node that misses the pass
  keeps its counter windows for the next one;
* missing nodes are scheduled from a last-known-good signature cache while
  within ``staleness_bound_s``; beyond it the node is *lost* and pinned
  pessimistically to the frequency floor, with its floor power carved out
  of the global budget — so total scheduled power honours the active
  limits no matter how many reports went missing (the paper's safety
  property, extended to a faulty control plane);
* commands carry explicit processor ids, are acknowledged by the agent,
  and are retransmitted (bounded by ``command_retries``) until acked;
  application is idempotent and stale commands are discarded;
* per-node health (``healthy``/``stale``/``lost``/``recovered``) is
  tracked and surfaced through telemetry (``node_lost``/``node_recovered``
  events, drop/retry/stale-pass counters, health gauges).

Without faults, none of the degraded machinery runs: the fault-free pass
is byte-identical to the classic synchronous one.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass

import numpy as np

from .. import constants
from ..core.logs import FvsstLog, ScheduleLogEntry
from ..core.predictor import CounterPredictor, PredictorProtocol
from ..core.scheduler import (
    FrequencyVoltageScheduler,
    ProcessorAssignment,
    ProcessorView,
    Schedule,
    ViewBatch,
)
from ..errors import ClusterError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..sim.cluster import Cluster
from ..sim.counters import CounterSample
from ..sim.driver import Simulation
from ..sim.rng import spawn_seeds
from ..telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    EVENT_NODE_LOST,
    EVENT_NODE_RECOVERED,
    Telemetry,
    get_telemetry,
)
from ..units import check_non_negative, check_positive
from .agent import NodeAgent
from .faults import FaultSchedule
from .nested import NestedBudgetScheduler
from .protocol import (
    FrequencyCommand,
    NodeReport,
    ProcReport,
    message_size_bytes,
)

_by_proc_id = operator.attrgetter("proc_id")

__all__ = ["CoordinatorConfig", "ClusterCoordinator"]

#: Wire size of a report request / command acknowledgement frame.
_CONTROL_FRAME_BYTES = 64


@dataclass(frozen=True)
class CoordinatorConfig:
    """Cluster scheduling parameters."""

    epsilon: float = constants.DEFAULT_EPSILON
    #: Local agent sampling period t.
    sample_period_s: float = constants.DEFAULT_DISPATCH_PERIOD_S
    #: Global scheduling period T.
    schedule_period_s: float = constants.DEFAULT_SCHEDULE_PERIOD_S
    #: Global processor power limit (None = unconstrained).
    power_limit_w: float | None = None
    counter_noise_sigma: float = 0.005
    idle_detection: bool = False
    #: Degraded mode: a report whose round trip exceeds this is treated as
    #: missing for the pass (None = accept any delay).
    report_timeout_s: float | None = None
    #: Degraded mode: how long a cached node signature may serve before
    #: the node counts as lost (None = 3 scheduling periods).
    staleness_bound_s: float | None = None
    #: Degraded mode: retransmits of an unacknowledged command.
    command_retries: int = 2
    #: Degraded mode: how long to wait for a command ack before resending.
    retry_timeout_s: float = 0.005
    #: Columnar control plane: signature columns straight from the reports
    #: (one batched predictor evaluation per pass) and bulk array recording
    #: into the log.  Outputs are byte-identical to the per-object path,
    #: which is kept (``columnar=False``) as the reference for equivalence
    #: and regression comparisons.
    columnar: bool = True
    #: Opt-in signature-stability fast path: a pass whose signatures all
    #: lie within this relative tolerance of the batch that produced the
    #: last schedule — same processors, same idle flags, same limits —
    #: reuses that schedule without rescheduling or re-dispatching.  None
    #: (the default) disables the fast path, leaving every output
    #: byte-identical.  Requires ``columnar``.
    reschedule_tolerance: float | None = None
    #: SLO mode: a request-latency target (seconds at ``slo_percentile``).
    #: Each pass translates the bound serving traffic's per-node demand
    #: into per-node frequency *floors* (via the M/M/1 latency model) and
    #: feeds them into the step-1/step-2 kernels: the power budget can
    #: never push a serving node below the frequency that keeps its tail
    #: latency under target.  Floors take precedence over the budget — a
    #: budget below the floor power comes back ``infeasible`` (and counts
    #: as a breach), mirroring ``on_infeasible="floor"``.  Requires
    #: :meth:`ClusterCoordinator.bind_serving`.  None disables SLO mode
    #: (the fault-free pass is then byte-identical to a coordinator
    #: without it).
    slo_p99_target_s: float | None = None
    #: The percentile the SLO target constrains (p99 by default).
    slo_percentile: float = 99.0

    def __post_init__(self) -> None:
        check_positive(self.sample_period_s, "sample_period_s")
        check_positive(self.schedule_period_s, "schedule_period_s")
        if self.schedule_period_s < self.sample_period_s:
            raise ClusterError("T must be at least t")
        if self.power_limit_w is not None:
            check_positive(self.power_limit_w, "power_limit_w")
        if self.report_timeout_s is not None:
            check_positive(self.report_timeout_s, "report_timeout_s")
        if self.staleness_bound_s is not None:
            check_positive(self.staleness_bound_s, "staleness_bound_s")
        if (self.report_timeout_s is not None
                and self.report_timeout_s > self.effective_staleness_bound_s):
            raise ClusterError(
                f"report_timeout_s ({self.report_timeout_s:g} s) exceeds "
                f"the staleness bound "
                f"({self.effective_staleness_bound_s:g} s): a report slow "
                f"enough to need the timeout would already be stale, so "
                f"every pass would silently schedule from cached views"
            )
        if self.command_retries < 0:
            raise ClusterError("command_retries must be non-negative")
        check_positive(self.retry_timeout_s, "retry_timeout_s")
        if self.reschedule_tolerance is not None:
            check_non_negative(self.reschedule_tolerance,
                               "reschedule_tolerance")
            if not self.columnar:
                raise ClusterError(
                    "reschedule_tolerance requires the columnar pass"
                )
        if self.slo_p99_target_s is not None:
            check_positive(self.slo_p99_target_s, "slo_p99_target_s")
        if not 0.0 < self.slo_percentile < 100.0:
            raise ClusterError(
                f"slo_percentile must be in (0, 100), got "
                f"{self.slo_percentile}"
            )

    @property
    def effective_staleness_bound_s(self) -> float:
        """The staleness bound with its period-derived default applied."""
        if self.staleness_bound_s is not None:
            return self.staleness_bound_s
        return 3.0 * self.schedule_period_s


class ClusterCoordinator:
    """Global Figure 3 over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 config: CoordinatorConfig | None = None, *,
                 scheduler: FrequencyVoltageScheduler | None = None,
                 predictor: PredictorProtocol | None = None,
                 latencies: MemoryLatencyProfile = POWER4_LATENCIES,
                 telemetry: Telemetry | None = None,
                 faults: FaultSchedule | None = None,
                 seed: int | None = None) -> None:
        self.cluster = cluster
        self.config = config or CoordinatorConfig()
        table = cluster.nodes[0].machine.table
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.scheduler = scheduler or NestedBudgetScheduler(
            table, epsilon=self.config.epsilon, telemetry=self.telemetry
        )
        self.predictor = predictor or CounterPredictor(latencies)
        self.faults = faults
        if faults is not None:
            faults.install(cluster)
        seeds = spawn_seeds(seed, len(cluster.nodes))
        self.agents = [
            NodeAgent(node,
                      sample_period_s=self.config.sample_period_s,
                      counter_noise_sigma=self.config.counter_noise_sigma,
                      idle_detection=self.config.idle_detection,
                      telemetry=self.telemetry,
                      faults=faults,
                      seed=seeds[i])
            for i, node in enumerate(cluster.nodes)
        ]
        self._agents_by_id: dict[int, NodeAgent] = {}
        for agent in self.agents:
            node_id = agent.node.node_id
            if node_id in self._agents_by_id:
                raise ClusterError(f"duplicate node id {node_id}")
            self._agents_by_id[node_id] = agent
        self.power_limit_w = self.config.power_limit_w
        #: Optional per-node limits nested inside the global one (node
        #: supply degradation, per-rack breakers, ...).
        self.node_limits_w: dict[int, float] = {}
        self.log = FvsstLog()
        self.last_schedule: Schedule | None = None
        #: Wall-clock cost of the most recent global pass.
        self.last_pass_wall_s: float | None = None
        #: Degraded-mode health per node: healthy/stale/lost/recovered.
        self.node_health: dict[int, str] = {
            nid: "healthy" for nid in self._agents_by_id
        }
        #: Last fresh per-node views: node_id -> (report time, views).
        self._view_cache: dict[int, tuple[float, list[ProcessorView]]] = {}
        # Plain resilience tallies (kept even with telemetry disabled so
        # experiments and tests can read them cheaply).
        self.reports_dropped = 0
        self.commands_dropped = 0
        self.command_retries = 0
        self.stale_passes = 0
        self.floor_scheduled_procs = 0
        self.max_scheduled_power_w = 0.0
        #: SLO mode: the bound serving traffic (``node_demands`` provider).
        self._serving = None
        #: Per-node frequency floors of the last pass (SLO mode; empty
        #: otherwise) — ladder-quantised, so directly comparable against
        #: scheduled frequencies.
        self.slo_floors_hz: dict[int, float] = {}
        #: Scheduled frequencies ever observed below their node's floor
        #: (must stay 0 — the floors-respected witness tests assert on).
        self.slo_floor_violations = 0
        #: Passes whose floors alone made the power budget infeasible.
        self.slo_infeasible_passes = 0
        #: Passes served from the last schedule by the signature-stability
        #: fast path (``reschedule_tolerance``).
        self.passes_skipped = 0
        #: The view batch and limits that produced ``last_schedule`` (only
        #: tracked when the fast path is armed).
        self._last_sched_batch: ViewBatch | None = None
        self._last_sched_limits: tuple | None = None
        self._sim: Simulation | None = None
        m = self.telemetry.metrics
        self._m_passes = m.counter(
            "cluster_global_passes_total", "Coordinator global passes")
        self._m_pass_seconds = m.histogram(
            "cluster_pass_seconds",
            "Wall-clock latency of one global pass (collect + schedule + "
            "dispatch)")
        self._m_collect_delay = m.histogram(
            "cluster_collect_delay_seconds",
            "Sim-time report-collection round-trip delay per pass",
            buckets=(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
                     1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 1e-1))
        self._m_report_bytes = m.counter(
            "cluster_report_bytes_total",
            "Bytes of node reports received by the coordinator")
        self._m_command_bytes = m.counter(
            "cluster_command_bytes_total",
            "Bytes of frequency commands sent by the coordinator")
        self._m_commands = m.counter(
            "cluster_commands_sent_total", "Frequency commands dispatched")
        self._m_command_delay = m.histogram(
            "cluster_command_delay_seconds",
            "Sim-time network delay of each dispatched command",
            buckets=(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
                     1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 1e-1))
        self._m_breaches = m.counter(
            "cluster_budget_breaches_total",
            "Global passes whose step-1 demand exceeded a power limit")
        self._m_planned_power = m.gauge(
            "cluster_planned_power_watts",
            "Total scheduled cluster processor power of the last pass")
        self._m_reports_dropped = m.counter(
            "cluster_reports_dropped_total",
            "Node reports lost to drops, partitions, crashes, or timeouts")
        self._m_commands_dropped = m.counter(
            "cluster_commands_dropped_total",
            "Frequency commands lost in flight or delivered to a crashed "
            "agent")
        self._m_command_retries = m.counter(
            "cluster_command_retries_total",
            "Command retransmissions after a missing acknowledgement")
        self._m_stale_passes = m.counter(
            "cluster_stale_passes_total",
            "Global passes that scheduled at least one node from cached "
            "or floor views")
        self._m_passes_skipped = m.counter(
            "cluster_passes_skipped_total",
            "Global passes that reused the last schedule because every "
            "signature stayed within reschedule_tolerance")
        self._m_health = {
            state: m.gauge(
                f"cluster_nodes_{state}",
                f"Nodes currently in the {state!r} health state")
            for state in ("healthy", "stale", "lost")
        }
        self._m_slo_floor = m.gauge(
            "cluster_slo_floor_hz",
            "Highest per-node SLO frequency floor of the last pass")
        self._m_slo_violations = m.counter(
            "cluster_slo_floor_violations_total",
            "Scheduled frequencies below their node's SLO floor (must "
            "stay 0)")

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Install agents and the periodic global pass."""
        if self._sim is not None:
            raise ClusterError("coordinator already attached")
        self._sim = sim
        for agent in self.agents:
            agent.attach(sim)
        sim.every(self.config.schedule_period_s, self._on_schedule_tick,
                  name="coordinator-schedule")

    @property
    def sim(self) -> Simulation:
        if self._sim is None:
            raise ClusterError("coordinator is not attached")
        return self._sim

    # -- SLO mode ------------------------------------------------------------------

    def bind_serving(self, traffic) -> None:
        """Bind the serving traffic whose demand drives the SLO floors.

        ``traffic`` is anything with ``node_demands(now_s) ->
        {node_id: NodeDemand}`` — normally a
        :class:`~repro.workloads.serving.FleetTrafficSource`.  Required
        before the first pass when ``slo_p99_target_s`` is set.
        """
        self._serving = traffic

    def _slo_floors(self, now_s: float) -> dict[int, float]:
        """Per-node frequency floors for this pass (empty outside SLO
        mode).  Floors are ladder-quantised (up) so they are directly the
        minimum frequencies the schedule may carry."""
        target = self.config.slo_p99_target_s
        if target is None:
            return {}
        if self._serving is None:
            raise ClusterError(
                "slo_p99_target_s is set but no serving traffic is bound; "
                "call bind_serving() first"
            )
        from ..model.latency_model import frequency_floor_hz
        table = self.scheduler.table
        floors: dict[int, float] = {}
        for node_id, demand in self._serving.node_demands(now_s).items():
            if node_id not in self._agents_by_id:
                continue   # traffic on nodes this coordinator doesn't own
            floors[node_id] = frequency_floor_hz(
                table, demand.signature, demand.instructions,
                demand.rate_per_core_per_s, target,
                percentile=self.config.slo_percentile)
        self.slo_floors_hz = floors
        if self.telemetry.enabled:
            self._m_slo_floor.set(max(floors.values()) if floors else 0.0)
        return floors

    def _check_slo_floors(self, schedule: Schedule) -> None:
        """Count scheduled frequencies below their node's floor (the
        floors-respected witness; stays 0 unless the kernels regress)."""
        floors = self.slo_floors_hz
        if not floors:
            return
        violations = 0
        for a in schedule.assignments:
            floor = floors.get(a.node_id)
            if floor is not None and a.freq_hz < floor - 1e-6:
                violations += 1
        if violations:
            self.slo_floor_violations += violations
            if self.telemetry.enabled:
                self._m_slo_violations.inc(violations)

    # -- the global pass ---------------------------------------------------------------

    def _collect(self, now_s: float) -> tuple[list[NodeReport], float]:
        """Gather one report per node; returns (reports, collection delay)."""
        tel = self.telemetry
        reports = []
        worst_delay = 0.0
        report_bytes = 0
        for agent in self.agents:
            report = agent.make_report(now_s)
            agent.confirm_report()
            # Request goes out, report comes back: one round trip, with the
            # collections overlapping across nodes (asynchronous gather).
            size = message_size_bytes(report)
            delay = self.cluster.network.round_trip_s(_CONTROL_FRAME_BYTES,
                                                      size)
            worst_delay = max(worst_delay, delay)
            report_bytes += size
            reports.append(report)
        if tel.enabled:
            self._m_report_bytes.inc(report_bytes)
            self._m_collect_delay.observe(worst_delay)
        return reports, worst_delay

    def _views_from_reports(self, reports: list[NodeReport]
                            ) -> list[ProcessorView]:
        views: list[ProcessorView] = []
        for report in reports:
            for proc in sorted(report.procs, key=lambda p: p.proc_id):
                if proc.interval_s <= 0.0:
                    # A pass that fires before the first agent sample (the
                    # t = 0 tick, or a T == t event-ordering tie) carries
                    # an empty window: no usable signature, and nothing
                    # the predictor should divide by.
                    views.append(ProcessorView(
                        node_id=report.node_id,
                        proc_id=proc.proc_id,
                        signature=None,
                        idle_signaled=proc.idle_signaled,
                    ))
                    continue
                sample = CounterSample(
                    time_s=report.time_s,
                    interval_s=proc.interval_s,
                    instructions=proc.instructions,
                    cycles=proc.cycles,
                    n_l2=proc.n_l2,
                    n_l3=proc.n_l3,
                    n_mem=proc.n_mem,
                    l1_stall_cycles=proc.l1_stall_cycles,
                    halted_cycles=proc.halted_cycles,
                )
                views.append(ProcessorView(
                    node_id=report.node_id,
                    proc_id=proc.proc_id,
                    signature=self.predictor.signature_from_sample(sample),
                    idle_signaled=proc.idle_signaled,
                ))
        return views

    def _view_batch_from_reports(self, reports: list[NodeReport]
                                 ) -> ViewBatch:
        """Columnar :meth:`_views_from_reports`: one extraction loop over
        the reports, one batched predictor evaluation, no per-processor
        sample/signature/view objects.  Row order and values match the
        object path exactly."""
        batch_eval = getattr(self.predictor, "signatures_from_arrays", None)
        if batch_eval is None:
            # Predictor without a batch path: fall back through objects.
            return ViewBatch.from_views(self._views_from_reports(reports))
        node_ids: list[int] = []
        procs: list[ProcReport] = []
        for report in reports:
            row = sorted(report.procs, key=_by_proc_id)
            node_ids.extend([report.node_id] * len(row))
            procs.extend(row)
        # Per-field comprehensions beat one loop of interleaved appends.
        proc_ids = [p.proc_id for p in procs]
        idle = [p.idle_signaled for p in procs]
        interval = [p.interval_s for p in procs]
        has_sig, core_cpi, mem_time = batch_eval(
            [p.instructions for p in procs],
            [p.cycles for p in procs],
            [p.n_l2 for p in procs],
            [p.n_l3 for p in procs],
            [p.n_mem for p in procs],
            [p.l1_stall_cycles for p in procs],
            interval)
        # An empty window (the t = 0 tick, or a T == t ordering tie) never
        # reaches the predictor on the object path; enforce the same rule
        # here for predictors that would accept it (AlphaPredictor ignores
        # interval_s).
        empty = np.asarray(interval, dtype=float) <= 0.0
        if empty.any():
            has_sig = has_sig & ~empty
            core_cpi = np.where(empty, 1.0, core_cpi)
            mem_time = np.where(empty, 0.0, mem_time)
        return ViewBatch(node_ids, proc_ids, has_sig, core_cpi, mem_time,
                         idle)

    def _on_schedule_tick(self, now_s: float) -> None:
        self.run_global_pass(now_s)

    def run_global_pass(self, now_s: float) -> Schedule:
        """Collect, schedule, and dispatch commands (network-delayed)."""
        tel = self.telemetry
        wall0 = time.perf_counter()
        if tel.enabled:
            with tel.tracer.span("cluster.global_pass", sim_time_s=now_s,
                                 nodes=len(self.agents)) as span:
                schedule, collect_delay = self._global_pass_body(now_s)
                span.sim_duration_s = collect_delay
                span.set_attr("total_power_w", schedule.total_power_w)
                span.set_attr("infeasible", schedule.infeasible)
        else:
            schedule, collect_delay = self._global_pass_body(now_s)
        self.last_pass_wall_s = time.perf_counter() - wall0
        self._check_slo_floors(schedule)
        if schedule.infeasible and self.slo_floors_hz:
            # The budget cannot cover the SLO floors: the floors won (the
            # schedule carries them) and the breach event below records
            # the overrun for the operator.
            self.slo_infeasible_passes += 1
        self._record(schedule, now_s, pass_wall_s=self.last_pass_wall_s)
        self.last_schedule = schedule
        self.max_scheduled_power_w = max(self.max_scheduled_power_w,
                                         schedule.total_power_w)
        if tel.enabled:
            self._m_passes.inc()
            self._m_pass_seconds.observe(self.last_pass_wall_s)
            self._m_planned_power.set(schedule.total_power_w)
            if schedule.reduction_steps or schedule.infeasible:
                self._m_breaches.inc()
                tel.emit(EVENT_BUDGET_BREACH, sim_time_s=now_s,
                         limit_w=self.power_limit_w,
                         node_limits=dict(self.node_limits_w),
                         planned_power_w=schedule.total_power_w,
                         reduction_steps=schedule.reduction_steps,
                         infeasible=schedule.infeasible)
        return schedule

    def _global_pass_body(self, now_s: float) -> tuple[Schedule, float]:
        if self.faults is not None:
            return self._global_pass_body_degraded(now_s)
        reports, collect_delay = self._collect(now_s)
        floors = self._slo_floors(now_s)
        track = self.config.reschedule_tolerance is not None
        if self.config.columnar:
            views: ViewBatch | list[ProcessorView] = \
                self._view_batch_from_reports(reports)
            if track:
                reused = self._try_reuse_schedule(views)
                if reused is not None:
                    return reused, collect_delay
        else:
            views = self._views_from_reports(reports)
        if self.node_limits_w and isinstance(self.scheduler,
                                             NestedBudgetScheduler):
            schedule = self.scheduler.schedule_nested(
                views, self.power_limit_w, self.node_limits_w,
                min_freqs_hz=floors or None,
                on_infeasible="floor")
        else:
            schedule = self.scheduler.schedule(views, self.power_limit_w,
                                               min_freqs_hz=floors or None,
                                               on_infeasible="floor")
        if track:
            self._last_sched_batch = views
            self._last_sched_limits = (self.power_limit_w,
                                       dict(self.node_limits_w),
                                       dict(self.slo_floors_hz))
        decision_time = now_s + collect_delay
        self._dispatch(schedule, decision_time)
        return schedule, collect_delay

    def _try_reuse_schedule(self, batch: ViewBatch) -> Schedule | None:
        """The signature-stability fast path: reuse the last schedule when
        nothing that could change the decision has moved.

        The anchor is the batch that *produced* the last schedule (not the
        previous tick's batch), so slow drift cannot creep arbitrarily far
        from the last scheduled operating point."""
        last = self._last_sched_batch
        schedule = self.last_schedule
        if last is None or schedule is None:
            return None
        if self._last_sched_limits != (self.power_limit_w,
                                       self.node_limits_w,
                                       self.slo_floors_hz):
            return None
        tol = self.config.reschedule_tolerance
        if (len(batch) != len(last)
                or not np.array_equal(batch.node_ids, last.node_ids)
                or not np.array_equal(batch.proc_ids, last.proc_ids)
                or not np.array_equal(batch.has_signature,
                                      last.has_signature)
                or not np.array_equal(batch.idle_signaled,
                                      last.idle_signaled)):
            return None
        if not (np.allclose(batch.core_cpi, last.core_cpi,
                            rtol=tol, atol=0.0)
                and np.allclose(batch.mem_time_per_instr_s,
                                last.mem_time_per_instr_s,
                                rtol=tol, atol=0.0)):
            return None
        self.passes_skipped += 1
        if self.telemetry.enabled:
            self._m_passes_skipped.inc()
        return schedule

    # -- degraded mode -------------------------------------------------------------

    def _global_pass_body_degraded(self, now_s: float
                                   ) -> tuple[Schedule, float]:
        """One global pass over a faulty control plane."""
        tel = self.telemetry
        network = self.cluster.network
        timeout = self.config.report_timeout_s
        bound = self.config.effective_staleness_bound_s
        fresh: dict[int, NodeReport] = {}
        worst_delay = 0.0
        report_bytes = 0
        dropped = 0
        for agent in self.agents:
            node_id = agent.node.node_id
            if agent.crashed(now_s):
                dropped += 1
                continue
            request = network.try_send(_CONTROL_FRAME_BYTES, now_s=now_s,
                                       node_id=node_id)
            if request is None:
                dropped += 1
                continue
            report = agent.make_report(now_s)
            size = message_size_bytes(report)
            reply = network.try_send(size, now_s=now_s, node_id=node_id)
            if reply is None:
                # The report died on the wire; the agent keeps its counter
                # windows (unconfirmed) so nothing is lost.
                dropped += 1
                continue
            delay = request + reply
            if timeout is not None and delay > timeout:
                dropped += 1
                continue
            agent.confirm_report()
            fresh[node_id] = report
            worst_delay = max(worst_delay, delay)
            report_bytes += size
        self.reports_dropped += dropped
        if tel.enabled:
            self._m_report_bytes.inc(report_bytes)
            self._m_collect_delay.observe(worst_delay)
            if dropped:
                self._m_reports_dropped.inc(dropped)

        views: list[ProcessorView] = []
        stale_nodes: list[int] = []
        lost_nodes: list[int] = []
        for agent in self.agents:
            node_id = agent.node.node_id
            if node_id in fresh:
                node_views = self._node_views_from_report(fresh[node_id])
                self._view_cache[node_id] = (now_s, node_views)
                recovered = self.node_health[node_id] == "lost"
                self._set_health(node_id, "recovered" if recovered
                                 else "healthy", now_s)
                views.extend(node_views)
                continue
            cached = self._view_cache.get(node_id)
            if (cached is not None and now_s - cached[0] <= bound
                    and self.node_health[node_id] != "lost"):
                stale_nodes.append(node_id)
                self._set_health(node_id, "stale", now_s)
                views.extend(cached[1])
            else:
                lost_nodes.append(node_id)
                self._set_health(node_id, "lost", now_s)
        if stale_nodes or lost_nodes:
            self.stale_passes += 1
            if tel.enabled:
                self._m_stale_passes.inc()
        self._update_health_gauges()

        schedule = self._schedule_degraded(views, lost_nodes,
                                           self._slo_floors(now_s))
        decision_time = now_s + worst_delay
        self._dispatch(schedule, decision_time)
        return schedule, worst_delay

    def _node_views_from_report(self, report: NodeReport
                                ) -> list[ProcessorView]:
        """One node's views, through the batched predictor when columnar.

        The degraded pass mixes fresh and cached nodes, so it still works
        in view objects; the batch path only replaces the per-proc scalar
        predictor calls (values are bit-identical either way)."""
        if self.config.columnar:
            return self._view_batch_from_reports([report]).views()
        return self._views_from_reports([report])

    def _set_health(self, node_id: int, state: str, now_s: float) -> None:
        previous = self.node_health[node_id]
        if previous == state:
            return
        self.node_health[node_id] = state
        if self.telemetry.enabled:
            if state == "lost":
                self.telemetry.emit(EVENT_NODE_LOST, sim_time_s=now_s,
                                    node=node_id, previous=previous)
            elif previous == "lost":
                self.telemetry.emit(EVENT_NODE_RECOVERED, sim_time_s=now_s,
                                    node=node_id)

    def _update_health_gauges(self) -> None:
        if not self.telemetry.enabled:
            return
        counts = {"healthy": 0, "stale": 0, "lost": 0}
        for state in self.node_health.values():
            # "recovered" is a transitional healthy state.
            counts["healthy" if state == "recovered" else state] += 1
        for state, gauge in self._m_health.items():
            gauge.set(counts[state])

    def _schedule_degraded(self, views: list[ProcessorView],
                           lost_nodes: list[int],
                           floors: dict[int, float] | None = None
                           ) -> Schedule:
        """Schedule live views, with lost nodes pinned to the floor.

        Lost nodes are commanded to ``f_min`` — lifted to their SLO floor
        when one is set, since a lost node is still serving traffic we
        can't see — and their pinned power is carved out of the global
        budget before the live nodes are scheduled, so the combined
        scheduled power honours the limit whenever it is honourable at
        all.
        """
        sched = self.scheduler
        f_min = sched.table.f_min_hz
        floors = floors or {}
        floor_assignments: list[ProcessorAssignment] = []
        floor_power = 0.0
        infeasible = False
        lost = set(lost_nodes)
        for node_id in lost_nodes:
            node_floor = 0.0
            slo_floor = floors.get(node_id)
            pin = f_min if slo_floor is None else max(
                f_min, sched.table.quantize_up(slo_floor))
            for proc_id in range(self.cluster.node(node_id).num_procs):
                power = sched.power_for(node_id, proc_id, pin)
                floor_assignments.append(ProcessorAssignment(
                    node_id=node_id, proc_id=proc_id, freq_hz=pin,
                    voltage=sched.voltages.min_voltage(node_id, proc_id,
                                                       pin),
                    power_w=power,
                    predicted_loss=sched.predicted_loss(None, pin),
                    eps_freq_hz=pin,
                ))
                node_floor += power
            floor_power += node_floor
            node_limit = self.node_limits_w.get(node_id)
            if node_limit is not None and node_floor > node_limit + 1e-9:
                infeasible = True
        self.floor_scheduled_procs += len(floor_assignments)

        limit = self.power_limit_w
        if not views:
            # Every node is lost: the whole cluster sits at the floor.
            total = floor_power
            if limit is not None and total > limit + 1e-9:
                infeasible = True
            return Schedule(
                assignments=tuple(sorted(
                    floor_assignments,
                    key=lambda a: (a.node_id, a.proc_id))),
                total_power_w=total,
                power_limit_w=limit,
                epsilon=sched.epsilon,
                infeasible=infeasible,
            )

        floors_live = {n: f for n, f in floors.items() if n not in lost}
        live_limit = None if limit is None else limit - floor_power
        if live_limit is not None and live_limit <= 0.0:
            # The lost nodes' floor power alone saturates the budget: the
            # best DVFS can do is pin the live nodes to the floor too —
            # except where an SLO floor overrides even that (the floor
            # maximum is applied after the cap, so floors win).
            live = sched.schedule(views, None, max_freq_hz=f_min,
                                  min_freqs_hz=floors_live or None)
            infeasible = True
        else:
            node_limits_live = {n: w for n, w in self.node_limits_w.items()
                                if n not in lost}
            if node_limits_live and isinstance(sched, NestedBudgetScheduler):
                live = sched.schedule_nested(
                    views, live_limit, node_limits_live,
                    min_freqs_hz=floors_live or None,
                    on_infeasible="floor")
            else:
                live = sched.schedule(views, live_limit,
                                      min_freqs_hz=floors_live or None,
                                      on_infeasible="floor")
        assignments = tuple(sorted(
            live.assignments + tuple(floor_assignments),
            key=lambda a: (a.node_id, a.proc_id)))
        return Schedule(
            assignments=assignments,
            total_power_w=live.total_power_w + floor_power,
            power_limit_w=limit,
            epsilon=sched.epsilon,
            infeasible=infeasible or live.infeasible,
            reduction_steps=live.reduction_steps,
        )

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, schedule: Schedule, decision_time_s: float) -> None:
        # One pass: Schedule.assignments is (node, proc)-sorted by
        # construction, so per-node groups come out proc-sorted for free.
        # A cheap monotonicity check guards against a hand-built schedule
        # with interleaved nodes or out-of-order procs.
        by_node: dict[int, list] = {}
        needs_sort = False
        for a in schedule.assignments:
            group = by_node.get(a.node_id)
            if group is None:
                by_node[a.node_id] = [a]
            else:
                if group[-1].proc_id > a.proc_id:
                    needs_sort = True
                group.append(a)
        for node_id, assignments in by_node.items():
            if needs_sort:
                assignments.sort(key=lambda a: a.proc_id)
            command = FrequencyCommand(
                node_id=node_id,
                time_s=decision_time_s,
                freqs_hz=tuple(a.freq_hz for a in assignments),
                voltages=tuple(a.voltage for a in assignments),
                proc_ids=tuple(a.proc_id for a in assignments),
            )
            if self.faults is None:
                size = message_size_bytes(command)
                delay = self.cluster.network.send(size)
                if self.telemetry.enabled:
                    self._m_commands.inc()
                    self._m_command_bytes.inc(size)
                    self._m_command_delay.observe(delay)
                agent = self._agent_for(node_id)
                apply_at = decision_time_s + delay
                self.sim.at(apply_at,
                            lambda t, a=agent, c=command: a.apply_command(c, t),
                            name=f"apply-cmd-n{node_id}")
            else:
                self._send_command(command, decision_time_s, attempt=0,
                                   state={"acked": False})

    def _send_command(self, command: FrequencyCommand, now_s: float,
                      attempt: int, state: dict) -> None:
        """One (re)transmission of a command over the faulty network."""
        node_id = command.node_id
        tel = self.telemetry
        size = message_size_bytes(command)
        delay = self.cluster.network.try_send(size, now_s=now_s,
                                              node_id=node_id)
        if attempt:
            self.command_retries += 1
        if tel.enabled:
            self._m_commands.inc()
            self._m_command_bytes.inc(size)
            if attempt:
                self._m_command_retries.inc()
        if delay is None:
            self.commands_dropped += 1
            if tel.enabled:
                self._m_commands_dropped.inc()
        else:
            if tel.enabled:
                self._m_command_delay.observe(delay)
            self.sim.at(
                now_s + delay,
                lambda t, c=command, s=state: self._deliver_command(c, t, s),
                name=f"apply-cmd-n{node_id}")
        if attempt < self.config.command_retries:
            self.sim.at(
                now_s + self.config.retry_timeout_s,
                lambda t, c=command, s=state, a=attempt:
                    self._maybe_retry(c, t, a, s),
                name=f"retry-cmd-n{node_id}")

    def _maybe_retry(self, command: FrequencyCommand, now_s: float,
                     prev_attempt: int, state: dict) -> None:
        if state["acked"]:
            return
        self._send_command(command, now_s, prev_attempt + 1, state)

    def _deliver_command(self, command: FrequencyCommand, now_s: float,
                         state: dict) -> None:
        """A command arrived at its node: apply and acknowledge."""
        agent = self._agent_for(command.node_id)
        if agent.crashed(now_s):
            self.commands_dropped += 1
            if self.telemetry.enabled:
                self._m_commands_dropped.inc()
            return
        agent.apply_command(command, now_s)
        ack_delay = self.cluster.network.try_send(
            _CONTROL_FRAME_BYTES, now_s=now_s, node_id=command.node_id)
        if ack_delay is not None:
            def _ack(_t: float, s=state) -> None:
                s["acked"] = True
            self.sim.at(now_s + ack_delay, _ack,
                        name=f"ack-cmd-n{command.node_id}")

    def _agent_for(self, node_id: int) -> NodeAgent:
        try:
            return self._agents_by_id[node_id]
        except KeyError:
            raise ClusterError(f"no agent for node {node_id}") from None

    def _record(self, schedule: Schedule, now_s: float, *,
                pass_wall_s: float | None = None) -> None:
        assignments = schedule.assignments
        if self.config.columnar:
            # Assignments are NamedTuples: one zip transposes every field.
            (node_ids, proc_ids, freqs_hz, voltages, powers_w,
             predicted_losses, eps_freqs_hz) = zip(*assignments)
            self.log.record_schedule_pass(
                now_s, node_ids, proc_ids, freqs_hz, eps_freqs_hz,
                voltages, powers_w, predicted_losses,
                power_limit_w=self.power_limit_w,
                infeasible=schedule.infeasible,
                pass_wall_s=pass_wall_s,
            )
            return
        for a in assignments:
            self.log.record_schedule(ScheduleLogEntry(
                time_s=now_s,
                node_id=a.node_id,
                proc_id=a.proc_id,
                freq_hz=a.freq_hz,
                eps_freq_hz=a.eps_freq_hz,
                voltage=a.voltage,
                power_w=a.power_w,
                predicted_loss=a.predicted_loss,
                predicted_ipc=None,
                power_limit_w=self.power_limit_w,
                infeasible=schedule.infeasible,
                pass_wall_s=pass_wall_s,
            ))

    # -- triggers -------------------------------------------------------------------------

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        """Change the global limit and run an immediate global pass."""
        self.power_limit_w = limit_w
        if self.telemetry.enabled:
            self.telemetry.emit(EVENT_CURTAILMENT, sim_time_s=now_s,
                                new_limit_w=limit_w)
        self.run_global_pass(now_s)

    def set_node_limit(self, node_id: int, limit_w: float | None,
                       now_s: float) -> None:
        """Install (or lift, with ``None``) a per-node limit and run an
        immediate pass — the node-level PSU failure trigger."""
        if not isinstance(self.scheduler, NestedBudgetScheduler):
            raise ClusterError(
                "per-node limits need a NestedBudgetScheduler"
            )
        if limit_w is None:
            self.node_limits_w.pop(node_id, None)
        else:
            self.node_limits_w[node_id] = limit_w
        self.run_global_pass(now_s)
