"""The global cluster coordinator.

Runs the Figure 3 algorithm across every processor of every node under one
global power limit.  Every scheduling period ``T`` it synchronously
collects a report from each agent (paying network round trips), converts
the reports to processor views through the predictor, schedules, and ships
per-node frequency commands whose *application is delayed by the network*
— so the measured response time to a power-limit trigger includes the
communication the paper says ``T`` amortises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import constants
from ..core.logs import FvsstLog, ScheduleLogEntry
from ..core.predictor import CounterPredictor, PredictorProtocol
from ..core.scheduler import FrequencyVoltageScheduler, ProcessorView, Schedule
from ..errors import ClusterError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..sim.cluster import Cluster
from ..sim.counters import CounterSample
from ..sim.driver import Simulation
from ..sim.rng import spawn_seeds
from ..telemetry import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    Telemetry,
    get_telemetry,
)
from ..units import check_positive
from .agent import NodeAgent
from .nested import NestedBudgetScheduler
from .protocol import FrequencyCommand, NodeReport, message_size_bytes

__all__ = ["CoordinatorConfig", "ClusterCoordinator"]


@dataclass(frozen=True)
class CoordinatorConfig:
    """Cluster scheduling parameters."""

    epsilon: float = constants.DEFAULT_EPSILON
    #: Local agent sampling period t.
    sample_period_s: float = constants.DEFAULT_DISPATCH_PERIOD_S
    #: Global scheduling period T.
    schedule_period_s: float = constants.DEFAULT_SCHEDULE_PERIOD_S
    #: Global processor power limit (None = unconstrained).
    power_limit_w: float | None = None
    counter_noise_sigma: float = 0.005
    idle_detection: bool = False

    def __post_init__(self) -> None:
        check_positive(self.sample_period_s, "sample_period_s")
        check_positive(self.schedule_period_s, "schedule_period_s")
        if self.schedule_period_s < self.sample_period_s:
            raise ClusterError("T must be at least t")
        if self.power_limit_w is not None:
            check_positive(self.power_limit_w, "power_limit_w")


class ClusterCoordinator:
    """Global Figure 3 over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 config: CoordinatorConfig | None = None, *,
                 scheduler: FrequencyVoltageScheduler | None = None,
                 predictor: PredictorProtocol | None = None,
                 latencies: MemoryLatencyProfile = POWER4_LATENCIES,
                 telemetry: Telemetry | None = None,
                 seed: int | None = None) -> None:
        self.cluster = cluster
        self.config = config or CoordinatorConfig()
        table = cluster.nodes[0].machine.table
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.scheduler = scheduler or NestedBudgetScheduler(
            table, epsilon=self.config.epsilon, telemetry=self.telemetry
        )
        self.predictor = predictor or CounterPredictor(latencies)
        seeds = spawn_seeds(seed, len(cluster.nodes))
        self.agents = [
            NodeAgent(node,
                      sample_period_s=self.config.sample_period_s,
                      counter_noise_sigma=self.config.counter_noise_sigma,
                      idle_detection=self.config.idle_detection,
                      telemetry=self.telemetry,
                      seed=seeds[i])
            for i, node in enumerate(cluster.nodes)
        ]
        self.power_limit_w = self.config.power_limit_w
        #: Optional per-node limits nested inside the global one (node
        #: supply degradation, per-rack breakers, ...).
        self.node_limits_w: dict[int, float] = {}
        self.log = FvsstLog()
        self.last_schedule: Schedule | None = None
        #: Wall-clock cost of the most recent global pass.
        self.last_pass_wall_s: float | None = None
        self._sim: Simulation | None = None
        m = self.telemetry.metrics
        self._m_passes = m.counter(
            "cluster_global_passes_total", "Coordinator global passes")
        self._m_pass_seconds = m.histogram(
            "cluster_pass_seconds",
            "Wall-clock latency of one global pass (collect + schedule + "
            "dispatch)")
        self._m_collect_delay = m.histogram(
            "cluster_collect_delay_seconds",
            "Sim-time report-collection round-trip delay per pass",
            buckets=(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
                     1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 1e-1))
        self._m_report_bytes = m.counter(
            "cluster_report_bytes_total",
            "Bytes of node reports received by the coordinator")
        self._m_command_bytes = m.counter(
            "cluster_command_bytes_total",
            "Bytes of frequency commands sent by the coordinator")
        self._m_commands = m.counter(
            "cluster_commands_sent_total", "Frequency commands dispatched")
        self._m_command_delay = m.histogram(
            "cluster_command_delay_seconds",
            "Sim-time network delay of each dispatched command",
            buckets=(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
                     1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 1e-1))
        self._m_breaches = m.counter(
            "cluster_budget_breaches_total",
            "Global passes whose step-1 demand exceeded a power limit")
        self._m_planned_power = m.gauge(
            "cluster_planned_power_watts",
            "Total scheduled cluster processor power of the last pass")

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Install agents and the periodic global pass."""
        if self._sim is not None:
            raise ClusterError("coordinator already attached")
        self._sim = sim
        for agent in self.agents:
            agent.attach(sim)
        sim.every(self.config.schedule_period_s, self._on_schedule_tick,
                  name="coordinator-schedule")

    @property
    def sim(self) -> Simulation:
        if self._sim is None:
            raise ClusterError("coordinator is not attached")
        return self._sim

    # -- the global pass ---------------------------------------------------------------

    def _collect(self, now_s: float) -> tuple[list[NodeReport], float]:
        """Gather one report per node; returns (reports, collection delay)."""
        tel = self.telemetry
        reports = []
        worst_delay = 0.0
        report_bytes = 0
        for agent in self.agents:
            report = agent.make_report(now_s)
            # Request goes out, report comes back: one round trip, with the
            # collections overlapping across nodes (asynchronous gather).
            size = message_size_bytes(report)
            delay = self.cluster.network.round_trip_s(64, size)
            worst_delay = max(worst_delay, delay)
            report_bytes += size
            reports.append(report)
        if tel.enabled:
            self._m_report_bytes.inc(report_bytes)
            self._m_collect_delay.observe(worst_delay)
        return reports, worst_delay

    def _views_from_reports(self, reports: list[NodeReport]
                            ) -> list[ProcessorView]:
        views: list[ProcessorView] = []
        for report in reports:
            for proc in sorted(report.procs, key=lambda p: p.proc_id):
                sample = CounterSample(
                    time_s=report.time_s,
                    interval_s=proc.interval_s,
                    instructions=proc.instructions,
                    cycles=proc.cycles,
                    n_l2=proc.n_l2,
                    n_l3=proc.n_l3,
                    n_mem=proc.n_mem,
                    l1_stall_cycles=proc.l1_stall_cycles,
                    halted_cycles=proc.halted_cycles,
                )
                views.append(ProcessorView(
                    node_id=report.node_id,
                    proc_id=proc.proc_id,
                    signature=self.predictor.signature_from_sample(sample),
                    idle_signaled=proc.idle_signaled,
                ))
        return views

    def _on_schedule_tick(self, now_s: float) -> None:
        self.run_global_pass(now_s)

    def run_global_pass(self, now_s: float) -> Schedule:
        """Collect, schedule, and dispatch commands (network-delayed)."""
        tel = self.telemetry
        wall0 = time.perf_counter()
        if tel.enabled:
            with tel.tracer.span("cluster.global_pass", sim_time_s=now_s,
                                 nodes=len(self.agents)) as span:
                schedule, collect_delay = self._global_pass_body(now_s)
                span.sim_duration_s = collect_delay
                span.set_attr("total_power_w", schedule.total_power_w)
                span.set_attr("infeasible", schedule.infeasible)
        else:
            schedule, collect_delay = self._global_pass_body(now_s)
        self.last_pass_wall_s = time.perf_counter() - wall0
        self._record(schedule, now_s, pass_wall_s=self.last_pass_wall_s)
        self.last_schedule = schedule
        if tel.enabled:
            self._m_passes.inc()
            self._m_pass_seconds.observe(self.last_pass_wall_s)
            self._m_planned_power.set(schedule.total_power_w)
            if schedule.reduction_steps or schedule.infeasible:
                self._m_breaches.inc()
                tel.emit(EVENT_BUDGET_BREACH, sim_time_s=now_s,
                         limit_w=self.power_limit_w,
                         node_limits=dict(self.node_limits_w),
                         planned_power_w=schedule.total_power_w,
                         reduction_steps=schedule.reduction_steps,
                         infeasible=schedule.infeasible)
        return schedule

    def _global_pass_body(self, now_s: float) -> tuple[Schedule, float]:
        reports, collect_delay = self._collect(now_s)
        views = self._views_from_reports(reports)
        if self.node_limits_w and isinstance(self.scheduler,
                                             NestedBudgetScheduler):
            schedule = self.scheduler.schedule_nested(
                views, self.power_limit_w, self.node_limits_w,
                on_infeasible="floor")
        else:
            schedule = self.scheduler.schedule(views, self.power_limit_w,
                                               on_infeasible="floor")
        decision_time = now_s + collect_delay
        self._dispatch(schedule, decision_time)
        return schedule, collect_delay

    def _dispatch(self, schedule: Schedule, decision_time_s: float) -> None:
        by_node: dict[int, list] = {}
        for a in schedule.assignments:
            by_node.setdefault(a.node_id, []).append(a)
        for node_id, assignments in by_node.items():
            assignments.sort(key=lambda a: a.proc_id)
            command = FrequencyCommand(
                node_id=node_id,
                time_s=decision_time_s,
                freqs_hz=tuple(a.freq_hz for a in assignments),
                voltages=tuple(a.voltage for a in assignments),
            )
            size = message_size_bytes(command)
            delay = self.cluster.network.send(size)
            if self.telemetry.enabled:
                self._m_commands.inc()
                self._m_command_bytes.inc(size)
                self._m_command_delay.observe(delay)
            agent = self.agents[self._agent_index(node_id)]
            apply_at = decision_time_s + delay
            self.sim.at(apply_at,
                        lambda t, a=agent, c=command: a.apply_command(c, t),
                        name=f"apply-cmd-n{node_id}")

    def _agent_index(self, node_id: int) -> int:
        for i, agent in enumerate(self.agents):
            if agent.node.node_id == node_id:
                return i
        raise ClusterError(f"no agent for node {node_id}")

    def _record(self, schedule: Schedule, now_s: float, *,
                pass_wall_s: float | None = None) -> None:
        for a in schedule.assignments:
            self.log.record_schedule(ScheduleLogEntry(
                time_s=now_s,
                node_id=a.node_id,
                proc_id=a.proc_id,
                freq_hz=a.freq_hz,
                eps_freq_hz=a.eps_freq_hz,
                voltage=a.voltage,
                power_w=a.power_w,
                predicted_loss=a.predicted_loss,
                predicted_ipc=None,
                power_limit_w=self.power_limit_w,
                infeasible=schedule.infeasible,
                pass_wall_s=pass_wall_s,
            ))

    # -- triggers -------------------------------------------------------------------------

    def set_power_limit(self, limit_w: float | None, now_s: float) -> None:
        """Change the global limit and run an immediate global pass."""
        self.power_limit_w = limit_w
        if self.telemetry.enabled:
            self.telemetry.emit(EVENT_CURTAILMENT, sim_time_s=now_s,
                                new_limit_w=limit_w)
        self.run_global_pass(now_s)

    def set_node_limit(self, node_id: int, limit_w: float | None,
                       now_s: float) -> None:
        """Install (or lift, with ``None``) a per-node limit and run an
        immediate pass — the node-level PSU failure trigger."""
        if not isinstance(self.scheduler, NestedBudgetScheduler):
            raise ClusterError(
                "per-node limits need a NestedBudgetScheduler"
            )
        if limit_w is None:
            self.node_limits_w.pop(node_id, None)
        else:
            self.node_limits_w[node_id] = limit_w
        self.run_global_pass(now_s)
