"""Nested power budgets: per-node limits inside the global limit.

The paper's Figure 3 treats the power limit as global.  Real clusters also
carry *local* limits — a node whose own supply degrades must get under its
node budget regardless of the cluster-wide picture.  The nested scheduler
runs Figure 3's step 2 twice:

1. **per node**: for each node with a local limit, greedily reduce that
   node's processors until the node fits (same smallest-loss-first metric,
   scoped to the node);
2. **globally**: the unchanged global pass over all processors.

Per-node passes never *raise* frequencies, so a schedule satisfying every
node limit before the global pass still satisfies them after it (the
global pass only lowers further) — the invariant the property tests pin.

The whole pass runs in rung-index space off one ``(P x F)`` loss matrix
and one power-ladder matrix: per-node passes are row slices of those
matrices fed to the same heap reduction the global pass uses.  Because
the matrices are elementwise over rows, a slice is bit-identical to
recomputing the matrix over the sub-views, so the schedule matches the
per-node-rebuild formulation exactly.
"""

from __future__ import annotations

from typing import Literal, Mapping, Sequence

import numpy as np

from ..core.scheduler import (
    FrequencyVoltageScheduler,
    ProcessorView,
    Schedule,
    ViewBatch,
    _view_columns,
)
from ..errors import SchedulingError
from ..units import check_positive

__all__ = ["NestedBudgetScheduler"]


class NestedBudgetScheduler(FrequencyVoltageScheduler):
    """Figure 3 with optional per-node limits nested inside the global one."""

    def schedule_nested(
        self,
        views: Sequence[ProcessorView] | ViewBatch,
        global_limit_w: float | None = None,
        node_limits_w: Mapping[int, float] | None = None,
        *,
        max_freq_hz: float | None = None,
        min_freqs_hz: Mapping[int, float] | None = None,
        on_infeasible: Literal["floor", "raise"] = "floor",
    ) -> Schedule:
        """Run step 1, the per-node passes, the global pass, and step 3.

        ``min_freqs_hz`` carries per-node SLO frequency floors, with the
        same semantics as :meth:`FrequencyVoltageScheduler.schedule`: both
        the per-node and the global step-2 passes respect them, so a node
        limit below its own floor power comes back ``infeasible`` with the
        floor standing.
        """
        n = len(views)
        if not n:
            raise SchedulingError("no processors to schedule")
        nodes_list, procs_list, idle = _view_columns(views)
        if len(set(zip(nodes_list, procs_list))) != n:
            raise SchedulingError("duplicate (node, proc) in views")
        node_limits = dict(node_limits_w or {})
        for node_id, limit in node_limits.items():
            check_positive(limit, f"node_limits_w[{node_id}]")
        cap_idx: int | None = None
        if max_freq_hz is not None:
            cap_idx = self.table.index_of(self.table.quantize_down(max_freq_hz))
        floor_idx = self._floor_indices(nodes_list, min_freqs_hz)

        # Step 1 (+ optional ceiling and floors), in rung-index space.
        losses = self._loss_matrix(views)
        idx = self._step1_indices(views, losses)
        idx[idle] = 0
        eps_idx = idx.copy()
        if cap_idx is not None:
            np.minimum(idx, cap_idx, out=idx)
        if floor_idx is not None:
            np.maximum(idx, floor_idx, out=idx)

        infeasible = False
        reduction_steps = 0
        # Idle processors cost nothing to slow down (step-2 metric only).
        step2_losses = np.where(idle[:, None], 0.0, losses) \
            if idle.any() else losses
        ladders = self._power_ladders(views)

        # Step 2a: per-node passes over row slices of the shared matrices.
        if node_limits:
            nodes_arr = np.asarray(nodes_list)
            for node_id, limit in sorted(node_limits.items()):
                rows = np.flatnonzero(nodes_arr == node_id)
                if rows.size == 0:
                    raise SchedulingError(
                        f"node limit for unknown node {node_id}"
                    )
                row_list = rows.tolist()
                sub_idx = idx[rows]
                node_infeasible, node_steps, _ = self._reduce_indices(
                    [nodes_list[i] for i in row_list],
                    [procs_list[i] for i in row_list],
                    sub_idx, step2_losses[rows], ladders[rows], limit,
                    on_infeasible,
                    floor_idx=None if floor_idx is None else floor_idx[rows])
                idx[rows] = sub_idx
                infeasible = infeasible or node_infeasible
                reduction_steps += node_steps

        # Step 2b: the global pass.
        if global_limit_w is not None:
            check_positive(global_limit_w, "global_limit_w")
            global_infeasible, global_steps, _ = self._reduce_indices(
                nodes_list, procs_list, idx, step2_losses, ladders,
                global_limit_w, on_infeasible, floor_idx=floor_idx)
            infeasible = infeasible or global_infeasible
            reduction_steps += global_steps

        # Step 3 + assembly, shared with the base pass.
        assignments, total = self._assemble_assignments(
            nodes_list, procs_list, idx, eps_idx, losses, idle)
        return Schedule(
            assignments=assignments,
            total_power_w=total,
            power_limit_w=global_limit_w,
            epsilon=self.epsilon,
            infeasible=infeasible,
            reduction_steps=reduction_steps,
        )

    def node_power_w(self, schedule: Schedule, node_id: int) -> float:
        """Scheduled power of one node."""
        return sum(a.power_w for a in schedule.assignments
                   if a.node_id == node_id)
