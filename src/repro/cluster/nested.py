"""Nested power budgets: per-node limits inside the global limit.

The paper's Figure 3 treats the power limit as global.  Real clusters also
carry *local* limits — a node whose own supply degrades must get under its
node budget regardless of the cluster-wide picture.  The nested scheduler
runs Figure 3's step 2 twice:

1. **per node**: for each node with a local limit, greedily reduce that
   node's processors until the node fits (same smallest-loss-first metric,
   scoped to the node);
2. **globally**: the unchanged global pass over all processors.

Per-node passes never *raise* frequencies, so a schedule satisfying every
node limit before the global pass still satisfies them after it (the
global pass only lowers further) — the invariant the property tests pin.
"""

from __future__ import annotations

from typing import Literal, Mapping, Sequence

from ..core.scheduler import (
    FrequencyVoltageScheduler,
    ProcessorAssignment,
    ProcessorView,
    Schedule,
)
from ..errors import SchedulingError
from ..units import check_positive

__all__ = ["NestedBudgetScheduler"]


class NestedBudgetScheduler(FrequencyVoltageScheduler):
    """Figure 3 with optional per-node limits nested inside the global one."""

    def schedule_nested(
        self,
        views: Sequence[ProcessorView],
        global_limit_w: float | None = None,
        node_limits_w: Mapping[int, float] | None = None,
        *,
        max_freq_hz: float | None = None,
        on_infeasible: Literal["floor", "raise"] = "floor",
    ) -> Schedule:
        """Run step 1, the per-node passes, the global pass, and step 3."""
        if not views:
            raise SchedulingError("no processors to schedule")
        keys = [(v.node_id, v.proc_id) for v in views]
        if len(set(keys)) != len(keys):
            raise SchedulingError("duplicate (node, proc) in views")
        node_limits = dict(node_limits_w or {})
        for node_id, limit in node_limits.items():
            check_positive(limit, f"node_limits_w[{node_id}]")
        cap_hz = None
        if max_freq_hz is not None:
            cap_hz = self.table.quantize_down(max_freq_hz)

        # Step 1 (+ optional ceiling).
        freqs: list[float] = []
        eps_freqs: list[float] = []
        for view in views:
            if view.idle_signaled:
                f = self.table.f_min_hz
            else:
                f, _ = self.epsilon_constrained(view.signature)
            eps_freqs.append(f)
            if cap_hz is not None:
                f = min(f, cap_hz)
            freqs.append(f)

        infeasible = False
        reduction_steps = 0

        # Step 2a: per-node passes.
        for node_id, limit in sorted(node_limits.items()):
            idxs = [i for i, v in enumerate(views) if v.node_id == node_id]
            if not idxs:
                raise SchedulingError(
                    f"node limit for unknown node {node_id}"
                )
            sub_views = [views[i] for i in idxs]
            sub_freqs = [freqs[i] for i in idxs]
            node_infeasible, node_steps, _ = self._reduce_to_budget(
                sub_views, sub_freqs, limit, on_infeasible)
            infeasible = infeasible or node_infeasible
            reduction_steps += node_steps
            for i, f in zip(idxs, sub_freqs):
                freqs[i] = f

        # Step 2b: the global pass.
        if global_limit_w is not None:
            check_positive(global_limit_w, "global_limit_w")
            global_infeasible, global_steps, _ = self._reduce_to_budget(
                views, freqs, global_limit_w, on_infeasible)
            infeasible = infeasible or global_infeasible
            reduction_steps += global_steps

        # Step 3 + assembly.
        assignments = []
        for view, f, eps_f in zip(views, freqs, eps_freqs):
            loss = 0.0 if view.idle_signaled else self.predicted_loss(
                view.signature, f)
            assignments.append(ProcessorAssignment(
                node_id=view.node_id, proc_id=view.proc_id, freq_hz=f,
                voltage=self.voltages.min_voltage(view.node_id,
                                                  view.proc_id, f),
                power_w=self.power_for(view.node_id, view.proc_id, f),
                predicted_loss=loss, eps_freq_hz=eps_f,
            ))
        return Schedule(
            assignments=tuple(assignments),
            total_power_w=sum(a.power_w for a in assignments),
            power_limit_w=global_limit_w,
            epsilon=self.epsilon,
            infeasible=infeasible,
            reduction_steps=reduction_steps,
        )

    def node_power_w(self, schedule: Schedule, node_id: int) -> float:
        """Scheduled power of one node."""
        return sum(a.power_w for a in schedule.assignments
                   if a.node_id == node_id)
