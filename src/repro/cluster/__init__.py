"""Cluster-level frequency/voltage scheduling.

The paper's algorithm (Figure 3) is written over ``Nodes x Procs`` with a
single global power limit, but its prototype ran on one SMP; "the
development of a prototype for the cluster environment remains as future
work" (Section 6).  This package completes that step over the simulated
substrate:

* :mod:`~repro.cluster.protocol` — the messages agents and coordinator
  exchange (sized, so the network model can charge for them).
* :mod:`~repro.cluster.agent` — the per-node agent: samples local counters,
  reports summaries, applies frequency commands.
* :mod:`~repro.cluster.coordinator` — the global scheduler: collects all
  node reports every ``T``, runs Figure 3 across every processor of every
  node, and pushes per-node frequency vectors back through the network.
* :mod:`~repro.cluster.faults` — fault injection (message loss, latency
  jitter, partitions, agent crashes) and the named ``--faults`` scenarios;
  the coordinator's degraded mode tolerates them (docs/RESILIENCE.md).
* :mod:`~repro.cluster.hierarchy` — the two-tier control plane: per-rack
  :class:`ShardCoordinator` instances under a :class:`FleetAllocator`
  that water-fills the fleet power budget across shards from compact
  demand summaries (``fvsst run --shards``).
"""

from .protocol import (
    ProcReport,
    NodeReport,
    FrequencyCommand,
    ShardSummary,
    BudgetLease,
    message_size_bytes,
)
from .agent import NodeAgent
from .coordinator import ClusterCoordinator, CoordinatorConfig
from .faults import (
    FAULT_SCENARIOS,
    CrashWindow,
    FaultSchedule,
    fault_scenario,
    fleet_fault_scenario,
    scenario_catalog,
)
from .hierarchy import (
    FleetAllocator,
    FleetConfig,
    ShardCoordinator,
    water_fill_budgets,
)
from .nested import NestedBudgetScheduler

__all__ = [
    "ProcReport",
    "NodeReport",
    "FrequencyCommand",
    "ShardSummary",
    "BudgetLease",
    "message_size_bytes",
    "NodeAgent",
    "ClusterCoordinator",
    "CoordinatorConfig",
    "NestedBudgetScheduler",
    "FaultSchedule",
    "CrashWindow",
    "FAULT_SCENARIOS",
    "fault_scenario",
    "fleet_fault_scenario",
    "scenario_catalog",
    "FleetAllocator",
    "FleetConfig",
    "ShardCoordinator",
    "water_fill_budgets",
]
