"""Thermal emergency: the Section 2 air-conditioning failure.

At ``T0`` a CRAC unit fails and the machine-room ambient ramps from 25 °C
toward 45 °C.  A thermal monitor converts ambient + junction limit into the
processor power budget; fvsst receives budget updates and slows the
processors so the hottest core never crosses its junction limit.  The
unmanaged system saturates its thermal envelope and overheats.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, SeriesResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..power.thermal import ThermalMonitor, ThermalParams
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES

__all__ = ["run", "T0_S", "AMBIENT_START_C", "AMBIENT_FAILED_C"]

T0_S = 2.0
AMBIENT_START_C = 25.0
AMBIENT_FAILED_C = 45.0
#: Ambient climb rate after the CRAC failure, degrees per second.
RAMP_C_PER_S = 2.0


def _scenario(manage: bool, *, seed: int, fast: bool) -> dict:
    duration = (15.0 if fast else 45.0)
    machine = SMPMachine(MachineConfig(num_cores=4), seed=seed)
    for i, app in enumerate(("gzip", "gap", "mcf", "health")):
        machine.assign(i, ALL_PROFILES[app].job(loop=True))
    monitor = ThermalMonitor(4, ThermalParams(),
                             ambient_c=AMBIENT_START_C)
    # The machine has been running flat out: cores start at steady state.
    monitor.warm_start(140.0)
    sim = Simulation(machine)
    daemon: FvsstDaemon | None = None
    if manage:
        daemon = FvsstDaemon(machine, DaemonConfig(), seed=seed + 1)
        daemon.attach(sim)

    state = {"ambient": AMBIENT_START_C, "last_cap": None}
    series_t: list[float] = []
    series_temp: list[float] = []
    series_power: list[float] = []

    def tick(t: float) -> None:
        # Ambient ramp after the failure.
        if t >= T0_S and state["ambient"] < AMBIENT_FAILED_C:
            state["ambient"] = min(
                AMBIENT_FAILED_C,
                AMBIENT_START_C + RAMP_C_PER_S * (t - T0_S),
            )
            monitor.set_ambient(state["ambient"])
        powers = [machine.meter.core_power_w(c, t) for c in machine.cores]
        monitor.advance(t, 0.05, powers)
        if daemon is not None:
            # An aggregate power budget cannot protect the hottest core
            # (greedy spares the CPU-bound processors); thermal safety
            # needs the per-processor frequency ceiling instead.
            per_core_w = monitor.cpu_budget_w() / machine.num_cores
            cap = machine.table.max_frequency_under(per_core_w)
            cap = machine.table.f_min_hz if cap is None else cap
            if cap != state["last_cap"]:
                daemon.set_frequency_cap(cap, t)
                state["last_cap"] = cap
        series_t.append(t)
        series_temp.append(monitor.hottest_c)
        series_power.append(machine.cpu_power_w())

    sim.every(0.05, tick)
    sim.run_for(duration)

    return {
        "peak_c": max(series_temp),
        "limit_c": monitor.params.t_limit_c,
        "over_limit_fraction": sum(
            1 for v in series_temp if v > monitor.params.t_limit_c
        ) / len(series_temp),
        "final_power_w": machine.cpu_power_w(),
        "t": series_t,
        "temp": series_temp,
        "power": series_power,
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Run the CRAC-failure scenario managed and unmanaged."""
    seeds = spawn_seeds(seed, 2)
    managed = _scenario(True, seed=seeds[0], fast=fast)
    unmanaged = _scenario(False, seed=seeds[1], fast=fast)

    table = TableResult(
        headers=("policy", "peak_temp_c", "limit_c", "over_limit_fraction",
                 "final_cpu_w"),
        rows=(
            ("fvsst", round(managed["peak_c"], 1), managed["limit_c"],
             round(managed["over_limit_fraction"], 3),
             round(managed["final_power_w"], 0)),
            ("none", round(unmanaged["peak_c"], 1), unmanaged["limit_c"],
             round(unmanaged["over_limit_fraction"], 3),
             round(unmanaged["final_power_w"], 0)),
        ),
        title=f"CRAC failure at t={T0_S}s: ambient "
              f"{AMBIENT_START_C}->{AMBIENT_FAILED_C} C",
    )
    stride = max(1, len(managed["t"]) // 60)
    fig = SeriesResult(
        x_label="time_s",
        x=tuple(round(v, 2) for v in managed["t"][::stride]),
        series={
            "fvsst_hottest_c": tuple(managed["temp"][::stride]),
            "none_hottest_c": tuple(unmanaged["temp"][::stride]),
            "fvsst_cpu_w": tuple(managed["power"][::stride]),
        },
        title="Hottest-core temperature under the ambient ramp",
    )
    return ExperimentResult(
        experiment_id="thermal",
        description="air-conditioning failure: thermal-budget DVFS",
        tables=[table],
        series=[fig],
        scalars={
            "managed_peak_c": managed["peak_c"],
            "unmanaged_peak_c": unmanaged["peak_c"],
        },
        notes=[
            "The thermal monitor converts ambient + junction limit into a "
            "processor budget; fvsst tracks the shrinking budget and the "
            "hottest core stays at/below the limit, while the unmanaged "
            "system exceeds it once the ambient ramp completes.",
        ],
    )
