"""The Section 2 motivating scenario: power-supply failure and response.

The full p630 (4 cores, two 480 W supplies, 186 W non-CPU power) runs a
mixed workload.  At ``T0`` one supply fails: system draw must fall below
480 W — i.e. processor draw below 294 W — within the cascade deadline
``DeltaT`` or the second supply fails too.

The experiment runs the scenario under fvsst (the limit-change trigger
fires an immediate scheduling pass) and under the no-management baseline
(which cascades), reporting response times against the deadline.
"""

from __future__ import annotations

from .. import constants
from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..errors import ExperimentError
from ..power.budget import ComplianceMonitor, PowerBudget
from ..power.supply import SupplyBank
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES

__all__ = ["run", "T0_S"]

T0_S = 2.0


def _scenario(manage: bool, *, seed: int, fast: bool) -> dict[str, float]:
    bank = SupplyBank.example_p630(raise_on_cascade=False)
    machine = SMPMachine(MachineConfig(num_cores=4), supply_bank=bank,
                         seed=seed)
    for i, app in enumerate(("gzip", "gap", "mcf", "health")):
        machine.assign(i, ALL_PROFILES[app].job(loop=True))

    sim = Simulation(machine)
    monitor = ComplianceMonitor(PowerBudget(limit_w=2 * constants.PSU_CAPACITY_W))
    daemon: FvsstDaemon | None = None
    if manage:
        daemon = FvsstDaemon(machine, DaemonConfig(), seed=seed + 1)
        daemon.attach(sim)

    sim.every(0.010, lambda t: monitor.observe(t, machine.system_power_w()),
              name="compliance-sampler")

    def on_failure(t: float) -> None:
        remaining = bank.fail_supply(0)
        monitor.set_budget(PowerBudget(limit_w=remaining), t)
        if daemon is not None:
            cpu_limit = remaining - machine.config.non_cpu_power_w
            daemon.set_power_limit(cpu_limit, t)

    sim.at(T0_S, on_failure, name="psu-failure")
    sim.run_for(T0_S + (2.0 if fast else 6.0))

    response = monitor.response_time_s()
    return {
        "response_s": float("inf") if response is None else response,
        "cascades": float(bank.cascade_count),
        "final_system_w": machine.system_power_w(),
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Run the failover scenario under fvsst and under no management."""
    seeds = spawn_seeds(seed, 2)
    managed = _scenario(True, seed=seeds[0], fast=fast)
    unmanaged = _scenario(False, seed=seeds[1], fast=fast)

    if managed["cascades"] > 0:
        raise ExperimentError("fvsst failed to prevent the supply cascade")

    table = TableResult(
        headers=("policy", "response_s", "cascades", "final_system_w"),
        rows=(
            ("fvsst", round(managed["response_s"], 3),
             int(managed["cascades"]), round(managed["final_system_w"], 1)),
            ("none", round(unmanaged["response_s"], 3),
             int(unmanaged["cascades"]), round(unmanaged["final_system_w"], 1)),
        ),
        title="Supply-failure response (deadline "
              f"DeltaT = {constants.PSU_CASCADE_DEADLINE_S} s)",
    )
    return ExperimentResult(
        experiment_id="failover",
        description="PSU failure at T0: compliance before the cascade deadline",
        tables=[table],
        scalars={
            "fvsst_response_s": managed["response_s"],
            "deadline_s": constants.PSU_CASCADE_DEADLINE_S,
        },
        notes=[
            "fvsst's limit-change trigger reschedules immediately, so the "
            "response time is bounded by one throttle actuation rather "
            "than the scheduling period; the unmanaged system stays above "
            "capacity and cascades.",
        ],
    )
