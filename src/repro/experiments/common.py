"""Shared experiment plumbing.

The Table 3 / Figure 6–10 experiments all follow the paper's Section 8
protocol: a benchmark on one CPU (others hot-idle or absent), a governor
owning the frequencies, a power budget, and throughput/energy accounting.
This module provides that harness once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import constants
from ..core.baselines import (
    NoManagementGovernor,
    PowerDownGovernor,
    UniformScalingGovernor,
    UtilizationGovernor,
)
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..core.governor import Governor
from ..core.logs import FvsstLog
from ..errors import ExperimentError
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..workloads.job import Job

__all__ = [
    "GOVERNOR_NAMES",
    "make_governor",
    "BenchmarkRun",
    "run_job_under_governor",
]

GOVERNOR_NAMES = ("fvsst", "none", "uniform", "powerdown", "utilization")

#: Shared default daemon tunables: :class:`DaemonConfig` is frozen, so
#: every budget-matching ``make_governor`` call can hand out the same
#: instance instead of rebuilding one per run.
_DEFAULT_DAEMON_CONFIG = DaemonConfig()


def make_governor(name: str, machine: SMPMachine, *,
                  power_limit_w: float | None,
                  daemon_config: DaemonConfig | None = None,
                  seed: int | None = None) -> Governor:
    """Instantiate a governor by name with a power budget."""
    if name == "fvsst":
        config = daemon_config if daemon_config is not None \
            else _DEFAULT_DAEMON_CONFIG
        if config.power_limit_w != power_limit_w:
            config = replace(config, power_limit_w=power_limit_w)
        return FvsstDaemon(machine, config, seed=seed)
    if name == "none":
        return NoManagementGovernor(machine)
    if name == "uniform":
        return UniformScalingGovernor(machine, power_limit_w=power_limit_w)
    if name == "powerdown":
        return PowerDownGovernor(machine, power_limit_w=power_limit_w)
    if name == "utilization":
        return UtilizationGovernor(machine, power_limit_w=power_limit_w)
    raise ExperimentError(
        f"unknown governor {name!r}; available: {GOVERNOR_NAMES}"
    )


@dataclass
class BenchmarkRun:
    """Everything measured from one benchmark-under-governor run."""

    job: Job
    machine: SMPMachine
    governor: Governor
    elapsed_s: float
    #: Throughput of the benchmark job, instructions/second.
    throughput: float
    #: Energy of the benchmark core over the job's execution, joules.
    core_energy_j: float
    #: fvsst log when the governor was the daemon, else None.
    log: FvsstLog | None

    @property
    def average_core_power_w(self) -> float:
        if self.elapsed_s <= 0:
            raise ExperimentError("run has no elapsed time")
        return self.core_energy_j / self.elapsed_s


def run_job_under_governor(
    job: Job,
    governor_name: str, *,
    power_limit_w: float | None,
    bench_core: int = 0,
    num_cores: int = 1,
    daemon_config: DaemonConfig | None = None,
    machine_config: MachineConfig | None = None,
    seed: int | None = None,
    max_duration_s: float = 600.0,
    settle_s: float = 0.0,
) -> BenchmarkRun:
    """Run one ONCE-mode job to completion under a named governor.

    The job goes on ``bench_core``; remaining cores hot-idle (the paper's
    Section 8 setup).  ``settle_s`` optionally lets the governor warm up on
    idle cores before the job is enqueued.
    """
    if job.done:
        raise ExperimentError(f"job {job.name!r} already completed")
    machine = SMPMachine(
        machine_config or MachineConfig(num_cores=num_cores), seed=seed
    )
    governor = make_governor(governor_name, machine,
                             power_limit_w=power_limit_w,
                             daemon_config=daemon_config, seed=seed)
    sim = Simulation(machine)
    governor.attach(sim)
    if settle_s > 0.0:
        sim.run_for(settle_s)

    start_energy = machine.ledger.energy_of(f"core{bench_core}")
    start_time = sim.now_s
    machine.assign(bench_core, job)

    # Advance in coarse steps until the job completes (events still fire at
    # exact times inside each step).
    step = 0.5
    while not job.done:
        if sim.now_s - start_time > max_duration_s:
            raise ExperimentError(
                f"job {job.name!r} did not finish within {max_duration_s} s "
                f"under {governor_name!r}"
            )
        sim.run_for(step)

    end_time = job.completed_at_s if job.completed_at_s is not None else sim.now_s
    # Integrate energy exactly to the completion instant by advancing the
    # remaining fraction of the step before reading the ledger.
    elapsed = end_time - start_time
    core_energy = machine.ledger.energy_of(f"core{bench_core}") - start_energy
    # The ledger runs to sim.now_s (>= completion); scale back linearly over
    # the short overshoot window to approximate energy at completion.
    overshoot = sim.now_s - end_time
    if overshoot > 0 and sim.now_s > start_time:
        ledger_span = sim.now_s - start_time
        core_energy *= elapsed / ledger_span
    throughput = job.instructions_retired / elapsed if elapsed > 0 else 0.0
    return BenchmarkRun(
        job=job,
        machine=machine,
        governor=governor,
        elapsed_s=elapsed,
        throughput=throughput,
        core_energy_j=core_energy,
        log=governor.log if isinstance(governor, FvsstDaemon) else None,
    )
