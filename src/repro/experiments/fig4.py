"""Figure 4: performance impact of running fvsst.

The synthetic benchmark's reported throughput with fvsst active
(unconstrained power) versus without it, across CPU intensities.  The
impact bundles the daemon's stolen CPU time with the performance cost of
its (mis)predictions; the paper reports at most ~3%, worst for the most
CPU-intensive settings.

The daemon is co-located with the benchmark (Section 9: the prototype runs
at maximum round-robin priority and interferes with the measured
applications), so its stolen time lands on the benchmark's CPU.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, SeriesResult
from ..core.daemon import DaemonConfig
from ..sim.rng import spawn_seeds
from ..workloads.synthetic import SyntheticBenchmark
from .common import run_job_under_governor

__all__ = ["run", "INTENSITIES"]

INTENSITIES = (1.00, 0.75, 0.50, 0.25)


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 4."""
    repeats = 1 if fast else 4
    duration = 0.5 if fast else 1.0
    seeds = spawn_seeds(seed, 2 * len(INTENSITIES))
    impacts = []
    for i, intensity in enumerate(INTENSITIES):
        bench = SyntheticBenchmark(
            intensity_a=intensity, intensity_b=intensity,
            duration_a_s=duration, duration_b_s=duration,
        )
        without = run_job_under_governor(
            bench.job(repeats=repeats, name=f"synthetic-{intensity:.0%}-off"),
            "none", power_limit_w=None, seed=seeds[2 * i],
        )
        with_fvsst = run_job_under_governor(
            bench.job(repeats=repeats, name=f"synthetic-{intensity:.0%}-on"),
            "fvsst", power_limit_w=None,
            daemon_config=DaemonConfig(daemon_core=0),
            seed=seeds[2 * i + 1],
        )
        impacts.append(1.0 - with_fvsst.throughput / without.throughput)

    fig = SeriesResult(
        x_label="cpu_intensity_pct",
        x=tuple(int(v * 100) for v in INTENSITIES),
        series={
            "throughput_impact_fraction": tuple(impacts),
        },
        title="Figure 4: throughput impact of running fvsst",
    )
    return ExperimentResult(
        experiment_id="fig4",
        description="fvsst overhead on synthetic benchmark throughput",
        series=[fig],
        scalars={"max_impact_fraction": max(impacts)},
        notes=[
            "Impact combines the daemon's stolen CPU time with epsilon-"
            "admissible frequency reductions; the paper reports <= 3%, "
            "largest at high CPU intensity.",
        ],
    )
