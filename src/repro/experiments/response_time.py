"""Response time to a power-limit drop: trigger design vs the deadline.

The motivating example's entire requirement is temporal: be under the new
limit within ``DeltaT`` of the supply failure.  Three designs race the
deadline here:

* **trigger** — the paper's design: the limit change fires an immediate
  scheduling pass (response bounded by one actuation).
* **timer-only** — the daemon learns the new limit only at its next
  periodic pass: response is uniform in ``(0, T]``, so large ``T`` (chosen
  to amortise overhead) directly risks the deadline.
* **cluster** — the trigger path through the coordinator, paying network
  collection/dispatch delays.

The timer-only rows sweep ``T`` to show the overhead-vs-response tension
that makes the trigger mechanism necessary rather than convenient.
"""

from __future__ import annotations

from .. import constants
from ..analysis.report import ExperimentResult, TableResult
from ..cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from ..core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from ..errors import ExperimentError
from ..sim.cluster import Cluster
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES

__all__ = ["run", "TIMER_MULTIPLIERS"]

TIMER_MULTIPLIERS = (10, 50, 100)
LIMIT_W = 200.0
T0_S = 1.03   # deliberately off the scheduling grid


def _machine(seed: int) -> SMPMachine:
    machine = SMPMachine(MachineConfig(
        num_cores=4,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)
    for i, app in enumerate(("gzip", "gap", "mcf", "health")):
        machine.assign(i, ALL_PROFILES[app].job(loop=True))
    return machine


def _response_of(machine, sim, apply_limit) -> float:
    """Time from T0 until measured CPU power first complies."""
    sim.run_for(T0_S)
    apply_limit(sim.now_s)
    deadline = sim.now_s + 5.0
    while sim.now_s < deadline:
        if machine.cpu_power_w() <= LIMIT_W + 1e-9:
            return sim.now_s - T0_S
        sim.run_for(0.001)
    raise ExperimentError("never complied within 5 s")


def _trigger(seed: int) -> float:
    machine = _machine(seed)
    daemon = FvsstDaemon(machine, DaemonConfig(
        counter_noise_sigma=0.0, overhead=OverheadModel(enabled=False)),
        seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)
    return _response_of(machine, sim,
                        lambda t: daemon.set_power_limit(LIMIT_W, t))


def _timer_only(multiplier: int, seed: int) -> float:
    machine = _machine(seed)
    daemon = FvsstDaemon(machine, DaemonConfig(
        schedule_every=multiplier,
        counter_noise_sigma=0.0, overhead=OverheadModel(enabled=False)),
        seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)

    def apply(t: float) -> None:
        # The limit becomes known but no trigger fires: the next periodic
        # pass discovers it.
        daemon.power_limit_w = LIMIT_W

    return _response_of(machine, sim, apply)


def _cluster(seed: int) -> float:
    cluster = Cluster.homogeneous(
        2,
        machine_config=MachineConfig(
            num_cores=2, core_config=CoreConfig(latency_jitter_sigma=0.0)),
        seed=seed)
    for n, node in enumerate(cluster.nodes):
        for p in range(2):
            app = ("gzip", "gap", "mcf", "health")[2 * n + p]
            node.assign(p, ALL_PROFILES[app].job(loop=True))
    coordinator = ClusterCoordinator(
        cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=seed + 1)
    sim = Simulation(cluster.machines)
    coordinator.attach(sim)
    sim.run_for(T0_S)
    coordinator.set_power_limit(LIMIT_W, sim.now_s)
    deadline = sim.now_s + 5.0
    while sim.now_s < deadline:
        if cluster.cpu_power_w() <= LIMIT_W + 1e-9:
            return sim.now_s - T0_S
        sim.run_for(0.001)
    raise ExperimentError("cluster never complied within 5 s")


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Measure response times across the designs (fast flag unused —
    each run is sub-second of simulated time)."""
    seeds = spawn_seeds(seed, 2 + len(TIMER_MULTIPLIERS))
    rows: list[tuple] = []

    trigger = _trigger(seeds[0])
    rows.append(("trigger (paper)", "-", round(trigger, 4)))
    for multiplier, s in zip(TIMER_MULTIPLIERS, seeds[1:]):
        response = _timer_only(multiplier, s)
        rows.append((
            f"timer-only", f"T={multiplier * 10} ms", round(response, 4),
        ))
    cluster = _cluster(seeds[-1])
    rows.append(("cluster trigger", "2 nodes", round(cluster, 4)))

    table = TableResult(
        headers=("design", "parameter", "response_s"),
        rows=tuple(rows),
        title=f"Time to comply with a {LIMIT_W:.0f} W drop at t={T0_S}s "
              f"(deadline DeltaT = {constants.PSU_CASCADE_DEADLINE_S}s)",
    )
    return ExperimentResult(
        experiment_id="response_time",
        description="limit-change response: trigger vs timer vs cluster",
        tables=[table],
        scalars={
            "trigger_response_s": trigger,
            "cluster_response_s": cluster,
            "worst_timer_response_s": max(r[2] for r in rows
                                          if r[0] == "timer-only"),
        },
        notes=[
            "The trigger path responds within one sampling tick regardless "
            "of T; timer-only discovery scales with T and at T = 1 s "
            "flirts with the cascade deadline; the cluster pays network "
            "delays on top of the trigger, still well inside DeltaT.",
        ],
    )
