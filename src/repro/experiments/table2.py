"""Table 2: predictor accuracy (IPC deviation).

Protocol (Section 8.1): the synthetic benchmark runs on CPU3 of the 4-way
machine at CPU intensities 100/75/50/25%; CPUs 0–2 hot-idle.  fvsst runs
unconstrained with T=100 ms, t=10 ms.  For every scheduling decision the
predicted IPC at the newly applied frequency is compared with the IPC
measured over the following scheduling interval; the table reports the mean
absolute deviation per CPU, plus the CPU3* column that excludes the
benchmark's initialisation and termination windows.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..errors import ExperimentError
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.synthetic import SyntheticBenchmark

__all__ = ["run", "INTENSITIES"]

INTENSITIES = (1.00, 0.75, 0.50, 0.25)

#: Scheduling decisions to exclude at each edge for the CPU3* column —
#: covers the init phase (0.25 s) and exit phase (0.1 s) at T = 100 ms.
_EDGE_DECISIONS = 4


def _one_intensity(intensity: float, *, seed: int, fast: bool
                   ) -> tuple[list[float], float]:
    """Deviations for CPU0..CPU3 plus the CPU3* value."""
    repeats = 2 if fast else 6
    bench = SyntheticBenchmark(
        intensity_a=intensity, intensity_b=intensity,
        duration_a_s=0.5 if fast else 1.0,
        duration_b_s=0.5 if fast else 1.0,
    )
    job = bench.job(repeats=repeats)
    machine = SMPMachine(MachineConfig(num_cores=4), seed=seed)
    machine.assign(3, job)
    daemon = FvsstDaemon(machine, DaemonConfig(), seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)
    limit_s = 120.0
    while not job.done:
        if sim.now_s > limit_s:
            raise ExperimentError("synthetic benchmark did not finish")
        sim.run_for(0.5)

    deviations = [daemon.log.ipc_deviation(0, cpu) for cpu in range(4)]
    starred = daemon.log.ipc_deviation(
        0, 3, skip_head=_EDGE_DECISIONS, skip_tail=_EDGE_DECISIONS
    )
    return deviations, starred


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 2."""
    seeds = spawn_seeds(seed, len(INTENSITIES))
    rows = []
    for intensity, s in zip(INTENSITIES, seeds):
        devs, starred = _one_intensity(intensity, seed=s, fast=fast)
        rows.append((
            int(intensity * 100),
            round(devs[0], 3), round(devs[1], 3),
            round(devs[2], 3), round(devs[3], 3),
            round(starred, 3),
        ))
    table = TableResult(
        headers=("CPU intensity", "CPU0", "CPU1", "CPU2", "CPU3", "CPU3*"),
        rows=tuple(rows),
        title="Table 2: predictor error (mean |IPC deviation|)",
    )
    return ExperimentResult(
        experiment_id="table2",
        description="predictor IPC deviation; CPU3* excludes init/exit phases",
        tables=[table],
        notes=[
            "CPU0-2 hot-idle: their workload is stationary, so deviation "
            "reflects counter noise only (paper: ~0.009).",
            "CPU3 runs the benchmark: phase transitions inside scheduling "
            "windows and init/exit phases raise the deviation; excluding "
            "the edges (CPU3*) recovers most of the gap, as in the paper.",
        ],
    )
