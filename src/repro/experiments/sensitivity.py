"""Calibration sensitivity: what happens when fvsst's constants are wrong.

The predictor bakes in two calibrated inputs: the memory latency table
(Section 7.1's measured 15/113/393 cycles) and, implicitly, whatever the
counters cannot see.  These studies perturb the calibration while the
simulated hardware keeps the true values:

* ``run_latency_miscalibration`` — the daemon believes latencies are
  ``k x`` the truth, for k in [0.5, 2].  Overestimating service times
  (k > 1) makes work look more memory-bound than it is, dragging
  frequencies (and performance) down; underestimating does the reverse
  and costs energy.  Prediction deviation grows in both directions.
* ``run_noise_sweep`` — counter read noise versus prediction deviation
  and delivered performance: how much counter quality the approach needs.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from ..core.predictor import CounterPredictor
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import mcf_profile

__all__ = ["run_latency_miscalibration", "run_noise_sweep"]

LATENCY_SCALES = (0.5, 0.8, 1.0, 1.25, 2.0)
NOISE_LEVELS = (0.0, 0.005, 0.02, 0.05, 0.15)


def _mcf_run(*, latency_scale: float | None = None,
             noise: float = 0.0, seed: int, fast: bool) -> dict[str, float]:
    machine = SMPMachine(MachineConfig(
        num_cores=1,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)
    job = mcf_profile().job(body_repeats=1 if fast else 2)
    machine.assign(0, job)
    predictor = None
    if latency_scale is not None:
        predictor = CounterPredictor(
            machine.config.latencies.scaled(latency_scale))
    daemon = FvsstDaemon(machine, DaemonConfig(
        counter_noise_sigma=noise,
        overhead=OverheadModel(enabled=False)),
        predictor=predictor, seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)
    while not job.done:
        sim.run_for(0.5)
    elapsed = job.elapsed_s()
    return {
        "throughput": job.instructions_retired / elapsed,
        "energy_j": machine.ledger.energy_of("core0")
        * (elapsed / sim.now_s),
        "deviation": daemon.log.ipc_deviation(0, 0),
    }


def run_latency_miscalibration(seed: int = 2005,
                               fast: bool = False) -> ExperimentResult:
    """Sweep the predictor's latency-table miscalibration factor."""
    seeds = spawn_seeds(seed, len(LATENCY_SCALES))
    baseline = None
    rows = []
    for scale, s in zip(LATENCY_SCALES, seeds):
        r = _mcf_run(latency_scale=scale, seed=s, fast=fast)
        if scale == 1.0:
            baseline = r
    if baseline is None:
        raise AssertionError("scale 1.0 must be in the sweep")
    for scale, s in zip(LATENCY_SCALES, seeds):
        r = _mcf_run(latency_scale=scale, seed=s, fast=fast)
        rows.append((
            scale,
            round(r["throughput"] / baseline["throughput"], 3),
            round(r["energy_j"] / baseline["energy_j"], 3),
            round(r["deviation"], 4),
        ))
    table = TableResult(
        headers=("latency_scale", "norm_performance", "norm_energy",
                 "ipc_deviation"),
        rows=tuple(rows),
        title="Predictor latency-table miscalibration (mcf)",
    )
    return ExperimentResult(
        experiment_id="sensitivity_latency",
        description="wrong T_L2/T_L3/T_mem calibration vs behaviour",
        tables=[table],
        notes=[
            "Overestimated latencies (scale > 1) make the workload look "
            "more saturated than it is: lower frequencies, performance "
            "below the epsilon promise.  Underestimates waste energy at "
            "needlessly high frequencies.  Deviation is minimised at the "
            "true calibration.",
        ],
    )


def run_noise_sweep(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Sweep counter read noise."""
    seeds = spawn_seeds(seed, len(NOISE_LEVELS))
    rows = []
    baseline_throughput = None
    for noise, s in zip(NOISE_LEVELS, seeds):
        r = _mcf_run(noise=noise, seed=s, fast=fast)
        if baseline_throughput is None:
            baseline_throughput = r["throughput"]
        rows.append((
            noise,
            round(r["throughput"] / baseline_throughput, 3),
            round(r["deviation"], 4),
        ))
    table = TableResult(
        headers=("counter_noise_sigma", "norm_performance", "ipc_deviation"),
        rows=tuple(rows),
        title="Counter read noise (mcf)",
    )
    return ExperimentResult(
        experiment_id="sensitivity_noise",
        description="counter quality vs prediction and performance",
        tables=[table],
        notes=[
            "Prediction deviation grows with read noise; performance is "
            "robust until the noise starts flipping rung decisions.",
        ],
    )
