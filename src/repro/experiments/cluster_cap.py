"""Cluster extension: global power capping across tiered nodes.

The paper's algorithm is defined over ``Nodes x Procs`` but its prototype
never left one SMP ("future work", Section 6).  This experiment completes
the evaluation: a tiered cluster (web/app/db nodes — the stable diversity
of Section 4.2) under a global curtailment, comparing the fvsst
coordinator against uniform scaling at equal budgets.

fvsst's advantage is exactly the paper's thesis: the db tier's processors
are saturated well below f_max, so the coordinator harvests their power
headroom first and the CPU-bound tiers keep their frequency.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from ..core.baselines import uniform_cap_frequency
from ..exec.pool import parallel_map
from ..sim.cluster import Cluster
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig
from ..sim.rng import spawn_seeds
from ..workloads.tiers import tiered_cluster_assignment

__all__ = ["run", "NODES", "PROCS", "BUDGET_FRACTION"]

NODES = 4
PROCS = 4
#: Curtailment: the cluster must drop to this fraction of its peak
#: processor power.
BUDGET_FRACTION = 0.7


def _throughput(cluster: Cluster) -> float:
    """Aggregate instructions retired across every core."""
    return sum(
        core.counters.instructions
        for node in cluster.nodes for core in node.machine.cores
    )


def _run_policy(policy: str, *, seed: int, fast: bool) -> dict[str, float]:
    duration = 3.0 if fast else 8.0
    cluster = Cluster.homogeneous(
        NODES, machine_config=MachineConfig(num_cores=PROCS), seed=seed
    )
    cluster.assign_all(tiered_cluster_assignment(NODES, PROCS,
                                                 web_nodes=1, app_nodes=1))
    table = cluster.nodes[0].machine.table
    peak = NODES * PROCS * table.max_power_w
    budget = BUDGET_FRACTION * peak

    sim = Simulation(cluster.machines)
    if policy == "fvsst":
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(power_limit_w=budget), seed=seed + 1
        )
        coordinator.attach(sim)
    elif policy == "uniform":
        f = uniform_cap_frequency(table, NODES * PROCS, budget)
        for node in cluster.nodes:
            for core in node.machine.cores:
                core.set_frequency(f, 0.0)
    else:  # "none": unconstrained reference
        pass

    sim.run_for(duration)
    return {
        "throughput": _throughput(cluster) / duration,
        "power_w": cluster.cpu_power_w(),
        "budget_w": budget,
        "messages": float(cluster.network.messages_sent),
    }


def _policy_task(task: tuple[str, int, bool]) -> dict[str, float]:
    """Picklable wrapper so the policy runs can fan across a pool."""
    policy, seed, fast = task
    return _run_policy(policy, seed=seed, fast=fast)


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Run the cluster capping comparison.

    The three policy runs are independent (each gets its own pre-spawned
    seed), so they fan across worker processes when ``--jobs`` is set.
    """
    seeds = spawn_seeds(seed, 3)
    reference, fvsst, uniform = parallel_map(_policy_task, [
        ("none", seeds[0], fast),
        ("fvsst", seeds[1], fast),
        ("uniform", seeds[2], fast),
    ])

    def norm(r: dict[str, float]) -> float:
        return r["throughput"] / reference["throughput"]

    table = TableResult(
        headers=("policy", "norm_throughput", "cpu_power_w", "budget_w",
                 "network_msgs"),
        rows=(
            ("none (reference)", 1.0, round(reference["power_w"], 0),
             "-", 0),
            ("fvsst-global", round(norm(fvsst), 3),
             round(fvsst["power_w"], 0), round(fvsst["budget_w"], 0),
             int(fvsst["messages"])),
            ("uniform", round(norm(uniform), 3),
             round(uniform["power_w"], 0), round(uniform["budget_w"], 0),
             0),
        ),
        title=f"Global cap at {BUDGET_FRACTION:.0%} of peak, "
              f"{NODES} nodes x {PROCS} procs (web/app/db tiers)",
    )
    return ExperimentResult(
        experiment_id="cluster_cap",
        description="tiered cluster under global curtailment",
        tables=[table],
        scalars={
            "fvsst_norm_throughput": norm(fvsst),
            "uniform_norm_throughput": norm(uniform),
        },
        notes=[
            "fvsst-global should retain more cluster throughput than "
            "uniform scaling at the same budget by slowing the saturated "
            "db tier instead of everything.",
        ],
    )
