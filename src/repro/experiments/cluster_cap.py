"""Cluster extension: global power capping across tiered nodes.

The paper's algorithm is defined over ``Nodes x Procs`` but its prototype
never left one SMP ("future work", Section 6).  This experiment completes
the evaluation: a tiered cluster (web/app/db nodes — the stable diversity
of Section 4.2) under a global curtailment, comparing the fvsst
coordinator against uniform scaling at equal budgets.

fvsst's advantage is exactly the paper's thesis: the db tier's processors
are saturated well below f_max, so the coordinator harvests their power
headroom first and the CPU-bound tiers keep their frequency.

With ``faults=<scenario>`` (the CLI's ``--faults`` knob) a fourth run
repeats the fvsst policy over an unreliable control plane — injected
message loss, latency jitter, partitions, agent crashes — and reports the
degraded-mode story: drop/retry/stale-pass counts and whether the
*scheduled* cluster power ever exceeded the budget (it must not; that is
the safety property docs/RESILIENCE.md pins).
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from ..cluster.faults import fault_scenario
from ..cluster.hierarchy import FleetAllocator, FleetConfig
from ..core.baselines import uniform_cap_frequency
from ..exec.pool import parallel_map
from ..sim.cluster import Cluster
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig
from ..sim.rng import spawn_seeds
from ..workloads.tiers import tiered_cluster_assignment

__all__ = ["run", "NODES", "PROCS", "BUDGET_FRACTION"]

NODES = 4
PROCS = 4
#: Curtailment: the cluster must drop to this fraction of its peak
#: processor power.
BUDGET_FRACTION = 0.7


def _throughput(cluster: Cluster) -> float:
    """Aggregate instructions retired across every core."""
    return sum(
        core.counters.instructions
        for node in cluster.nodes for core in node.machine.cores
    )


def _run_policy(policy: str, *, seed: int, fast: bool,
                faults_name: str | None = None,
                shard_size: int | None = None) -> dict[str, float]:
    duration = 3.0 if fast else 8.0
    cluster = Cluster.homogeneous(
        NODES, machine_config=MachineConfig(num_cores=PROCS), seed=seed
    )
    cluster.assign_all(tiered_cluster_assignment(NODES, PROCS,
                                                 web_nodes=1, app_nodes=1))
    table = cluster.nodes[0].machine.table
    peak = NODES * PROCS * table.max_power_w
    budget = BUDGET_FRACTION * peak

    sim = Simulation(cluster.machines)
    coordinator = None
    allocator = None
    if policy == "hier":
        faults = (fault_scenario(faults_name, seed=seed + 101)
                  if faults_name else None)
        allocator = FleetAllocator(
            cluster, CoordinatorConfig(power_limit_w=budget),
            fleet=FleetConfig(shard_size=shard_size or 1),
            faults=faults, seed=seed + 1
        )
        allocator.attach(sim)
    elif policy == "fvsst":
        faults = (fault_scenario(faults_name, seed=seed + 101)
                  if faults_name else None)
        coordinator = ClusterCoordinator(
            cluster, CoordinatorConfig(power_limit_w=budget),
            faults=faults, seed=seed + 1
        )
        coordinator.attach(sim)
    elif policy == "uniform":
        f = uniform_cap_frequency(table, NODES * PROCS, budget)
        for node in cluster.nodes:
            for core in node.machine.cores:
                core.set_frequency(f, 0.0)
    else:  # "none": unconstrained reference
        pass

    sim.run_for(duration)
    result = {
        "throughput": _throughput(cluster) / duration,
        "power_w": cluster.cpu_power_w(),
        "budget_w": budget,
        "messages": float(cluster.network.messages_sent),
    }
    if coordinator is not None:
        result.update({
            "max_sched_power_w": coordinator.max_scheduled_power_w,
            "report_drops": float(coordinator.reports_dropped),
            "cmd_drops": float(coordinator.commands_dropped),
            "retries": float(coordinator.command_retries),
            "stale_passes": float(coordinator.stale_passes),
            "messages_dropped": float(cluster.network.messages_dropped),
        })
    if allocator is not None:
        committed_ok = (allocator.max_committed_w <= budget + 1e-9)
        result.update({
            "shards": float(allocator.num_shards),
            "rebalances": float(allocator.rebalances),
            "leases": float(allocator.leases_sent),
            "summary_drops": float(allocator.summaries_dropped),
            "max_committed_w": allocator.max_committed_w,
            "committed_compliant": 1.0 if committed_ok else 0.0,
        })
    return result


def _policy_task(task: tuple[str, int, bool, str | None, int | None]
                 ) -> dict[str, float]:
    """Picklable wrapper so the policy runs can fan across a pool."""
    policy, seed, fast, faults_name, shard_size = task
    return _run_policy(policy, seed=seed, fast=fast,
                       faults_name=faults_name, shard_size=shard_size)


def run(seed: int = 2005, fast: bool = False,
        faults: str | None = None,
        shards: int | None = None) -> ExperimentResult:
    """Run the cluster capping comparison.

    The policy runs are independent (each gets its own pre-spawned seed),
    so they fan across worker processes when ``--jobs`` is set.  With a
    fault scenario named, a fourth fvsst run repeats the curtailment over
    the unreliable control plane.  With ``shards`` (the CLI's
    ``--shards``), another run drives the same curtailment through the
    hierarchical control plane (``shards`` nodes per shard, fleet budget
    water-filled across the shard coordinators), combining with the fault
    scenario when both are given.
    """
    with_faults = faults is not None and faults != "none"
    with_shards = shards is not None
    seeds = spawn_seeds(seed, 3 + (1 if with_faults else 0)
                        + (1 if with_shards else 0))
    tasks: list[tuple[str, int, bool, str | None, int | None]] = [
        ("none", seeds[0], fast, None, None),
        ("fvsst", seeds[1], fast, None, None),
        ("uniform", seeds[2], fast, None, None),
    ]
    if with_faults:
        tasks.append(("fvsst", seeds[3], fast, faults, None))
    if with_shards:
        tasks.append(("hier", seeds[-1], fast,
                      faults if with_faults else None, shards))
    results = parallel_map(_policy_task, tasks)
    reference, fvsst, uniform = results[:3]

    def norm(r: dict[str, float]) -> float:
        return r["throughput"] / reference["throughput"]

    table = TableResult(
        headers=("policy", "norm_throughput", "cpu_power_w", "budget_w",
                 "network_msgs"),
        rows=(
            ("none (reference)", 1.0, round(reference["power_w"], 0),
             "-", 0),
            ("fvsst-global", round(norm(fvsst), 3),
             round(fvsst["power_w"], 0), round(fvsst["budget_w"], 0),
             int(fvsst["messages"])),
            ("uniform", round(norm(uniform), 3),
             round(uniform["power_w"], 0), round(uniform["budget_w"], 0),
             0),
        ),
        title=f"Global cap at {BUDGET_FRACTION:.0%} of peak, "
              f"{NODES} nodes x {PROCS} procs (web/app/db tiers)",
    )
    tables = [table]
    scalars = {
        "fvsst_norm_throughput": norm(fvsst),
        "uniform_norm_throughput": norm(uniform),
    }
    notes = [
        "fvsst-global should retain more cluster throughput than "
        "uniform scaling at the same budget by slowing the saturated "
        "db tier instead of everything.",
    ]
    if with_faults:
        faulted = results[3]
        compliant = (faulted["max_sched_power_w"]
                     <= faulted["budget_w"] + 1e-9)
        tables.append(TableResult(
            headers=("scenario", "norm_throughput", "max_sched_power_w",
                     "budget_w", "report_drops", "cmd_drops", "retries",
                     "stale_passes", "budget_compliant"),
            rows=(
                (f"fvsst+{faults}", round(norm(faulted), 3),
                 round(faulted["max_sched_power_w"], 1),
                 round(faulted["budget_w"], 1),
                 int(faulted["report_drops"]), int(faulted["cmd_drops"]),
                 int(faulted["retries"]), int(faulted["stale_passes"]),
                 "yes" if compliant else "NO"),
            ),
            title=f"Degraded-mode fvsst under injected faults "
                  f"({faults!r} scenario)",
        ))
        scalars["faults_norm_throughput"] = norm(faulted)
        scalars["faults_budget_compliant"] = 1.0 if compliant else 0.0
        notes.append(
            "Under injected control-plane faults the scheduled cluster "
            "power must never exceed the budget: missing nodes are served "
            "from the signature cache, lost nodes are pinned to the "
            "frequency floor.",
        )
    if with_shards:
        hier = results[-1]
        label = f"fvsst-hier({shards}/shard)"
        if with_faults:
            label += f"+{faults}"
        tables.append(TableResult(
            headers=("policy", "norm_throughput", "cpu_power_w",
                     "shards", "rebalances", "leases", "summary_drops",
                     "max_committed_w", "committed<=budget"),
            rows=(
                (label, round(norm(hier), 3), round(hier["power_w"], 0),
                 int(hier["shards"]), int(hier["rebalances"]),
                 int(hier["leases"]), int(hier["summary_drops"]),
                 round(hier["max_committed_w"], 1),
                 "yes" if hier["committed_compliant"] else "NO"),
            ),
            title="Hierarchical control plane at the same budget "
                  "(fleet water-fill over shard demand ladders)",
        ))
        scalars["hier_norm_throughput"] = norm(hier)
        scalars["hier_budget_compliant"] = hier["committed_compliant"]
        notes.append(
            "The fleet allocator never commits more budget to shards than "
            "the fleet limit, even while leases and summaries are in "
            "flight or lost (pessimistic committed accounting).",
        )
    return ExperimentResult(
        experiment_id="cluster_cap",
        description="tiered cluster under global curtailment",
        tables=tables,
        scalars=scalars,
        notes=notes,
    )
