"""Figure 6: performance impact of power limits, per phase.

The two-phase synthetic benchmark (100% CPU-intensive phase A, 20%
intensity memory-bound phase B) on a single-processor configuration, run to
completion under fvsst at a sweep of processor power limits.  Each phase's
throughput is normalised to its full-power value: the memory phase stays
flat across the sweep while the CPU phase degrades slightly sub-linearly
with the frequency cap.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, SeriesResult
from ..errors import ExperimentError
from ..sim.rng import spawn_seeds
from ..workloads.synthetic import SyntheticBenchmark
from .common import run_job_under_governor

__all__ = ["run", "CAPS_W", "phase_throughputs"]

CAPS_W = (140.0, 123.0, 109.0, 95.0, 84.0, 75.0, 66.0, 57.0, 48.0, 41.0, 35.0)


def phase_throughputs(intensity_a: float, intensity_b: float, cap_w: float, *,
                      seed: int, fast: bool,
                      phase_s: float | None = None) -> dict[str, float]:
    """Run the two-phase benchmark under one cap; returns per-phase
    instructions/second keyed by phase name."""
    duration = phase_s if phase_s is not None else (0.4 if fast else 1.0)
    repeats = 2 if fast else 3
    bench = SyntheticBenchmark(
        intensity_a=intensity_a, intensity_b=intensity_b,
        duration_a_s=duration, duration_b_s=duration,
        include_init_exit=False,
    )
    job = bench.job(repeats=repeats)
    run = run_job_under_governor(job, "fvsst", power_limit_w=cap_w, seed=seed)
    phase_a, phase_b = bench.main_phases()
    core = run.machine.core(0)
    out = {}
    for phase in (phase_a, phase_b):
        time_in_phase = core.phase_time_s.get(phase.name, 0.0)
        if time_in_phase <= 0:
            raise ExperimentError(f"no time recorded in {phase.name!r}")
        out[phase.name] = phase.instructions * repeats / time_in_phase
    return out


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 6."""
    caps = CAPS_W[::3] if fast else CAPS_W
    seeds = spawn_seeds(seed, len(caps))
    rows_a, rows_b = [], []
    for cap, s in zip(caps, seeds):
        t = phase_throughputs(1.00, 0.20, cap, seed=s, fast=fast)
        rows_a.append(t["phase-a"])
        rows_b.append(t["phase-b"])
    base_a, base_b = rows_a[0], rows_b[0]

    fig = SeriesResult(
        x_label="power_limit_w",
        x=tuple(int(c) for c in caps),
        series={
            "cpu_phase_normalised": tuple(v / base_a for v in rows_a),
            "mem_phase_normalised": tuple(v / base_b for v in rows_b),
        },
        title="Figure 6: per-phase performance vs power limit",
    )
    return ExperimentResult(
        experiment_id="fig6",
        description="performance impact of power limits (100% / 20% phases)",
        series=[fig],
        scalars={
            "cpu_phase_at_min_cap": rows_a[-1] / base_a,
            "mem_phase_at_min_cap": rows_b[-1] / base_b,
        },
        notes=[
            "The memory-intensive phase shows no degradation across the "
            "sweep; the CPU-intensive phase degrades slightly less than "
            "one-to-one with the frequency cap (residual memory stalls) — "
            "the paper's Figure 6 shapes.",
        ],
    )
