"""Table 3: performance and energy of gzip/gap/mcf/health under power caps.

Protocol (Section 8.4): each application runs to completion on a single
processor under fvsst at processor budgets of 140 W (unconstrained), 75 W
and 35 W.  Performance is normalised against the 140 W fvsst run; energy is
normalised against a non-fvsst system (all cores pinned at 1000 MHz) running
the same application.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES
from .common import run_job_under_governor

__all__ = ["run", "CAPS_W", "APPS"]

CAPS_W = (140.0, 75.0, 35.0)
APPS = ("gzip", "gap", "mcf", "health")


def _runs_for_app(app: str, *, seed: int, fast: bool) -> dict[str, float]:
    """Throughput and energy for one application at each cap + baseline."""
    profile = ALL_PROFILES[app]
    repeats = 1 if fast else 3
    seeds = spawn_seeds(seed, len(CAPS_W) + 1)
    out: dict[str, float] = {}

    baseline = run_job_under_governor(
        profile.job(body_repeats=repeats), "none",
        power_limit_w=None, seed=seeds[0],
    )
    out["baseline_energy_j"] = baseline.core_energy_j
    out["baseline_throughput"] = baseline.throughput

    for cap, s in zip(CAPS_W, seeds[1:]):
        run = run_job_under_governor(
            profile.job(body_repeats=repeats), "fvsst",
            power_limit_w=cap, seed=s,
        )
        out[f"throughput@{int(cap)}"] = run.throughput
        out[f"energy@{int(cap)}"] = run.core_energy_j
    return out


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 3."""
    seeds = spawn_seeds(seed, len(APPS))
    measured = {
        app: _runs_for_app(app, seed=s, fast=fast)
        for app, s in zip(APPS, seeds)
    }

    rows = []
    for metric in ("Perf", "Energy"):
        for cap in CAPS_W:
            row: list[object] = [f"{metric} @ {int(cap)}W"]
            for app in APPS:
                m = measured[app]
                if metric == "Perf":
                    value = (m[f"throughput@{int(cap)}"]
                             / m["throughput@140"])
                else:
                    value = m[f"energy@{int(cap)}"] / m["baseline_energy_j"]
                row.append(round(value, 2))
            rows.append(tuple(row))

    table = TableResult(
        headers=("", *APPS),
        rows=tuple(rows),
        title="Table 3: performance and energy under power constraints",
    )
    return ExperimentResult(
        experiment_id="table3",
        description="per-application performance/energy at 140/75/35 W",
        tables=[table],
        notes=[
            "Performance normalised to the 140 W fvsst run (paper "
            "convention); energy normalised to a non-fvsst system pinned "
            "at 1000 MHz.",
            "Expected divergence: the memory-bound 35 W performance losses "
            "are smaller here (~0.93) than the paper's measurements "
            "(0.81/0.72) because the constant-latency linear CPI model "
            "bounds sub-saturation losses; see EXPERIMENTS.md.",
        ],
    )
