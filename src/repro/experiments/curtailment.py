"""Curtailment during peak traffic: SLO compliance vs energy.

The cluster-cap experiment shows throughput under a budget; this one asks
the question a serving fleet actually cares about: *when the power budget
tightens during a flash crowd, what happens to the latency SLO?*  A
homogeneous cluster serves open-loop Poisson traffic (a flash-crowd ramp
peaking mid-run) while the coordinator schedules under progressively
tighter budgets, once with the SLO-aware mode on (a p99 target translated
into per-node frequency floors each pass) and once, at the tightest
budget, with it off — the contrast row showing what the budget alone
would have done to the tail.

Reported per budget level: total CPU energy, raw and censored p99 (the
censored digest folds in each in-flight request's latency lower bound, so
overload cannot hide its own tail), SLO compliance (the fraction of
requests at or below the target), and the floors-respected witness (count
of scheduled frequencies below their node's floor — must stay zero).
"""

from __future__ import annotations

import math

from ..analysis.report import ExperimentResult, TableResult
from ..cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from ..cluster.hierarchy import FleetAllocator, FleetConfig
from ..exec.pool import parallel_map
from ..model.latency import POWER4_LATENCIES
from ..model.latency_model import service_time_s
from ..sim.cluster import Cluster
from ..sim.driver import Simulation
from ..sim.fleet import fallback_breakdown, fleet_stats
from ..sim.machine import MachineConfig
from ..sim.rng import spawn_seeds
from ..workloads.server import RequestSpec
from ..workloads.serving import FleetTrafficSource, flash_crowd_rate

__all__ = ["run", "NODES", "PROCS", "BUDGET_FRACTIONS",
           "DEFAULT_SLO_P99_MS"]

NODES = 3
PROCS = 2
#: Budget levels swept, as fractions of peak processor power (ascending,
#: so the compliance column should read non-decreasing top to bottom).
BUDGET_FRACTIONS = (0.3, 0.5, 0.75, 1.0)
#: Default p99 target when the CLI's --slo-p99-ms is not given.  Chosen
#: so the floors genuinely bind at the tight budgets (infeasible passes
#: > 0) while the tail at f_max still clears the target with margin.
DEFAULT_SLO_P99_MS = 20.0
#: Peak per-core utilisation at f_max; lower frequencies push rho (and
#: the predicted tail) up from here, which is what makes the floor bind.
PEAK_RHO = 0.5
BASE_RHO = 0.1


def _run_curtailment(budget_fraction: float, *, seed: int, fast: bool,
                     target_s: float, enforce: bool,
                     shards: int | None = None) -> dict[str, float]:
    duration = 2.4 if fast else 6.0
    cluster = Cluster.homogeneous(
        NODES, machine_config=MachineConfig(num_cores=PROCS), seed=seed
    )
    table = cluster.nodes[0].machine.table
    budget = budget_fraction * NODES * PROCS * table.max_power_w

    spec = RequestSpec()
    service = service_time_s(spec.signature(POWER4_LATENCIES),
                             spec.instructions, table.f_max_hz)
    cores = NODES * PROCS
    peak = PEAK_RHO / service * cores
    base = BASE_RHO / service * cores
    if fast:
        t_start, ramp, hold, decay = 0.5, 0.4, 0.7, 0.4
    else:
        t_start, ramp, hold, decay = 1.0, 1.0, 2.5, 1.0
    rate = flash_crowd_rate(base, peak, t_start_s=t_start, ramp_s=ramp,
                            hold_s=hold, decay_s=decay)

    sim = Simulation(cluster.machines)
    traffic = FleetTrafficSource(
        cluster, rate_per_s=rate, max_rate_per_s=peak, spec=spec,
        horizon_s=duration, seed=seed + 7,
    )
    config = CoordinatorConfig(
        power_limit_w=budget,
        slo_p99_target_s=target_s if enforce else None,
    )
    if shards is not None:
        allocator = FleetAllocator(cluster, config,
                                   fleet=FleetConfig(shard_size=shards),
                                   seed=seed + 1)
        allocator.bind_serving(traffic)
        allocator.attach(sim)
        coordinators: list[ClusterCoordinator] = list(allocator.shards)
    else:
        coordinator = ClusterCoordinator(cluster, config, seed=seed + 1)
        coordinator.bind_serving(traffic)
        coordinator.attach(sim)
        coordinators = [coordinator]
    traffic.attach(sim)
    # Fleet-kernel residency over this run: deltas of the process-wide
    # counters, so the scalars are identical at any --jobs fan-out.
    advances0 = fleet_stats["advances"]
    fallbacks0 = fleet_stats["fallbacks"]
    transient0 = fallback_breakdown().get("transient", 0)
    sim.run_for(duration)

    censored = traffic.fleet_digest(censored=True, horizon_s=duration)
    raw = traffic.fleet_digest()
    return {
        "fraction": budget_fraction,
        "budget_w": budget,
        "energy_j": sum(m.ledger.total_energy_j for m in cluster.machines),
        "issued": float(traffic.issued),
        "completed": float(traffic.completed),
        "p99_raw_ms": (raw.percentile(99.0) * 1e3 if raw.count
                       else math.inf),
        "p99_censored_ms": (censored.percentile(99.0) * 1e3
                            if censored.count else math.inf),
        "compliance": (censored.fraction_below(target_s)
                       if censored.count else 0.0),
        "floor_violations": float(sum(c.slo_floor_violations
                                      for c in coordinators)),
        "infeasible_passes": float(sum(c.slo_infeasible_passes
                                       for c in coordinators)),
        "fleet_advances": float(fleet_stats["advances"] - advances0),
        "fleet_fallbacks": float(fleet_stats["fallbacks"] - fallbacks0),
        "fleet_transient_fallbacks": float(
            fallback_breakdown().get("transient", 0) - transient0),
    }


def _curtailment_task(task: tuple[float, int, bool, float, bool,
                                  int | None]) -> dict[str, float]:
    """Picklable wrapper so the budget levels fan across a pool."""
    fraction, seed, fast, target_s, enforce, shards = task
    return _run_curtailment(fraction, seed=seed, fast=fast,
                            target_s=target_s, enforce=enforce,
                            shards=shards)


def run(seed: int = 2005, fast: bool = False,
        slo_p99_ms: float | None = None,
        shards: int | None = None) -> ExperimentResult:
    """Run the peak-traffic curtailment sweep.

    Each budget level is an independent run (own pre-spawned seed), so
    the sweep fans across worker processes under ``--jobs``; the final
    row repeats the tightest budget with SLO mode off as the contrast.
    With ``shards`` (the CLI's ``--shards``) every run goes through the
    hierarchical control plane instead of the flat coordinator.
    """
    target_ms = DEFAULT_SLO_P99_MS if slo_p99_ms is None else slo_p99_ms
    target_s = target_ms / 1e3
    seeds = spawn_seeds(seed, len(BUDGET_FRACTIONS) + 1)
    tasks: list[tuple[float, int, bool, float, bool, int | None]] = [
        (fraction, seeds[i], fast, target_s, True, shards)
        for i, fraction in enumerate(BUDGET_FRACTIONS)
    ]
    tasks.append((BUDGET_FRACTIONS[0], seeds[-1], fast, target_s, False,
                  shards))
    results = parallel_map(_curtailment_task, tasks)
    slo_rows = results[:len(BUDGET_FRACTIONS)]
    contrast = results[-1]

    def row(label: str, r: dict[str, float]) -> tuple:
        return (
            label,
            round(r["budget_w"], 0),
            round(r["energy_j"], 1),
            round(r["p99_raw_ms"], 2),
            round(r["p99_censored_ms"], 2),
            round(r["compliance"], 4),
            int(r["floor_violations"]),
            int(r["infeasible_passes"]),
        )

    table = TableResult(
        headers=("policy", "budget_w", "energy_j", "p99_raw_ms",
                 "p99_censored_ms", "slo_compliance", "floor_violations",
                 "infeasible_passes"),
        rows=tuple(
            [row(f"slo@{r['fraction']:.0%}", r) for r in slo_rows]
            + [row(f"no-slo@{contrast['fraction']:.0%}", contrast)]
        ),
        title=f"Curtailment during peak traffic: p99 target "
              f"{target_ms:g} ms, {NODES} nodes x {PROCS} procs, "
              f"flash-crowd peak at {PEAK_RHO:.0%} per-core load",
    )

    advances = sum(r["fleet_advances"] for r in results)
    fallbacks = sum(r["fleet_fallbacks"] for r in results)
    spans = advances + fallbacks
    compliance = [r["compliance"] for r in slo_rows]
    monotone = all(b >= a - 0.02
                   for a, b in zip(compliance, compliance[1:]))
    floors_ok = all(r["floor_violations"] == 0 for r in slo_rows)
    scalars = {
        "compliance_min_budget": compliance[0],
        "compliance_max_budget": compliance[-1],
        "compliance_monotone": 1.0 if monotone else 0.0,
        "floors_respected": 1.0 if floors_ok else 0.0,
        "no_slo_compliance": contrast["compliance"],
        "slo_energy_j_min_budget": slo_rows[0]["energy_j"],
        "slo_energy_j_max_budget": slo_rows[-1]["energy_j"],
        # Serving-path residency: fraction of machine-spans the fleet
        # columnar kernel kept resident across all runs (1.0 when the
        # kernel is disabled and no spans were attempted).
        "fleet_residency": advances / spans if spans else 1.0,
        "fleet_transient_fallbacks": sum(
            r["fleet_transient_fallbacks"] for r in results),
    }
    notes = [
        "SLO mode translates the p99 target into per-node frequency "
        "floors each pass; floors win over the budget, so a tight "
        "curtailment shows up as infeasible passes (budget breach "
        "events), never as scheduled frequencies below the floor.",
        "Compliance is scored on the censored digest (in-flight "
        "requests count at their latency lower bound), so overload "
        "cannot hide its own tail; the raw p99 column shows the "
        "survivorship-biased value for contrast.",
        "The no-slo contrast row runs the tightest budget without "
        "floors: the energy saved is real, and so is the tail it "
        "costs.",
    ]
    return ExperimentResult(
        experiment_id="curtailment",
        description="SLO compliance vs energy under curtailment at "
                    "peak serving traffic",
        tables=(table,),
        scalars=scalars,
        notes=notes,
    )
