"""Ablations over fvsst's design choices (DESIGN.md §5, extensions).

Four studies:

* ``run_epsilon_sweep`` — the performance/energy trade-off as the tolerated
  loss bound epsilon varies (Section 5 requires epsilon above the ladder's
  minimum performance step; this shows why).
* ``run_period_sweep`` — scheduling period T vs tracking quality and
  overhead (the Section 5 stabilisation/amortisation argument).
* ``run_predictor_variants`` — constant-latency observation-calibrated
  predictor vs the assumed-alpha literal equation vs the footnote-1
  latency-bounds interval width.
* ``run_policy_comparison`` — fvsst vs uniform scaling vs node power-down
  vs utilization stepping at one fixed budget (the alternatives from the
  abstract).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig
from ..exec.pool import parallel_map
from ..model.bounds import LatencyBounds, predict_ipc_bounds
from ..model.ipc import MemoryCounts
from ..model.latency import POWER4_LATENCIES
from ..sim.rng import spawn_seeds
from ..units import ghz
from ..workloads.profiles import mcf_profile
from ..workloads.synthetic import SyntheticBenchmark, synthetic_phase
from .common import run_job_under_governor

__all__ = [
    "run_epsilon_sweep",
    "run_period_sweep",
    "run_predictor_variants",
    "run_policy_comparison",
    "run_daemon_design",
]


def _epsilon_point(task: tuple[float | None, int, int]) -> dict[str, float]:
    """One epsilon sweep point (picklable; ``eps=None`` is the baseline)."""
    eps, s, reps = task
    run_ = run_job_under_governor(
        mcf_profile().job(body_repeats=reps),
        "none" if eps is None else "fvsst",
        power_limit_w=None,
        daemon_config=None if eps is None else DaemonConfig(epsilon=eps),
        seed=s,
    )
    return {"throughput": run_.throughput, "energy": run_.core_energy_j}


def run_epsilon_sweep(seed: int = 2005, fast: bool = False,
                      epsilons: tuple[float, ...] = (0.01, 0.02, 0.04,
                                                     0.08, 0.15)
                      ) -> ExperimentResult:
    """Performance vs energy across epsilon values (mcf, unconstrained)."""
    seeds = spawn_seeds(seed, len(epsilons) + 1)
    reps = 1 if fast else 2
    baseline, *points = parallel_map(_epsilon_point, [
        (None, seeds[0], reps),
        *((eps, s, reps) for eps, s in zip(epsilons, seeds[1:])),
    ])
    rows = []
    for eps, point in zip(epsilons, points):
        rows.append((
            eps,
            round(point["throughput"] / baseline["throughput"], 3),
            round(point["energy"] / baseline["energy"], 3),
        ))
    table = TableResult(
        headers=("epsilon", "norm_performance", "norm_energy"),
        rows=tuple(rows),
        title="Epsilon sweep (mcf, unconstrained budget)",
    )
    return ExperimentResult(
        experiment_id="ablation_epsilon",
        description="tolerated-loss bound vs delivered performance and energy",
        tables=[table],
        notes=[
            "Larger epsilon admits lower frequencies: energy falls, "
            "performance degrades toward (1 - epsilon).  Below the "
            "ladder's minimum step the bound cannot bite (Section 5).",
        ],
    )


def run_period_sweep(seed: int = 2005, fast: bool = False,
                     multipliers: tuple[int, ...] = (1, 5, 10, 25, 50)
                     ) -> ExperimentResult:
    """Scheduling period T = n*t vs phase tracking and overhead."""
    seeds = spawn_seeds(seed, len(multipliers) + 1)
    phase_s = 0.4 if fast else 1.0
    reps = 2 if fast else 4
    bench = SyntheticBenchmark(intensity_a=1.0, intensity_b=0.2,
                               duration_a_s=phase_s, duration_b_s=phase_s,
                               include_init_exit=False)
    baseline = run_job_under_governor(
        bench.job(repeats=reps), "none", power_limit_w=None, seed=seeds[0],
    )
    rows = []
    for n, s in zip(multipliers, seeds[1:]):
        run_ = run_job_under_governor(
            bench.job(repeats=reps), "fvsst", power_limit_w=None,
            daemon_config=DaemonConfig(schedule_every=n, daemon_core=0),
            seed=s,
        )
        rows.append((
            n,
            round(n * 0.010, 3),
            round(run_.throughput / baseline.throughput, 3),
            round(run_.core_energy_j / baseline.core_energy_j, 3),
            round(run_.machine.core(0).overhead_executed_s
                  / run_.elapsed_s, 4),
        ))
    table = TableResult(
        headers=("n", "T_s", "norm_performance", "norm_energy",
                 "overhead_fraction"),
        rows=tuple(rows),
        title="Scheduling period sweep (two-phase synthetic)",
    )
    return ExperimentResult(
        experiment_id="ablation_period",
        description="T = n*t vs tracking quality and daemon overhead",
        tables=[table],
        notes=[
            "Small T tracks phases tightly but pays more overhead and "
            "jitter; very large T misses phase boundaries (energy rises "
            "back toward the static value) — the Section 5 trade-off.",
        ],
    )


def run_predictor_variants(seed: int | None = None, fast: bool = False
                           ) -> ExperimentResult:
    """Accuracy of the three predictor formulations on known phases.

    Evaluated analytically: for a grid of synthetic intensities, generate
    the exact counters of one interval at 1 GHz, predict IPC at 650 MHz
    with each variant, and compare with the ground truth.
    """
    intensities = (1.0, 0.9, 0.75, 0.5, 0.25, 0.1, 0.0)
    target = ghz(0.65)
    observe = ghz(1.0)
    bounds = LatencyBounds.from_nominal(POWER4_LATENCIES, spread=0.25)
    rows = []
    for intensity in intensities:
        phase = synthetic_phase(intensity, instructions=1e9)
        truth = phase.true_ipc(POWER4_LATENCIES, target)
        sig_true = phase.true_signature(POWER4_LATENCIES)
        counts = phase.counts_for(phase.instructions)

        # Observation-calibrated: recovers c0 exactly under stationarity.
        cpi_obs = 1.0 / phase.true_ipc(POWER4_LATENCIES, observe)
        m = counts.memory_time_s(POWER4_LATENCIES) / counts.instructions
        ipc_counter = 1.0 / ((cpi_obs - m * observe) + m * target)

        # Assumed-alpha literal equation: misses the unmodeled stalls.
        alpha_assumed = phase.alpha
        core_alpha = 1.0 / alpha_assumed + (counts.l1_stall_cycles
                                            / counts.instructions)
        ipc_alpha = 1.0 / (core_alpha + m * target)

        mem_counts = MemoryCounts(
            instructions=counts.instructions, n_l2=counts.n_l2,
            n_l3=counts.n_l3, n_mem=counts.n_mem,
            l1_stall_cycles=counts.l1_stall_cycles,
        )
        interval = predict_ipc_bounds(mem_counts, bounds, target,
                                      alpha=alpha_assumed)
        # The footnote-1 interval brackets *latency* uncertainty: any
        # constant latency profile inside the spread must project inside
        # the interval.  (It does NOT bracket the alpha/unmodeled-stall
        # bias — that is the note below.)
        covers = all(
            interval.contains(
                1.0 / (core_alpha
                       + (mem_counts.memory_time_s(
                           POWER4_LATENCIES.scaled(scale))
                          / mem_counts.instructions) * target)
            )
            for scale in (0.8, 1.0, 1.2)
        )
        rows.append((
            int(intensity * 100),
            round(truth, 4),
            round(abs(ipc_counter - truth), 4),
            round(abs(ipc_alpha - truth), 4),
            round(interval.width, 4),
            covers,
        ))
    table = TableResult(
        headers=("cpu_intensity", "true_ipc@650", "err_counter",
                 "err_alpha", "bounds_width", "covers_latency_variation"),
        rows=tuple(rows),
        title="Predictor variants at 650 MHz from a 1 GHz observation",
    )
    return ExperimentResult(
        experiment_id="ablation_predictor",
        description="observation-calibrated vs assumed-alpha vs bounds",
        tables=[table],
        notes=[
            "The observation-calibrated predictor is exact under "
            "stationarity; the literal assumed-alpha equation carries the "
            "unmodeled-stall bias the paper names in Section 8.1.",
            "The footnote-1 bounds bracket constant-latency variation "
            "exactly, but do not cover the alpha bias — a workload whose "
            "true ILP differs from the assumed alpha can fall outside.",
        ],
    )


def _build_policy_machine(seed_: int):
    from ..sim.machine import MachineConfig, SMPMachine
    from ..workloads.profiles import ALL_PROFILES

    machine = SMPMachine(MachineConfig(num_cores=4), seed=seed_)
    for i, app in enumerate(("gzip", "gap", "mcf", "health")):
        machine.assign(i, ALL_PROFILES[app].job(loop=True))
    return machine


def _policy_point(task: tuple[str, int, bool, float]) -> dict[str, float]:
    """One governor x budget sweep point (picklable for the pool)."""
    from ..sim.driver import Simulation
    from .common import make_governor

    policy, seed_, fast, budget_w = task
    duration = 4.0 if fast else 10.0
    machine = _build_policy_machine(seed_)
    sim = Simulation(machine)
    if policy == "none":
        make_governor("none", machine, power_limit_w=None).attach(sim)
        sim.run_for(duration)
        return {"instructions": sum(c.counters.instructions
                                    for c in machine.cores)}
    make_governor(policy, machine, power_limit_w=budget_w,
                  seed=seed_).attach(sim)
    powers = []
    sim.every(0.05, lambda t, m=machine, p=powers: p.append(m.cpu_power_w()))
    sim.run_for(duration)
    return {
        "instructions": sum(c.counters.instructions for c in machine.cores),
        "mean_w": float(np.mean(powers)),
        "max_w": float(np.max(powers)),
    }


def run_policy_comparison(seed: int = 2005, fast: bool = False,
                          budget_w: float = 294.0) -> ExperimentResult:
    """fvsst vs the abstract's alternatives at one fixed 4-core budget.

    All four cores run real work (the four application models), so the
    budget genuinely binds.  Scored on aggregate throughput and worst-case
    power.  Each (governor, budget) point is an independent simulation
    with its own pre-spawned seed, so the five runs fan across worker
    processes under ``--jobs``.
    """
    policies = ("fvsst", "uniform", "powerdown", "utilization")
    seeds = spawn_seeds(seed, len(policies) + 1)

    reference, *points = parallel_map(_policy_point, [
        ("none", seeds[0], fast, budget_w),
        *((p, s, fast, budget_w) for p, s in zip(policies, seeds[1:])),
    ])
    ref_instr = reference["instructions"]

    rows = []
    for policy, point in zip(policies, points):
        rows.append((
            policy,
            round(point["instructions"] / ref_instr, 3),
            round(point["mean_w"], 1),
            round(point["max_w"], 1),
        ))
    table = TableResult(
        headers=("policy", "norm_throughput", "mean_cpu_w", "max_cpu_w"),
        rows=tuple(rows),
        title=f"Policies at a {budget_w:.0f} W four-core budget",
    )
    return ExperimentResult(
        experiment_id="ablation_policies",
        description="fvsst vs uniform vs power-down vs utilization stepping",
        tables=[table],
        notes=[
            "fvsst should deliver the most throughput inside the budget by "
            "slowing the memory-bound processors preferentially; power-down "
            "strands whole applications; utilization stepping cannot tell "
            "saturated work from demanding work.",
        ],
    )


def run_daemon_design(seed: int = 2005, fast: bool = False
                      ) -> ExperimentResult:
    """Single-threaded vs multi-threaded daemon (Section 9's future work).

    The same synthetic benchmark runs under (a) no daemon, (b) the
    single-threaded prototype (all counter reads and actuations charged to
    one host core, co-located with the benchmark), and (c) the
    two-threads-per-processor design (user-level reads charged to the
    sampled core).  Scored on benchmark throughput impact and total stolen
    time.
    """
    from ..core.daemon import DaemonConfig, FvsstDaemon
    from ..core.daemon_mt import MultithreadedFvsstDaemon
    from ..sim.core import CoreConfig
    from ..sim.driver import Simulation
    from ..sim.machine import MachineConfig, SMPMachine

    seeds = spawn_seeds(seed, 3)
    duration = 4.0 if fast else 10.0
    bench_core = 0

    def build(seed_: int):
        machine = SMPMachine(MachineConfig(
            num_cores=4,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ), seed=seed_)
        machine.assign(bench_core, SyntheticBenchmark(
            intensity_a=1.0, intensity_b=1.0,
            duration_a_s=1.0, duration_b_s=1.0,
            include_init_exit=False,
        ).job(loop=True))
        return machine

    def measure(variant: str, seed_: int) -> dict[str, float]:
        machine = build(seed_)
        sim = Simulation(machine)
        config = DaemonConfig(counter_noise_sigma=0.0,
                              daemon_core=bench_core)
        if variant == "single":
            FvsstDaemon(machine, config, seed=seed_ + 1).attach(sim)
        elif variant == "multi":
            MultithreadedFvsstDaemon(machine, config,
                                     seed=seed_ + 1).attach(sim)
        sim.run_for(duration)
        stolen = sum(c.overhead_executed_s for c in machine.cores)
        return {
            "instructions": machine.core(bench_core).counters.instructions,
            "stolen_s": stolen,
            "bench_core_stolen_s": machine.core(
                bench_core).overhead_executed_s,
        }

    base = measure("none", seeds[0])
    single = measure("single", seeds[1])
    multi = measure("multi", seeds[2])

    def impact(r):
        return 1.0 - r["instructions"] / base["instructions"]

    table = TableResult(
        headers=("daemon", "throughput_impact", "stolen_total_s",
                 "stolen_on_bench_core_s"),
        rows=(
            ("single-threaded", round(impact(single), 4),
             round(single["stolen_s"], 4),
             round(single["bench_core_stolen_s"], 4)),
            ("multi-threaded", round(impact(multi), 4),
             round(multi["stolen_s"], 4),
             round(multi["bench_core_stolen_s"], 4)),
        ),
        title="Daemon design: overhead placement and magnitude",
    )
    return ExperimentResult(
        experiment_id="ablation_daemon",
        description="single-threaded prototype vs two-threads-per-processor",
        tables=[table],
        scalars={
            "single_impact": impact(single),
            "multi_impact": impact(multi),
        },
        notes=[
            "The multi-threaded design reads counters at user level on "
            "each processor, so the benchmark core stops paying for its "
            "neighbours' samples — the Section 9 improvement, quantified.",
        ],
    )
