"""Table 1: frequencies available for scheduling and their peak power.

The paper generated this table with the Lava circuit estimator; here it is
regenerated two ways: (a) the canonical calibrated table, and (b) the
analytic CMOS model fitted by :func:`repro.power.lava.fit_lava_model`,
reporting the fit error — the evidence that the Section 4.4 power equation
reproduces the published curve.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..power.lava import fit_lava_model
from ..power.table import POWER4_TABLE
from ..units import to_mhz

__all__ = ["run"]


def run(seed: int | None = None, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 1 (deterministic; ``seed``/``fast`` unused)."""
    fit = fit_lava_model(POWER4_TABLE)
    rows = []
    for freq_hz, power_w in POWER4_TABLE:
        analytic = fit.power_w(freq_hz)
        rows.append((
            int(to_mhz(freq_hz)),
            power_w,
            round(analytic, 1),
            round(fit.vf_curve.min_voltage(freq_hz), 3),
        ))
    table = TableResult(
        headers=("Frequency (MHz)", "Power (W)", "CMOS fit (W)", "Vdd (V)"),
        rows=tuple(rows),
        title="Table 1: frequencies available for scheduling",
    )
    result = ExperimentResult(
        experiment_id="table1",
        description="frequency vs peak processor power (Lava-calibrated)",
        tables=[table],
        scalars={
            "fit_max_rel_error": fit.max_rel_error,
            "fit_rms_rel_error": fit.rms_rel_error,
            "capacitance_nF": fit.cmos.capacitance_f * 1e9,
            "leakage_S": fit.cmos.leakage_s,
        },
        notes=[
            "The 16 operating points match the paper's Table 1 exactly by "
            "construction (they are the calibration target); the analytic "
            "CMOS fit reproduces them to within the reported relative error."
        ],
    )
    return result
