"""The Section 5 worked example, end to end.

Four processors on the coarse 600–1000 MHz ladder.  At ``T0`` a power
supply fails, leaving a 294 W processor budget (480 W supply − 186 W
non-CPU).  Workload signatures are constructed so the step-1
epsilon-constrained vector is [1.0, 0.7, 0.8, 0.8] GHz; step 2 must reduce
it to [0.9, 0.6, 0.7, 0.7] GHz = 289 W.  (The paper prints the actual
vector as "[0.6, 0.6, 0.7, 0.7]" but its own power vector [109, 48, 66,
66] W and loss vector correspond to [0.9, 0.6, 0.7, 0.7] — see DESIGN.md
§3.)  At ``T1`` processor 0 turns memory-intensive (epsilon frequency
0.6 GHz); the epsilon-constrained vector [0.6, 0.7, 0.8, 0.8] = 282 W now
fits and step 2 becomes a no-op.

The example uses epsilon = 0.03: the paper's epsilon is unpublished, and
3% is the value under which a processor with processor-0's reported 3.5%
loss at 0.9 GHz still desires 1.0 GHz.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.scheduler import FrequencyVoltageScheduler, ProcessorView
from ..model.ipc import WorkloadSignature
from ..power.table import WORKED_EXAMPLE_TABLE
from ..units import ghz, to_ghz

__all__ = ["run", "EPSILON", "BUDGET_W", "signature_with_ratio"]

EPSILON = 0.03
BUDGET_W = 294.0

#: Core-to-memory cycle ratios (at 1 GHz) chosen so step 1 lands on the
#: paper's epsilon-constrained vector.  See module docstring.
T0_RATIOS = (0.45, 0.07, 0.12, 0.12)
#: Processor 0 after its phase change at T1.
T1_RATIOS = (0.04, 0.07, 0.12, 0.12)


def signature_with_ratio(ratio: float, *, core_cpi: float = 0.65
                         ) -> WorkloadSignature:
    """A signature whose core-to-memory cycle ratio at 1 GHz is ``ratio``."""
    return WorkloadSignature(
        core_cpi=core_cpi,
        mem_time_per_instr_s=core_cpi / ratio / ghz(1.0),
    )


def _views(ratios) -> list[ProcessorView]:
    return [
        ProcessorView(node_id=0, proc_id=i,
                      signature=signature_with_ratio(r))
        for i, r in enumerate(ratios)
    ]


def run(seed: int | None = None, fast: bool = False) -> ExperimentResult:
    """Run both scheduling instants of the worked example (deterministic)."""
    scheduler = FrequencyVoltageScheduler(WORKED_EXAMPLE_TABLE,
                                          epsilon=EPSILON)

    t0 = scheduler.schedule(_views(T0_RATIOS), BUDGET_W,
                            on_infeasible="raise")
    t1 = scheduler.schedule(_views(T1_RATIOS), BUDGET_W,
                            on_infeasible="raise")

    def rows_for(schedule) -> tuple[tuple[object, ...], ...]:
        return tuple(
            (
                a.proc_id,
                round(to_ghz(a.eps_freq_hz), 1),
                round(to_ghz(a.freq_hz), 1),
                round(a.power_w, 0),
                round(100 * a.predicted_loss, 1),
                round(a.voltage, 3),
            )
            for a in schedule.assignments
        )

    headers = ("proc", "eps_freq_ghz", "actual_freq_ghz", "power_w",
               "pred_loss_pct", "vdd")
    return ExperimentResult(
        experiment_id="worked_example",
        description="Section 5 worked example (294 W budget, PSU failure)",
        tables=[
            TableResult(headers=headers, rows=rows_for(t0),
                        title=f"T0: after supply failure "
                              f"(total {t0.total_power_w:.0f} W)"),
            TableResult(headers=headers, rows=rows_for(t1),
                        title=f"T1: processor 0 turned memory-intensive "
                              f"(total {t1.total_power_w:.0f} W)"),
        ],
        scalars={
            "t0_total_power_w": t0.total_power_w,
            "t1_total_power_w": t1.total_power_w,
        },
        notes=[
            "T0 expected: eps vector [1.0, 0.7, 0.8, 0.8] GHz, actual "
            "[0.9, 0.6, 0.7, 0.7] GHz, power [109, 48, 66, 66] W = 289 W.",
            "T1 expected: all processors at their eps frequencies "
            "[0.6, 0.7, 0.8, 0.8] GHz = 282 W; step 2 is a no-op.",
        ],
    )
