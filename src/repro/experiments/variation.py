"""Process variation: variation-aware vs homogeneous scheduling.

Four parts from the same design draw different power (corner-lot scales
0.90x–1.25x).  Both schedulers target the same 294 W budget on the same
machine with the same workloads:

* the homogeneous scheduler believes every part draws nominal Table 1
  power — its predicted total under-counts the leaky parts, so the
  *measured* draw exceeds the budget it reports as met;
* the :class:`~repro.core.hetero.HeterogeneousScheduler` plans with
  per-part tables, and its measured draw respects the budget.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from ..core.hetero import HeterogeneousScheduler
from ..core.scheduler import FrequencyVoltageScheduler
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES

__all__ = ["run", "POWER_SCALES", "BUDGET_W"]

#: Corner-lot power multipliers of the four parts.
POWER_SCALES = (1.0, 1.25, 0.90, 1.15)
BUDGET_W = 294.0


def _run_policy(policy: str, *, seed: int, fast: bool) -> dict[str, float]:
    duration = 3.0 if fast else 8.0
    machine = SMPMachine(MachineConfig(
        num_cores=4,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)
    for i, (app, scale) in enumerate(zip(("gzip", "gap", "mcf", "health"),
                                         POWER_SCALES)):
        machine.core(i).power_scale = scale
        machine.assign(i, ALL_PROFILES[app].job(loop=True))

    if policy == "aware":
        scheduler = HeterogeneousScheduler.from_scales(
            machine.table,
            {(0, i): s for i, s in enumerate(POWER_SCALES)},
        )
    else:
        scheduler = FrequencyVoltageScheduler(machine.table)

    daemon = FvsstDaemon(machine, DaemonConfig(
        power_limit_w=BUDGET_W, counter_noise_sigma=0.0,
        measured_feedback=(policy == "feedback"),
        overhead=OverheadModel(enabled=False)),
        scheduler=scheduler, seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)

    over = []
    measured = []
    sim.every(0.05, lambda t: (
        measured.append(machine.cpu_power_w()),
        over.append(machine.cpu_power_w() > BUDGET_W + 1e-9),
    ))
    sim.run_for(duration)

    # Skip the startup window before the first scheduling pass.
    skip = 3
    instructions = sum(c.counters.instructions for c in machine.cores)
    return {
        "predicted_w": daemon.last_schedule.total_power_w,
        "measured_mean_w": sum(measured[skip:]) / len(measured[skip:]),
        "measured_max_w": max(measured[skip:]),
        "violation_fraction": sum(over[skip:]) / len(over[skip:]),
        "instructions": instructions,
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Compare variation-aware and homogeneous scheduling."""
    seeds = spawn_seeds(seed, 3)
    homogeneous = _run_policy("homogeneous", seed=seeds[0], fast=fast)
    aware = _run_policy("aware", seed=seeds[1], fast=fast)
    feedback = _run_policy("feedback", seed=seeds[2], fast=fast)

    def row(name: str, r: dict[str, float]) -> tuple:
        return (
            name, round(r["predicted_w"], 0),
            round(r["measured_max_w"], 1),
            round(r["violation_fraction"], 3),
            round(r["instructions"] / homogeneous["instructions"], 3),
        )

    table = TableResult(
        headers=("scheduler", "predicted_w", "measured_max_w",
                 "violation_fraction", "norm_throughput"),
        rows=(
            row("homogeneous", homogeneous),
            row("variation-aware", aware),
            row("homogeneous+feedback", feedback),
        ),
        title=f"Corner-lot parts {POWER_SCALES} under a {BUDGET_W:.0f} W "
              "budget",
    )
    return ExperimentResult(
        experiment_id="variation",
        description="process variation: per-processor power tables",
        tables=[table],
        scalars={
            "homogeneous_violation_fraction":
                homogeneous["violation_fraction"],
            "aware_violation_fraction": aware["violation_fraction"],
            "feedback_violation_fraction": feedback["violation_fraction"],
            "homogeneous_max_w": homogeneous["measured_max_w"],
            "aware_max_w": aware["measured_max_w"],
            "feedback_max_w": feedback["measured_max_w"],
        },
        notes=[
            "The homogeneous scheduler's believed total under-counts the "
            "leaky parts, so its measured draw breaches the budget; the "
            "variation-aware scheduler spends slightly more performance "
            "to stay genuinely inside it.",
            "The Section 5 measured-power feedback loop fixes the same "
            "breach without knowing the per-part tables: it tightens its "
            "internal planning limit until the measured draw complies "
            "(a short transient of violations while it converges).",
        ],
    )
