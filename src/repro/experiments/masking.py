"""The aggregate-masking limitation of Section 5, quantified.

"The use of aggregate performance counter data on each processor may mask
the presence of a high CPU-intensity application among many memory-
intensive applications.  A reduced frequency in such a case will produce a
larger performance loss than predicted."

One CPU-bound job shares a processor with N memory-bound jobs under
round-robin dispatch.  The daemon sees only the blended counters, schedules
the blend's epsilon frequency, and the CPU-bound job eats a loss well above
epsilon while the *aggregate* loss stays near the prediction — the paper's
"individual jobs may [lose]" caveat, measured as a function of N.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from ..errors import ExperimentError
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..units import to_mhz
from ..workloads.job import Job, LoopMode
from ..workloads.synthetic import synthetic_phase

__all__ = ["run", "COMPANION_COUNTS"]

COMPANION_COUNTS = (0, 1, 3, 7)


def _cpu_job(name: str) -> Job:
    return Job(name=name,
               phases=(synthetic_phase(1.0, duration_s=10.0, name="cpu"),),
               loop=LoopMode.LOOP)


def _mem_job(name: str) -> Job:
    return Job(name=name,
               phases=(synthetic_phase(0.1, duration_s=10.0, name="mem"),),
               loop=LoopMode.LOOP)


def _one_mix(companions: int, *, seed: int, fast: bool) -> dict[str, float]:
    duration = 3.0 if fast else 8.0

    def measure(managed: bool, seed_: int) -> tuple[float, float, float]:
        machine = SMPMachine(MachineConfig(
            num_cores=1,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ), seed=seed_)
        victim = _cpu_job("victim")
        machine.assign(0, victim)
        for i in range(companions):
            machine.assign(0, _mem_job(f"mem-{i}"))
        sim = Simulation(machine)
        daemon = None
        if managed:
            daemon = FvsstDaemon(machine, DaemonConfig(
                counter_noise_sigma=0.0,
                overhead=OverheadModel(enabled=False)), seed=seed_ + 1)
            daemon.attach(sim)
        sim.run_for(duration)
        modal = 0.0
        if daemon is not None:
            res = daemon.log.frequency_residency(0, 0)
            modal = max(res, key=res.get)
        total = machine.core(0).counters.instructions
        return victim.instructions_retired, total, modal

    base_victim, base_total, _ = measure(False, seed)
    fvsst_victim, fvsst_total, modal = measure(True, seed + 100)
    if base_victim <= 0:
        raise ExperimentError("victim made no progress in the baseline")
    return {
        "victim_loss": 1.0 - fvsst_victim / base_victim,
        "aggregate_loss": 1.0 - fvsst_total / base_total,
        "modal_mhz": to_mhz(modal),
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Sweep the number of memory-bound companions."""
    seeds = spawn_seeds(seed, len(COMPANION_COUNTS))
    rows = []
    results = []
    for n, s in zip(COMPANION_COUNTS, seeds):
        r = _one_mix(n, seed=s, fast=fast)
        results.append(r)
        rows.append((
            n,
            round(r["modal_mhz"], 0),
            round(r["aggregate_loss"], 3),
            round(r["victim_loss"], 3),
        ))
    table = TableResult(
        headers=("mem_companions", "modal_freq_mhz", "aggregate_loss",
                 "victim_loss"),
        rows=tuple(rows),
        title="One CPU-bound job among N memory-bound jobs on one processor",
    )
    return ExperimentResult(
        experiment_id="masking",
        description="aggregate counters mask a CPU-bound job (Section 5)",
        tables=[table],
        scalars={
            "victim_loss_alone": results[0]["victim_loss"],
            "victim_loss_crowded": results[-1]["victim_loss"],
        },
        notes=[
            "Alone, the CPU-bound job is recognised and kept fast.  As "
            "memory-bound companions accumulate, the blended signature "
            "drags the scheduled frequency down and the CPU-bound job's "
            "individual loss grows far beyond epsilon, while the "
            "aggregate loss the predictor reasons about stays modest — "
            "the masking cost the paper accepts for migration-free "
            "scheduling.",
        ],
    )
