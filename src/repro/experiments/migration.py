"""Frequency scheduling vs work scheduling (Section 1's first claim).

The paper's opening argument: schedule frequencies, not work, because
migration costs, is often impossible, and needs scheduler changes.  This
experiment runs the strongest single-SMP work scheduler we can build — the
:class:`~repro.core.consolidation.ConsolidationGovernor`, which packs all
jobs onto as many full-speed cores as the budget affords — against fvsst
at a budget sweep, on the four-application mix.

fvsst's edge comes from saturation: under the budget it keeps *every* job
on its own processor at a rung near its saturation point, while
consolidation time-slices pairs of jobs on shared full-speed cores (each
job seeing half a core plus migration stalls).
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.consolidation import ConsolidationGovernor
from ..core.daemon import DaemonConfig, FvsstDaemon, OverheadModel
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.profiles import ALL_PROFILES

__all__ = ["run", "BUDGETS_W"]

BUDGETS_W = (560.0, 294.0, 150.0)
APPS = ("gzip", "gap", "mcf", "health")


def _build(seed: int) -> SMPMachine:
    machine = SMPMachine(MachineConfig(
        num_cores=4,
        core_config=CoreConfig(latency_jitter_sigma=0.0),
    ), seed=seed)
    for i, app in enumerate(APPS):
        machine.assign(i, ALL_PROFILES[app].job(loop=True))
    return machine


def _run(policy: str, budget: float, *, seed: int,
         fast: bool) -> dict[str, float]:
    duration = 3.0 if fast else 8.0
    machine = _build(seed)
    sim = Simulation(machine)
    migrations = 0
    if policy == "fvsst":
        FvsstDaemon(machine, DaemonConfig(
            power_limit_w=budget, counter_noise_sigma=0.0,
            overhead=OverheadModel(enabled=False)), seed=seed + 1
        ).attach(sim)
    else:
        governor = ConsolidationGovernor(machine, power_limit_w=budget)
        governor.attach(sim)
    sim.run_for(duration)
    if policy != "fvsst":
        migrations = governor.migrations
    powers = [machine.meter.core_power_w(c, sim.now_s)
              for c in machine.cores]
    return {
        "instructions": sum(c.counters.instructions
                            for c in machine.cores),
        "power_w": sum(powers),
        "migrations": float(migrations),
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Budget sweep: fvsst vs consolidation."""
    seeds = spawn_seeds(seed, 2 * len(BUDGETS_W) + 1)
    reference = _run("fvsst", BUDGETS_W[0], seed=seeds[-1], fast=fast)

    rows = []
    ratios = {}
    for i, budget in enumerate(BUDGETS_W):
        fvsst = _run("fvsst", budget, seed=seeds[2 * i], fast=fast)
        consolidation = _run("consolidation", budget,
                             seed=seeds[2 * i + 1], fast=fast)
        norm_f = fvsst["instructions"] / reference["instructions"]
        norm_c = consolidation["instructions"] / reference["instructions"]
        ratios[budget] = norm_f / norm_c if norm_c > 0 else float("inf")
        rows.append((
            int(budget),
            round(norm_f, 3),
            round(norm_c, 3),
            int(consolidation["migrations"]),
            round(fvsst["power_w"], 0),
            round(consolidation["power_w"], 0),
        ))
    table = TableResult(
        headers=("budget_w", "fvsst_norm", "consolidation_norm",
                 "migrations", "fvsst_w", "consolidation_w"),
        rows=tuple(rows),
        title="Frequency scheduling vs consolidation-by-migration",
    )
    return ExperimentResult(
        experiment_id="migration",
        description="Section 1: scheduling frequencies vs scheduling work",
        tables=[table],
        scalars={
            f"advantage@{int(b)}": ratios[b] for b in BUDGETS_W
        },
        notes=[
            "Unconstrained (560 W) the approaches tie: everyone runs at "
            "speed (fvsst slightly ahead on energy, not shown).  Under a "
            "budget, consolidation halves each job's core share while "
            "fvsst trades frequency only where saturation makes it cheap "
            "— and pays zero migrations.",
        ],
    )
