"""One experiment module per paper artifact (see DESIGN.md §5).

Every module exposes ``run(seed=..., fast=...) -> ExperimentResult``; the
``fast`` flag shrinks durations for test suites while keeping shapes.  The
registry maps artifact ids to the runners for the CLI and benches.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.report import ExperimentResult
from ..errors import ExperimentError
from . import (
    table1,
    table2,
    table3,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    worked_example,
    failover,
    cluster_cap,
    curtailment,
    ablations,
    thermal,
    server_demand,
    masking,
    sensitivity,
    variation,
    migration,
    cluster_failover,
    response_time,
)

__all__ = ["REGISTRY", "run_experiment", "ExperimentResult"]

REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig1": fig1.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig9.run_zoom,
    "worked_example": worked_example.run,
    "failover": failover.run,
    "thermal": thermal.run,
    "server_demand": server_demand.run,
    "masking": masking.run,
    "sensitivity_latency": sensitivity.run_latency_miscalibration,
    "sensitivity_noise": sensitivity.run_noise_sweep,
    "variation": variation.run,
    "migration": migration.run,
    "cluster_failover": cluster_failover.run,
    "response_time": response_time.run,
    "cluster_cap": cluster_cap.run,
    "curtailment": curtailment.run,
    "ablation_epsilon": ablations.run_epsilon_sweep,
    "ablation_period": ablations.run_period_sweep,
    "ablation_predictor": ablations.run_predictor_variants,
    "ablation_policies": ablations.run_policy_comparison,
    "ablation_daemon": ablations.run_daemon_design,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by artifact id."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(REGISTRY)}"
        ) from None
    return runner(**kwargs)
