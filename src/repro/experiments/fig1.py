"""Figure 1: performance saturation.

Throughput of the synthetic benchmark versus frequency for several
CPU:memory intensity ratios, normalised to each curve's 1000 MHz value.
Memory-heavy settings flatten early (their saturation frequency is low);
pure CPU work is linear in frequency.  This is the model-level phenomenon
everything else builds on, so the experiment evaluates the ground-truth
phase model directly (no daemon in the loop).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import ExperimentResult, SeriesResult
from ..model.latency import POWER4_LATENCIES
from ..model.perf import saturation_frequency
from ..power.table import POWER4_TABLE
from ..units import to_mhz
from ..workloads.synthetic import synthetic_phase

__all__ = ["run", "CURVE_INTENSITIES"]

CURVE_INTENSITIES = (1.00, 0.75, 0.50, 0.25, 0.00)


def run(seed: int | None = None, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 1 (deterministic)."""
    freqs = POWER4_TABLE.freqs_array()
    series: dict[str, tuple[float, ...]] = {}
    saturation_points: dict[str, float] = {}
    for intensity in CURVE_INTENSITIES:
        phase = synthetic_phase(intensity, instructions=1.0)
        throughput = np.array([
            phase.throughput(POWER4_LATENCIES, f) for f in freqs
        ])
        normalised = throughput / throughput[-1]
        label = f"cpu={int(intensity * 100)}%"
        series[label] = tuple(float(v) for v in normalised)
        signature = phase.true_signature(POWER4_LATENCIES)
        if signature.mem_time_per_instr_s > 0:
            saturation_points[f"f_sat({label})_mhz"] = to_mhz(
                saturation_frequency(signature, loss_budget=0.05)
            )

    fig = SeriesResult(
        x_label="frequency_mhz",
        x=tuple(int(to_mhz(f)) for f in freqs),
        series=series,
        title="Figure 1: normalised throughput vs frequency",
    )
    return ExperimentResult(
        experiment_id="fig1",
        description="performance saturation by memory intensity",
        series=[fig],
        scalars=saturation_points,
        notes=[
            "Curves with more memory work flatten at lower frequencies; the "
            "paper's Figure 1 shows the same family of shapes for its "
            "synthetic benchmark on real hardware.",
        ],
    )
