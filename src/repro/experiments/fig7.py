"""Figure 7: phases under progressively tighter power limits.

The 100% + 75% CPU-intensity two-phase configuration at budgets of 140 W,
75 W and 35 W.  At full power both phases get what they need; at 75 W
(750 MHz cap) the 100% phase can no longer be scheduled losslessly while
the 75% phase still can; at 35 W (500 MHz cap) both phases pin at the
power-constrained frequency.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, SeriesResult, TableResult
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..units import to_mhz
from ..workloads.synthetic import SyntheticBenchmark
from .fig6 import phase_throughputs

__all__ = ["run", "CAPS_W"]

CAPS_W = (140.0, 75.0, 35.0)


def _residency_modes(cap_w: float, *, seed: int, fast: bool
                     ) -> tuple[float, float]:
    """Modal scheduled frequency during each phase (MHz), from one looping
    run — shows where each phase lands under the cap."""
    phase_s = 0.5 if fast else 1.2
    bench = SyntheticBenchmark(
        intensity_a=1.00, intensity_b=0.75,
        duration_a_s=phase_s, duration_b_s=phase_s,
        include_init_exit=False,
    )
    machine = SMPMachine(MachineConfig(num_cores=1), seed=seed)
    machine.assign(0, bench.job(loop=True))
    daemon = FvsstDaemon(machine, DaemonConfig(power_limit_w=cap_w,
                                               daemon_core=0), seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)
    sim.run_for(6 * phase_s)

    # Split scheduling decisions by measured IPC level: the 100% phase has
    # higher IPC than the 75% phase.
    pairs = daemon.log.prediction_pairs(0, 0)
    t_f, freqs = daemon.log.frequency_series(0, 0)
    measured = {t: m for t, _p, m in pairs}
    per_decision = [(t, f, measured.get(t)) for t, f in zip(t_f, freqs)]
    scored = [(f, m) for _t, f, m in per_decision if m is not None]
    if not scored:
        return float("nan"), float("nan")
    median_ipc = sorted(m for _f, m in scored)[len(scored) // 2]
    hi = [f for f, m in scored if m >= median_ipc]
    lo = [f for f, m in scored if m < median_ipc]
    mode = lambda xs: max(set(xs), key=xs.count) if xs else float("nan")
    return to_mhz(mode(hi)), to_mhz(mode(lo))


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 7."""
    seeds = spawn_seeds(seed, 2 * len(CAPS_W))
    perf_a, perf_b, mode_a, mode_b = [], [], [], []
    for i, cap in enumerate(CAPS_W):
        t = phase_throughputs(1.00, 0.75, cap, seed=seeds[2 * i], fast=fast)
        perf_a.append(t["phase-a"])
        perf_b.append(t["phase-b"])
        hi_mode, lo_mode = _residency_modes(cap, seed=seeds[2 * i + 1],
                                            fast=fast)
        mode_a.append(hi_mode)
        mode_b.append(lo_mode)

    fig = SeriesResult(
        x_label="power_limit_w",
        x=tuple(int(c) for c in CAPS_W),
        series={
            "phase100_normalised": tuple(v / perf_a[0] for v in perf_a),
            "phase75_normalised": tuple(v / perf_b[0] for v in perf_b),
        },
        title="Figure 7: 100%/75% phases under power limits",
    )
    modes = TableResult(
        headers=("power_limit_w", "phase100_mode_mhz", "phase75_mode_mhz"),
        rows=tuple(
            (int(c), round(a, 0), round(b, 0))
            for c, a, b in zip(CAPS_W, mode_a, mode_b)
        ),
        title="Modal scheduled frequency per phase",
    )
    return ExperimentResult(
        experiment_id="fig7",
        description="phase scheduling under 140/75/35 W budgets",
        series=[fig],
        tables=[modes],
        notes=[
            "At 75 W the 100% phase pins at the 750 MHz cap and loses "
            "performance while the 75% phase still fits; at 35 W both pin "
            "at 500 MHz — the paper's Figure 7 progression.",
        ],
    )
