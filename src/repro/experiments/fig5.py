"""Figure 5: fvsst response to phase behaviour.

A two-phase synthetic benchmark (alternating CPU-heavy and memory-heavy
phases, each much longer than T = 100 ms) under unconstrained fvsst.  The
figure's three aligned series — measured IPC, scheduled frequency, and
scheduled processor power — show frequency tracking the IPC phase square
wave with one-period lag, and power tracking frequency.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import ExperimentResult, SeriesResult
from ..analysis.timeseries import StepSeries
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig, SMPMachine
from ..units import to_mhz
from ..workloads.synthetic import SyntheticBenchmark

__all__ = ["run"]


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 5."""
    phase_s = 0.6 if fast else 1.5
    bench = SyntheticBenchmark(
        intensity_a=0.95, intensity_b=0.20,
        duration_a_s=phase_s, duration_b_s=phase_s,
        include_init_exit=False,
    )
    job = bench.job(loop=True)
    machine = SMPMachine(MachineConfig(num_cores=1), seed=seed)
    machine.assign(0, job)
    daemon = FvsstDaemon(machine, DaemonConfig(daemon_core=0), seed=seed + 1)
    sim = Simulation(machine)
    daemon.attach(sim)
    sim.run_for(4 * phase_s if fast else 6 * phase_s)

    t_ipc, ipc = daemon.log.ipc_series(0, 0)
    t_f, freq = daemon.log.frequency_series(0, 0)
    freq_series = StepSeries(t_f, freq)
    power = np.array([
        machine.table.power_at(machine.table.nearest(freq_series.at(t)))
        for t in t_ipc
    ])
    freq_on_grid = np.array([freq_series.at(t) for t in t_ipc])

    fig = SeriesResult(
        x_label="time_s",
        x=tuple(round(float(t), 3) for t in t_ipc),
        series={
            "measured_ipc": tuple(float(v) for v in ipc),
            "frequency_mhz": tuple(to_mhz(float(v)) for v in freq_on_grid),
            "power_w": tuple(float(v) for v in power),
        },
        title="Figure 5: IPC, frequency and power tracking phases",
    )

    # Headline: correlation between IPC level and chosen frequency.
    ipc_hi = ipc > np.median(ipc)
    f_hi = freq_on_grid[ipc_hi].mean()
    f_lo = freq_on_grid[~ipc_hi].mean()
    return ExperimentResult(
        experiment_id="fig5",
        description="fvsst tracks phase changes (T=100 ms, t=10 ms)",
        series=[fig],
        scalars={
            "mean_freq_high_ipc_mhz": to_mhz(f_hi),
            "mean_freq_low_ipc_mhz": to_mhz(f_lo),
        },
        notes=[
            "High-IPC (CPU-bound) intervals are scheduled fast, low-IPC "
            "(memory-bound) intervals slow; power follows frequency — the "
            "trending-together behaviour of the paper's Figure 5.",
        ],
    )
