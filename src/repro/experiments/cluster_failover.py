"""Node-level supply failure inside a cluster (nested budgets).

A tiered cluster runs under a global power limit.  At ``T0`` one node's
supply degrades: that node must get under its *local* limit while the
global limit stays in force.  Two responses:

* **nested** — the coordinator installs a per-node limit; only the
  affected node slows, surgically.
* **global-squeeze** — a coordinator without per-node limits can only
  tighten the *global* budget until the affected node happens to fit;
  the greedy pass spreads the cut over whichever processors are cheapest
  cluster-wide, so healthy nodes pay and the sick node may still exceed
  its own ceiling.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..cluster.coordinator import ClusterCoordinator, CoordinatorConfig
from ..errors import ExperimentError
from ..sim.cluster import Cluster
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.machine import MachineConfig
from ..sim.rng import spawn_seeds
from ..workloads.tiers import tiered_cluster_assignment

__all__ = ["run", "NODES", "PROCS", "NODE_LIMIT_W"]

NODES, PROCS = 3, 2
#: The sick node's post-failure limit.
NODE_LIMIT_W = 100.0
SICK_NODE = 1   # the app-tier (CPU-bound) node: the hard case
T0_S = 1.0


def _build(seed: int):
    cluster = Cluster.homogeneous(
        NODES,
        machine_config=MachineConfig(
            num_cores=PROCS,
            core_config=CoreConfig(latency_jitter_sigma=0.0),
        ),
        seed=seed,
    )
    cluster.assign_all(tiered_cluster_assignment(NODES, PROCS,
                                                 web_nodes=1, app_nodes=1))
    coordinator = ClusterCoordinator(
        cluster, CoordinatorConfig(counter_noise_sigma=0.0), seed=seed + 1)
    sim = Simulation(cluster.machines)
    coordinator.attach(sim)
    return cluster, coordinator, sim


def _measure(cluster, duration_used) -> dict[str, float]:
    sick = cluster.node(SICK_NODE).cpu_power_w()
    healthy = sum(n.cpu_power_w() for n in cluster.nodes
                  if n.node_id != SICK_NODE)
    work = sum(core.counters.instructions
               for n in cluster.nodes for core in n.machine.cores)
    return {"sick_node_w": sick, "healthy_w": healthy,
            "throughput": work / duration_used}


def _nested(seed: int, fast: bool) -> dict[str, float]:
    duration = 2.0 if fast else 6.0
    cluster, coordinator, sim = _build(seed)
    sim.run_for(T0_S)
    coordinator.set_node_limit(SICK_NODE, NODE_LIMIT_W, sim.now_s)
    sim.run_for(duration)
    return _measure(cluster, T0_S + duration)


def _global_squeeze(seed: int, fast: bool) -> dict[str, float]:
    """Tighten the global limit until the sick node happens to comply."""
    duration = 2.0 if fast else 6.0
    cluster, coordinator, sim = _build(seed)
    sim.run_for(T0_S)
    limit = sum(n.cpu_power_w() for n in cluster.nodes)
    floor = NODES * PROCS * cluster.nodes[0].machine.table.min_power_w
    # Tighten globally, settling between steps, until the *measured* sick
    # node complies or the whole cluster hits the frequency floor.  The
    # greedy pass reduces memory-bound processors first, so a CPU-bound
    # sick node is reduced last — the squeeze must crush everyone.
    for _ in range(80):
        if cluster.node(SICK_NODE).cpu_power_w() <= NODE_LIMIT_W:
            break
        limit = max(floor, limit * 0.94)
        coordinator.set_power_limit(limit, sim.now_s)
        sim.run_for(0.15)
        if limit <= floor:
            break
    else:
        raise ExperimentError("global squeeze did not converge")
    sim.run_for(duration)
    return _measure(cluster, sim.now_s)


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Compare the nested-budget response with the global squeeze."""
    seeds = spawn_seeds(seed, 2)
    nested = _nested(seeds[0], fast)
    squeeze = _global_squeeze(seeds[1], fast)

    table = TableResult(
        headers=("response", "sick_node_w", "healthy_nodes_w",
                 "norm_throughput"),
        rows=(
            ("nested node limit", round(nested["sick_node_w"], 0),
             round(nested["healthy_w"], 0), 1.0),
            ("global squeeze", round(squeeze["sick_node_w"], 0),
             round(squeeze["healthy_w"], 0),
             round(squeeze["throughput"] / nested["throughput"], 3)),
        ),
        title=f"Node {SICK_NODE} limited to {NODE_LIMIT_W:.0f} W at "
              f"t={T0_S}s ({NODES} nodes x {PROCS} procs)",
    )
    return ExperimentResult(
        experiment_id="cluster_failover",
        description="node-level supply failure: nested vs global response",
        tables=[table],
        scalars={
            "nested_sick_node_w": nested["sick_node_w"],
            "squeeze_healthy_w": squeeze["healthy_w"],
            "nested_healthy_w": nested["healthy_w"],
            "squeeze_norm_throughput":
                squeeze["throughput"] / nested["throughput"],
        },
        notes=[
            "The nested response confines the cut to the sick node; the "
            "global squeeze reaches the same local compliance only by "
            "dragging the whole cluster down (healthy nodes lose power "
            "and the cluster loses throughput).",
        ],
    )
