"""Web-server demand scenario (the Elnozahy et al. comparison, Section 3.1).

A single-processor web server with a compressed diurnal load cycle.  Four
policies run the same request stream:

* ``none`` — always 1000 MHz: best latency, worst energy.
* ``utilization`` — DBS/LongRun-style stepping on a *halting* core: the
  demand-driven scheme on its home turf.
* ``fvsst`` — counter-driven, with idle detection enabled (the Section 5
  design): idle troughs go to the floor; busy periods get what the
  request mix can actually use.
* ``fvsst-hot-noidle`` — fvsst on the hot-idling Power4+ without the idle
  signal, showing the pathology Section 7.1 describes (idle looks like
  CPU-bound work, so little energy is saved in the troughs).

Scored on CPU energy and p95 request latency.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..core.baselines import NoManagementGovernor, UtilizationGovernor
from ..core.daemon import DaemonConfig, FvsstDaemon
from ..sim.core import CoreConfig
from ..sim.driver import Simulation
from ..sim.idle import IdleStyle
from ..sim.machine import MachineConfig, SMPMachine
from ..sim.rng import spawn_seeds
from ..workloads.server import ServerSource, diurnal_rate

__all__ = ["run", "POLICIES"]

POLICIES = ("none", "utilization", "fvsst", "fvsst-hot-noidle")

#: Peak service demand: ~2M instr/request at ~0.5 GIPS floor throughput
#: keeps even the trough frequency comfortably ahead of arrivals.
LOW_RATE = 20.0
HIGH_RATE = 140.0
PERIOD_S = 8.0


def _build(policy: str, seed: int):
    idle_style = (IdleStyle.HOT_LOOP
                  if policy in ("fvsst-hot-noidle", "none-hot")
                  else IdleStyle.HALT)
    machine = SMPMachine(MachineConfig(
        num_cores=1,
        core_config=CoreConfig(latency_jitter_sigma=0.0,
                               idle_style=idle_style),
    ), seed=seed)
    sim = Simulation(machine)
    if policy in ("none", "none-hot"):
        NoManagementGovernor(machine).attach(sim)
    elif policy == "utilization":
        UtilizationGovernor(machine, power_limit_w=None).attach(sim)
    elif policy == "fvsst":
        FvsstDaemon(machine, DaemonConfig(
            counter_noise_sigma=0.0, idle_detection=True,
        ), seed=seed + 1).attach(sim)
    elif policy == "fvsst-hot-noidle":
        FvsstDaemon(machine, DaemonConfig(
            counter_noise_sigma=0.0, idle_detection=False,
        ), seed=seed + 1).attach(sim)
    else:
        raise ValueError(policy)
    return machine, sim


def _run_policy(policy: str, *, seed: int, fast: bool) -> dict[str, float]:
    duration = PERIOD_S * (1 if fast else 3)
    machine, sim = _build(policy, seed)
    source = ServerSource(
        machine, 0,
        rate_per_s=diurnal_rate(LOW_RATE, HIGH_RATE, PERIOD_S),
        max_rate_per_s=HIGH_RATE,
        rng=seed + 2,
    )
    source.attach(sim)
    sim.run_for(duration)
    return {
        "energy_j": machine.ledger.energy_of("core0"),
        "p95_latency_ms": source.latency_percentile_s(95) * 1e3,
        "mean_latency_ms": source.mean_latency_s() * 1e3,
        "completed": float(source.completed),
        "issued": float(source.issued),
    }


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Run the diurnal server scenario under all four policies."""
    seeds = spawn_seeds(seed, len(POLICIES) + 1)
    results = {p: _run_policy(p, seed=s, fast=fast)
               for p, s in zip(POLICIES, seeds)}
    # Each policy is normalised against an unmanaged run with the *same*
    # idle style, so the hot-noidle row isolates the idle-loop pathology
    # rather than the halting hardware's idle discount.
    results["none-hot"] = _run_policy("none-hot", seed=seeds[-1], fast=fast)
    base_energy = results["none"]["energy_j"]
    hot_base_energy = results["none-hot"]["energy_j"]

    rows = []
    for policy in POLICIES:
        r = results[policy]
        base = hot_base_energy if policy == "fvsst-hot-noidle" else base_energy
        rows.append((
            policy,
            round(r["energy_j"] / base, 3),
            round(r["p95_latency_ms"], 2),
            round(r["mean_latency_ms"], 2),
            int(r["completed"]),
        ))
    table = TableResult(
        headers=("policy", "norm_energy", "p95_latency_ms",
                 "mean_latency_ms", "completed"),
        rows=tuple(rows),
        title=f"Diurnal web load {LOW_RATE}-{HIGH_RATE} req/s, "
              f"period {PERIOD_S}s",
    )
    return ExperimentResult(
        experiment_id="server_demand",
        description="demand-driven server: fvsst vs utilization stepping",
        tables=[table],
        scalars={
            "fvsst_norm_energy": results["fvsst"]["energy_j"] / base_energy,
            "hot_noidle_norm_energy": (
                results["fvsst-hot-noidle"]["energy_j"] / hot_base_energy),
            "fvsst_p95_ms": results["fvsst"]["p95_latency_ms"],
        },
        notes=[
            "With idle detection, fvsst rides the load troughs at the "
            "frequency floor and saves substantial energy at modest "
            "latency cost; without it (hot idle), the idle loop's IPC 1.3 "
            "masquerades as demanding work and most of the saving "
            "disappears — the Section 5/7.1 pathology quantified.",
        ],
    )
